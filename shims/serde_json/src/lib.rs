//! Offline stand-in for the subset of `serde_json` that sst-rs uses.
//!
//! Re-exports the JSON-shaped [`Value`] data model from the in-tree `serde`
//! shim and adds the text format on top: [`from_str`], [`to_string`],
//! [`to_string_pretty`], and a literal-only [`json!`] macro.

pub use serde::{Error, Map, Number, Value};

/// Serialize a value to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json_string())
}

/// Serialize a value to pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json_string_pretty())
}

/// Parse JSON text into any `Deserialize` type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    T::from_value(&v)
}

/// Convert any `Serialize` type into a [`Value`].
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Convert a [`Value`] into any `Deserialize` type.
pub fn from_value<T: serde::Deserialize>(v: Value) -> Result<T, Error> {
    T::from_value(&v)
}

/// Build a [`Value`] from a JSON literal. Unlike the real `serde_json`, this
/// does not support interpolating Rust expressions — the token tree is
/// stringified and parsed as JSON text.
#[macro_export]
macro_rules! json {
    ($($t:tt)+) => {
        $crate::from_str::<$crate::Value>(stringify!($($t)+))
            .expect("json! literal must be valid JSON")
    };
}

// ---------------------------------------------------------------------------
// Text parser: recursive descent over bytes.

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        s: s.as_bytes(),
        i: 0,
    };
    let v = p.value()?;
    p.ws();
    if p.i != p.s.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.i)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while self.i < self.s.len() && matches!(self.s[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.ws();
        self.s
            .get(self.i)
            .copied()
            .ok_or_else(|| Error::msg("unexpected end of JSON input"))
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.i += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.i
            )))
        }
    }

    fn eat_word(&mut self, w: &str) -> bool {
        if self.s[self.i..].starts_with(w.as_bytes()) {
            self.i += w.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::String(self.string()?)),
            b't' if self.eat_word("true") => Ok(Value::Bool(true)),
            b'f' if self.eat_word("false") => Ok(Value::Bool(false)),
            b'n' if self.eat_word("null") => Ok(Value::Null),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(Error::msg(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.i
            ))),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut m = Map::new();
        if self.peek()? == b'}' {
            self.i += 1;
            return Ok(Value::Object(m));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.eat(b':')?;
            let val = self.value()?;
            m.insert(key, val);
            match self.peek()? {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Ok(Value::Object(m));
                }
                c => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}`, got `{}` at byte {}",
                        c as char, self.i
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut a = Vec::new();
        if self.peek()? == b']' {
            self.i += 1;
            return Ok(Value::Array(a));
        }
        loop {
            a.push(self.value()?);
            match self.peek()? {
                b',' => self.i += 1,
                b']' => {
                    self.i += 1;
                    return Ok(Value::Array(a));
                }
                c => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]`, got `{}` at byte {}",
                        c as char, self.i
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .s
                .get(self.i)
                .ok_or_else(|| Error::msg("unterminated string"))?;
            self.i += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self
                        .s
                        .get(self.i)
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.i..self.i + 4)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            self.i += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            // Surrogate pairs are not reconstructed; lone
                            // surrogates become the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        c => {
                            return Err(Error::msg(format!("bad escape `\\{}`", c as char)));
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at b.
                    let start = self.i - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .s
                        .get(start..end)
                        .ok_or_else(|| Error::msg("truncated UTF-8 sequence"))?;
                    out.push_str(
                        std::str::from_utf8(chunk).map_err(|_| Error::msg("invalid UTF-8"))?,
                    );
                    self.i = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let mut neg = false;
        if self.s[self.i] == b'-' {
            neg = true;
            self.i += 1;
            // `json!` goes through `stringify!`, which renders `-1.5` as
            // `- 1.5`; tolerate space between the sign and the digits.
            self.ws();
        }
        let start = self.i;
        let mut float = false;
        while self.i < self.s.len() {
            match self.s[self.i] {
                b'0'..=b'9' => self.i += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.i += 1;
                }
                _ => break,
            }
        }
        let digits = std::str::from_utf8(&self.s[start..self.i]).unwrap();
        let text = if neg {
            format!("-{digits}")
        } else {
            digits.to_string()
        };
        if !float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from_u64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from_i64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::from_f64(f)))
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scalars() {
        assert_eq!(from_str::<Value>("null").unwrap(), Value::Null);
        assert_eq!(from_str::<Value>("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("2.5e3").unwrap(), 2500.0);
        assert_eq!(from_str::<String>(r#""hi\nthere""#).unwrap(), "hi\nthere");
    }

    #[test]
    fn parse_nested() {
        let v: Value = from_str(r#"{"a": [1, {"b": false}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].get("b").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = json!({"name": "ring", "sizes": [1, 2, 3], "ok": true});
        let compact = to_string(&v).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Value>(&compact).unwrap(), v);
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn json_macro_shapes() {
        let v = json!([1, 2, 3]);
        assert_eq!(v.as_array().unwrap().len(), 3);
        let v = json!({"a": -1.5});
        assert_eq!(v.get("a").unwrap().as_f64(), Some(-1.5));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
