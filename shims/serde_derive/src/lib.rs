//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the in-tree `serde` shim's `Serialize`/`Deserialize`
//! traits (which speak a JSON-shaped `serde::Value` data model rather than
//! serde's visitor machinery). The item is parsed directly from the
//! `proc_macro` token stream — no `syn`/`quote`, since the build container
//! has no registry access.
//!
//! Supported shapes (everything this repo derives on):
//! - named-field structs, with `#[serde(rename = "...")]` and
//!   `#[serde(default)]` on fields and `#[serde(transparent)]` on the
//!   container
//! - tuple structs (newtypes serialize transparently, wider ones as arrays)
//! - unit structs
//! - externally-tagged enums with unit, newtype, tuple, and struct variants
//!
//! Generics are intentionally unsupported; no derive target in-tree is
//! generic.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone, Default)]
struct FieldAttrs {
    rename: Option<String>,
    default: bool,
}

#[derive(Debug, Clone)]
struct Field {
    /// Rust-side name (identifier for named fields, index for tuple fields).
    name: String,
    attrs: FieldAttrs,
}

impl Field {
    fn json_name(&self) -> &str {
        self.attrs.rename.as_deref().unwrap_or(&self.name)
    }
}

#[derive(Debug, Clone)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        shape: Shape,
        transparent: bool,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------------------
// Token-level parsing

/// Pull `rename`/`default`/`transparent` out of the tokens inside a
/// `#[serde(...)]` group.
fn parse_serde_attr(group: &proc_macro::Group, field: &mut FieldAttrs, transparent: &mut bool) {
    let mut toks = group.stream().into_iter().peekable();
    while let Some(tok) = toks.next() {
        if let TokenTree::Ident(id) = &tok {
            match id.to_string().as_str() {
                "default" => field.default = true,
                "transparent" => *transparent = true,
                "rename" => {
                    // rename = "literal"
                    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                        toks.next();
                        if let Some(TokenTree::Literal(lit)) = toks.next() {
                            let s = lit.to_string();
                            field.rename = Some(s.trim_matches('"').to_string());
                        }
                    }
                }
                other => panic!("serde shim derive: unsupported serde attribute `{other}`"),
            }
        }
    }
}

/// Consume leading attributes (`#[...]`), folding any `#[serde(...)]`
/// contents into `field`/`transparent`; skip doc comments and everything
/// else.
fn skip_attrs(
    toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>,
    field: &mut FieldAttrs,
    transparent: &mut bool,
) {
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                match toks.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        if let Some(TokenTree::Ident(id)) = inner.first() {
                            if id.to_string() == "serde" {
                                if let Some(TokenTree::Group(sg)) = inner.get(1) {
                                    parse_serde_attr(sg, field, transparent);
                                }
                            }
                        }
                    }
                    other => panic!("serde shim derive: malformed attribute: {other:?}"),
                }
            }
            _ => return,
        }
    }
}

/// Consume an optional `pub` / `pub(...)` visibility.
fn skip_vis(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(toks.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        toks.next();
        if matches!(toks.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            toks.next();
        }
    }
}

/// Skip a field's type: everything up to a top-level comma (tracking `<...>`
/// depth so commas inside generics don't split the field list).
fn skip_type(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut angle: i32 = 0;
    while let Some(tok) = toks.peek() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                toks.next();
                return;
            }
            _ => {}
        }
        toks.next();
    }
}

/// Parse `name: Type, ...` fields from inside a brace group.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let mut toks = group.stream().into_iter().peekable();
    let mut fields = Vec::new();
    let mut ignored_transparent = false;
    loop {
        let mut attrs = FieldAttrs::default();
        skip_attrs(&mut toks, &mut attrs, &mut ignored_transparent);
        skip_vis(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim derive: expected field name, got {other:?}"),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected `:` after `{name}`, got {other:?}"),
        }
        skip_type(&mut toks);
        fields.push(Field { name, attrs });
    }
    fields
}

/// Count the fields of a tuple struct/variant (top-level commas + trailing
/// element, honoring angle-bracket depth).
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let mut toks = group.stream().into_iter().peekable();
    let mut n = 0;
    while toks.peek().is_some() {
        let mut attrs = FieldAttrs::default();
        let mut ignored = false;
        skip_attrs(&mut toks, &mut attrs, &mut ignored);
        skip_vis(&mut toks);
        if toks.peek().is_none() {
            break;
        }
        skip_type(&mut toks);
        n += 1;
    }
    n
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let mut toks = group.stream().into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        let mut attrs = FieldAttrs::default();
        let mut ignored = false;
        skip_attrs(&mut toks, &mut attrs, &mut ignored);
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim derive: expected variant name, got {other:?}"),
        };
        let shape = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.clone();
                toks.next();
                Shape::Tuple(count_tuple_fields(&g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.clone();
                toks.next();
                Shape::Named(parse_named_fields(&g))
            }
            _ => Shape::Unit,
        };
        // Discriminant values (`= expr`) are not supported; skip the comma.
        if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            toks.next();
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    let mut container = FieldAttrs::default();
    let mut transparent = false;
    skip_attrs(&mut toks, &mut container, &mut transparent);
    skip_vis(&mut toks);
    let kw = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected struct/enum, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected item name, got {other:?}"),
    };
    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic types are not supported (derive target `{name}`)");
    }
    match kw.as_str() {
        "struct" => {
            let shape = match toks.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(&g))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(&g))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                other => panic!("serde shim derive: unexpected struct body: {other:?}"),
            };
            Item::Struct {
                name,
                shape,
                transparent,
            }
        }
        "enum" => {
            let variants = match toks.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_variants(&g)
                }
                other => panic!("serde shim derive: unexpected enum body: {other:?}"),
            };
            Item::Enum { name, variants }
        }
        other => panic!("serde shim derive: cannot derive for `{other}` items"),
    }
}

// ---------------------------------------------------------------------------
// Code generation (string-built, then parsed back into a TokenStream)

fn gen_named_to_value(fields: &[Field], accessor: impl Fn(&Field) -> String) -> String {
    let mut s = String::from("{ let mut __m = serde::Map::new();\n");
    for f in fields {
        s.push_str(&format!(
            "__m.insert({:?}.to_string(), serde::Serialize::to_value({})); \n",
            f.json_name(),
            accessor(f)
        ));
    }
    s.push_str("serde::Value::Object(__m) }");
    s
}

/// Expression that rebuilds one named field from `__obj` (a `&serde::Map`).
fn gen_named_field_expr(f: &Field) -> String {
    let jname = f.json_name();
    if f.attrs.default {
        format!(
            "match __obj.get({jname:?}) {{ \
                Some(__x) => serde::Deserialize::from_value(__x)?, \
                None => Default::default() }}"
        )
    } else {
        // Missing fields go through `from_value(&Null)` so `Option` fields
        // default to `None` even without `#[serde(default)]`.
        format!(
            "match __obj.get({jname:?}) {{ \
                Some(__x) => serde::Deserialize::from_value(__x)?, \
                None => serde::Deserialize::from_value(&serde::Value::Null) \
                    .map_err(|_| serde::Error::msg(concat!(\"missing field `\", {jname:?}, \"`\")))? }}"
        )
    }
}

fn gen_struct(name: &str, shape: &Shape, transparent: bool) -> String {
    let (ser_body, de_body) = match shape {
        Shape::Unit => (
            "serde::Value::Null".to_string(),
            format!("let _ = __v; Ok({name})"),
        ),
        Shape::Tuple(1) => (
            "serde::Serialize::to_value(&self.0)".to_string(),
            format!("Ok({name}(serde::Deserialize::from_value(__v)?))"),
        ),
        Shape::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            let des: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_value(&__a[{i}])?"))
                .collect();
            (
                format!("serde::Value::Array(vec![{}])", elems.join(", ")),
                format!(
                    "let __a = __v.as_array().ok_or_else(|| serde::Error::msg(\
                         concat!(\"expected array for \", {name:?})))?;\n\
                     if __a.len() != {n} {{ return Err(serde::Error::msg(\
                         concat!(\"wrong tuple arity for \", {name:?}))); }}\n\
                     Ok({name}({des}))",
                    des = des.join(", ")
                ),
            )
        }
        Shape::Named(fields) if transparent && fields.len() == 1 => {
            let f = &fields[0].name;
            (
                format!("serde::Serialize::to_value(&self.{f})"),
                format!("Ok({name} {{ {f}: serde::Deserialize::from_value(__v)? }})"),
            )
        }
        Shape::Named(fields) => {
            let ser = gen_named_to_value(fields, |f| format!("&self.{}", f.name));
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{}: {}", f.name, gen_named_field_expr(f)))
                .collect();
            let de = format!(
                "let __obj = __v.as_object().ok_or_else(|| serde::Error::msg(\
                     concat!(\"expected object for \", {name:?})))?;\n\
                 Ok({name} {{ {inits} }})",
                inits = inits.join(",\n")
            );
            (ser, de)
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{ {ser_body} }}\n\
         }}\n\
         impl serde::Deserialize for {name} {{\n\
             fn from_value(__v: &serde::Value) -> Result<{name}, serde::Error> {{\n\
                 {de_body}\n\
             }}\n\
         }}\n"
    )
}

fn gen_enum(name: &str, variants: &[Variant]) -> String {
    // Serialize arms.
    let mut ser_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.shape {
            Shape::Unit => ser_arms.push_str(&format!(
                "{name}::{vn} => serde::Value::String({vn:?}.to_string()),\n"
            )),
            Shape::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let inner = if *n == 1 {
                    "serde::Serialize::to_value(__f0)".to_string()
                } else {
                    let elems: Vec<String> = binds
                        .iter()
                        .map(|b| format!("serde::Serialize::to_value({b})"))
                        .collect();
                    format!("serde::Value::Array(vec![{}])", elems.join(", "))
                };
                ser_arms.push_str(&format!(
                    "{name}::{vn}({binds}) => {{\n\
                         let mut __m = serde::Map::new();\n\
                         __m.insert({vn:?}.to_string(), {inner});\n\
                         serde::Value::Object(__m)\n\
                     }},\n",
                    binds = binds.join(", ")
                ));
            }
            Shape::Named(fields) => {
                let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                let fields_obj = gen_named_to_value(fields, |f| f.name.clone());
                ser_arms.push_str(&format!(
                    "{name}::{vn} {{ {binds} }} => {{\n\
                         let __fields = {fields_obj};\n\
                         let mut __m = serde::Map::new();\n\
                         __m.insert({vn:?}.to_string(), __fields);\n\
                         serde::Value::Object(__m)\n\
                     }},\n",
                    binds = binds.join(", ")
                ));
            }
        }
    }

    // Deserialize: unit variants from a bare string, payload variants from a
    // single-key object (serde's externally-tagged representation).
    let mut unit_arms = String::new();
    let mut tag_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.shape {
            Shape::Unit => {
                unit_arms.push_str(&format!("{vn:?} => return Ok({name}::{vn}),\n"));
                // Also accept {"Variant": null} for symmetry with other tags.
                tag_arms.push_str(&format!(
                    "{vn:?} => {{ let _ = __inner; return Ok({name}::{vn}); }}\n"
                ));
            }
            Shape::Tuple(1) => tag_arms.push_str(&format!(
                "{vn:?} => return Ok({name}::{vn}(serde::Deserialize::from_value(__inner)?)),\n"
            )),
            Shape::Tuple(n) => {
                let des: Vec<String> = (0..*n)
                    .map(|i| format!("serde::Deserialize::from_value(&__a[{i}])?"))
                    .collect();
                tag_arms.push_str(&format!(
                    "{vn:?} => {{\n\
                         let __a = __inner.as_array().ok_or_else(|| serde::Error::msg(\
                             concat!(\"expected array for variant \", {vn:?})))?;\n\
                         if __a.len() != {n} {{ return Err(serde::Error::msg(\
                             concat!(\"wrong arity for variant \", {vn:?}))); }}\n\
                         return Ok({name}::{vn}({des}));\n\
                     }}\n",
                    des = des.join(", ")
                ));
            }
            Shape::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| format!("{}: {}", f.name, gen_named_field_expr(f)))
                    .collect();
                tag_arms.push_str(&format!(
                    "{vn:?} => {{\n\
                         let __obj = __inner.as_object().ok_or_else(|| serde::Error::msg(\
                             concat!(\"expected object for variant \", {vn:?})))?;\n\
                         return Ok({name}::{vn} {{ {inits} }});\n\
                     }}\n",
                    inits = inits.join(",\n")
                ));
            }
        }
    }

    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n\
                 match self {{\n{ser_arms}\n}}\n\
             }}\n\
         }}\n\
         impl serde::Deserialize for {name} {{\n\
             fn from_value(__v: &serde::Value) -> Result<{name}, serde::Error> {{\n\
                 if let Some(__s) = __v.as_str() {{\n\
                     match __s {{\n\
                         {unit_arms}\n\
                         __other => return Err(serde::Error::msg(format!(\
                             \"unknown variant `{{__other}}` of {name}\"))),\n\
                     }}\n\
                 }}\n\
                 if let Some(__obj) = __v.as_object() {{\n\
                     if __obj.len() == 1 {{\n\
                         let (__tag, __inner) = __obj.iter().next().unwrap();\n\
                         match __tag.as_str() {{\n\
                             {tag_arms}\n\
                             __other => return Err(serde::Error::msg(format!(\
                                 \"unknown variant `{{__other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                 }}\n\
                 Err(serde::Error::msg(concat!(\"invalid value for enum \", {name:?})))\n\
             }}\n\
         }}\n"
    )
}

fn generate(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct {
            name,
            shape,
            transparent,
        } => gen_struct(&name, &shape, transparent),
        Item::Enum { name, variants } => gen_enum(&name, &variants),
    };
    code.parse()
        .unwrap_or_else(|e| panic!("serde shim derive: generated code failed to parse: {e:?}"))
}

// `generate` builds both impls; each derive keeps only its own so deriving
// Serialize and Deserialize together doesn't emit duplicates.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    strip_to(generate(input), "Serialize")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    strip_to(generate(input), "Deserialize")
}

/// Keep only the `impl serde::<which> for ...` item from the generated pair.
fn strip_to(ts: TokenStream, which: &str) -> TokenStream {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut out: Vec<TokenTree> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // Each impl is: `impl serde :: Trait for Name { ... }` — find the
        // trait ident two tokens after `impl`'s `serde ::` path.
        let mut j = i;
        let mut keep = false;
        // scan forward to the brace group that ends this impl
        while j < toks.len() {
            if let TokenTree::Ident(id) = &toks[j] {
                if id.to_string() == which {
                    keep = true;
                }
            }
            if let TokenTree::Group(g) = &toks[j] {
                if g.delimiter() == Delimiter::Brace {
                    break;
                }
            }
            j += 1;
        }
        let end = (j + 1).min(toks.len());
        if keep {
            out.extend(toks[i..end].iter().cloned());
        }
        i = end;
    }
    out.into_iter().collect()
}
