//! Offline stand-in for the subset of `crossbeam` that sst-rs uses: MPMC-ish
//! channels with timeouts. Backed by `std::sync::mpsc` with the receiver
//! behind a mutex so `Receiver` can be `Sync` (the parallel engine hands each
//! rank its own receiver, so the lock is uncontended in practice).

pub mod channel {
    use std::sync::mpsc;
    use std::sync::Mutex;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending half (cloneable).
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }
    }

    /// Receiving half. Unlike `mpsc::Receiver`, this is `Sync`, matching
    /// crossbeam's receiver.
    pub struct Receiver<T> {
        inner: Mutex<mpsc::Receiver<T>>,
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.lock().recv()
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.lock().try_recv()
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.lock().recv_timeout(timeout)
        }

        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { rx: self }
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            self.inner.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    /// Iterator over currently-available messages (non-blocking).
    pub struct TryIter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.try_recv().ok()
        }
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender { inner: tx },
            Receiver {
                inner: Mutex::new(rx),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn fifo_order() {
        let (tx, rx) = channel::unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = rx.try_iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn timeout_when_empty() {
        let (tx, rx) = channel::unbounded::<u32>();
        assert!(rx.recv_timeout(Duration::from_millis(1)).is_err());
        drop(tx);
        assert!(matches!(rx.recv(), Err(channel::RecvError)));
    }

    #[test]
    fn cross_thread() {
        let (tx, rx) = channel::unbounded();
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..100u64 {
                    tx.send(i).unwrap();
                }
            });
            let mut sum = 0;
            for _ in 0..100 {
                sum += rx.recv().unwrap();
            }
            assert_eq!(sum, 4950);
        });
    }
}
