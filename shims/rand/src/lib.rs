//! Offline stand-in for the subset of the `rand` crate API that sst-rs uses.
//!
//! The container this repo builds in has no crates.io access, so the real
//! `rand` cannot be fetched. This crate provides a drop-in replacement for
//! the pieces the simulator needs — `rngs::SmallRng`, `Rng::gen`,
//! `Rng::gen_range`, `Rng::gen_bool`, and `SeedableRng::seed_from_u64` —
//! backed by xoshiro256++ seeded through SplitMix64.
//!
//! The stream is *not* bit-compatible with upstream `rand`'s `SmallRng`;
//! nothing in the repo depends on the exact values, only on determinism
//! (same seed ⇒ same stream) and stream independence, both of which hold.

use std::ops::{Range, RangeInclusive};

/// Construct an RNG from seed material. Only the `seed_from_u64` entry point
/// is used by this repo.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that a generator can produce uniformly ("standard distribution").
pub trait Standard: Sized {
    fn from_u64(bits: u64) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn from_u64(bits: u64) -> u64 {
        bits
    }
}
impl Standard for u32 {
    #[inline]
    fn from_u64(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}
impl Standard for u16 {
    #[inline]
    fn from_u64(bits: u64) -> u16 {
        (bits >> 48) as u16
    }
}
impl Standard for u8 {
    #[inline]
    fn from_u64(bits: u64) -> u8 {
        (bits >> 56) as u8
    }
}
impl Standard for usize {
    #[inline]
    fn from_u64(bits: u64) -> usize {
        bits as usize
    }
}
impl Standard for bool {
    #[inline]
    fn from_u64(bits: u64) -> bool {
        bits >> 63 != 0
    }
}
impl Standard for f64 {
    /// Uniform in [0, 1) with 53 random mantissa bits.
    #[inline]
    fn from_u64(bits: u64) -> f64 {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    #[inline]
    fn from_u64(bits: u64) -> f32 {
        (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types `gen_range` can sample uniformly. The type parameter ordering
/// mirrors real rand's `gen_range<T, R: SampleRange<T>>` so the *output*
/// type drives inference of untyped range literals (`1 + rng.gen_range(0..20)`
/// in a `u64` context makes the range `Range<u64>`).
pub trait SampleUniform: Sized {
    fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open(lo: $t, hi: $t, rng: &mut dyn RngCore) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            #[inline]
            fn sample_inclusive(lo: $t, hi: $t, rng: &mut dyn RngCore) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_half_open(lo: f64, hi: f64, rng: &mut dyn RngCore) -> f64 {
        lo + f64::from_u64(rng.next_u64()) * (hi - lo)
    }
    #[inline]
    fn sample_inclusive(lo: f64, hi: f64, rng: &mut dyn RngCore) -> f64 {
        lo + f64::from_u64(rng.next_u64()) * (hi - lo)
    }
}

/// A range a `T` can be drawn from.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// User-facing convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }

    #[inline]
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and deterministic. Stands in for
    /// `rand::rngs::SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut st = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut st);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            SmallRng { s }
        }
    }

    impl SmallRng {
        /// Raw generator state, for checkpoint/restore.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a state captured by [`SmallRng::state`].
        /// An all-zero state would be a fixed point of xoshiro256++, so it is
        /// remapped exactly the way seeding does.
        pub fn from_state(mut s: [u64; 4]) -> SmallRng {
            if s == [0; 4] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0usize..=3);
            assert!(w <= 3);
        }
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn state_round_trips() {
        let mut a = SmallRng::seed_from_u64(42);
        for _ in 0..17 {
            a.gen::<u64>();
        }
        let mut b = SmallRng::from_state(a.state());
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        // The all-zero fixed point is remapped, not silently accepted.
        let mut z = SmallRng::from_state([0; 4]);
        assert_ne!(z.gen::<u64>(), 0);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(3);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
