//! Offline stand-in for the subset of `parking_lot` that sst-rs uses:
//! `Mutex`/`RwLock` with infallible, non-poisoning lock methods, backed by
//! the std primitives.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// `parking_lot::Mutex`: like `std::sync::Mutex` but `lock()` returns the
/// guard directly (no poisoning).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// `parking_lot::RwLock` with non-poisoning `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
