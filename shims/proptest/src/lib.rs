//! Offline stand-in for the subset of `proptest` that sst-rs uses.
//!
//! The real proptest does guided generation plus shrinking; this shim does
//! straightforward randomized testing: each `#[test]` inside [`proptest!`]
//! runs `cases` times with inputs drawn from the argument strategies, using
//! an RNG seeded deterministically from the test's path and the case index,
//! so failures reproduce exactly across runs. No shrinking — the failing
//! inputs are printed instead.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Why a test case did not pass: a real failure, or a rejected
/// (`prop_assume!`) input that should simply be skipped.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Runner configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic per-case RNG (SplitMix64 over a hash of test path + case).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_case(test_path: &str, case: u32) -> TestRng {
        // FNV-1a over the path, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15)),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// A value generator. `generate` draws one value; no shrinking.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `any::<T>()` support: a full-domain generator for `T`.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() >> 63 != 0
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Strategy produced by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Always produces a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5)
);

/// Size specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}
impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi: r.end() + 1,
        }
    }
}
impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(self.size.lo < self.size.hi, "empty size range");
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, VecStrategy};

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// `prop::` module path compatibility (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
        Any, Just, ProptestConfig, SizeRange, Strategy, TestCaseError, TestRng,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if !(*__l == *__r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                __l,
                __r
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if !(*__l == *__r) {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if *__l == *__r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                __l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// The test-suite macro: expands each contained `#[test] fn` into a plain
/// `#[test]` that loops over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])+
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let __path = concat!(module_path!(), "::", stringify!($name));
                let mut __rejected = 0u32;
                let mut __case = 0u32;
                let mut __ran = 0u32;
                while __ran < __cfg.cases {
                    let mut __rng = $crate::TestRng::for_case(__path, __case);
                    __case += 1;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __desc = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)+),
                        $(&$arg),+
                    );
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    match __result {
                        Ok(()) => __ran += 1,
                        Err($crate::TestCaseError::Reject(_)) => {
                            __rejected += 1;
                            assert!(
                                __rejected < __cfg.cases * 16 + 256,
                                "proptest: too many rejected inputs in {}",
                                __path
                            );
                        }
                        Err($crate::TestCaseError::Fail(__msg)) => {
                            panic!(
                                "proptest case {} of {} failed: {}\n  inputs: {}",
                                __case, __path, __msg, __desc
                            );
                        }
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])+
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])+
                fn $name( $($arg in $strat),+ ) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case("x::y", 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case("x::y", 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = TestRng::for_case("x::y", 4);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respected(x in 5u64..10, v in collection::vec(0u32..4, 1..9)) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 9);
            for e in &v {
                prop_assert!(*e < 4, "element {e} out of range");
            }
        }

        #[test]
        fn tuples_and_any(t in (0i64..100, any::<bool>()), y in any::<u32>()) {
            let (a, _b) = t;
            prop_assert!((0..100).contains(&a));
            let _ = y;
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n > 0);
            prop_assert!(n >= 1);
        }
    }
}
