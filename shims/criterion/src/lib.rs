//! Offline stand-in for the subset of the `criterion` benchmark API that
//! sst-rs uses. It really measures (warmup, then a timed batch sized from
//! the warmup estimate) but does none of criterion's statistics, HTML
//! reports, or baseline comparison — results are printed to stdout as
//! `name ... time: <t>/iter`.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

const WARMUP: Duration = Duration::from_millis(60);
const MEASURE: Duration = Duration::from_millis(240);

/// Work-rate annotation: printed as elements (or bytes) per second.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier with a parameter, e.g. `name/4`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl Display) -> BenchmarkId {
        BenchmarkId {
            full: format!("{}/{}", name.into(), param),
        }
    }

    pub fn from_parameter(param: impl Display) -> BenchmarkId {
        BenchmarkId {
            full: param.to_string(),
        }
    }
}

/// Passed to the benchmark closure; `iter` runs and times the routine.
pub struct Bencher {
    samples: Option<(u64, Duration)>,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: estimate the per-iteration cost.
        let t0 = Instant::now();
        let mut warm_iters = 0u64;
        while t0.elapsed() < WARMUP {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter_ns = (t0.elapsed().as_nanos() as u64 / warm_iters.max(1)).max(1);

        // Measured batch sized to roughly MEASURE.
        let n = (MEASURE.as_nanos() as u64 / per_iter_ns).clamp(1, 10_000_000);
        let t1 = Instant::now();
        for _ in 0..n {
            black_box(routine());
        }
        self.samples = Some((n, t1.elapsed()));
    }
}

fn fmt_duration(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_one(name: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { samples: None };
    f(&mut b);
    match b.samples {
        Some((iters, elapsed)) => {
            let ns = elapsed.as_nanos() as f64 / iters as f64;
            let mut line = format!(
                "{name:<48} time: {:>12}/iter  ({iters} iters)",
                fmt_duration(ns)
            );
            if let Some(tp) = throughput {
                let (count, unit) = match tp {
                    Throughput::Elements(n) => (n, "elem"),
                    Throughput::Bytes(n) => (n, "B"),
                };
                let rate = count as f64 / (ns / 1e9);
                line.push_str(&format!("  {rate:.3e} {unit}/s"));
            }
            println!("{line}");
        }
        None => println!("{name:<48} (no measurement: bencher closure never called iter)"),
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Criterion's sample count; this harness sizes batches by wall time, so
    /// it is accepted and ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into());
        run_one(&name, self.throughput, &mut f);
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.full);
        run_one(&name, self.throughput, &mut |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

/// The harness entry point handed to each benchmark function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _parent: self,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&id.into(), None, &mut f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { samples: None };
        b.iter(|| std::hint::black_box(3u64 * 7));
        let (iters, elapsed) = b.samples.unwrap();
        assert!(iters >= 1);
        assert!(elapsed.as_nanos() > 0);
    }

    #[test]
    fn group_chains() {
        let mut c = Criterion::default();
        c.benchmark_group("shim")
            .sample_size(10)
            .throughput(Throughput::Elements(10))
            .bench_function("noop", |b| b.iter(|| 1u32 + 1));
    }
}
