//! Offline stand-in for the subset of `serde` that sst-rs uses.
//!
//! The build container has no crates.io access, so the real serde cannot be
//! fetched. This crate keeps the same *surface* the repo relies on —
//! `Serialize`/`Deserialize` traits, `#[derive(Serialize, Deserialize)]`,
//! and the `#[serde(rename/default/transparent)]` attributes — but maps
//! everything through a single JSON-shaped [`Value`] data model instead of
//! serde's generic visitor machinery. `serde_json` (also shimmed in-tree)
//! re-exports [`Value`] and adds the text format.

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Deserialization/serialization error: a plain message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn msg(m: impl Into<String>) -> Error {
        Error { msg: m.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A JSON number: unsigned, signed, or floating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Number(N);

#[derive(Debug, Clone, Copy, PartialEq)]
enum N {
    U(u64),
    I(i64),
    F(f64),
}

impl Number {
    pub fn from_u64(v: u64) -> Number {
        Number(N::U(v))
    }
    pub fn from_i64(v: i64) -> Number {
        if v >= 0 {
            Number(N::U(v as u64))
        } else {
            Number(N::I(v))
        }
    }
    pub fn from_f64(v: f64) -> Number {
        Number(N::F(v))
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            N::U(v) => Some(v),
            N::I(v) if v >= 0 => Some(v as u64),
            N::F(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }
    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            N::U(v) if v <= i64::MAX as u64 => Some(v as i64),
            N::I(v) => Some(v),
            N::F(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 => {
                Some(v as i64)
            }
            _ => None,
        }
    }
    pub fn as_f64(&self) -> Option<f64> {
        match self.0 {
            N::U(v) => Some(v as f64),
            N::I(v) => Some(v as f64),
            N::F(v) => Some(v),
        }
    }
    pub fn is_f64(&self) -> bool {
        matches!(self.0, N::F(_))
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            N::U(v) => write!(f, "{v}"),
            N::I(v) => write!(f, "{v}"),
            N::F(v) => {
                if v.is_finite() {
                    // Keep a trailing ".0" on integral floats so the value
                    // round-trips as a float, matching serde_json.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    // serde_json serializes non-finite floats as null.
                    write!(f, "null")
                }
            }
        }
    }
}

/// An insertion-ordered string-keyed map of values (a JSON object).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Map {
        Map::default()
    }

    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, (String, Value)>,
        fn(&'a (String, Value)) -> (&'a String, &'a Value),
    >;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl IntoIterator for Map {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Map {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// A JSON-shaped dynamic value, the common data model for the in-tree serde
/// stand-ins.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Value {
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Render as compact JSON text (also the `Display` form).
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        write_json(self, &mut out, None, 0);
        out
    }

    /// Render as pretty JSON text with two-space indentation.
    pub fn to_json_string_pretty(&self) -> String {
        let mut out = String::new();
        write_json(self, &mut out, Some(2), 0);
        out
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_json(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    let nl = |out: &mut String, depth: usize| {
        if let Some(w) = indent {
            out.push('\n');
            for _ in 0..w * depth {
                out.push(' ');
            }
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_escaped(s, out),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, x) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                nl(out, depth + 1);
                write_json(x, out, indent, depth + 1);
            }
            nl(out, depth);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, x)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                nl(out, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_json(x, out, indent, depth + 1);
            }
            nl(out, depth);
            out.push('}');
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json_string())
    }
}

// ---------------------------------------------------------------------------
// From conversions into Value (used by Params::set and the json! macro).

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::from_f64(v))
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::from_f64(v as f64))
    }
}
macro_rules! value_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number::from_u64(v as u64)) }
        }
    )*};
}
value_from_uint!(u8, u16, u32, u64, usize);
macro_rules! value_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number::from_i64(v as i64)) }
        }
    )*};
}
value_from_int!(i8, i16, i32, i64, isize);
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

// ---------------------------------------------------------------------------
// The traits.

/// Convert a value into the JSON-shaped data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Reconstruct a value from the JSON-shaped data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, Error> {
        v.as_bool()
            .ok_or_else(|| Error::msg(format!("expected bool, got {v}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::msg(format!("expected string, got {v}")))
    }
}
impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
// `&'static str` fields (e.g. registry tables) can only be rebuilt from JSON
// by leaking; acceptable for the small static tables this repo round-trips
// in tests.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<&'static str, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::msg(format!("expected string, got {v}")))?;
        Ok(Box::leak(s.to_string().into_boxed_str()))
    }
}

macro_rules! serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Number(Number::from_u64(*self as u64)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let n = v.as_u64()
                    .ok_or_else(|| Error::msg(format!("expected unsigned integer, got {v}")))?;
                <$t>::try_from(n).map_err(|_| Error::msg(format!("integer {n} out of range")))
            }
        }
    )*};
}
serde_uint!(u8, u16, u32, u64, usize);

macro_rules! serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Number(Number::from_i64(*self as i64)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let n = v.as_i64()
                    .ok_or_else(|| Error::msg(format!("expected integer, got {v}")))?;
                <$t>::try_from(n).map_err(|_| Error::msg(format!("integer {n} out of range")))
            }
        }
    )*};
}
serde_int!(i8, i16, i32, i64, isize);

// 128-bit integers fall back to f64 when they exceed the JSON-safe u64/i64
// range; the only such field in-tree (a latency sum in picoseconds) stays
// well under 2^64 in practice.
impl Serialize for u128 {
    fn to_value(&self) -> Value {
        match u64::try_from(*self) {
            Ok(v) => Value::Number(Number::from_u64(v)),
            Err(_) => Value::Number(Number::from_f64(*self as f64)),
        }
    }
}
impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<u128, Error> {
        if let Some(n) = v.as_u64() {
            return Ok(n as u128);
        }
        match v.as_f64() {
            Some(f) if f >= 0.0 => Ok(f as u128),
            _ => Err(Error::msg(format!("expected unsigned integer, got {v}"))),
        }
    }
}
impl Serialize for i128 {
    fn to_value(&self) -> Value {
        match i64::try_from(*self) {
            Ok(v) => Value::Number(Number::from_i64(v)),
            Err(_) => Value::Number(Number::from_f64(*self as f64)),
        }
    }
}
impl Deserialize for i128 {
    fn from_value(v: &Value) -> Result<i128, Error> {
        if let Some(n) = v.as_i64() {
            return Ok(n as i128);
        }
        v.as_f64()
            .map(|f| f as i128)
            .ok_or_else(|| Error::msg(format!("expected integer, got {v}")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, Error> {
        v.as_f64()
            .ok_or_else(|| Error::msg(format!("expected number, got {v}")))
    }
}
impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self as f64))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, Error> {
        v.as_array()
            .ok_or_else(|| Error::msg(format!("expected array, got {v}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! serde_tuple {
    ($(($($t:ident . $idx:tt),+)),*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v
                    .as_array()
                    .ok_or_else(|| Error::msg(format!("expected array, got {v}")))?;
                let n = [$($idx),+].len();
                if a.len() != n {
                    return Err(Error::msg(format!(
                        "expected {n}-tuple, got {} elements",
                        a.len()
                    )));
                }
                Ok(($($t::from_value(&a[$idx])?,)+))
            }
        }
    )*};
}
serde_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::msg(format!("expected object, got {v}")))?;
        obj.iter()
            .map(|(k, x)| V::from_value(x).map(|x| (k.clone(), x)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_kinds() {
        assert_eq!(Number::from_u64(7).as_u64(), Some(7));
        assert_eq!(Number::from_i64(-3).as_i64(), Some(-3));
        assert_eq!(Number::from_i64(-3).as_u64(), None);
        assert_eq!(Number::from_f64(2.5).as_f64(), Some(2.5));
        assert_eq!(Number::from_f64(4.0).as_u64(), Some(4));
        assert_eq!(Number::from_u64(9).to_string(), "9");
        assert_eq!(Number::from_f64(2.0).to_string(), "2.0");
    }

    #[test]
    fn map_preserves_insertion_order() {
        let mut m = Map::new();
        m.insert("z".into(), Value::from(1u64));
        m.insert("a".into(), Value::from(2u64));
        let keys: Vec<&String> = m.keys().collect();
        assert_eq!(keys, ["z", "a"]);
        m.insert("z".into(), Value::from(3u64));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get("z").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn display_is_compact_json() {
        let mut m = Map::new();
        m.insert("a".into(), Value::from(1u64));
        m.insert(
            "b".into(),
            Value::Array(vec![Value::Bool(true), Value::Null]),
        );
        let v = Value::Object(m);
        assert_eq!(v.to_string(), r#"{"a":1,"b":[true,null]}"#);
    }

    #[test]
    fn option_roundtrip() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::from_value(&Value::from(5u64)).unwrap(),
            Some(5)
        );
        assert_eq!(Some(5u32).to_value(), Value::from(5u64));
        assert_eq!(Option::<u32>::None.to_value(), Value::Null);
    }

    #[test]
    fn string_escapes() {
        let v = Value::String("a\"b\\c\nd".into());
        assert_eq!(v.to_string(), r#""a\"b\\c\nd""#);
    }
}
