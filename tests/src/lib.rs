//! Shared helpers for the cross-crate integration tests (see `tests/`).
