//! Differential transport guarantees: the transport backend moves bytes,
//! never semantics. The pdes token-traffic torus must produce bit-identical
//! results — same report, same stats, same sealed state hash, same snapshot
//! *bytes* — whether cross-rank events travel by shared-memory channel or
//! by length-prefixed TCP-loopback frames, at every rank count and under
//! both epoch-sync policies, including checkpoint/restore round-trips that
//! cross from one transport to the other.

use sst_core::prelude::*;
use sst_sim::experiments::pdes;

/// Everything in a report except machine-dependent fields (wall clock) and
/// run-shape fields (ranks/epochs), with stats sorted by key, plus the
/// sealed final state hash.
fn fingerprint(report: &SimReport) -> (SimTime, u64, u64, Vec<String>, Option<String>) {
    let mut stats: Vec<String> = report
        .stats
        .stats
        .iter()
        .map(|s| serde_json::to_string(s).expect("stat serializes"))
        .collect();
    stats.sort();
    (
        report.end_time,
        report.events,
        report.clock_ticks,
        stats,
        report.final_state_hash.clone(),
    )
}

fn pdes_params() -> pdes::Params {
    let mut p = pdes::Params::quick();
    p.side = 6;
    p.tokens_per_node = 3;
    p.ttl = 40;
    p
}

const EVERY: SimTime = SimTime(200_000); // 200 ns of simulated time

fn config(ranks: u32, transport: TransportKind, sync: SyncMode) -> ParallelConfig {
    ParallelConfig {
        ranks,
        transport,
        sync,
        ..ParallelConfig::default()
    }
}

/// Run the torus on the given transport/sync at `ranks`, checkpointing on
/// the shared cadence.
fn parallel_run(
    p: &pdes::Params,
    ranks: u32,
    transport: TransportKind,
    sync: SyncMode,
) -> (SimReport, Vec<Snapshot>) {
    let mut snaps = Vec::new();
    let report = ParallelEngine::with_config(pdes::build(p), config(ranks, transport, sync))
        .run_with_checkpoints(RunLimit::Exhaust, Some(EVERY), None, &mut |s| snaps.push(s));
    (report, snaps)
}

#[test]
fn every_transport_and_sync_matches_serial_at_2_4_8_ranks() {
    let p = pdes_params();
    let serial =
        Engine::with_telemetry(pdes::build(&p), TelemetrySpec::disabled()).run(RunLimit::Exhaust);
    assert!(serial.events > 1000, "workload too small to be probative");
    for &ranks in &[2u32, 4, 8] {
        for &transport in TransportKind::ALL {
            for &sync in SyncMode::ALL {
                let report =
                    ParallelEngine::with_config(pdes::build(&p), config(ranks, transport, sync))
                        .run(RunLimit::Exhaust);
                assert_eq!(
                    fingerprint(&report),
                    fingerprint(&serial),
                    "{ranks} ranks over {transport}/{sync} diverged from serial"
                );
            }
        }
    }
}

#[test]
fn snapshot_bytes_are_identical_across_transports() {
    let p = pdes_params();
    for &ranks in &[2u32, 4, 8] {
        let (shm_report, shm_snaps) =
            parallel_run(&p, ranks, TransportKind::SharedMem, SyncMode::Adaptive);
        let (tcp_report, tcp_snaps) =
            parallel_run(&p, ranks, TransportKind::TcpLoopback, SyncMode::Adaptive);
        assert_eq!(fingerprint(&shm_report), fingerprint(&tcp_report));
        assert!(
            shm_snaps.len() >= 3,
            "workload too short to checkpoint: {} snapshot(s)",
            shm_snaps.len()
        );
        assert_eq!(shm_snaps.len(), tcp_snaps.len());
        for (a, b) in shm_snaps.iter().zip(&tcp_snaps) {
            assert_eq!(a.time_ps, b.time_ps);
            assert_eq!(
                a.to_json_pretty(),
                b.to_json_pretty(),
                "snapshot bytes diverged between transports at t={} ({ranks} ranks)",
                a.time_ps
            );
        }
    }
}

/// A snapshot captured under one transport resumes under the other (and
/// under serial) and still lands on the uninterrupted run bit-exactly.
#[test]
fn checkpoint_round_trips_cross_transports() {
    let p = pdes_params();
    // The hash-carrying run variant, so the sealed final hash participates
    // in every comparison below.
    let baseline = Engine::with_telemetry(pdes::build(&p), TelemetrySpec::disabled())
        .run_with_checkpoints(RunLimit::Exhaust, None, None, &mut |_| {});
    for &capture in TransportKind::ALL {
        let (_, snaps) = parallel_run(&p, 4, capture, SyncMode::Adaptive);
        let mid = &snaps[snaps.len() / 2];
        for &resume in TransportKind::ALL {
            for &ranks in &[2u32, 8] {
                let resumed = ParallelEngine::with_config(
                    pdes::build(&p),
                    config(ranks, resume, SyncMode::Adaptive),
                )
                .restore(mid)
                .run_with_checkpoints(RunLimit::Exhaust, None, None, &mut |_| {});
                assert_eq!(
                    fingerprint(&resumed),
                    fingerprint(&baseline),
                    "capture on {capture}, resume on {resume} at {ranks} ranks \
                     diverged from t={}",
                    mid.time_ps
                );
            }
        }
        let resumed = Engine::restore(pdes::build(&p), TelemetrySpec::disabled(), mid)
            .run_with_checkpoints(RunLimit::Exhaust, None, None, &mut |_| {});
        assert_eq!(
            fingerprint(&resumed),
            fingerprint(&baseline),
            "capture on {capture}, serial resume diverged"
        );
    }
}
