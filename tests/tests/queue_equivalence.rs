//! Differential guarantees for the two-level indexed event queue: under
//! arbitrary interleavings of pushes and pops — duplicate timestamps
//! included — it must be observationally identical to the reference binary
//! heap, and a full engine run over either queue must serialize to the
//! byte-identical report.

use proptest::prelude::*;
use sst_core::engine::{EngineOn, HeapEngine};
use sst_core::event::{
    ComponentId, EventClass, EventKind, PayloadSlot, PortId, ScheduledEvent, TieBreak,
};
use sst_core::prelude::*;
use sst_core::queue::{BinaryHeapQueue, IndexedQueue};

fn ev(t: u64, clock: bool, src: u32, seq: u64) -> ScheduledEvent {
    ScheduledEvent {
        time: SimTime::ps(t),
        class: if clock {
            EventClass::Clock
        } else {
            EventClass::Message
        },
        tie: TieBreak {
            src: ComponentId(src),
            seq,
        },
        target: ComponentId(0),
        kind: EventKind::Message {
            port: PortId(0),
            payload: PayloadSlot::new(()),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random push/pop interleavings. Time deltas are drawn from a tiny
    /// range so duplicate timestamps (the tie-break-sensitive case) are
    /// common, and occasionally spiked far ahead to cross the indexed
    /// queue's near-future window.
    #[test]
    fn indexed_queue_pops_exactly_like_heap_queue(
        pushes in prop::collection::vec((0u64..40, any::<bool>(), 0u32..6, 0u64..3), 1..300),
    ) {
        let mut heap = BinaryHeapQueue::new();
        let mut indexed = IndexedQueue::new();
        let mut last_popped = 0u64;
        for (i, &(dt, clock, src, action)) in pushes.iter().enumerate() {
            // Engine invariant: never schedule below the last popped time.
            // Spike every 13th event ~2 windows ahead to exercise the far
            // heap and window jumps.
            let spike = if i % 13 == 0 { 2_200_000 } else { 0 };
            let t = last_popped + dt + spike;
            heap.push(ev(t, clock, src, i as u64));
            indexed.push(ev(t, clock, src, i as u64));
            if action == 0 {
                let (a, b) = (heap.pop(), indexed.pop());
                prop_assert!(a.is_some() && b.is_some());
                let (a, b) = (a.unwrap(), b.unwrap());
                prop_assert_eq!(a.key(), b.key());
                last_popped = a.time.as_ps();
            }
        }
        loop {
            match (heap.pop(), indexed.pop()) {
                (None, None) => break,
                (Some(a), Some(b)) => prop_assert_eq!(a.key(), b.key()),
                (a, b) => prop_assert!(
                    false,
                    "queues drained unevenly: heap={:?} indexed={:?}",
                    a.map(|e| e.key()),
                    b.map(|e| e.key())
                ),
            }
        }
        prop_assert!(heap.is_empty() && indexed.is_empty());
    }

    /// The bounded pops must agree too, including the "nothing eligible"
    /// case where only one side advancing its window would reorder later
    /// arrivals.
    #[test]
    fn bounded_pops_agree(
        pushes in prop::collection::vec((0u64..2_000, any::<bool>(), 0u32..4), 1..120),
        limit_step in 1u64..3_000,
    ) {
        let mut heap = BinaryHeapQueue::new();
        let mut indexed = IndexedQueue::new();
        for (i, &(t, clock, src)) in pushes.iter().enumerate() {
            heap.push(ev(t, clock, src, i as u64));
            indexed.push(ev(t, clock, src, i as u64));
        }
        let mut limit = 0u64;
        while !heap.is_empty() || !indexed.is_empty() {
            limit += limit_step;
            prop_assert_eq!(heap.next_time(), indexed.next_time());
            loop {
                let (a, b) = (
                    heap.pop_before(SimTime::ps(limit)),
                    indexed.pop_before(SimTime::ps(limit)),
                );
                match (a, b) {
                    (None, None) => break,
                    (Some(a), Some(b)) => prop_assert_eq!(a.key(), b.key()),
                    _ => prop_assert!(false, "pop_before disagreed at limit {}", limit),
                }
            }
            let (a, b) = (
                heap.pop_until(SimTime::ps(limit)),
                indexed.pop_until(SimTime::ps(limit)),
            );
            match (a, b) {
                (None, None) => {}
                (Some(a), Some(b)) => prop_assert_eq!(a.key(), b.key()),
                _ => prop_assert!(false, "pop_until disagreed at limit {}", limit),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Whole-engine equivalence: byte-identical reports.
// ---------------------------------------------------------------------------

/// Forwards tokens through randomly chosen ports, mixing the component rng
/// into a checksum so any difference in delivery order changes the stats.
struct Mixer {
    fanout: u16,
    tokens: u32,
    hops: u32,
    checksum: Option<StatId>,
}

#[derive(Debug)]
struct Tok(u32, u64);

impl Component for Mixer {
    fn setup(&mut self, ctx: &mut SimCtx<'_>) {
        self.checksum = Some(ctx.stat_counter("checksum"));
        for i in 0..self.tokens {
            let port = PortId(i as u16 % self.fanout);
            ctx.send(port, Tok(self.hops, i as u64 + 1));
        }
    }
    fn on_event(&mut self, _port: PortId, payload: PayloadSlot, ctx: &mut SimCtx<'_>) {
        let tok = downcast::<Tok>(payload);
        let r: u64 = rand::Rng::gen(ctx.rng());
        ctx.add_stat(
            self.checksum.unwrap(),
            (r ^ tok.1).wrapping_mul(0x9E37) % 2003,
        );
        if tok.0 > 0 {
            let port = PortId(rand::Rng::gen::<u16>(ctx.rng()) % self.fanout);
            ctx.send(port, Tok(tok.0 - 1, tok.1));
        }
    }
}

/// A ring over `n` mixers with all ports paired, shifted by a seed-derived
/// stride so different seeds give different wiring.
fn build(seed: u64, n: u16) -> SystemBuilder {
    let fanout = 4u16;
    let mut b = SystemBuilder::new();
    b.seed(seed);
    let ids: Vec<ComponentId> = (0..n)
        .map(|i| {
            b.add(
                format!("m{i}"),
                Mixer {
                    fanout,
                    tokens: 3,
                    hops: 25,
                    checksum: None,
                },
            )
        })
        .collect();
    for p in 0..fanout {
        let shift = 1 + (seed as usize + p as usize) % (n as usize - 1);
        for i in 0..n as usize {
            let j = (i + shift) % n as usize;
            let latency = SimTime::ns(1 + (seed ^ p as u64) % 9);
            b.link((ids[i], PortId(p)), (ids[j], PortId(p + fanout)), latency);
        }
    }
    b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Same seed, same system: the engine over the indexed queue and the
    /// engine over the reference heap must produce reports that serialize
    /// to the same bytes (wall-clock time and the queue-backend tag
    /// excepted — one is a measurement, the other a record of the
    /// configuration under test, not simulation output).
    #[test]
    fn reports_byte_identical_across_queues(seed in 0u64..1_000_000, n in 3u16..12) {
        let mut indexed = EngineOn::<IndexedQueue>::new(build(seed, n)).run(RunLimit::Exhaust);
        let mut heap = HeapEngine::new(build(seed, n)).run(RunLimit::Exhaust);
        indexed.wall_seconds = 0.0;
        heap.wall_seconds = 0.0;
        indexed.queue_backend = None;
        heap.queue_backend = None;
        let a = serde_json::to_string(&indexed).expect("serialize");
        let b = serde_json::to_string(&heap).expect("serialize");
        prop_assert_eq!(a, b);
    }
}
