//! Full-system integration: processor + cache + memory component chains
//! assembled three ways — programmatically, from JSON configs, and across
//! parallel ranks — must all tell the same story.

use sst_core::prelude::*;
use sst_cpu::components::CoreComponent;
use sst_cpu::isa::{AddrPattern, KernelSpec};
use sst_mem::components::{CacheComponent, MemoryComponent};
use sst_mem::{CacheConfig, DramConfig};
use sst_sim::full_registry;

fn kernel(iters: u64, span: u64, seed: u64) -> KernelSpec {
    KernelSpec {
        label: "k".into(),
        iters,
        loads: 2,
        stores: 1,
        flops: 4,
        ialu: 2,
        flop_dep: 0,
        load_pattern: AddrPattern::Stream {
            base: 0,
            stride: 64,
            span,
        },
        store_pattern: AddrPattern::Stream {
            base: 1 << 30,
            stride: 64,
            span,
        },
        mispredict_every: 0,
        seed,
    }
}

/// One core -> L1 -> L2 -> DRAM, wired by hand.
fn chain_system(span: u64) -> SystemBuilder {
    let mut b = SystemBuilder::new();
    let l2 = b.add(
        "l2",
        CacheComponent::new(CacheConfig::l2_256k(), SimTime::ns(3)),
    );
    let mem = b.add("mem", MemoryComponent::new(DramConfig::ddr3_1333(2)));
    b.link(
        (l2, CacheComponent::MEM),
        (mem, MemoryComponent::BUS),
        SimTime::ns(5),
    );
    let cpu0 = b.add(
        "cpu0",
        CoreComponent::new(
            Box::new(kernel(400, span, 1).stream()),
            Frequency::ghz(2.0),
            2,
        ),
    );
    let l1a = b.add(
        "l1a",
        CacheComponent::new(CacheConfig::l1d_32k(), SimTime::ns(1)),
    );
    b.link(
        (cpu0, CoreComponent::MEM),
        (l1a, CacheComponent::CPU),
        SimTime::ns(1),
    );
    b.link(
        (l1a, CacheComponent::MEM),
        (l2, CacheComponent::CPU),
        SimTime::ns(2),
    );
    b
}

#[test]
fn three_level_chain_counts_consistent() {
    let report = Engine::new(chain_system(1 << 22)).run(RunLimit::Exhaust);
    let mem_ops = report.stats.counter("cpu0", "mem_ops");
    assert_eq!(mem_ops, 400 * 3);
    let l1_total = report.stats.counter("l1a", "hits") + report.stats.counter("l1a", "misses");
    assert_eq!(l1_total, mem_ops);
    // Everything the L2 saw came from L1 misses (demand fetches +
    // write-backs).
    let l2_total = report.stats.counter("l2", "hits") + report.stats.counter("l2", "misses");
    assert!(l2_total >= report.stats.counter("l1a", "misses"));
    // DRAM saw every L2 miss.
    assert!(
        report.stats.counter("mem", "reads") + report.stats.counter("mem", "writes")
            >= report.stats.counter("l2", "misses")
    );
}

#[test]
fn hot_working_set_stays_out_of_dram() {
    let hot = Engine::new(chain_system(8 << 10)).run(RunLimit::Exhaust);
    let cold = Engine::new(chain_system(16 << 20)).run(RunLimit::Exhaust);
    let dram = |r: &SimReport| r.stats.counter("mem", "reads");
    assert!(
        dram(&hot) * 4 < dram(&cold),
        "{} vs {}",
        dram(&hot),
        dram(&cold)
    );
    assert!(hot.end_time < cold.end_time);
}

#[test]
fn parallel_full_system_identical_to_serial() {
    let serial = Engine::new(chain_system(1 << 20)).run(RunLimit::Exhaust);
    for ranks in [2u32, 3] {
        let par = ParallelEngine::new(chain_system(1 << 20), ranks).run(RunLimit::Exhaust);
        assert_eq!(par.end_time, serial.end_time, "ranks={ranks}");
        for (owner, stat) in [
            ("cpu0", "mem_ops"),
            ("l1a", "hits"),
            ("l1a", "misses"),
            ("l2", "hits"),
            ("l2", "misses"),
            ("mem", "reads"),
            ("mem", "writes"),
        ] {
            assert_eq!(
                par.stats.counter(owner, stat),
                serial.stats.counter(owner, stat),
                "ranks={ranks} {owner}.{stat}"
            );
        }
    }
}

#[test]
fn json_config_matches_programmatic_build() {
    let json = r#"{
        "seed": 99,
        "components": [
            {"name": "cpu0", "type": "cpu.stream_core",
             "params": {"iters": 300, "span": 4194304, "stride": 8, "ghz": 2.0, "issue_width": 2}},
            {"name": "l1", "type": "mem.cache",
             "params": {"size_bytes": 32768, "assoc": 8, "latency_ns": 1.0}},
            {"name": "mem", "type": "mem.dram", "params": {"preset": "ddr3_1333", "channels": 2}}
        ],
        "links": [
            {"from": "cpu0.mem", "to": "l1.cpu", "latency_ns": 1.0},
            {"from": "l1.mem", "to": "mem.bus", "latency_ns": 5.0}
        ]
    }"#;
    let cfg = SystemConfig::from_json(json).unwrap();
    let report = Engine::new(cfg.build(&full_registry()).unwrap()).run(RunLimit::Exhaust);
    assert_eq!(report.stats.counter("cpu0", "mem_ops"), 300 * 3);
    assert!(report.stats.counter("l1", "hits") > 0);
    assert!(report.stats.counter("mem", "reads") > 0);
}

#[test]
fn config_driven_run_respects_time_limit() {
    let json = r#"{
        "components": [
            {"name": "cpu0", "type": "cpu.stream_core", "params": {"iters": 100000000}},
            {"name": "l1", "type": "mem.cache", "params": {}},
            {"name": "mem", "type": "mem.dram", "params": {}}
        ],
        "links": [
            {"from": "cpu0.mem", "to": "l1.cpu", "latency_ns": 1.0},
            {"from": "l1.mem", "to": "mem.bus", "latency_ns": 5.0}
        ]
    }"#;
    let cfg = SystemConfig::from_json(json).unwrap();
    let report =
        Engine::new(cfg.build(&full_registry()).unwrap()).run(RunLimit::Until(SimTime::us(50)));
    assert_eq!(report.end_time, SimTime::us(50));
    assert!(report.events > 0);
}
