//! Cross-crate determinism guarantees: the parallel engine must be
//! bit-identical to the serial engine on arbitrary component graphs, and
//! everything must be reproducible from the seed.

use proptest::prelude::*;
use sst_core::prelude::*;

/// A component that forwards counters over a random (but
/// deterministically generated) set of links.
struct Hopper {
    fanout: u16,
    hops_left_init: u32,
    tokens: u32,
    received: Option<StatId>,
    checksum: Option<StatId>,
}

#[derive(Debug)]
struct Tok {
    hops_left: u32,
    value: u64,
}

impl Component for Hopper {
    fn setup(&mut self, ctx: &mut SimCtx<'_>) {
        self.received = Some(ctx.stat_counter("received"));
        self.checksum = Some(ctx.stat_counter("checksum"));
        for i in 0..self.tokens {
            let port = PortId((i as u16) % self.fanout);
            ctx.send(
                port,
                Tok {
                    hops_left: self.hops_left_init,
                    value: i as u64 + 1,
                },
            );
        }
    }

    fn on_event(&mut self, _port: PortId, payload: PayloadSlot, ctx: &mut SimCtx<'_>) {
        let tok = downcast::<Tok>(payload);
        ctx.add_stat(self.received.unwrap(), 1);
        // Order-sensitive checksum: mixes the rng stream with the token
        // value, so any reordering of deliveries changes the result.
        let r = ctx.rng().gen::<u64>();
        ctx.add_stat(
            self.checksum.unwrap(),
            (r ^ tok.value).wrapping_mul(0x9E37) % 1009,
        );
        if tok.hops_left > 0 {
            let port = PortId((ctx.rng().gen::<u16>()) % self.fanout);
            ctx.send(
                port,
                Tok {
                    hops_left: tok.hops_left - 1,
                    value: tok.value,
                },
            );
        }
    }
}

use rand::Rng as _;

/// Build a random ring-with-chords graph from a seed.
fn build(seed: u64, n: u16, fanout: u16, tokens: u32, hops: u32) -> SystemBuilder {
    use rand::SeedableRng;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut b = SystemBuilder::new();
    b.seed(seed);
    let ids: Vec<ComponentId> = (0..n)
        .map(|i| {
            b.add(
                format!("h{i}"),
                Hopper {
                    fanout,
                    hops_left_init: hops,
                    tokens,
                    received: None,
                    checksum: None,
                },
            )
        })
        .collect();
    // Each port p of node i links to a random other node's port p' such
    // that every port is used exactly once: pair ports up via a shuffled
    // global list.
    let mut endpoints: Vec<(ComponentId, PortId)> = Vec::new();
    for &id in &ids {
        for p in 0..fanout {
            endpoints.push((id, PortId(p)));
        }
    }
    // Fisher-Yates with the seeded rng.
    for i in (1..endpoints.len()).rev() {
        let j = rng.gen_range(0..=i);
        endpoints.swap(i, j);
    }
    let mut it = endpoints.into_iter();
    while let (Some(a), Some(bb)) = (it.next(), it.next()) {
        if a.0 == bb.0 && a.1 == bb.1 {
            continue;
        }
        let latency = SimTime::ns(1 + rng.gen_range(0..20));
        b.link(a, bb, latency);
    }
    b
}

fn snapshot_sums(report: &SimReport) -> (u64, u64, u64, SimTime) {
    (
        report.events,
        report.stats.sum_counters("received"),
        report.stats.sum_counters("checksum"),
        report.end_time,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn parallel_matches_serial_on_random_graphs(
        seed in 0u64..1_000_000,
        n in 4u16..24,
        ranks in 2u32..5,
    ) {
        // fanout even so ports pair up.
        let serial = Engine::new(build(seed, n, 4, 3, 40)).run(RunLimit::Exhaust);
        let par = ParallelEngine::new(build(seed, n, 4, 3, 40), ranks).run(RunLimit::Exhaust);
        prop_assert_eq!(snapshot_sums(&serial), snapshot_sums(&par));
    }

    #[test]
    fn same_seed_same_result(seed in 0u64..1_000_000) {
        let a = Engine::new(build(seed, 10, 4, 2, 30)).run(RunLimit::Exhaust);
        let b = Engine::new(build(seed, 10, 4, 2, 30)).run(RunLimit::Exhaust);
        prop_assert_eq!(snapshot_sums(&a), snapshot_sums(&b));
    }

    #[test]
    fn different_seeds_usually_differ(seed in 0u64..1_000_000) {
        let a = Engine::new(build(seed, 10, 4, 2, 30)).run(RunLimit::Exhaust);
        let b = Engine::new(build(seed ^ 0xDEAD_BEEF, 10, 4, 2, 30)).run(RunLimit::Exhaust);
        // Checksums are rng-derived; collisions are possible but the
        // event counts and checksum together colliding is vanishingly rare.
        prop_assert!(
            snapshot_sums(&a) != snapshot_sums(&b),
            "distinct seeds produced identical runs"
        );
    }

    #[test]
    fn run_until_prefix_property(
        seed in 0u64..100_000,
        t1 in 1u64..500,
        t2 in 500u64..2000,
    ) {
        // Events processed by time t1 are a prefix of those by t2 > t1.
        let a = Engine::new(build(seed, 8, 4, 2, 60)).run(RunLimit::Until(SimTime::ns(t1)));
        let b = Engine::new(build(seed, 8, 4, 2, 60)).run(RunLimit::Until(SimTime::ns(t2)));
        prop_assert!(a.events <= b.events);
        prop_assert!(a.end_time <= b.end_time);
    }
}

#[test]
fn stepped_execution_equals_single_run() {
    let full = Engine::new(build(7, 12, 4, 3, 50)).run(RunLimit::Exhaust);
    let mut engine = Engine::new(build(7, 12, 4, 3, 50));
    for ms in [0u64, 1, 2, 5, 10] {
        engine.step(RunLimit::Until(SimTime::us(ms)));
    }
    let stepped = engine.run(RunLimit::Exhaust);
    // Event processing and statistics are identical; only the clock is
    // pinned forward to the last step bound (`Until` advances `now` even
    // past exhaustion, by design).
    let (ev_a, rec_a, sum_a, _) = snapshot_sums(&full);
    let (ev_b, rec_b, sum_b, end_b) = snapshot_sums(&stepped);
    assert_eq!((ev_a, rec_a, sum_a), (ev_b, rec_b, sum_b));
    assert_eq!(end_b, SimTime::us(10));
}

#[test]
fn one_component_per_rank_is_the_thinnest_legal_split() {
    let serial = Engine::new(build(3, 4, 2, 2, 20)).run(RunLimit::Exhaust);
    let par = ParallelEngine::new(build(3, 4, 2, 2, 20), 4).run(RunLimit::Exhaust);
    assert_eq!(snapshot_sums(&serial), snapshot_sums(&par));
}

#[test]
#[should_panic(expected = "cannot split 4 component(s) across 8 ranks")]
fn more_ranks_than_components_is_a_loud_error() {
    // Idle ranks would only add synchronization traffic, so the engine
    // refuses to spawn them instead of silently wasting sync rounds.
    ParallelEngine::new(build(3, 4, 2, 2, 20), 8);
}
