//! Differential guarantees for the inline-payload hot path: the same
//! simulation exchanging small (inline), exactly-24-byte (inline boundary),
//! and oversized (boxed-fallback) payloads must produce bit-identical
//! reports across the serial indexed engine, the reference heap engine, and
//! a 2-rank parallel run — and a drop-counting payload proves the slot
//! machinery neither leaks nor double-drops, including events abandoned in
//! the queue when a run is truncated.

use proptest::prelude::*;
use sst_core::engine::HeapEngine;
use sst_core::event::{PayloadSlot, INLINE_PAYLOAD_BYTES};
use sst_core::prelude::*;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

/// A token shape the ring can carry: constructed from (hops, value) and
/// read back, so one component definition covers every payload size.
trait TokKind: Debug + Send + 'static {
    fn make(hops: u32, value: u64) -> Self;
    fn hops(&self) -> u32;
    fn value(&self) -> u64;
}

/// 8 bytes — comfortably inline.
#[derive(Debug)]
struct SmallTok {
    hops: u32,
    value: u32,
}

impl TokKind for SmallTok {
    fn make(hops: u32, value: u64) -> Self {
        SmallTok {
            hops,
            value: value as u32,
        }
    }
    fn hops(&self) -> u32 {
        self.hops
    }
    fn value(&self) -> u64 {
        self.value as u64
    }
}

/// Exactly 24 bytes — the inline boundary itself.
#[derive(Debug)]
struct ExactTok {
    value: u64,
    hops: u32,
    pad: [u8; 12],
}

impl TokKind for ExactTok {
    fn make(hops: u32, value: u64) -> Self {
        ExactTok {
            value,
            hops,
            pad: [0xAB; 12],
        }
    }
    fn hops(&self) -> u32 {
        self.hops
    }
    fn value(&self) -> u64 {
        debug_assert!(self.pad == [0xAB; 12], "inline bytes corrupted");
        self.value
    }
}

/// 48 bytes — forces the boxed fallback.
#[derive(Debug)]
struct BigTok {
    value: u64,
    hops: u32,
    pad: [u64; 4],
}

impl TokKind for BigTok {
    fn make(hops: u32, value: u64) -> Self {
        BigTok {
            value,
            hops,
            pad: [value ^ 0x5A5A; 4],
        }
    }
    fn hops(&self) -> u32 {
        self.hops
    }
    fn value(&self) -> u64 {
        debug_assert!(
            self.pad == [self.value ^ 0x5A5A; 4],
            "boxed bytes corrupted"
        );
        self.value
    }
}

/// Ring node: receives tokens on port 1, forwards on port 0 until the hop
/// count runs out, folding every observed value into an order-insensitive
/// checksum stat.
struct Node<P: TokKind> {
    tokens: u32,
    hops: u32,
    inject: bool,
    received: Option<StatId>,
    checksum: Option<StatId>,
    _kind: PhantomData<P>,
}

impl<P: TokKind> Node<P> {
    fn new(tokens: u32, hops: u32, inject: bool) -> Node<P> {
        Node {
            tokens,
            hops,
            inject,
            received: None,
            checksum: None,
            _kind: PhantomData,
        }
    }
}

impl<P: TokKind> Component for Node<P> {
    fn setup(&mut self, ctx: &mut SimCtx<'_>) {
        self.received = Some(ctx.stat_counter("received"));
        self.checksum = Some(ctx.stat_counter("checksum"));
        if self.inject {
            for i in 0..self.tokens {
                ctx.send(PortId(0), P::make(self.hops, i as u64 + 1));
            }
        }
    }

    fn on_event(&mut self, _port: PortId, payload: PayloadSlot, ctx: &mut SimCtx<'_>) {
        let tok = downcast::<P>(payload);
        ctx.add_stat(self.received.unwrap(), 1);
        ctx.add_stat(
            self.checksum.unwrap(),
            tok.value()
                .wrapping_mul(0x9E37)
                .wrapping_add(tok.hops() as u64)
                % 10007,
        );
        if tok.hops() > 0 {
            ctx.send(PortId(0), P::make(tok.hops() - 1, tok.value()));
        }
    }
}

/// `n`-node ring; every node injects `tokens` tokens at setup, so same-time
/// deliveries (the batched hot path) and tie-breaks are exercised on every
/// hop.
fn build<P: TokKind>(n: u16, tokens: u32, hops: u32) -> SystemBuilder {
    let mut b = SystemBuilder::new();
    let ids: Vec<ComponentId> = (0..n)
        .map(|i| b.add(format!("node{i}"), Node::<P>::new(tokens, hops, true)))
        .collect();
    for i in 0..n as usize {
        b.link(
            (ids[i], PortId(0)),
            (ids[(i + 1) % n as usize], PortId(1)),
            SimTime::ns(7),
        );
    }
    b
}

/// Everything in a report except machine-dependent fields (wall clock) and
/// run-shape fields (ranks/epochs), with stats sorted by key so serial and
/// parallel registration order can't matter. Bit-exact: floats go through
/// their JSON rendering unrounded.
fn fingerprint(report: &SimReport) -> (SimTime, u64, u64, Vec<String>) {
    let mut stats: Vec<String> = report
        .stats
        .stats
        .iter()
        .map(|s| serde_json::to_string(s).expect("stat serializes"))
        .collect();
    stats.sort();
    (report.end_time, report.events, report.clock_ticks, stats)
}

fn differential<P: TokKind>(n: u16, tokens: u32, hops: u32) {
    let indexed = Engine::new(build::<P>(n, tokens, hops)).run(RunLimit::Exhaust);
    let heap = HeapEngine::new(build::<P>(n, tokens, hops)).run(RunLimit::Exhaust);
    let par = ParallelEngine::new(build::<P>(n, tokens, hops), 2).run(RunLimit::Exhaust);
    assert_eq!(fingerprint(&indexed), fingerprint(&heap));
    assert_eq!(fingerprint(&indexed), fingerprint(&par));
    // Sanity: the workload actually ran.
    assert_eq!(
        indexed.stats.sum_counters("received"),
        n as u64 * tokens as u64 * (hops as u64 + 1)
    );
}

#[test]
fn token_sizes_sit_on_both_sides_of_the_inline_boundary() {
    assert!(std::mem::size_of::<SmallTok>() <= INLINE_PAYLOAD_BYTES);
    assert_eq!(std::mem::size_of::<ExactTok>(), INLINE_PAYLOAD_BYTES);
    assert!(std::mem::size_of::<BigTok>() > INLINE_PAYLOAD_BYTES);
    assert!(PayloadSlot::new(SmallTok::make(1, 2)).is_inline());
    assert!(PayloadSlot::new(ExactTok::make(1, 2)).is_inline());
    assert!(!PayloadSlot::new(BigTok::make(1, 2)).is_inline());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn inline_small_payloads_are_engine_equivalent(
        n in 2u16..8,
        tokens in 1u32..4,
        hops in 0u32..40,
    ) {
        differential::<SmallTok>(n, tokens, hops);
    }

    #[test]
    fn inline_boundary_payloads_are_engine_equivalent(
        n in 2u16..8,
        tokens in 1u32..4,
        hops in 0u32..40,
    ) {
        differential::<ExactTok>(n, tokens, hops);
    }

    #[test]
    fn boxed_fallback_payloads_are_engine_equivalent(
        n in 2u16..8,
        tokens in 1u32..4,
        hops in 0u32..40,
    ) {
        differential::<BigTok>(n, tokens, hops);
    }
}

// ---------------------------------------------------------------------------
// Leak check: every payload constructed is dropped exactly once, even when a
// truncated run abandons in-flight events inside the queue and the pools.

static LIVE: AtomicU64 = AtomicU64::new(0);

/// Inline-sized payload that tracks its population. `make` increments,
/// `Drop` decrements; a nonzero count at the end of a run means a leak
/// (positive) or a double drop (underflow → huge number).
#[derive(Debug)]
struct CountedTok {
    hops: u32,
    value: u32,
}

impl Drop for CountedTok {
    fn drop(&mut self) {
        LIVE.fetch_sub(1, Ordering::SeqCst);
    }
}

impl TokKind for CountedTok {
    fn make(hops: u32, value: u64) -> Self {
        LIVE.fetch_add(1, Ordering::SeqCst);
        CountedTok {
            hops,
            value: value as u32,
        }
    }
    fn hops(&self) -> u32 {
        self.hops
    }
    fn value(&self) -> u64 {
        self.value as u64
    }
}

/// Serialized across the drop-counting tests so the shared LIVE counter
/// isn't polluted by a concurrent run.
static DROP_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn completed_run_drops_every_payload() {
    let _guard = DROP_TEST_LOCK.lock().unwrap();
    let report = Engine::new(build::<CountedTok>(6, 3, 25)).run(RunLimit::Exhaust);
    assert!(report.events > 0);
    assert_eq!(LIVE.load(Ordering::SeqCst), 0, "leaked or double-dropped");
}

#[test]
fn truncated_run_drops_abandoned_payloads() {
    let _guard = DROP_TEST_LOCK.lock().unwrap();
    // Stop mid-flight: tokens still sitting in the queue (and any pooled
    // buffers) must be dropped when the engine is.
    let report =
        Engine::new(build::<CountedTok>(6, 3, 1000)).run(RunLimit::Until(SimTime::ns(200)));
    assert!(report.events > 0);
    assert_eq!(LIVE.load(Ordering::SeqCst), 0, "leaked or double-dropped");
}
