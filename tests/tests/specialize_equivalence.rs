//! Differential guarantees for build-time graph specialization: a
//! specialized build (fused component arrays, flattened constant-latency
//! chains, auto-selected queue backend) must be *bit-identical* to the
//! plain build — same reports, same statistics, same canonical state
//! hashes, same traces — on the serial engine, on parallel engines at
//! every rank count and partition strategy, and through a mid-run
//! checkpoint/restore that crosses a fused array. Also the analyze
//! satellite: critical-path hop attribution over a fused chain's trace
//! still names every member individually.

use sst_bench::chain;
use sst_core::prelude::*;
use sst_core::telemetry::TelemetryOptions;
use sst_sim::experiments::pdes;
use std::path::PathBuf;

fn pdes_params() -> pdes::Params {
    let mut p = pdes::Params::quick();
    p.side = 6;
    p.tokens_per_node = 3;
    p.ttl = 40;
    p
}

/// The torus builder with the specialization knob pinned explicitly —
/// never the process-global default, which other test threads may race on.
fn torus(on: bool) -> SystemBuilder {
    let mut b = pdes::build(&pdes_params());
    b.specialize(on);
    b
}

fn chain_sys(on: bool) -> SystemBuilder {
    let mut b = chain(5, 40);
    b.specialize(on);
    b
}

/// Everything in a report except machine-dependent fields (wall clock,
/// queue backend) and the specialization marker itself, with stats sorted
/// by key. Bit-exact: floats go through their JSON rendering unrounded.
fn fingerprint(report: &SimReport) -> (SimTime, u64, u64, Vec<String>, Option<String>) {
    let mut stats: Vec<String> = report
        .stats
        .stats
        .iter()
        .map(|s| serde_json::to_string(s).expect("stat serializes"))
        .collect();
    stats.sort();
    (
        report.end_time,
        report.events,
        report.clock_ticks,
        stats,
        report.final_state_hash.clone(),
    )
}

/// Run to completion, capturing checkpoints (so the fingerprint carries
/// the canonical final state hash) and the snapshot documents themselves.
fn run_capturing(b: SystemBuilder) -> (SimReport, Vec<Snapshot>) {
    let mut snaps = Vec::new();
    let report = Engine::with_telemetry(b, TelemetrySpec::disabled()).run_with_checkpoints(
        RunLimit::Exhaust,
        Some(SimTime(200_000)),
        None,
        &mut |s| snaps.push(s),
    );
    (report, snaps)
}

#[test]
fn serial_fused_torus_matches_unfused() {
    let (fused, fused_snaps) = run_capturing(torus(true));
    let (plain, plain_snaps) = run_capturing(torus(false));
    assert!(fused.specialized && !plain.specialized);
    assert_eq!(fingerprint(&fused), fingerprint(&plain));
    // Snapshot documents are byte-identical at every boundary: fusion may
    // not leak into serialized state, order, or payload bytes.
    assert!(fused_snaps.len() >= 2, "workload too short to checkpoint");
    assert_eq!(fused_snaps.len(), plain_snaps.len());
    for (f, p) in fused_snaps.iter().zip(&plain_snaps) {
        assert_eq!(
            f.to_json_pretty(),
            p.to_json_pretty(),
            "snapshot at t={} diverged",
            f.time_ps
        );
    }
}

#[test]
fn serial_fused_chain_matches_unfused() {
    let (fused, fused_snaps) = run_capturing(chain_sys(true));
    let (plain, plain_snaps) = run_capturing(chain_sys(false));
    assert!(fused.specialized && !plain.specialized);
    assert_eq!(fingerprint(&fused), fingerprint(&plain));
    assert_eq!(fused_snaps.len(), plain_snaps.len());
    for (f, p) in fused_snaps.iter().zip(&plain_snaps) {
        assert_eq!(f.to_json_pretty(), p.to_json_pretty());
    }
}

#[test]
fn every_partition_strategy_and_rank_count_matches_serial_unfused() {
    // The ground truth: a plain (unspecialized) serial run.
    let (baseline, _) = run_capturing(torus(false));
    for &strategy in PartitionStrategy::ALL {
        for ranks in [2u32, 4] {
            let eng = ParallelEngine::with_config(
                torus(true),
                ParallelConfig {
                    ranks,
                    partition: Some(strategy),
                    ..ParallelConfig::default()
                },
            );
            let mut snaps = Vec::new();
            let par = eng.run_with_checkpoints(
                RunLimit::Exhaust,
                Some(SimTime(200_000)),
                None,
                &mut |s| snaps.push(s),
            );
            assert_eq!(
                fingerprint(&par),
                fingerprint(&baseline),
                "{strategy} @ {ranks} ranks diverged from plain serial"
            );
        }
    }
}

#[test]
fn restore_crosses_fused_arrays_in_both_directions() {
    let (baseline, snaps) = run_capturing(torus(false));
    assert!(snaps.len() >= 2, "workload too short to checkpoint");
    // A snapshot taken by the plain build restores into a fused build (and
    // the other way around via the fused run's own snapshots below), and
    // the resumed run finishes bit-identical to the uninterrupted one.
    let mid = &snaps[snaps.len() / 2];
    let resumed_fused = Engine::restore(torus(true), TelemetrySpec::disabled(), mid)
        .run_with_checkpoints(RunLimit::Exhaust, None, None, &mut |_| {});
    assert_eq!(
        fingerprint(&resumed_fused),
        fingerprint(&baseline),
        "fused restore of a plain snapshot diverged"
    );
    let (_, fused_snaps) = run_capturing(torus(true));
    let fmid = &fused_snaps[fused_snaps.len() / 2];
    let resumed_plain = Engine::restore(torus(false), TelemetrySpec::disabled(), fmid)
        .run_with_checkpoints(RunLimit::Exhaust, None, None, &mut |_| {});
    assert_eq!(
        resumed_plain.final_state_hash, baseline.final_state_hash,
        "plain restore of a fused snapshot diverged"
    );
    // And a parallel engine picks up the same snapshot across rank counts.
    for ranks in [2u32, 4] {
        let par = ParallelEngine::with_telemetry(torus(true), ranks, TelemetrySpec::disabled())
            .restore(fmid)
            .run_with_checkpoints(RunLimit::Exhaust, None, None, &mut |_| {});
        assert_eq!(
            par.final_state_hash, baseline.final_state_hash,
            "{ranks}-rank restore through a fused array diverged"
        );
    }
}

fn trace_spec(path: &std::path::Path) -> TelemetrySpec {
    TelemetrySpec::new(TelemetryOptions {
        trace_path: Some(path.to_path_buf()),
        ..TelemetryOptions::default()
    })
    .expect("trace files open")
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sst-specialize-{}-{name}", std::process::id()));
    p
}

fn read_and_clean(path: &std::path::Path) -> String {
    let text = std::fs::read_to_string(path).expect("trace readable");
    std::fs::remove_file(path).ok();
    std::fs::remove_file(sst_core::telemetry::chrome_trace_path(path)).ok();
    text
}

#[test]
fn traced_runs_are_byte_identical_fused_or_not() {
    let fused_path = tmp("fused.trace.jsonl");
    let plain_path = tmp("plain.trace.jsonl");
    Engine::with_telemetry(chain_sys(true), trace_spec(&fused_path).labeled("run"))
        .run(RunLimit::Exhaust);
    Engine::with_telemetry(chain_sys(false), trace_spec(&plain_path).labeled("run"))
        .run(RunLimit::Exhaust);
    let fused = read_and_clean(&fused_path);
    let plain = read_and_clean(&plain_path);
    assert!(!fused.is_empty());
    assert_eq!(fused, plain, "specialized trace diverged byte-for-byte");
}

#[test]
fn analyze_attributes_fused_chain_hops_per_member() {
    // A fused chain's trace still records one hop per *member*, so the
    // critical path names every repeater individually — fusion never
    // collapses attribution into one opaque group component.
    let path = tmp("analyze.trace.jsonl");
    Engine::with_telemetry(chain_sys(true), trace_spec(&path).labeled("run"))
        .run(RunLimit::Exhaust);
    let a = sst_sim::analyze::analyze_trace_text(&read_and_clean(&path)).expect("trace parses");
    let comps: Vec<&str> = a.path.iter().map(|h| h.component.as_str()).collect();
    for r in ["r0", "r1", "r2", "r3", "r4"] {
        assert!(
            comps.contains(&r),
            "member {r} missing from path: {comps:?}"
        );
        assert!(
            a.attribution.iter().any(|(c, n)| c == r && *n > 0),
            "member {r} missing from attribution"
        );
    }
    // Every lap crosses head -> r0..r4, so each member owns exactly as
    // many path hops as the head.
    let hops = |name: &str| a.attribution.iter().find(|(c, _)| c == name).unwrap().1;
    let head = hops("head");
    assert!(head > 1);
    for r in ["r0", "r1", "r2", "r3", "r4"] {
        assert_eq!(hops(r), head, "{r} hop count diverged from head");
    }
    // The analyzer also recognizes the structure the specializer folded:
    // one constant-latency chain covering the whole path, reported with
    // per-member hop counts.
    assert_eq!(a.chains.len(), 1, "chains: {:?}", a.chains);
    let c = &a.chains[0];
    assert_eq!(c.latency_ps, 10_000);
    assert_eq!(c.members.len(), 6);
    assert!(c.members.iter().all(|(_, h)| *h >= head - 1));
}
