//! Differential checkpoint/restore guarantees: interrupting a run at any
//! snapshot boundary and resuming — on the serial engine or on a parallel
//! engine with a different rank count — must reproduce the uninterrupted
//! run bit-exactly: same `SimReport`, same final state hash, same trace
//! suffix. Also the satellite regression: two identical runs write
//! byte-identical snapshot documents at every checkpoint (no container
//! iteration order may leak into the bytes), and a drop-counting boxed
//! payload proves the encode/decode path neither leaks nor double-drops
//! in-queue events across a restore.

use proptest::prelude::*;
use sst_core::prelude::*;
use sst_core::telemetry::TelemetryOptions;
use sst_cpu::components::CoreComponent;
use sst_cpu::isa::{AddrPattern, KernelSpec};
use sst_mem::components::{CacheComponent, MemoryComponent};
use sst_mem::{CacheConfig, DramConfig};
use sst_sim::experiments::pdes;
use std::path::PathBuf;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Mutex;

/// Everything in a report except machine-dependent fields (wall clock) and
/// run-shape fields (ranks/epochs), with stats sorted by key, plus the
/// sealed final state hash. Bit-exact: floats go through their JSON
/// rendering unrounded.
fn fingerprint(report: &SimReport) -> (SimTime, u64, u64, Vec<String>, Option<String>) {
    let mut stats: Vec<String> = report
        .stats
        .stats
        .iter()
        .map(|s| serde_json::to_string(s).expect("stat serializes"))
        .collect();
    stats.sort();
    (
        report.end_time,
        report.events,
        report.clock_ticks,
        stats,
        report.final_state_hash.clone(),
    )
}

fn pdes_params() -> pdes::Params {
    let mut p = pdes::Params::quick();
    p.side = 6;
    p.tokens_per_node = 3;
    p.ttl = 40;
    p
}

const EVERY: SimTime = SimTime(200_000); // 200 ns of simulated time

/// Run the pdes torus uninterrupted on the serial engine, capturing every
/// `every`-aligned snapshot along the way.
fn serial_baseline(p: &pdes::Params, every: SimTime) -> (SimReport, Vec<Snapshot>) {
    let mut snaps = Vec::new();
    let report = Engine::with_telemetry(pdes::build(p), TelemetrySpec::disabled())
        .run_with_checkpoints(RunLimit::Exhaust, Some(every), None, &mut |s| snaps.push(s));
    (report, snaps)
}

#[test]
fn serial_restore_is_bit_identical_at_every_checkpoint() {
    let p = pdes_params();
    let (baseline, snaps) = serial_baseline(&p, EVERY);
    assert!(
        snaps.len() >= 3,
        "workload too short to checkpoint: {} snapshot(s)",
        snaps.len()
    );
    for snap in &snaps {
        let resumed = Engine::restore(pdes::build(&p), TelemetrySpec::disabled(), snap)
            .run_with_checkpoints(RunLimit::Exhaust, None, None, &mut |_| {});
        assert_eq!(
            fingerprint(&resumed),
            fingerprint(&baseline),
            "restore from t={} diverged",
            snap.time_ps
        );
    }
}

#[test]
fn cross_engine_restore_matches_serial() {
    let p = pdes_params();
    let (baseline, snaps) = serial_baseline(&p, EVERY);
    let mid = &snaps[snaps.len() / 2];

    // A serial-captured snapshot resumes on parallel engines of any shape.
    for ranks in [2, 4] {
        let resumed = ParallelEngine::new(pdes::build(&p), ranks)
            .restore(mid)
            .run_with_checkpoints(RunLimit::Exhaust, None, None, &mut |_| {});
        assert_eq!(
            fingerprint(&resumed),
            fingerprint(&baseline),
            "{ranks}-rank restore from t={} diverged",
            mid.time_ps
        );
    }

    // And a parallel-captured snapshot resumes on the serial engine.
    let mut par_snaps = Vec::new();
    let par = ParallelEngine::new(pdes::build(&p), 2).run_with_checkpoints(
        RunLimit::Exhaust,
        Some(EVERY),
        None,
        &mut |s| par_snaps.push(s),
    );
    assert_eq!(fingerprint(&par), fingerprint(&baseline));
    let resumed = Engine::restore(
        pdes::build(&p),
        TelemetrySpec::disabled(),
        &par_snaps[par_snaps.len() / 2],
    )
    .run_with_checkpoints(RunLimit::Exhaust, None, None, &mut |_| {});
    assert_eq!(fingerprint(&resumed), fingerprint(&baseline));
}

/// Satellite regression for the hash-stability sweep: identical runs must
/// write byte-identical snapshot documents at every checkpoint — across
/// reruns (allocator state, HashMap seeds) and across engines (stats
/// registration order vs canonical order).
#[test]
fn snapshot_bytes_are_stable_across_reruns_and_engines() {
    let p = pdes_params();
    let (_, a) = serial_baseline(&p, EVERY);
    let (_, b) = serial_baseline(&p, EVERY);
    let render = |snaps: &[Snapshot]| -> Vec<(u64, String)> {
        snaps
            .iter()
            .map(|s| (s.time_ps, s.to_json_pretty()))
            .collect()
    };
    assert_eq!(render(&a), render(&b), "rerun changed the snapshot bytes");

    let mut par_snaps = Vec::new();
    ParallelEngine::new(pdes::build(&p), 2).run_with_checkpoints(
        RunLimit::Exhaust,
        Some(EVERY),
        None,
        &mut |s| par_snaps.push(s),
    );
    assert_eq!(
        render(&a),
        render(&par_snaps),
        "parallel capture bytes differ from serial"
    );
}

// ---------------------------------------------------------------------------
// A cpu+mem DES node: clocked core, cache, DRAM — RNG streams, MSHR maps,
// bank state, and stream cursors all have to survive the round trip.

fn cpu_mem_node(iters: u64) -> SystemBuilder {
    let spec = KernelSpec {
        label: "k".into(),
        iters,
        loads: 2,
        stores: 1,
        flops: 4,
        ialu: 2,
        flop_dep: 0,
        load_pattern: AddrPattern::Stream {
            base: 0,
            stride: 64,
            span: 16 << 10,
        },
        store_pattern: AddrPattern::Stream {
            base: 1 << 30,
            stride: 64,
            span: 16 << 10,
        },
        mispredict_every: 0,
        seed: 9,
    };
    let mut b = SystemBuilder::new();
    let cpu = b.add(
        "cpu0",
        CoreComponent::new(Box::new(spec.stream()), Frequency::ghz(2.0), 4),
    );
    let l1 = b.add(
        "l1",
        CacheComponent::new(CacheConfig::l1d_32k(), SimTime::ns(1)),
    );
    let mem = b.add("mem", MemoryComponent::new(DramConfig::ddr3_1333(2)));
    b.link(
        (cpu, CoreComponent::MEM),
        (l1, CacheComponent::CPU),
        SimTime::ns(1),
    );
    b.link(
        (l1, CacheComponent::MEM),
        (mem, MemoryComponent::BUS),
        SimTime::ns(4),
    );
    b
}

#[test]
fn cpu_mem_node_restores_bit_identically() {
    let every = SimTime::us(1);
    let mut snaps = Vec::new();
    let baseline = Engine::with_telemetry(cpu_mem_node(800), TelemetrySpec::disabled())
        .run_with_checkpoints(RunLimit::Exhaust, Some(every), None, &mut |s| snaps.push(s));
    assert!(snaps.len() >= 2, "workload too short: {}", snaps.len());
    for snap in &snaps {
        let resumed = Engine::restore(cpu_mem_node(800), TelemetrySpec::disabled(), snap)
            .run_with_checkpoints(RunLimit::Exhaust, None, None, &mut |_| {});
        assert_eq!(
            fingerprint(&resumed),
            fingerprint(&baseline),
            "cpu+mem restore from t={} diverged",
            snap.time_ps
        );
    }
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sst_ckpt_{}_{name}", std::process::id()));
    p
}

fn trace_spec(path: &std::path::Path) -> TelemetrySpec {
    TelemetrySpec::new(TelemetryOptions {
        trace_path: Some(path.to_path_buf()),
        ..Default::default()
    })
    .expect("trace files open")
}

/// Trace records with a sim-time strictly past `t_ps`. Everything written
/// after the checkpoint instant carries a later timestamp (records are
/// stamped with `now` at write time), so this is exactly the suffix a
/// restored run must reproduce.
fn trace_after(path: &std::path::Path, t_ps: u64) -> Vec<String> {
    let text = std::fs::read_to_string(path).expect("trace readable");
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .filter(|l| {
            let v: serde_json::Value = serde_json::from_str(l).expect("trace line parses");
            v.get("t")
                .and_then(serde_json::Value::as_u64)
                .expect("t field")
                > t_ps
        })
        .map(String::from)
        .collect()
}

#[test]
fn restored_trace_is_the_exact_suffix_of_the_uninterrupted_trace() {
    let full_path = tmp("full.jsonl");
    let rest_path = tmp("rest.jsonl");

    let mut snaps = Vec::new();
    let full_spec = trace_spec(&full_path);
    let baseline = Engine::with_telemetry(cpu_mem_node(400), full_spec.labeled("node"))
        .run_with_checkpoints(RunLimit::Exhaust, Some(SimTime::us(1)), None, &mut |s| {
            snaps.push(s)
        });
    full_spec.finish().unwrap();
    assert!(snaps.len() >= 2);
    let mid = &snaps[snaps.len() / 2];

    let rest_spec = trace_spec(&rest_path);
    let resumed = Engine::restore(cpu_mem_node(400), rest_spec.labeled("node"), mid)
        .run_with_checkpoints(RunLimit::Exhaust, None, None, &mut |_| {});
    rest_spec.finish().unwrap();
    assert_eq!(fingerprint(&resumed), fingerprint(&baseline));

    let suffix = trace_after(&full_path, mid.time_ps);
    let restored = trace_after(&rest_path, 0);
    assert!(!suffix.is_empty(), "checkpoint fell after the last record");
    assert_eq!(
        restored, suffix,
        "restored trace is not the byte-exact suffix of the uninterrupted one"
    );

    for p in [&full_path, &rest_path] {
        std::fs::remove_file(p).ok();
        std::fs::remove_file(sst_core::telemetry::chrome_trace_path(p)).ok();
    }
}

// ---------------------------------------------------------------------------
// Drop accounting across encode/decode: a boxed (oversized) payload with a
// population counter proves a checkpointed queue neither leaks nor
// double-drops — including the fresh initial events a restore discards.

static LIVE: AtomicI64 = AtomicI64::new(0);
static DROP_TEST_LOCK: Mutex<()> = Mutex::new(());

/// 40 bytes — past the 24-byte inline boundary, so it rides the boxed path.
#[derive(Debug)]
struct BigTok {
    hops: u64,
    value: u64,
    pad: (u64, u64, u64),
}

impl BigTok {
    fn new(hops: u64, value: u64) -> BigTok {
        LIVE.fetch_add(1, Ordering::SeqCst);
        BigTok {
            hops,
            value,
            pad: (value ^ 0x5A5A, value ^ 0xA5A5, 0x42),
        }
    }
}

impl Drop for BigTok {
    fn drop(&mut self) {
        LIVE.fetch_sub(1, Ordering::SeqCst);
    }
}

// Hand-written codec impls so deserialization funnels through `new` and the
// population count stays balanced (a derive would construct fields
// directly, bypassing the counter).
impl serde::Serialize for BigTok {
    fn to_value(&self) -> serde::Value {
        (self.hops, self.value).to_value()
    }
}

impl serde::Deserialize for BigTok {
    fn from_value(v: &serde::Value) -> Result<BigTok, serde::Error> {
        let (hops, value) = <(u64, u64)>::from_value(v)?;
        Ok(BigTok::new(hops, value))
    }
}

struct BigNode {
    inject: u32,
    hops: u64,
    seen: Option<StatId>,
}

impl Component for BigNode {
    fn setup(&mut self, ctx: &mut SimCtx<'_>) {
        register_payload::<BigTok>("test.bigtok");
        self.seen = Some(ctx.stat_counter("seen"));
        for i in 0..self.inject {
            ctx.send(PortId(0), BigTok::new(self.hops, i as u64 + 1));
        }
    }

    fn on_event(&mut self, _port: PortId, payload: PayloadSlot, ctx: &mut SimCtx<'_>) {
        let tok = downcast::<BigTok>(payload);
        debug_assert_eq!(tok.pad.0, tok.value ^ 0x5A5A, "boxed bytes corrupted");
        ctx.add_stat(self.seen.unwrap(), 1);
        if tok.hops > 0 {
            ctx.send(PortId(0), BigTok::new(tok.hops - 1, tok.value));
        }
    }
}

fn big_ring(n: usize, inject: u32, hops: u64) -> SystemBuilder {
    let mut b = SystemBuilder::new();
    let ids: Vec<ComponentId> = (0..n)
        .map(|i| {
            b.add(
                format!("big{i}"),
                BigNode {
                    inject,
                    hops,
                    seen: None,
                },
            )
        })
        .collect();
    for i in 0..n {
        b.link(
            (ids[i], PortId(0)),
            (ids[(i + 1) % n], PortId(1)),
            SimTime::ns(7),
        );
    }
    b
}

#[test]
fn boxed_payloads_drop_exactly_once_across_restore() {
    let _guard = DROP_TEST_LOCK.lock().unwrap();
    LIVE.store(0, Ordering::SeqCst);

    let mut snaps = Vec::new();
    let baseline = Engine::with_telemetry(big_ring(5, 3, 60), TelemetrySpec::disabled())
        .run_with_checkpoints(RunLimit::Exhaust, Some(SimTime::ns(100)), None, &mut |s| {
            snaps.push(s)
        });
    assert_eq!(
        LIVE.load(Ordering::SeqCst),
        0,
        "checkpointed run leaked or double-dropped"
    );
    assert!(snaps.len() >= 2);
    let mid = snaps[snaps.len() / 2].clone();
    assert!(
        !mid.queue.is_empty(),
        "mid-run snapshot should hold in-flight tokens"
    );
    drop(snaps);

    let resumed = Engine::restore(big_ring(5, 3, 60), TelemetrySpec::disabled(), &mid)
        .run_with_checkpoints(RunLimit::Exhaust, None, None, &mut |_| {});
    drop(mid);
    assert_eq!(
        LIVE.load(Ordering::SeqCst),
        0,
        "restored run leaked or double-dropped"
    );
    assert_eq!(fingerprint(&resumed), fingerprint(&baseline));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random checkpoint cadence, random workload shape: restoring from any
    /// boundary reproduces the uninterrupted run, serial and 2-rank alike.
    #[test]
    fn restore_equivalence_holds_for_random_cadences(
        every_ns in 50u64..2_000,
        side in 4u32..7,
        ttl in 10u32..60,
    ) {
        let mut p = pdes_params();
        p.side = side;
        p.ttl = ttl;
        let every = SimTime::ns(every_ns);
        let (baseline, snaps) = serial_baseline(&p, every);
        if let Some(snap) = snaps.last() {
            let serial = Engine::restore(pdes::build(&p), TelemetrySpec::disabled(), snap)
                .run_with_checkpoints(RunLimit::Exhaust, None, None, &mut |_| {});
            prop_assert_eq!(fingerprint(&serial), fingerprint(&baseline));
            let par = ParallelEngine::new(pdes::build(&p), 2)
                .restore(snap)
                .run_with_checkpoints(RunLimit::Exhaust, None, None, &mut |_| {});
            prop_assert_eq!(fingerprint(&par), fingerprint(&baseline));
        }
    }
}
