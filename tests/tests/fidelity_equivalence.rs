//! Cross-fidelity differential tests for the converted figure experiments.
//!
//! Every experiment in `sst_sim::experiments::SUPPORTS_DES` runs at quick()
//! scale under both fidelities and the *relative* result rows (what the
//! figures actually plot) must agree within the documented tolerance bands:
//!
//! | experiment | rows                        | band | why                                              |
//! |------------|-----------------------------|------|--------------------------------------------------|
//! | fig03      | solver rel. performance     | 10%  | both paths are DRAM-bandwidth-bound here          |
//! | fig03      | FEA rel. performance        | 20%  | DES phases start cold, so FEA sees some memory    |
//! | fig10-12   | DDR2/DDR3 rel. performance  | 20%  | same DRAM timing model on both sides              |
//! | fig10-12   | GDDR5 rel. performance      | 55%  | the DES abstract processor batches compute and    |
//! |            |                             |      | overlaps misses up to the MLP limit, so it is     |
//! |            |                             |      | more bandwidth-sensitive and over-rewards the     |
//! |            |                             |      | 4-channel part; the *findings* (ordering, gain    |
//! |            |                             |      | sign) still agree exactly                         |
//!
//! The DES path must also be bit-deterministic: rerunning the same
//! experiment yields byte-identical tables.

use sst_core::fidelity::Fidelity;
use sst_sim::experiments::{dse, fig03, SUPPORTS_DES};

/// Largest relative discrepancy between two equal-length rows.
fn max_rel_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs() / x.abs().max(y.abs()).max(1e-12))
        .fold(0.0, f64::max)
}

#[test]
fn supported_list_matches_this_suite() {
    // This suite covers fig03 directly and figs. 10-12 through the shared
    // DSE sweep; if SUPPORTS_DES grows, a differential test must follow.
    assert_eq!(SUPPORTS_DES, &["fig03", "fig10", "fig11", "fig12"]);
}

#[test]
fn fig03_fidelities_agree_on_relative_rows() {
    let run = |fidelity| {
        let mut p = fig03::Params::quick();
        p.fidelity = fidelity;
        fig03::run(&p)
    };
    let ana = run(Fidelity::Analytic);
    let des = run(Fidelity::Des);

    for app in ["Charon", "miniFE"] {
        let row = format!("{app} solver");
        let d = max_rel_diff(ana.row(&row), des.row(&row));
        assert!(d < 0.10, "{row}: fidelities diverge {d:.3} (band 10%)");

        let row = format!("{app} FEA");
        let d = max_rel_diff(ana.row(&row), des.row(&row));
        assert!(d < 0.20, "{row}: fidelities diverge {d:.3} (band 20%)");
    }

    // The finding survives the fidelity change: solvers scale with memory
    // speed under DES too, and the mini-app still tracks the app.
    for app in ["Charon", "miniFE"] {
        let sol = des.row(&format!("{app} solver"));
        assert!(
            sol[0] < 0.95,
            "{app} DES solver must track bandwidth: {sol:?}"
        );
    }
}

#[test]
fn fig10_fidelities_agree_on_relative_rows() {
    let run = |fidelity| {
        let mut p = dse::Params::quick();
        p.fidelity = fidelity;
        let points = dse::sweep(&p);
        (dse::fig10(&points, &p), p)
    };
    let (ana, p) = run(Fidelity::Analytic);
    let (des, _) = run(Fidelity::Des);

    for app in ["HPCCG", "LULESH"] {
        for (mem, band) in [("DDR2", 0.20), ("DDR3", 0.20), ("GDDR5", 0.55)] {
            let row = format!("{app} {mem}");
            let d = max_rel_diff(ana.row(&row), des.row(&row));
            assert!(d < band, "{row}: fidelities diverge {d:.3} (band {band})");
        }
        // Findings agree exactly: memory-technology ordering at every
        // width, and a positive GDDR5-over-DDR3 gain.
        for t in [&ana, &des] {
            for i in 0..p.widths.len() {
                let d2 = t.row(&format!("{app} DDR2"))[i];
                let d3 = t.row(&format!("{app} DDR3"))[i];
                let g5 = t.row(&format!("{app} GDDR5"))[i];
                assert!(
                    d2 <= d3 + 1e-9 && d3 <= g5 + 1e-9,
                    "{app} width idx {i}: ordering broken ({d2} {d3} {g5})"
                );
            }
            let gain = t.row(&format!("{app} GDDR5-vs-DDR3 gain"));
            assert!(
                gain.iter().all(|g| *g > 0.0),
                "{app}: gain must stay positive: {gain:?}"
            );
        }
    }
}

#[test]
fn des_experiments_are_bit_deterministic() {
    // Reduced problem so the rerun stays cheap; determinism is a property
    // of the engine/component path, not of the problem size.
    let fig03_once = || {
        let mut p = fig03::Params::quick();
        p.speeds_mts = vec![800.0, 1333.0];
        p.cores = 2;
        p.nx = 8;
        p.solver_iters = 2;
        p.fidelity = Fidelity::Des;
        fig03::run(&p).to_json()
    };
    assert_eq!(
        fig03_once(),
        fig03_once(),
        "fig03 DES reruns must be identical"
    );

    let dse_once = || {
        let mut p = dse::Params::quick();
        p.widths = vec![1, 4];
        p.hpccg_iters = 2;
        p.lulesh_steps = 1;
        p.fidelity = Fidelity::Des;
        let points = dse::sweep(&p);
        dse::fig10(&points, &p).to_json()
    };
    assert_eq!(dse_once(), dse_once(), "fig10 DES reruns must be identical");
}
