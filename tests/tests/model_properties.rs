//! Property-based tests on the substrate models: cache, DRAM, MESI,
//! topology, and collective invariants under randomized inputs.

use proptest::prelude::*;
use sst_core::time::SimTime;
use sst_mem::cache::{Access, Cache, CacheConfig};
use sst_mem::dram::{DramConfig, DramSystem};
use sst_mem::mesi::SnoopBus;
use sst_net::mpi::{CommOp, MpiSim};
use sst_net::network::{NetConfig, Network};
use sst_net::topology::{FatTree, Topology, Torus3D};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cache_never_exceeds_capacity_and_rereads_hit(
        addrs in prop::collection::vec(0u64..(1 << 22), 1..400),
        assoc in 1u32..8,
    ) {
        let cfg = CacheConfig {
            size_bytes: 64 * 64 * assoc as u64,
            assoc,
            line_bytes: 64,
            latency_cycles: 1,
            write_back: true,
        };
        let mut c = Cache::new(cfg);
        for &a in &addrs {
            c.access(a, Access::Read);
            prop_assert!(c.valid_lines() <= c.capacity_lines());
            // Immediately re-reading the same address must hit (it was
            // just filled and is the MRU line).
            prop_assert!(matches!(
                c.access(a, Access::Read),
                sst_mem::cache::Outcome::Hit
            ));
        }
        prop_assert_eq!(c.stats.accesses(), addrs.len() as u64 * 2);
    }

    #[test]
    fn cache_within_set_lru_holds(
        set_bits in 0u64..4,
        touches in prop::collection::vec(0u64..4, 1..64),
    ) {
        // 4-way cache; touch way-sized working set in one set: at most 4
        // distinct lines live there.
        let mut c = Cache::new(CacheConfig {
            size_bytes: 16 * 64 * 4,
            assoc: 4,
            line_bytes: 64,
            latency_cycles: 1,
            write_back: true,
        });
        let set = set_bits; // sets = 16
        for &t in &touches {
            // line address within the chosen set: stride = sets * line.
            let addr = (set + t * 16) * 64;
            c.access(addr, Access::Read);
        }
        // Any 4 most-recent distinct lines must all hit now.
        let mut seen = Vec::new();
        for &t in touches.iter().rev() {
            if !seen.contains(&t) {
                seen.push(t);
            }
            if seen.len() == 4 {
                break;
            }
        }
        for t in seen {
            let addr = (set + t * 16) * 64;
            prop_assert!(c.probe(addr), "recently used line {t} evicted");
        }
    }

    #[test]
    fn dram_completions_after_issue_and_monotone_per_bank(
        reqs in prop::collection::vec((0u64..(1 << 26), any::<bool>(), 0u64..50), 1..200),
    ) {
        let mut d = DramSystem::new(DramConfig::ddr3_1333(2));
        let mut now = SimTime::ZERO;
        for (addr, write, gap) in reqs {
            now += SimTime::ns(gap);
            let (done, _) = d.service(addr & !63, write, now);
            prop_assert!(done > now, "completion {done} not after issue {now}");
            prop_assert!(done.as_ps() - now.as_ps() < 10_000_000, "absurd latency");
        }
    }

    #[test]
    fn dram_energy_monotone_in_traffic(n in 1u64..500) {
        let mut d = DramSystem::new(DramConfig::gddr5(4));
        let mut last = d.energy_joules(SimTime::ms(1));
        let mut t = SimTime::ZERO;
        for i in 0..n {
            let (done, _) = d.service(i * 64, i % 3 == 0, t);
            t = done;
            let e = d.energy_joules(SimTime::ms(1));
            prop_assert!(e >= last);
            last = e;
        }
    }

    #[test]
    fn mesi_invariants_under_random_ops(
        ops in prop::collection::vec((0usize..6, 0u64..32, 0u8..3), 1..500),
    ) {
        let mut bus = SnoopBus::new(6);
        for (core, line, op) in ops {
            let line = line * 64;
            match op {
                0 => { bus.read(core, line); }
                1 => { bus.write(core, line); }
                _ => { bus.evict(core, line); }
            }
            bus.check_invariants().map_err(TestCaseError::fail)?;
        }
    }

    #[test]
    fn torus_routes_valid(
        x in 1u32..6, y in 1u32..6, z in 1u32..6,
        src_i in any::<u32>(), dst_i in any::<u32>(),
    ) {
        let t = Torus3D::new(x, y, z);
        let n = t.nodes();
        let (src, dst) = (src_i % n, dst_i % n);
        let r = t.route(src, dst);
        prop_assert!(r.len() as u32 <= t.diameter());
        prop_assert_eq!(r.is_empty(), src == dst);
        for l in &r {
            prop_assert!(l.0 < t.links());
        }
    }

    #[test]
    fn fat_tree_routes_valid(
        leaves in 1u32..8, per in 1u32..8, spines in 1u32..6,
        src_i in any::<u32>(), dst_i in any::<u32>(),
    ) {
        let t = FatTree::new(leaves, per, spines);
        let n = t.nodes();
        let (src, dst) = (src_i % n, dst_i % n);
        let r = t.route(src, dst);
        prop_assert!(r.len() as u32 <= t.diameter());
        for l in &r {
            prop_assert!(l.0 < t.links());
        }
    }

    #[test]
    fn network_send_is_causal_and_charges_bytes(
        pairs in prop::collection::vec((0u32..27, 0u32..27, 1u64..(1 << 20)), 1..60),
    ) {
        let mut net = Network::new(Box::new(Torus3D::new(3, 3, 3)), NetConfig::xt5());
        let mut now = SimTime::ZERO;
        let mut total = 0u64;
        for (s, d, bytes) in pairs {
            let done = net.send(s, d, bytes, now);
            prop_assert!(done > now);
            total += bytes;
            now += SimTime::us(1);
        }
        prop_assert_eq!(net.stats.bytes, total);
    }

    #[test]
    fn allreduce_any_rank_count_terminates_and_synchronizes(p in 2u32..40) {
        let mut net = Network::new(Box::new(Torus3D::fitting(p)), NetConfig::xt5());
        let scripts: Vec<Vec<CommOp>> = (0..p)
            .map(|r| {
                vec![
                    CommOp::Compute(SimTime::us(r as u64)),
                    CommOp::Allreduce { bytes: 8 },
                ]
            })
            .collect();
        let run = MpiSim::new(&mut net, 2).run(scripts);
        // No rank can leave the allreduce before the slowest entered.
        let slowest_entry = SimTime::us(p as u64 - 1);
        for t in &run.per_rank {
            prop_assert!(*t >= slowest_entry);
        }
    }

    #[test]
    fn halo_grids_never_deadlock(
        dx in 1u32..5, dy in 1u32..5, dz in 1u32..4,
    ) {
        let p = dx * dy * dz;
        prop_assume!(p > 1);
        let mut net = Network::new(Box::new(Torus3D::fitting(p)), NetConfig::qdr_fat_tree());
        let scripts: Vec<Vec<CommOp>> = (0..p)
            .map(|r| sst_net::mpi::halo_exchange_3d(r, [dx, dy, dz], 4096))
            .collect();
        let run = MpiSim::new(&mut net, 1).run(scripts);
        prop_assert!(run.end_time > SimTime::ZERO);
    }
}

#[test]
fn write_back_vs_write_through_traffic() {
    // Write-back caches produce fewer downstream writes for hot data.
    let run = |write_back: bool| {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 4 << 10,
            assoc: 4,
            line_bytes: 64,
            latency_cycles: 1,
            write_back,
        });
        let mut wbs = 0u64;
        for i in 0..10_000u64 {
            let addr = (i % 16) * 64; // hot set of 16 lines
            if let sst_mem::cache::Outcome::Miss { writeback: Some(_) } =
                c.access(addr, Access::Write)
            {
                wbs += 1;
            }
        }
        (c.stats.writebacks, wbs)
    };
    let (wb_back, _) = run(true);
    let (wb_through, _) = run(false);
    assert_eq!(wb_through, 0, "write-through never writes back");
    // Hot lines stay resident, so even write-back barely writes back here.
    assert!(wb_back <= 16);
}
