//! End-to-end telemetry guarantees: bit-identical traces across reruns,
//! zero-cost disabled mode, profile and stats-series plumbing through both
//! engines.

use serde_json::Value;
use sst_core::prelude::*;
use sst_core::telemetry::TelemetryOptions;
use std::path::PathBuf;

/// A deterministic token ring: n0 injects one token that makes `hops` trips
/// around the ring, each node counting and marking every pass.
struct RingNode {
    hops: u32,
    seen: Option<StatId>,
    val: Option<StatId>,
}

#[derive(Debug)]
struct Tok(u32);

impl Component for RingNode {
    fn setup(&mut self, ctx: &mut SimCtx<'_>) {
        self.seen = Some(ctx.stat_counter("seen"));
        self.val = Some(ctx.stat_accumulator("hopval"));
        if ctx.name() == "n0" {
            ctx.send(PortId(0), Tok(self.hops));
        }
    }

    fn on_event(&mut self, _port: PortId, payload: PayloadSlot, ctx: &mut SimCtx<'_>) {
        let tok = downcast::<Tok>(payload);
        ctx.add_stat(self.seen.unwrap(), 1);
        ctx.record_stat(self.val.unwrap(), tok.0 as f64);
        ctx.trace_mark("hop", tok.0 as u64);
        if tok.0 > 0 {
            ctx.send(PortId(0), Tok(tok.0 - 1));
        }
    }
}

fn ring(nodes: u32, hops: u32) -> SystemBuilder {
    let mut b = SystemBuilder::new();
    let ids: Vec<ComponentId> = (0..nodes)
        .map(|i| {
            b.add(
                format!("n{i}"),
                RingNode {
                    hops,
                    seen: None,
                    val: None,
                },
            )
        })
        .collect();
    for i in 0..nodes as usize {
        let next = (i + 1) % nodes as usize;
        b.link((ids[i], PortId(0)), (ids[next], PortId(1)), SimTime::ns(10));
    }
    b
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sst_tel_{}_{name}", std::process::id()));
    p
}

fn trace_spec(path: &std::path::Path) -> TelemetrySpec {
    TelemetrySpec::new(TelemetryOptions {
        trace_path: Some(path.to_path_buf()),
        ..Default::default()
    })
    .expect("trace files open")
}

#[test]
fn disabled_telemetry_reports_nothing() {
    let report = Engine::new(ring(4, 100)).run(RunLimit::Exhaust);
    assert!(report.profile.is_none(), "no profile without --profile");
    assert!(
        report.series.is_none(),
        "no series without --stats-interval"
    );
    // A disabled spec collects nothing either.
    let spec = TelemetrySpec::disabled();
    let report = Engine::with_telemetry(ring(4, 100), spec.clone()).run(RunLimit::Exhaust);
    assert!(report.profile.is_none() && report.series.is_none());
    assert!(spec.finish().unwrap().is_none());
}

#[test]
fn golden_trace_is_bit_identical_across_reruns() {
    let run = |tag: &str| -> (Vec<u8>, Vec<u8>) {
        let path = tmp(&format!("golden_{tag}.jsonl"));
        let spec = trace_spec(&path);
        Engine::with_telemetry(ring(4, 200), spec.clone()).run(RunLimit::Exhaust);
        spec.finish().unwrap().expect("enabled spec yields summary");
        let chrome = sst_core::telemetry::chrome_trace_path(&path);
        let out = (
            std::fs::read(&path).unwrap(),
            std::fs::read(&chrome).unwrap(),
        );
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&chrome).ok();
        out
    };
    let (jsonl_a, chrome_a) = run("a");
    let (jsonl_b, chrome_b) = run("b");
    assert!(!jsonl_a.is_empty(), "trace must contain records");
    assert_eq!(jsonl_a, jsonl_b, "JSONL trace must be bit-identical");
    assert_eq!(chrome_a, chrome_b, "Chrome trace must be bit-identical");
}

#[test]
fn trace_files_parse_and_carry_the_schema() {
    let path = tmp("schema.jsonl");
    let spec = trace_spec(&path);
    Engine::with_telemetry(ring(3, 50), spec.clone()).run(RunLimit::Exhaust);
    let summary = spec.finish().unwrap().unwrap();
    assert!(summary.trace_records > 0);

    let text = std::fs::read_to_string(&path).unwrap();
    let mut records = 0u64;
    let mut kinds = std::collections::BTreeSet::new();
    for line in text.lines() {
        let v: Value = serde_json::from_str(line).expect("every line is JSON");
        assert!(v.get("t").and_then(Value::as_u64).is_some(), "sim-time ps");
        kinds.insert(v.get("k").and_then(Value::as_str).unwrap().to_string());
        records += 1;
    }
    assert_eq!(records, summary.trace_records);
    // The ring exercises sends, deliveries, and explicit marks.
    for k in ["sched", "deliver", "mark"] {
        assert!(kinds.contains(k), "missing kind {k}: {kinds:?}");
    }

    let chrome = sst_core::telemetry::chrome_trace_path(&path);
    let cv: Value = serde_json::from_str(&std::fs::read_to_string(&chrome).unwrap()).unwrap();
    let events = cv.get("traceEvents").and_then(Value::as_array).unwrap();
    assert!(!events.is_empty(), "chrome trace has events");
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&chrome).ok();
}

#[test]
fn profile_counts_match_the_run() {
    let spec = TelemetrySpec::new(TelemetryOptions {
        profile: true,
        ..Default::default()
    })
    .unwrap();
    let report = Engine::with_telemetry(ring(4, 100), spec.clone()).run(RunLimit::Exhaust);
    let profile = report.profile.as_ref().expect("profile requested");
    let handled: u64 = profile.components.iter().map(|c| c.events).sum();
    assert_eq!(handled, report.events, "every delivery is attributed");
    assert!(profile.queue_depth_hwm > 0);
    assert!(profile.ranks.is_empty(), "serial run has no rank metrics");
    let total: u64 = profile.components.iter().map(|c| c.total_ns).sum();
    assert!(total > 0, "handler wallclock time is recorded");
    let summary = spec.finish().unwrap().unwrap();
    assert_eq!(summary.profiles.len(), 1);
    assert_eq!(summary.events, report.events);
}

#[test]
fn stats_series_reconciles_with_final_counters() {
    let spec = TelemetrySpec::new(TelemetryOptions {
        stats_interval: Some(SimTime::ns(100)),
        ..Default::default()
    })
    .unwrap();
    let report = Engine::with_telemetry(ring(4, 200), spec).run(RunLimit::Exhaust);
    let series = report.series.as_ref().expect("series requested");
    assert!(series.points.len() > 2, "multiple samples over the run");
    for owner in ["n0", "n1", "n2", "n3"] {
        let decoded = series.counter_series(owner, "seen").unwrap();
        let finals = report.stats.counter(owner, "seen");
        assert_eq!(decoded.last().unwrap().1, finals, "{owner} reconciles");
        // Absolute values decoded from deltas must be non-decreasing.
        assert!(decoded.windows(2).all(|w| w[0].1 <= w[1].1));
        let means = series.mean_series(owner, "hopval").unwrap();
        assert_eq!(means.len(), decoded.len());
    }
}

#[test]
fn parallel_profile_has_rank_sync_metrics() {
    let spec = TelemetrySpec::new(TelemetryOptions {
        profile: true,
        ..Default::default()
    })
    .unwrap();
    let report = ParallelEngine::with_telemetry(ring(4, 200), 2, spec).run(RunLimit::Exhaust);
    let profile = report.profile.as_ref().expect("profile requested");
    assert_eq!(profile.ranks.len(), 2, "one sync profile per rank");
    assert!(profile.ranks.iter().any(|r| r.sync_rounds > 0));
    let handled: u64 = profile.components.iter().map(|c| c.events).sum();
    assert_eq!(handled, report.events);
}

#[test]
fn parallel_trace_is_deterministic() {
    let run = |tag: &str| -> Vec<u8> {
        let path = tmp(&format!("par_{tag}.jsonl"));
        let spec = trace_spec(&path);
        ParallelEngine::with_telemetry(ring(4, 150), 2, spec.clone()).run(RunLimit::Exhaust);
        spec.finish().unwrap().unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(sst_core::telemetry::chrome_trace_path(&path)).ok();
        bytes
    };
    let a = run("a");
    let b = run("b");
    assert!(!a.is_empty());
    assert_eq!(a, b, "parallel trace must be bit-identical across reruns");
}
