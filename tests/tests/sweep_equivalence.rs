//! Differential guarantees for the fleet-level sweep machinery: whatever
//! the worker count, whatever the cache state, and whether a point was
//! simulated from scratch or forked off a shared prefix snapshot, the
//! per-point reports must be byte-identical. Plus the robustness
//! satellite: garbage in the cache directory — truncated JSON, wrong
//! schema, a mismatched config hash — is a miss and a warning, never a
//! panic, and a rerun heals the entry. And the golden config-hash check
//! that pins the FNV-1a helper the cache keys ride on.

use serde::Serialize;
use sst_core::sweep::{CachedResult, ResultCache, SWEEP_RESULT_SCHEMA};
use sst_core::telemetry::config_hash_hex;
use sst_sim::sweep::{run_sweep, PointConfig, ResultSource, SweepOptions, SweepSpec};
use std::path::PathBuf;

/// A fresh per-test scratch directory under the system temp dir.
fn scratch(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sst_sweep_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).expect("create scratch dir");
    p
}

/// Canonical JSON of every point report — the byte-identity fingerprint.
fn fingerprints(out: &sst_sim::sweep::SweepOutcome) -> Vec<String> {
    out.results
        .iter()
        .map(|r| r.report.to_value().to_json_string())
        .collect()
}

fn small_spec() -> SweepSpec {
    SweepSpec::parse(
        r#"{
  "schema": "sst-sweep-spec-v1",
  "base": { "side": 4, "tokens_per_node": 2, "ttl": 16, "until_ns": 2000 },
  "grid": { "tokens_per_node": [1, 2, 3], "seed": [7, 8] }
}"#,
    )
    .expect("spec parses")
}

#[test]
fn results_identical_across_worker_counts() {
    let spec = small_spec();
    let base = run_sweep(&spec, &SweepOptions::default());
    assert_eq!(base.results.len(), 6);
    for workers in [2usize, 8] {
        let out = run_sweep(
            &spec,
            &SweepOptions {
                workers,
                ..Default::default()
            },
        );
        assert_eq!(
            fingerprints(&out),
            fingerprints(&base),
            "workers={workers} changed the results"
        );
        // Order too: config hashes must come back in spec order.
        let hashes: Vec<&str> = out.results.iter().map(|r| r.config_hash.as_str()).collect();
        let base_hashes: Vec<&str> = base
            .results
            .iter()
            .map(|r| r.config_hash.as_str())
            .collect();
        assert_eq!(hashes, base_hashes);
    }
}

#[test]
fn cache_hit_is_byte_identical_to_cold_run() {
    let dir = scratch("warm");
    let spec = small_spec();
    let cold = run_sweep(
        &spec,
        &SweepOptions {
            workers: 2,
            cache: ResultCache::at(&dir).expect("open cache"),
            fork_at_ns: None,
        },
    );
    assert!(cold.results.iter().all(|r| r.source == ResultSource::Cold));
    let warm = run_sweep(
        &spec,
        &SweepOptions {
            workers: 2,
            cache: ResultCache::at(&dir).expect("open cache"),
            fork_at_ns: None,
        },
    );
    assert!(
        warm.results.iter().all(|r| r.source == ResultSource::Cache),
        "warm rerun must hit on every point"
    );
    assert_eq!(warm.cache.hits as usize, spec.points.len());
    assert_eq!(warm.cache.misses, 0);
    assert_eq!(fingerprints(&warm), fingerprints(&cold));
    // The sealed final state hashes survive the disk round-trip too.
    for (a, b) in cold.results.iter().zip(&warm.results) {
        assert!(a.report.final_state_hash.is_some());
        assert_eq!(a.report.final_state_hash, b.report.final_state_hash);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn garbage_cache_entries_are_misses_not_panics() {
    let dir = scratch("garbage");
    let spec = small_spec();
    let hashes: Vec<String> = spec.points.iter().map(|p| p.config_hash()).collect();

    // Poison the directory before the first run: a truncated document, a
    // wrong-schema document, an entry whose embedded hash contradicts its
    // file name, and an unrelated stray file.
    std::fs::write(dir.join(format!("result-{}.json", hashes[0])), "{\"trunc").unwrap();
    std::fs::write(
        dir.join(format!("result-{}.json", hashes[1])),
        r#"{"schema": "sst-sweep-result-v99", "config_hash": "x"}"#,
    )
    .unwrap();
    {
        // A structurally valid entry filed under the wrong address: it
        // declares point 3's hash but sits at point 2's path, so the
        // embedded-hash check must reject it.
        let entry = CachedResult::new(&hashes[3], sst_sim::sweep::run_point(&spec.points[3]));
        let doc = entry.to_value().to_json_string_pretty();
        std::fs::write(dir.join(format!("result-{}.json", hashes[2])), doc).unwrap();
    }
    std::fs::write(dir.join("README.txt"), "not a cache entry").unwrap();

    let baseline = run_sweep(&spec, &SweepOptions::default());
    let out = run_sweep(
        &spec,
        &SweepOptions {
            workers: 2,
            cache: ResultCache::at(&dir).expect("open cache"),
            fork_at_ns: None,
        },
    );
    // Every poisoned entry misses, and the results still match a
    // cache-less run byte for byte.
    assert_eq!(fingerprints(&out), fingerprints(&baseline));
    assert_eq!(out.cache.hits, 0, "no poisoned entry may serve a hit");

    // The rerun heals: every entry was overwritten with a valid document.
    let healed = run_sweep(
        &spec,
        &SweepOptions {
            workers: 2,
            cache: ResultCache::at(&dir).expect("open cache"),
            fork_at_ns: None,
        },
    );
    assert_eq!(healed.cache.hits as usize, spec.points.len());
    assert_eq!(fingerprints(&healed), fingerprints(&baseline));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fork_at_checkpoint_matches_from_scratch() {
    let spec = SweepSpec::parse(
        r#"{
  "schema": "sst-sweep-spec-v1",
  "base": { "side": 4, "tokens_per_node": 2, "ttl": 16, "until_ns": 3000,
            "inject_at_ns": 2000, "inject_ttl": 8 },
  "grid": { "inject_tokens": [1, 2, 3], "until_ns": [2500, 3000] }
}"#,
    )
    .expect("spec parses");
    let scratch_run = run_sweep(
        &spec,
        &SweepOptions {
            workers: 2,
            ..Default::default()
        },
    );
    let forked = run_sweep(
        &spec,
        &SweepOptions {
            workers: 2,
            cache: ResultCache::disabled(),
            fork_at_ns: Some(1000),
        },
    );
    assert!(
        forked
            .results
            .iter()
            .all(|r| r.source == ResultSource::Fork),
        "every point shares the prefix, so every point must fork"
    );
    assert_eq!(forked.prefix_runs, 1, "one shared prefix, simulated once");
    assert_eq!(fingerprints(&forked), fingerprints(&scratch_run));
    for (a, b) in scratch_run.results.iter().zip(&forked.results) {
        assert_eq!(a.report.final_state_hash, b.report.final_state_hash);
        assert_eq!(a.report.events, b.report.events);
    }
}

#[test]
fn fork_prefix_snapshots_are_reused_from_disk() {
    let dir = scratch("prefix");
    let spec = SweepSpec::parse(
        r#"{
  "schema": "sst-sweep-spec-v1",
  "base": { "side": 4, "tokens_per_node": 2, "ttl": 16, "until_ns": 2500,
            "inject_at_ns": 1500, "inject_ttl": 8 },
  "grid": { "inject_tokens": [1, 2] },
  "fork_at_ns": 1000
}"#,
    )
    .expect("spec parses");
    let first = run_sweep(
        &spec,
        &SweepOptions {
            workers: 1,
            cache: ResultCache::at(&dir).expect("open cache"),
            fork_at_ns: None,
        },
    );
    assert_eq!(first.prefix_runs, 1);
    // Drop the result entries but keep the prefix snapshot: the rerun must
    // recompute both points yet simulate no prefix at all.
    for f in std::fs::read_dir(&dir).unwrap() {
        let f = f.unwrap().path();
        if f.file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with("result-"))
        {
            std::fs::remove_file(f).unwrap();
        }
    }
    let second = run_sweep(
        &spec,
        &SweepOptions {
            workers: 1,
            cache: ResultCache::at(&dir).expect("open cache"),
            fork_at_ns: None,
        },
    );
    assert_eq!(second.prefix_runs, 0, "prefix must come from disk");
    assert!(second
        .results
        .iter()
        .all(|r| r.source == ResultSource::Fork));
    assert_eq!(fingerprints(&second), fingerprints(&first));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cached_result_schema_and_golden_hash() {
    // The on-disk schema tag is load-bearing: bumping it invalidates every
    // fleet's cache, so a change must be deliberate.
    assert_eq!(SWEEP_RESULT_SCHEMA, "sst-sweep-result-v1");
    // Golden FNV-1a vectors (offset basis, and one computed key) — the
    // cache address function may never silently change.
    assert_eq!(config_hash_hex(b""), "cbf29ce484222325");
    let cfg = PointConfig::default();
    assert_eq!(
        cfg.config_hash(),
        config_hash_hex(cfg.to_value().to_json_string().as_bytes())
    );
}
