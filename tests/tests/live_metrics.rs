//! Live-metrics contract tests: the observability layer must never perturb
//! the simulation.
//!
//! Two halves of the contract from DESIGN.md:
//! * **Zero overhead when enabled, on the hot path**: every per-batch update
//!   a reporting engine makes is a handful of relaxed atomic stores — no
//!   allocation, no locking. Measured with the `sst-bench` counting
//!   allocator installed as this binary's global allocator.
//! * **Bit-identity**: attaching a registry (and serving it over HTTP)
//!   changes no simulation result — serial and parallel runs produce the
//!   same events, end time, and statistics with metrics on or off.

use sst_bench::alloc_track;
use sst_core::prelude::*;
use sst_core::telemetry::live::{self, WatchdogCfg};
use sst_sim::experiments::pdes;
use std::sync::Arc;

#[global_allocator]
static ALLOC: alloc_track::CountingAlloc = alloc_track::CountingAlloc;

/// The allocation counter is process-global, so the harness's default
/// parallelism would let one test's allocations pollute another's delta:
/// every test in this binary serializes on this lock.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn tiny() -> pdes::Params {
    pdes::Params {
        side: 6,
        tokens_per_node: 2,
        ttl: 40,
        rank_counts: vec![2, 4],
        ..pdes::Params::quick()
    }
}

/// The per-batch update path — what the serial engine and every parallel
/// rank call once per delivery batch — must not allocate once handles exist.
#[test]
fn live_updates_do_not_allocate() {
    let _guard = SERIAL.lock().unwrap();
    let m = Arc::new(LiveMetrics::new());
    let rank = m.rank(0);
    let transport = m.transport("shm");
    m.begin_run("alloc-test", Some(SimTime::ms(1)));
    // Warm-up: first calls may lazily touch nothing, but keep the pattern of
    // the queue_compare harness anyway.
    rank.batch(SimTime::ns(1), 3, 5);
    rank.sync_counters(0, 0, 0, 0);
    transport.sent(64);

    let a0 = alloc_track::allocations();
    for i in 0..10_000u64 {
        rank.batch(SimTime::ns(i), 4, 7);
        rank.sync_counters(i, i, i, i);
        transport.sent(128);
    }
    let grew = alloc_track::allocations() - a0;
    assert_eq!(
        grew, 0,
        "live metric updates allocated {grew} times on the hot path"
    );
}

/// With no registry attached (the default), back-to-back runs of the same
/// system allocate identically — the disabled path is one branch, no state.
#[test]
fn disabled_live_path_allocates_identically() {
    let _guard = SERIAL.lock().unwrap();
    let p = pdes::Params {
        rank_counts: vec![],
        ..tiny()
    };
    let run_once = || {
        let a0 = alloc_track::allocations();
        let rep = Engine::new(pdes::build(&p)).run(RunLimit::Exhaust);
        (alloc_track::allocations() - a0, rep.events)
    };
    // First run pays one-time costs (payload codec registration, lazily
    // sized arenas); compare the two runs after it.
    let _ = run_once();
    let (a1, e1) = run_once();
    let (a2, e2) = run_once();
    assert_eq!(e1, e2);
    assert_eq!(
        a1, a2,
        "identical runs without live metrics allocated differently ({a1} vs {a2})"
    );
}

/// Serial results are bit-identical with and without a live registry (and
/// live HTTP endpoint) attached.
#[test]
fn serial_run_is_identical_with_metrics_attached() {
    let _guard = SERIAL.lock().unwrap();
    let p = pdes::Params {
        rank_counts: vec![],
        ..tiny()
    };
    let bare = Engine::new(pdes::build(&p)).run(RunLimit::Exhaust);

    let m = Arc::new(LiveMetrics::new());
    let srv = live::serve(m.clone(), "127.0.0.1:0", WatchdogCfg::default()).unwrap();
    let mut eng = Engine::new(pdes::build(&p));
    eng.attach_live_metrics(&m, "serial");
    let live_rep = eng.run(RunLimit::Exhaust);

    assert_eq!(bare.events, live_rep.events);
    assert_eq!(bare.end_time, live_rep.end_time);
    assert_eq!(bare.clock_ticks, live_rep.clock_ticks);
    assert_eq!(
        bare.stats.sum_counters("forwarded"),
        live_rep.stats.sum_counters("forwarded")
    );

    // And the endpoint saw the run: the scrape carries nonzero totals.
    let body = live::http_get(srv.addr, "/metrics").unwrap();
    assert!(body.contains("sst_events_total"));
    let events = body
        .lines()
        .find(|l| l.starts_with("sst_events_total"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap();
    assert!(events > 0.0, "endpoint reported zero events: {body}");
    let status = live::http_get(srv.addr, "/status").unwrap();
    assert!(status.contains("sst-live-status-v1"));
}

/// The scaling study stays bit-identical across serial/2/4 ranks while a
/// registry observes every engine — the `identical` column is computed
/// against the serial run inside the same process.
#[test]
fn parallel_runs_stay_identical_with_metrics_attached() {
    let _guard = SERIAL.lock().unwrap();
    let mut with_live = tiny();
    with_live.live = Some(Arc::new(LiveMetrics::new()));
    let t = pdes::run(&with_live);
    for row in &t.rows {
        assert_eq!(
            *row.values.last().unwrap(),
            1.0,
            "{} diverged from serial with live metrics attached",
            row.label
        );
    }
    // The same study without a registry sees the same event totals.
    let bare = pdes::run(&tiny());
    assert_eq!(t.get("serial", "events"), bare.get("serial", "events"));
    assert_eq!(t.get("2 ranks", "events"), bare.get("2 ranks", "events"));
    assert_eq!(t.get("4 ranks", "events"), bare.get("4 ranks", "events"));
}
