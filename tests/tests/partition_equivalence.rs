//! Partition-invariance differential tests: a conservative parallel run
//! must serialize to the byte-identical `SimReport` for *every* partition
//! strategy at every rank count — the partition decides how fast the answer
//! arrives, never what the answer is. Exercised on the two engine-backed
//! workload families: the pdes token-traffic torus and a fig03-style DES
//! node (cores + cache hierarchy + DRAM).

use sst_core::prelude::*;
use sst_cpu::{AddrPattern, CoreComponent, CoreConfig, InstrStream, KernelSpec};
use sst_mem::{install_hierarchy, DramConfig, MemHierarchyConfig};
use sst_sim::experiments::pdes;

/// Serialize a report with the fields that legitimately differ between
/// serial and parallel runs (timing, rank count, sync bookkeeping,
/// telemetry) zeroed; everything else must match byte-for-byte.
fn normalized(mut r: SimReport) -> String {
    r.wall_seconds = 0.0;
    r.ranks = 0;
    r.epochs = 0;
    r.profile = None;
    r.series = None;
    serde_json::to_string(&r).expect("report serializes")
}

/// Run `build()` serially, then under every strategy at 1/2/4 ranks, and
/// require byte-identical normalized reports throughout.
fn assert_partition_invariant(what: &str, build: impl Fn() -> SystemBuilder) {
    let serial = Engine::new(build()).run(RunLimit::Exhaust);
    assert!(serial.events > 100, "{what}: workload too trivial to trust");
    let reference = normalized(serial);
    for &strategy in PartitionStrategy::ALL {
        for ranks in [1u32, 2, 4] {
            let mut b = build();
            b.partition_strategy(strategy);
            let par = ParallelEngine::new(b, ranks).run(RunLimit::Exhaust);
            assert_eq!(
                normalized(par),
                reference,
                "{what}: {strategy} at {ranks} ranks diverged from the serial report"
            );
        }
    }
}

fn stream_kernel(core: usize, iters: u64) -> Box<dyn InstrStream> {
    let base = (core as u64 + 1) << 32;
    Box::new(
        KernelSpec {
            label: format!("stream{core}"),
            iters,
            loads: 2,
            stores: 1,
            flops: 2,
            ialu: 1,
            flop_dep: 0,
            load_pattern: AddrPattern::Stream {
                base,
                stride: 8,
                span: 1 << 16,
            },
            store_pattern: AddrPattern::Stream {
                base: base + (1 << 28),
                stride: 8,
                span: 1 << 16,
            },
            mispredict_every: 0,
            seed: core as u64,
        }
        .stream(),
    )
}

/// A fig03-style DES node: four cores feeding a shared cache hierarchy,
/// exactly the system `DesNode::run_phase` assembles.
fn des_node() -> SystemBuilder {
    let core_cfg = CoreConfig::with_width(2, Frequency::ghz(2.0));
    let mem_cfg = MemHierarchyConfig::typical(DramConfig::ddr3_1333(2));
    let mut b = SystemBuilder::new();
    let mut ups = Vec::new();
    for i in 0..4 {
        let core = b.add(
            format!("core{i}"),
            CoreComponent::from_config(stream_kernel(i, 250), &core_cfg),
        );
        ups.push((core, CoreComponent::MEM));
    }
    install_hierarchy(&mut b, &mem_cfg, core_cfg.freq, &ups);
    b
}

#[test]
fn pdes_torus_is_partition_invariant() {
    assert_partition_invariant("pdes torus", || pdes::build(&pdes::Params::quick()));
}

#[test]
fn des_node_is_partition_invariant() {
    assert_partition_invariant("fig03 DES node", des_node);
}

#[test]
fn profile_weights_do_not_change_results() {
    // Closing the feedback loop must also be result-neutral: rerun the
    // torus under latency-cut with the measured profile fed back in and
    // require the same bytes again.
    let p = pdes::Params::quick();
    let spec = TelemetrySpec::new(TelemetryOptions {
        profile: true,
        ..Default::default()
    })
    .expect("profile-only telemetry needs no files");
    let profiled = ParallelEngine::with_partition(
        pdes::build(&p),
        2,
        PartitionStrategy::LatencyCut,
        None,
        spec,
    )
    .run(RunLimit::Exhaust);
    let profile = profiled.profile.expect("profiling was on");

    let reference = normalized(Engine::new(pdes::build(&p)).run(RunLimit::Exhaust));
    for ranks in [2u32, 4] {
        let rerun = ParallelEngine::with_partition(
            pdes::build(&p),
            ranks,
            PartitionStrategy::LatencyCut,
            Some(&profile),
            TelemetrySpec::disabled(),
        )
        .run(RunLimit::Exhaust);
        assert_eq!(
            normalized(rerun),
            reference,
            "profile-guided latency-cut at {ranks} ranks diverged from serial"
        );
    }
}
