//! Workload-proxy integration: every Table-1 proxy must drive the node
//! and network models end-to-end with its published performance signature.

use sst_core::time::{Frequency, SimTime};
use sst_cpu::core::CoreConfig;
use sst_cpu::isa::InstrStream;
use sst_cpu::node::{Node, NodeConfig};
use sst_mem::dram::DramConfig;
use sst_mem::hierarchy::MemHierarchyConfig;
use sst_net::mpi::MpiSim;
use sst_net::network::{NetConfig, Network};
use sst_net::topology::Torus3D;
use sst_workloads::{apps, charon, hpccg, lulesh, minife, Problem};

fn small_node() -> Node {
    Node::new(NodeConfig {
        core: CoreConfig::with_width(4, Frequency::ghz(2.0)),
        cores: 1,
        mem: MemHierarchyConfig::typical(DramConfig::ddr3_1333(2)),
        fidelity: Default::default(),
    })
}

fn run_one(stream: Box<dyn InstrStream>) -> sst_cpu::node::PhaseResult {
    small_node().run_phase("w", vec![stream])
}

#[test]
fn every_registered_miniapp_has_a_runnable_proxy() {
    let p = Problem::new(6);
    let streams: Vec<(&str, Box<dyn InstrStream>)> = vec![
        ("HPCCG", hpccg::solver(0, p, 1)),
        ("miniFE", minife::solver(0, p, 1)),
        ("phdMesh", apps::phdmesh_stream(0, p)),
        ("miniMD", Box::new(apps::MiniMdStream::new(0, 500, 16))),
        ("miniXyce", apps::minixyce_stream(0, 300, 1)),
        ("miniExDyn", apps::miniexdyn_stream(0, p)),
        ("miniITC", apps::miniitc_stream(0, p, 1)),
        ("miniGhost", apps::minighost_stream(0, p, 2)),
        ("miniAero", apps::miniaero_stream(0, p)),
        ("miniDSMC", apps::minidsmc_stream(0, 300)),
        ("LULESH", lulesh::hydro(0, p, 1)),
        ("Charon", charon::solver(0, p, charon::Precond::Ilu0, 1)),
    ];
    // Every name must also be present in the registry.
    for (name, stream) in streams {
        assert!(
            sst_workloads::find_miniapp(name).is_some(),
            "{name} missing from registry"
        );
        let r = run_one(stream);
        assert!(r.instrs > 0, "{name} proxy produced no work");
        assert!(r.cycles > 0);
    }
}

#[test]
fn solver_proxies_are_bandwidth_hungrier_than_fea() {
    // FLOP:byte separation shows up as DRAM traffic per instruction.
    let p = Problem::new(14);
    let fea = run_one(minife::fea(0, p));
    let solve = run_one(minife::solver(0, p, 2));
    let intensity =
        |r: &sst_cpu::node::PhaseResult| r.mem.dram.bytes as f64 / r.instrs.max(1) as f64;
    assert!(
        intensity(&solve) > 2.0 * intensity(&fea),
        "solver {} vs fea {}",
        intensity(&solve),
        intensity(&fea)
    );
}

#[test]
fn gpu_kernels_follow_the_spilling_story() {
    use sst_cpu::gpu::{run_kernel, GpuConfig};
    let p = Problem::new(32);
    let gpu = GpuConfig::fermi_m2090();
    let fea = run_kernel(&gpu, &minife::gpu_fea_kernel(p, true));
    // The paper's tuned kernel still spills 512 B per thread.
    assert_eq!(fea.spilled_regs_per_thread, 128);
    // On a Kepler-class follow-on the same kernel stops spilling entirely.
    let next = run_kernel(&GpuConfig::kepler_like(), &minife::gpu_fea_kernel(p, true));
    assert_eq!(next.spilled_regs_per_thread, 0);
    assert!(next.time < fea.time);
}

#[test]
fn charon_latency_bound_cth_bandwidth_bound() {
    // End-to-end network check at a small scale: degrade injection
    // bandwidth 8x and compare per-app slowdowns.
    let p = 27u32;
    let dims = [3u32, 3, 3];
    let run = |factor: f64, app: &str| {
        let mut net = Network::new(
            Box::new(Torus3D::fitting(p)),
            NetConfig::xt5().with_injection_scale(factor),
        );
        let scripts: Vec<_> = (0..p)
            .map(|r| match app {
                "cth" => apps::cth_comm_script(r, dims, 2 << 20, 2, SimTime::ms(1)),
                // Charon's halo messages are small (a few KB), which is
                // exactly why it shrugs off injection-bandwidth loss.
                _ => charon::solver_comm_script(
                    r,
                    dims,
                    charon::Precond::Ilu0,
                    2 << 10,
                    2,
                    SimTime::ms(1),
                ),
            })
            .collect();
        MpiSim::new(&mut net, 1).run(scripts).end_time
    };
    let cth_slow = run(0.125, "cth").as_secs_f64() / run(1.0, "cth").as_secs_f64();
    let charon_slow = run(0.125, "charon").as_secs_f64() / run(1.0, "charon").as_secs_f64();
    assert!(cth_slow > 1.3, "cth {cth_slow}");
    assert!(charon_slow < 1.1, "charon {charon_slow}");
}

#[test]
fn weak_scaling_message_counts() {
    // "ML sends over 40% more messages per core than the non-multilevel
    // preconditioners" — counted as point-to-point sends per rank (the
    // collectives are identical between the two).
    let dims = [4u32, 4, 4];
    let p2p = |pc: charon::Precond| {
        charon::solver_comm_script(9, dims, pc, 32 << 10, 1, SimTime::us(100))
            .iter()
            .filter(|o| matches!(o, sst_net::mpi::CommOp::Send { .. }))
            .count() as f64
    };
    let ilu = p2p(charon::Precond::Ilu0);
    let ml = p2p(charon::Precond::Ml);
    assert!(ml >= ilu * 1.4, "ML must send 40%+ more: {ilu} vs {ml}");

    // And the full executor sees the extra traffic too.
    let p = 64u32;
    let total = |pc: charon::Precond| {
        let mut net = Network::new(Box::new(Torus3D::fitting(p)), NetConfig::xt5());
        let scripts: Vec<_> = (0..p)
            .map(|r| charon::solver_comm_script(r, dims, pc, 32 << 10, 1, SimTime::us(100)))
            .collect();
        MpiSim::new(&mut net, 1).run(scripts).messages
    };
    assert!(total(charon::Precond::Ml) > total(charon::Precond::Ilu0));
}

#[test]
fn nodes_compose_with_power_models() {
    use sst_power::{evaluate, ProcessCost};
    let cfg = NodeConfig {
        core: CoreConfig::with_width(2, Frequency::ghz(2.0)),
        cores: 2,
        mem: MemHierarchyConfig::typical(DramConfig::ddr3_1333(2)),
        fidelity: Default::default(),
    };
    let mut node = Node::new(cfg.clone());
    let p = Problem::new(10);
    let phase = node.run_phase("cg", vec![hpccg::solver(0, p, 2), hpccg::solver(1, p, 2)]);
    let report = evaluate(&cfg, &phase, &ProcessCost::n45());
    assert!(report.power_w > 0.5 && report.power_w < 500.0);
    assert!(report.cost_usd > 50.0 && report.cost_usd < 10_000.0);
    assert!(report.energy_j > 0.0);
}
