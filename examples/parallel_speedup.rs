//! Parallel discrete-event simulation (the SC'06 poster's core claim):
//! partition a component graph over ranks, keep results bit-identical to
//! the serial run, and measure the event-processing speedup.
//!
//! ```text
//! cargo run --release -p sst-examples --example parallel_speedup
//! ```

use sst_sim::experiments::pdes;

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get() as u32)
        .unwrap_or(4);
    let mut rank_counts = vec![1, 2, 4, cores.min(8)];
    rank_counts.dedup();
    let params = pdes::Params {
        side: 32,
        tokens_per_node: 16,
        ttl: 800,
        rank_counts,
        ..Default::default()
    };
    println!(
        "simulating a {0}x{0} torus of traffic components on 1..{1} ranks...\n",
        params.side,
        params.rank_counts.last().unwrap()
    );
    let table = pdes::run(&params);
    println!("{table}");
    println!("`identical` = 1: the conservative protocol reproduced the serial run exactly —");
    println!("parallelism changes wall-clock time only, never simulated behavior.");
}
