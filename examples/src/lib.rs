//! Helper crate anchoring the runnable examples (see the [[example]] targets).
