//! Novel-architecture exploration: the kind of study the original SST was
//! built for — evaluate a processing-in-memory (PIM) design against a
//! conventional node, on both a bandwidth-bound solver and a compute-dense
//! assembly kernel, with performance, power, and energy-to-solution.
//!
//! ```text
//! cargo run --release -p sst-examples --example novel_arch
//! ```

use sst_sim::experiments::pim;

fn main() {
    let params = pim::Params {
        conventional_cores: 4,
        pim_cores: 16,
        nx_total: 28,
        solver_iters: 3,
    };
    println!(
        "comparing {} conventional cores vs {} in-memory cores...\n",
        params.conventional_cores, params.pim_cores
    );
    let table = pim::run(&params);
    println!("{table}");
    println!("The trade-off the study exposes:");
    println!("  - sparse solvers are starved for bytes: PIM's in-stack bandwidth wins outright;");
    println!("  - dense assembly is starved for FLOPs: many weak cores merely keep up;");
    println!("  - energy-to-solution favors PIM wherever the bytes dominate.");
}
