//! Quickstart: build a tiny simulated system — a stream-driven processor,
//! an L1 cache, and a DDR3 memory controller — run it to completion, and
//! read the statistics.
//!
//! ```text
//! cargo run --release -p sst-examples --example quickstart
//! ```

use sst_core::prelude::*;
use sst_cpu::components::CoreComponent;
use sst_cpu::isa::{AddrPattern, KernelSpec};
use sst_mem::components::{CacheComponent, MemoryComponent};
use sst_mem::{CacheConfig, DramConfig};

fn main() {
    // 1. Describe a workload: a streaming triad-like kernel.
    let kernel = KernelSpec {
        label: "triad".into(),
        iters: 50_000,
        loads: 2,
        stores: 1,
        flops: 2,
        ialu: 1,
        flop_dep: 0,
        load_pattern: AddrPattern::Stream {
            base: 0,
            stride: 8,
            span: 32 << 20, // 32 MiB working set: streams from DRAM
        },
        store_pattern: AddrPattern::Stream {
            base: 1 << 30,
            stride: 8,
            span: 32 << 20,
        },
        mispredict_every: 0,
        seed: 42,
    };

    // 2. Assemble the system: components connected by links with latency.
    let mut b = SystemBuilder::new();
    let cpu = b.add(
        "cpu0",
        CoreComponent::new(Box::new(kernel.stream()), Frequency::ghz(2.0), 4),
    );
    let l1 = b.add(
        "l1",
        CacheComponent::new(CacheConfig::l1d_32k(), SimTime::ns(1)),
    );
    let mem = b.add("mem", MemoryComponent::new(DramConfig::ddr3_1333(2)));
    b.link(
        (cpu, CoreComponent::MEM),
        (l1, CacheComponent::CPU),
        SimTime::ns(1),
    );
    b.link(
        (l1, CacheComponent::MEM),
        (mem, MemoryComponent::BUS),
        SimTime::ns(5),
    );

    // 3. Run the discrete-event simulation to completion.
    let report = Engine::new(b).run(RunLimit::Exhaust);

    // 4. Read the results.
    println!(
        "simulated {} in {:.1} ms of wall time ({:.0}k events/s)",
        report.end_time,
        report.wall_seconds * 1e3,
        report.events_per_sec() / 1e3
    );
    let hits = report.stats.counter("l1", "hits");
    let misses = report.stats.counter("l1", "misses");
    println!(
        "L1: {hits} hits / {misses} misses ({:.1}% hit rate)",
        100.0 * hits as f64 / (hits + misses) as f64
    );
    println!(
        "DRAM: {} reads, {} writes, mean latency {:.1} ns",
        report.stats.counter("mem", "reads"),
        report.stats.counter("mem", "writes"),
        report.stats.mean("mem", "latency_ns").unwrap_or(0.0)
    );
    println!("\nfull statistics table:\n{}", report.stats);
}
