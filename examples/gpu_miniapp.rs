//! GPU mini-app study (Fig. 8): port miniFE to a Fermi-class GPU — in the
//! model — and see where the speedups (and the slowdown) come from,
//! including the register-spilling analysis and the Kepler-class "what if".
//!
//! ```text
//! cargo run --release -p sst-examples --example gpu_miniapp
//! ```

use sst_cpu::gpu::{run_kernel, GpuConfig};
use sst_sim::experiments::fig08;
use sst_workloads::{minife, Problem};

fn main() {
    // The headline phase-by-phase comparison.
    let table = fig08::run(&fig08::Params {
        nx_per_core: 16,
        cpu_cores: 6,
        solver_iters: 4,
    });
    println!("{table}");

    // Drill into the FEA kernel the way the paper does.
    let p = Problem::new(40);
    let fermi = GpuConfig::fermi_m2090();
    println!("FEA kernel on {}:", fermi.name);
    for (label, optimized) in [("naive port", false), ("tuned (paper)", true)] {
        let r = run_kernel(&fermi, &minife::gpu_fea_kernel(p, optimized));
        println!(
            "  {label:<14} occupancy {:>4.2}  spilled {:>3} regs/thread ({:>4} B -> device mem)  time {}  [{:?}-bound]",
            r.occupancy,
            r.spilled_regs_per_thread,
            r.spill_to_mem_bytes,
            r.time,
            r.limiter
        );
    }

    // "Future generations of NVIDIA systems are expected to address some
    // of the findings from this study" — check the prediction.
    let kepler = GpuConfig::kepler_like();
    let now = run_kernel(&fermi, &minife::gpu_fea_kernel(p, true));
    let next = run_kernel(&kepler, &minife::gpu_fea_kernel(p, true));
    println!(
        "\n{}: same kernel spills {} regs and runs {}",
        kepler.name, next.spilled_regs_per_thread, next.time
    );
    println!(
        "-> more registers per thread remove the spill entirely ({:.1}x faster than Fermi)",
        now.time.as_secs_f64() / next.time.as_secs_f64()
    );
}
