//! Design-space exploration: the paper's memory-technology × issue-width
//! study (Figs. 10–12) at a reduced scale — which memory (DDR2, DDR3,
//! GDDR5) and which core width is *best* depends on whether you rank by
//! performance, performance-per-Watt, or performance-per-Dollar.
//!
//! ```text
//! cargo run --release -p sst-examples --example design_space
//! ```

use sst_sim::experiments::dse;

fn main() {
    let params = dse::Params {
        widths: vec![1, 2, 4, 8],
        nx: 12,
        nx_lulesh: 20,
        hpccg_iters: 4,
        lulesh_steps: 3,
        ..Default::default()
    };
    println!(
        "sweeping {{DDR2, DDR3, GDDR5}} x issue widths {:?}...",
        params.widths
    );
    let points = dse::sweep(&params);

    println!("\n{}", dse::fig10(&points, &params));
    println!("{}", dse::fig11(&points, &params));
    println!("{}", dse::fig12(&points, &params));

    // The co-design takeaway, computed rather than asserted:
    for app in ["HPCCG", "LULESH"] {
        let best_perf = points
            .iter()
            .filter(|p| p.app == app)
            .max_by(|a, b| a.report.perf.total_cmp(&b.report.perf))
            .unwrap();
        let best_ppw = points
            .iter()
            .filter(|p| p.app == app)
            .max_by(|a, b| {
                a.report
                    .perf_per_watt()
                    .total_cmp(&b.report.perf_per_watt())
            })
            .unwrap();
        let best_ppd = points
            .iter()
            .filter(|p| p.app == app)
            .max_by(|a, b| {
                a.report
                    .perf_per_dollar()
                    .total_cmp(&b.report.perf_per_dollar())
            })
            .unwrap();
        println!(
            "{app}: fastest = {} {}-wide; most power-efficient = {} {}-wide; most cost-efficient = {} {}-wide",
            best_perf.mem, best_perf.width, best_ppw.mem, best_ppw.width, best_ppd.mem, best_ppd.width
        );
    }
    println!("\n(the fastest memory is not always the best — the point of the study)");
}
