//! Bandwidth-degradation study (Fig. 9): run CTH, SAGE, xNOBEL, and Charon
//! proxies on a simulated XT5 with the NIC injection bandwidth dialed to
//! full / half / quarter / eighth, and watch who cares.
//!
//! ```text
//! cargo run --release -p sst-examples --example bandwidth_degradation
//! ```

use sst_sim::experiments::fig09;

fn main() {
    let params = fig09::Params {
        bw_factors: vec![1.0, 0.5, 0.25, 0.125],
        ranks: 216,
        xnobel_ranks: vec![27, 216, 512],
        steps: 3,
        ranks_per_node: 8,
    };
    println!(
        "simulating {} ranks ({} per node) under injection throttling...\n",
        params.ranks, params.ranks_per_node
    );
    let table = fig09::run(&params);
    println!("{table}");
    println!("reading: 1.0 = unaffected; 2.0 = twice as slow as full bandwidth.");
    println!("Charon (many small messages) barely notices; CTH/SAGE (bulk faces) pay heavily;");
    println!("xNOBEL hides its messages behind compute until scale shrinks the compute block.");
}
