//! McPAT-lite: analytical core power and area vs. issue width.
//!
//! The design-space study needs *relative* power/area across issue widths,
//! which published scaling laws determine: register-file energy-per-access
//! and area grow roughly **O(w^1.8)** with issue width `w` (Zyuban), the
//! issue/wakeup logic grows superlinearly, and functional units grow
//! linearly. Leakage follows area. Constants below are calibrated to a
//! ~45 nm, ~2 GHz core: a 1-wide core lands near 1.5 W / 6 mm²,
//! an 8-wide near 3–4× that power and ~5× that area, matching the paper's
//! observation that wide cores pay superlinear cost for sublinear speedup.

use serde::{Deserialize, Serialize};
use sst_core::time::{Frequency, SimTime};

/// Analytical core model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CoreModel {
    pub issue_width: u32,
    pub freq: Frequency,
}

/// Instruction-mix summary used for energy weighting.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct InstrMix {
    pub total: u64,
    pub flops: u64,
    pub loads: u64,
    pub stores: u64,
}

// Calibration constants (45 nm-ish, energies in pJ, areas in mm^2).
// Tuned so a 1-wide 2 GHz core at ~2 GIPS draws ~1 W and an 8-wide draws
// ~3.5-4x that — the superlinear-power-for-sublinear-speedup regime the
// paper's issue-width study reports.
const E_FRONTEND_PJ: f64 = 45.0; // fetch/decode per instr at w=1
const E_RF_PJ: f64 = 9.0; // regfile per access at w=1
const RF_ACCESSES_PER_INSTR: f64 = 3.0;
const RF_EXP: f64 = 1.8; // the O(w^1.8) law
const E_ISSUE_PJ: f64 = 15.0; // issue/wakeup per instr at w=1
const ISSUE_EXP: f64 = 1.4;
const E_INT_OP_PJ: f64 = 25.0;
const E_FP_OP_PJ: f64 = 80.0;
const E_LSU_PJ: f64 = 50.0; // AGU+TLB+LSQ per memory op

const A_BASE_MM2: f64 = 2.0; // fetch/decode/branch
const A_RF_MM2: f64 = 0.35;
const A_ISSUE_MM2: f64 = 0.6;
const A_FU_MM2: f64 = 2.2; // int+fp per lane
const A_LSU_MM2: f64 = 1.0;

const LEAKAGE_W_PER_MM2: f64 = 0.025;
const P_CLOCK_W_PER_GHZ_LANE: f64 = 0.25; // clock tree per sqrt-lane per GHz

impl CoreModel {
    pub fn new(issue_width: u32, freq: Frequency) -> CoreModel {
        assert!(issue_width >= 1);
        CoreModel { issue_width, freq }
    }

    #[inline]
    fn w(&self) -> f64 {
        self.issue_width as f64
    }

    /// Core area in mm².
    pub fn area_mm2(&self) -> f64 {
        let w = self.w();
        A_BASE_MM2
            + A_RF_MM2 * w.powf(RF_EXP)
            + A_ISSUE_MM2 * w.powf(ISSUE_EXP)
            + A_FU_MM2 * w
            + A_LSU_MM2 * w.div_euclid(2.0).max(1.0)
    }

    /// Average dynamic energy per instruction (nJ) for a given mix.
    ///
    /// The register file is accessed `RF_ACCESSES_PER_INSTR` times per
    /// instruction and its per-access energy carries the O(w^1.8) blow-up.
    pub fn energy_per_instr_nj(&self, mix: &InstrMix) -> f64 {
        let w = self.w();
        let n = mix.total.max(1) as f64;
        let f_fp = mix.flops as f64 / n;
        let f_mem = (mix.loads + mix.stores) as f64 / n;
        let f_int = (1.0 - f_fp - f_mem).max(0.0);

        let e_pj = E_FRONTEND_PJ
            + E_RF_PJ * RF_ACCESSES_PER_INSTR * w.powf(RF_EXP - 1.0)
            + E_ISSUE_PJ * w.powf(ISSUE_EXP - 1.0)
            + f_int * E_INT_OP_PJ
            + f_fp * E_FP_OP_PJ
            + f_mem * E_LSU_PJ;
        e_pj * 1e-3
    }

    /// Static (leakage) power in W.
    pub fn leakage_w(&self) -> f64 {
        self.area_mm2() * LEAKAGE_W_PER_MM2
    }

    /// Clock-distribution power in W.
    pub fn clock_w(&self) -> f64 {
        P_CLOCK_W_PER_GHZ_LANE * self.w().sqrt() * self.freq.as_ghz()
    }

    /// Total core energy (J) for executing `mix.total` instructions over
    /// `elapsed` simulated time.
    pub fn energy_joules(&self, mix: &InstrMix, elapsed: SimTime) -> f64 {
        let dynamic = mix.total as f64 * self.energy_per_instr_nj(mix) * 1e-9;
        let static_e = (self.leakage_w() + self.clock_w()) * elapsed.as_secs_f64();
        dynamic + static_e
    }

    /// Average power (W) over `elapsed`.
    pub fn avg_power_w(&self, mix: &InstrMix, elapsed: SimTime) -> f64 {
        if elapsed == SimTime::ZERO {
            return 0.0;
        }
        self.energy_joules(mix, elapsed) / elapsed.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix(n: u64) -> InstrMix {
        InstrMix {
            total: n,
            flops: n / 3,
            loads: n / 4,
            stores: n / 8,
        }
    }

    fn model(w: u32) -> CoreModel {
        CoreModel::new(w, Frequency::ghz(2.0))
    }

    #[test]
    fn area_grows_superlinearly() {
        let a1 = model(1).area_mm2();
        let a2 = model(2).area_mm2();
        let a8 = model(8).area_mm2();
        assert!(a2 > a1);
        // 8-wide should be much more than 8x/… at least 4x area of 1-wide
        // but clearly superlinear per lane beyond 2x.
        assert!(a8 > 4.0 * a1, "a1={a1} a8={a8}");
        assert!(
            a8 / 8.0 > a1 / 1.5,
            "per-lane area must grow: {} vs {}",
            a8 / 8.0,
            a1
        );
    }

    #[test]
    fn energy_per_instr_grows_with_width() {
        let e1 = model(1).energy_per_instr_nj(&mix(1000));
        let e4 = model(4).energy_per_instr_nj(&mix(1000));
        let e8 = model(8).energy_per_instr_nj(&mix(1000));
        assert!(e1 < e4 && e4 < e8);
        // The blow-up is real but bounded (regfile is one component).
        assert!(e8 / e1 > 1.5 && e8 / e1 < 10.0, "e8/e1 = {}", e8 / e1);
    }

    #[test]
    fn fp_heavy_mix_costs_more() {
        let m = model(2);
        let int_only = InstrMix {
            total: 1000,
            flops: 0,
            loads: 0,
            stores: 0,
        };
        let fp_heavy = InstrMix {
            total: 1000,
            flops: 800,
            loads: 0,
            stores: 0,
        };
        assert!(m.energy_per_instr_nj(&fp_heavy) > m.energy_per_instr_nj(&int_only));
    }

    #[test]
    fn leakage_follows_area() {
        assert!(model(8).leakage_w() > model(1).leakage_w() * 3.0);
    }

    #[test]
    fn paper_calibration_band_width_sweep() {
        // The study: an 8-wide core ~78% faster than 1-wide used ~123% more
        // power. Check our model lands in a plausible band: with the same
        // instruction count and 1.78x speedup, total node-level power ratio
        // should be superlinear vs speedup but not absurd.
        let n = 20_000_000u64; // ~2 GIPS over 10 ms — a busy core
        let t1 = SimTime::ms(10);
        let t8 = SimTime::ps((t1.as_ps() as f64 / 1.78) as u64);
        let p1 = model(1).avg_power_w(&mix(n), t1);
        let p8 = model(8).avg_power_w(&mix(n), t8);
        let ratio = p8 / p1;
        assert!(
            ratio > 1.6 && ratio < 4.5,
            "8-wide/1-wide power ratio {ratio} outside plausible band"
        );
    }

    #[test]
    fn energy_includes_static_component() {
        let m = model(2);
        let mx = mix(0);
        let e_short = m.energy_joules(&mx, SimTime::ms(1));
        let e_long = m.energy_joules(&mx, SimTime::ms(10));
        assert!(e_long > 9.0 * e_short);
    }

    #[test]
    fn zero_elapsed_power_is_zero() {
        assert_eq!(model(1).avg_power_w(&mix(10), SimTime::ZERO), 0.0);
    }
}
