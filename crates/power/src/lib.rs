//! # sst-power — technology models
//!
//! Power, energy, area, and cost models attached to the architectural
//! models, as SST attaches McPAT/CACTI/DRAM-power/IC-cost models:
//!
//! * [`mcpat_lite`] — core dynamic/static power and area vs. issue width,
//!   with the O(w^1.8) register-file scaling law.
//! * [`cacti_lite`] — SRAM (cache) per-access energy, leakage, and area.
//! * [`cost`] — dies-per-wafer + Murphy-yield chip cost; memory $/GB.
//! * [`metrics`] — roll-ups: perf, perf/Watt, perf/$ per design point.

pub mod cacti_lite;
pub mod cost;
pub mod mcpat_lite;
pub mod metrics;

pub use cacti_lite::CacheModel;
pub use cost::{memory_cost_usd, ProcessCost};
pub use mcpat_lite::{CoreModel, InstrMix};
pub use metrics::{evaluate, TechReport};
