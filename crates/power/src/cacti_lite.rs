//! CACTI-lite: analytical SRAM (cache) energy and area.
//!
//! Per-access energy grows roughly with the square root of capacity (longer
//! bit/word lines) and weakly with associativity (more ways read per
//! access); leakage and area are proportional to capacity. Constants target
//! 45 nm-class SRAM: a 32 KiB 8-way L1 lands near 20 pJ/access and
//! ~0.15 mm²; an 8 MiB L3 near 300 pJ/access.

use serde::{Deserialize, Serialize};
use sst_core::time::SimTime;
use sst_mem::cache::CacheConfig;

const E_BASE_PJ: f64 = 12.0; // at 32 KiB, 8-way
const REF_BYTES: f64 = 32.0 * 1024.0;
const REF_ASSOC: f64 = 8.0;
const CAP_EXP: f64 = 0.5;
const ASSOC_EXP: f64 = 0.3;
const AREA_MM2_PER_MB: f64 = 0.9;
const LEAK_W_PER_MB: f64 = 0.25;

/// Analytical SRAM array model for one cache level.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CacheModel {
    pub size_bytes: u64,
    pub assoc: u32,
}

impl CacheModel {
    pub fn of(cfg: &CacheConfig) -> CacheModel {
        CacheModel {
            size_bytes: cfg.size_bytes,
            assoc: cfg.assoc,
        }
    }

    /// Dynamic energy per access (nJ).
    pub fn energy_per_access_nj(&self) -> f64 {
        let cap = (self.size_bytes as f64 / REF_BYTES).powf(CAP_EXP);
        let asc = (self.assoc as f64 / REF_ASSOC).powf(ASSOC_EXP);
        E_BASE_PJ * cap * asc * 1e-3
    }

    /// Array area (mm²).
    pub fn area_mm2(&self) -> f64 {
        self.size_bytes as f64 / (1 << 20) as f64 * AREA_MM2_PER_MB
    }

    /// Leakage power (W).
    pub fn leakage_w(&self) -> f64 {
        self.size_bytes as f64 / (1 << 20) as f64 * LEAK_W_PER_MB
    }

    /// Total energy (J) for `accesses` over `elapsed`.
    pub fn energy_joules(&self, accesses: u64, elapsed: SimTime) -> f64 {
        accesses as f64 * self.energy_per_access_nj() * 1e-9
            + self.leakage_w() * elapsed.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_caches_cost_more_per_access() {
        let l1 = CacheModel::of(&CacheConfig::l1d_32k());
        let l3 = CacheModel::of(&CacheConfig::l3_8m());
        assert!(l3.energy_per_access_nj() > 5.0 * l1.energy_per_access_nj());
        assert!(l3.area_mm2() > 40.0 * l1.area_mm2());
        assert!(l3.leakage_w() > l1.leakage_w());
    }

    #[test]
    fn l1_calibration_band() {
        let l1 = CacheModel::of(&CacheConfig::l1d_32k());
        let e = l1.energy_per_access_nj();
        assert!(e > 0.005 && e < 0.05, "L1 access energy {e} nJ out of band");
    }

    #[test]
    fn associativity_raises_energy() {
        let a4 = CacheModel {
            size_bytes: 256 << 10,
            assoc: 4,
        };
        let a16 = CacheModel {
            size_bytes: 256 << 10,
            assoc: 16,
        };
        assert!(a16.energy_per_access_nj() > a4.energy_per_access_nj());
    }

    #[test]
    fn energy_combines_dynamic_and_static() {
        let m = CacheModel::of(&CacheConfig::l2_256k());
        let none = m.energy_joules(0, SimTime::ms(1));
        let some = m.energy_joules(1_000_000, SimTime::ms(1));
        assert!(some > none && none > 0.0);
    }
}
