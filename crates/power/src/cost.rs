//! Chip and memory cost model (the IC-Knowledge + DRAM-spot-price analog).
//!
//! Die cost comes from dies-per-wafer and a Murphy yield model: as die area
//! grows, fewer dies fit a wafer *and* each is more likely to catch a
//! defect, so cost rises superlinearly in area — the mechanism that punishes
//! very wide cores in the cost-efficiency study. Memory cost is capacity ×
//! technology price per GB.

use serde::{Deserialize, Serialize};
use sst_mem::dram::DramConfig;

/// Fab/process assumptions.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ProcessCost {
    /// Wafer diameter (mm).
    pub wafer_diameter_mm: f64,
    /// Processed-wafer cost (USD).
    pub wafer_cost_usd: f64,
    /// Defect density (defects per mm²).
    pub defect_density_per_mm2: f64,
    /// Non-die overheads multiplier (test, package, margin).
    pub overhead: f64,
}

impl ProcessCost {
    /// A 300 mm, 45 nm-class process.
    pub fn n45() -> ProcessCost {
        ProcessCost {
            wafer_diameter_mm: 300.0,
            wafer_cost_usd: 4000.0,
            defect_density_per_mm2: 0.0025,
            overhead: 1.6,
        }
    }

    /// Gross dies per wafer for a square die of `area` mm².
    pub fn dies_per_wafer(&self, area_mm2: f64) -> f64 {
        assert!(area_mm2 > 0.0);
        let r = self.wafer_diameter_mm / 2.0;
        let d = (std::f64::consts::PI * r * r) / area_mm2
            - (std::f64::consts::PI * self.wafer_diameter_mm) / (2.0 * area_mm2).sqrt();
        d.max(0.0)
    }

    /// Murphy yield for a die of `area` mm².
    pub fn yield_fraction(&self, area_mm2: f64) -> f64 {
        let ad = area_mm2 * self.defect_density_per_mm2;
        if ad <= 0.0 {
            return 1.0;
        }
        let y = ((1.0 - (-ad).exp()) / ad).powi(2);
        y.clamp(0.0, 1.0)
    }

    /// Cost per good, packaged die (USD).
    pub fn die_cost_usd(&self, area_mm2: f64) -> f64 {
        let good = self.dies_per_wafer(area_mm2) * self.yield_fraction(area_mm2);
        assert!(good > 0.0, "die of {area_mm2} mm^2 yields no good parts");
        self.wafer_cost_usd / good * self.overhead
    }
}

/// Memory subsystem capital cost (USD) from the technology's $/GB.
pub fn memory_cost_usd(dram: &DramConfig) -> f64 {
    dram.cost_per_gb_usd * dram.capacity_gb
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_area_fewer_dies() {
        let p = ProcessCost::n45();
        assert!(p.dies_per_wafer(50.0) > p.dies_per_wafer(100.0));
        assert!(p.dies_per_wafer(100.0) > p.dies_per_wafer(400.0));
    }

    #[test]
    fn yield_decreases_with_area() {
        let p = ProcessCost::n45();
        let y50 = p.yield_fraction(50.0);
        let y400 = p.yield_fraction(400.0);
        assert!(y50 > y400);
        assert!(y50 > 0.8 && y50 <= 1.0);
        assert!(y400 > 0.0);
    }

    #[test]
    fn cost_superlinear_in_area() {
        let p = ProcessCost::n45();
        let c100 = p.die_cost_usd(100.0);
        let c200 = p.die_cost_usd(200.0);
        assert!(
            c200 > 2.0 * c100,
            "doubling area must more than double cost: {c100} -> {c200}"
        );
    }

    #[test]
    fn plausible_die_cost_band() {
        let p = ProcessCost::n45();
        let c = p.die_cost_usd(100.0);
        assert!(c > 5.0 && c < 100.0, "100mm^2 die cost ${c} out of band");
    }

    #[test]
    fn memory_tech_cost_ordering() {
        let d2 = memory_cost_usd(&DramConfig::ddr2_800(2));
        let d3 = memory_cost_usd(&DramConfig::ddr3_1333(2));
        let g5 = memory_cost_usd(&DramConfig::gddr5(8));
        assert!(d2 < d3 && d3 < g5);
    }
}
