//! Roll-up metrics: performance, power, and cost for one node design point.
//!
//! Bridges a simulated [`PhaseResult`] to the figures of the design-space
//! study: runtime, average node power (cores + caches + DRAM), node capital
//! cost (die cost from area + yield, memory from $/GB), and the derived
//! performance-per-Watt and performance-per-Dollar.

use crate::cacti_lite::CacheModel;
use crate::cost::{memory_cost_usd, ProcessCost};
use crate::mcpat_lite::{CoreModel, InstrMix};
use serde::{Deserialize, Serialize};
use sst_core::time::SimTime;
use sst_cpu::node::{NodeConfig, PhaseResult};

/// One design point's evaluated figure-of-merit set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TechReport {
    pub label: String,
    pub time: SimTime,
    /// Work rate (runs of this phase per second).
    pub perf: f64,
    pub core_power_w: f64,
    pub cache_power_w: f64,
    pub dram_power_w: f64,
    pub power_w: f64,
    pub energy_j: f64,
    pub chip_area_mm2: f64,
    pub chip_cost_usd: f64,
    pub mem_cost_usd: f64,
    pub cost_usd: f64,
}

impl TechReport {
    pub fn perf_per_watt(&self) -> f64 {
        if self.power_w > 0.0 {
            self.perf / self.power_w
        } else {
            0.0
        }
    }
    pub fn perf_per_dollar(&self) -> f64 {
        if self.cost_usd > 0.0 {
            self.perf / self.cost_usd
        } else {
            0.0
        }
    }
    /// Energy to solution (J per phase run).
    pub fn energy_to_solution(&self) -> f64 {
        self.energy_j
    }
}

/// Evaluate one phase run on one node design.
pub fn evaluate(cfg: &NodeConfig, phase: &PhaseResult, process: &ProcessCost) -> TechReport {
    let elapsed = phase.time;
    let secs = elapsed.as_secs_f64().max(1e-12);

    // --- cores ---
    let core_model = CoreModel::new(cfg.core.issue_width, cfg.core.freq);
    let mut core_energy = 0.0;
    for s in &phase.per_core {
        let mix = InstrMix {
            total: s.instrs,
            flops: s.flops,
            loads: s.loads,
            stores: s.stores,
        };
        core_energy += core_model.energy_joules(&mix, elapsed);
    }
    // Idle cores still leak.
    let idle = cfg.cores.saturating_sub(phase.per_core.len());
    core_energy += idle as f64 * core_model.leakage_w() * secs;

    // --- caches ---
    let l1 = CacheModel::of(&cfg.mem.l1);
    let l2 = CacheModel::of(&cfg.mem.l2);
    let l2_count = if cfg.mem.l2_shared { 1 } else { cfg.cores };
    let mut cache_energy = cfg.cores as f64 * l1.energy_joules(0, elapsed)
        + l2_count as f64 * l2.energy_joules(0, elapsed);
    cache_energy += l1.energy_per_access_nj() * 1e-9 * phase.mem.l1.accesses() as f64;
    cache_energy += l2.energy_per_access_nj() * 1e-9 * phase.mem.l2.accesses() as f64;
    let mut chip_area = core_model.area_mm2() * cfg.cores as f64
        + l1.area_mm2() * cfg.cores as f64
        + l2.area_mm2() * l2_count as f64;
    if let Some(l3cfg) = &cfg.mem.l3 {
        let l3 = CacheModel::of(l3cfg);
        cache_energy += l3.energy_joules(phase.mem.l3.accesses(), elapsed);
        chip_area += l3.area_mm2();
    }

    // --- DRAM ---
    let dram_energy = cfg.mem.dram.energy_joules(&phase.mem.dram, elapsed);

    // --- cost ---
    let chip_cost = process.die_cost_usd(chip_area);
    let mem_cost = memory_cost_usd(&cfg.mem.dram);

    let energy = core_energy + cache_energy + dram_energy;
    TechReport {
        label: phase.label.clone(),
        time: elapsed,
        perf: 1.0 / secs,
        core_power_w: core_energy / secs,
        cache_power_w: cache_energy / secs,
        dram_power_w: dram_energy / secs,
        power_w: energy / secs,
        energy_j: energy,
        chip_area_mm2: chip_area,
        chip_cost_usd: chip_cost,
        mem_cost_usd: mem_cost,
        cost_usd: chip_cost + mem_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sst_core::time::Frequency;
    use sst_cpu::core::CoreConfig;
    use sst_cpu::isa::{AddrPattern, KernelSpec};
    use sst_cpu::node::Node;
    use sst_mem::dram::DramConfig;
    use sst_mem::hierarchy::MemHierarchyConfig;

    fn run(width: u32, dram: DramConfig) -> (NodeConfig, PhaseResult) {
        let cfg = NodeConfig {
            core: CoreConfig::with_width(width, Frequency::ghz(2.0)),
            cores: 4,
            mem: MemHierarchyConfig::typical(dram),
            fidelity: Default::default(),
        };
        let mut node = Node::new(cfg.clone());
        let streams: Vec<_> = (0..4)
            .map(|c| {
                Box::new(
                    KernelSpec {
                        label: "k".into(),
                        iters: 3000,
                        loads: 2,
                        stores: 1,
                        flops: 4,
                        ialu: 1,
                        flop_dep: 0,
                        load_pattern: AddrPattern::Stream {
                            base: (c as u64 + 1) << 32,
                            stride: 8,
                            span: 1 << 24,
                        },
                        store_pattern: AddrPattern::Stream {
                            base: ((c as u64 + 1) << 32) + (1 << 28),
                            stride: 8,
                            span: 1 << 24,
                        },
                        mispredict_every: 0,
                        seed: c as u64,
                    }
                    .stream(),
                ) as Box<dyn sst_cpu::isa::InstrStream>
            })
            .collect();
        let phase = node.run_phase("k", streams);
        (cfg, phase)
    }

    #[test]
    fn report_is_internally_consistent() {
        let (cfg, phase) = run(2, DramConfig::ddr3_1333(2));
        let r = evaluate(&cfg, &phase, &ProcessCost::n45());
        assert!(r.perf > 0.0);
        assert!(r.power_w > 0.0);
        assert!((r.power_w - (r.core_power_w + r.cache_power_w + r.dram_power_w)).abs() < 1e-9);
        assert!(r.cost_usd > r.chip_cost_usd);
        assert!(r.perf_per_watt() > 0.0);
        assert!(r.perf_per_dollar() > 0.0);
        assert!((r.energy_j - r.power_w * r.time.as_secs_f64()).abs() / r.energy_j < 1e-6);
    }

    #[test]
    fn wider_cores_cost_and_burn_more() {
        let (c1, p1) = run(1, DramConfig::ddr3_1333(2));
        let (c8, p8) = run(8, DramConfig::ddr3_1333(2));
        let r1 = evaluate(&c1, &p1, &ProcessCost::n45());
        let r8 = evaluate(&c8, &p8, &ProcessCost::n45());
        assert!(r8.chip_area_mm2 > r1.chip_area_mm2);
        assert!(r8.chip_cost_usd > r1.chip_cost_usd);
        assert!(r8.perf >= r1.perf, "wider must not be slower");
        assert!(r8.core_power_w > r1.core_power_w);
    }

    #[test]
    fn gddr5_power_and_cost_exceed_ddr3() {
        let (c3, p3) = run(4, DramConfig::ddr3_1333(2));
        let (c5, p5) = run(4, DramConfig::gddr5(8));
        let r3 = evaluate(&c3, &p3, &ProcessCost::n45());
        let r5 = evaluate(&c5, &p5, &ProcessCost::n45());
        assert!(r5.mem_cost_usd > r3.mem_cost_usd);
        assert!(r5.dram_power_w > r3.dram_power_w);
        assert!(r5.perf >= r3.perf, "GDDR5 must be at least as fast");
    }
}
