//! LULESH proxy: the Livermore unstructured Lagrangian explicit
//! shock-hydrodynamics challenge problem.
//!
//! The second mini-app of the design-space study (Figs. 10–12): explicit
//! hydro with heavy per-zone floating-point work and plane-reuse stencil
//! access — noticeably more compute-dense than HPCCG, so it benefits more
//! from wide cores and less (relatively) from extreme memory bandwidth.

use crate::streams::{SeqStream, StencilStream, VectorStream};
use sst_core::time::SimTime;
use sst_cpu::isa::InstrStream;
use sst_net::mpi::{halo_exchange_3d, CommOp};

pub use crate::minife::Problem;

fn arena(core: usize) -> u64 {
    (core as u64 + 0x77) << 36
}

/// `steps` explicit timesteps over `nx³` zones per core.
pub fn hydro(core: usize, p: Problem, steps: u64) -> Box<dyn InstrStream> {
    let zones = p.elements();
    let plane = (p.nx * p.nx * 8).max(4096);
    let mut children: Vec<Box<dyn InstrStream>> = Vec::new();
    for step in 0..steps {
        // Stress/hourglass force computation: 24-point gather, ~180 flops.
        children.push(Box::new(StencilStream::new(
            "lulesh.forces",
            zones,
            24,
            120,
            plane,
            arena(core) + (step % 2) * (1 << 33),
        )));
        // Equation of state + field updates: hydro carries dozens of
        // zone-centered arrays; stream several of them per step.
        for field in 0..5u64 {
            children.push(Box::new(VectorStream::axpy(
                "lulesh.eos",
                zones,
                arena(core) + ((4 + field) << 34),
                (zones * 8).max(1 << 16),
            )));
        }
    }
    Box::new(SeqStream::new("lulesh.hydro", children))
}

/// Per-rank communication: 26-neighbor-ish halo approximated by faces,
/// plus the dt allreduce each step.
pub fn comm_script(
    rank: u32,
    dims: [u32; 3],
    face_bytes: u64,
    steps: u32,
    compute: SimTime,
) -> Vec<CommOp> {
    let mut ops = Vec::new();
    for _ in 0..steps {
        ops.extend(halo_exchange_3d(rank, dims, face_bytes));
        ops.push(CommOp::Compute(compute));
        ops.push(CommOp::Allreduce { bytes: 8 }); // dt reduction
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use sst_cpu::isa::Op;

    #[test]
    fn hydro_is_more_compute_dense_than_hpccg() {
        let density = |mut s: Box<dyn InstrStream>| {
            let (mut flops, mut mems) = (0u64, 0u64);
            while let Some(i) = s.next_instr() {
                if i.op.is_flop() {
                    flops += 1;
                }
                if i.op.is_mem() {
                    mems += 1;
                }
            }
            flops as f64 / mems as f64
        };
        let p = Problem::new(8);
        let lulesh = density(hydro(0, p, 1));
        let hpccg = density(crate::hpccg::solver(0, p, 1));
        assert!(
            lulesh > 1.8 * hpccg,
            "lulesh density {lulesh} vs hpccg {hpccg}"
        );
    }

    #[test]
    fn steps_scale_length() {
        let count = |steps| {
            let mut s = hydro(0, Problem::new(6), steps);
            std::iter::from_fn(move || s.next_instr()).count()
        };
        assert_eq!(count(4), 2 * count(2));
    }

    #[test]
    fn comm_has_dt_reduction() {
        let ops = comm_script(0, [2, 2, 1], 8 << 10, 3, SimTime::us(5));
        assert_eq!(
            ops.iter()
                .filter(|o| matches!(o, CommOp::Allreduce { .. }))
                .count(),
            3
        );
    }

    #[test]
    fn load_op_sanity() {
        let mut s = hydro(0, Problem::new(4), 1);
        assert!(std::iter::from_fn(move || s.next_instr()).any(|i| i.op == Op::Load));
    }
}
