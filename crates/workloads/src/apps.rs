//! The remaining application proxies: the ASC production codes of the
//! bandwidth-degradation study (CTH, SAGE, xNOBEL) and the rest of the
//! Mantevo mini-app table (miniMD, miniGhost, miniXyce, phdMesh, miniDSMC,
//! miniAero, miniExDyn, miniITC).
//!
//! Each proxy supplies what the experiments need: a node-level instruction
//! stream, a per-rank communication script, or both. Communication
//! signatures follow the published characterizations — CTH and SAGE move
//! few, very large messages per step (bandwidth-sensitive); Charon many
//! small ones (latency-sensitive, see [`crate::charon`]); xNOBEL overlaps
//! compute with medium messages until scale erodes the overlap window.

use crate::streams::{FeaStream, SeqStream, SpmvStream, StencilStream, VectorStream};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sst_core::time::SimTime;
use sst_cpu::isa::{Instr, InstrStream};
use sst_net::mpi::{halo_exchange_3d, CommOp};

pub use crate::minife::Problem;

// ---------------------------------------------------------------------------
// ASC production-code proxies (Fig. 9 workloads)
// ---------------------------------------------------------------------------

/// CTH (shock physics, structured AMR): per step, exchange *large* face
/// blocks with all neighbors, then compute. Sends must complete before the
/// step advances — no overlap — so runtime tracks injection bandwidth.
pub fn cth_comm_script(
    rank: u32,
    dims: [u32; 3],
    face_bytes: u64,
    steps: u32,
    compute: SimTime,
) -> Vec<CommOp> {
    let mut ops = Vec::new();
    for _ in 0..steps {
        ops.extend(halo_exchange_3d(rank, dims, face_bytes));
        ops.push(CommOp::Compute(compute));
    }
    ops
}

/// SAGE (hydro with adaptive meshing): like CTH — bulk-synchronous large
/// messages — plus a global reduction per step (load-balance metric).
pub fn sage_comm_script(
    rank: u32,
    dims: [u32; 3],
    face_bytes: u64,
    steps: u32,
    compute: SimTime,
) -> Vec<CommOp> {
    let mut ops = Vec::new();
    for _ in 0..steps {
        ops.extend(halo_exchange_3d(rank, dims, face_bytes));
        ops.push(CommOp::Compute(compute));
        ops.push(CommOp::Allreduce { bytes: 64 });
    }
    ops
}

/// xNOBEL: posts its sends, computes (overlapping the transfers), then
/// waits. While the compute block exceeds the transfer time the messages
/// are free; past that scale (or with degraded injection bandwidth) the
/// wait becomes visible — the falloff the study saw past 384 cores.
pub fn xnobel_comm_script(
    rank: u32,
    dims: [u32; 3],
    msg_bytes: u64,
    steps: u32,
    compute: SimTime,
) -> Vec<CommOp> {
    let mut ops = Vec::new();
    for _ in 0..steps {
        // Sends first, compute in the middle, receives after: the executor
        // charges transfer time in the background, so overlap is real.
        let halo = halo_exchange_3d(rank, dims, msg_bytes);
        let (sends, recvs): (Vec<_>, Vec<_>) = halo
            .into_iter()
            .partition(|o| matches!(o, CommOp::Send { .. }));
        ops.extend(sends);
        ops.push(CommOp::Compute(compute));
        ops.extend(recvs);
    }
    ops
}

// ---------------------------------------------------------------------------
// Remaining Mantevo mini-app proxies (Table 1)
// ---------------------------------------------------------------------------

/// miniMD: molecular-dynamics force computation — neighbor-list gathers
/// within an L2-scale window, Lennard-Jones FLOPs, tiny halo traffic.
pub struct MiniMdStream {
    atoms: u64,
    neighbors: u32,
    i: u64,
    slot: u32,
    base: u64,
    window: u64,
    rng: SmallRng,
    label: String,
}

impl MiniMdStream {
    pub fn new(core: usize, atoms: u64, neighbors: u32) -> MiniMdStream {
        MiniMdStream {
            atoms,
            neighbors,
            i: 0,
            slot: 0,
            base: (core as u64 + 0x3D) << 36,
            window: (atoms * 32).max(4096), // positions of nearby atoms
            rng: SmallRng::seed_from_u64(core as u64 ^ 0x3D17),
            label: "minimd.forces".into(),
        }
    }
    fn per_atom(&self) -> u32 {
        self.neighbors * 3 + 12 + 2
    }
}

impl InstrStream for MiniMdStream {
    fn next_instr(&mut self) -> Option<Instr> {
        if self.i >= self.atoms {
            return None;
        }
        let per = self.per_atom();
        let slot = self.slot;
        self.slot += 1;
        if self.slot == per {
            self.slot = 0;
            self.i += 1;
        }
        let nb3 = self.neighbors * 3;
        Some(if slot < nb3 {
            match slot % 3 {
                0 => {
                    let off = (self.rng.gen::<u64>() % (self.window / 8)) * 8;
                    Instr::load(self.base + off, 0)
                }
                1 => Instr::fmul(1), // dx*dx accumulation
                _ => Instr::fadd(1),
            }
        } else if slot < nb3 + 12 {
            // LJ force evaluation chain.
            if slot.is_multiple_of(2) {
                Instr::fmul(1)
            } else {
                Instr::fadd(1)
            }
        } else if slot == nb3 + 12 {
            Instr::store(self.base + (1 << 33) + self.i * 24)
        } else {
            Instr::alu()
        })
    }
    fn label(&self) -> &str {
        &self.label
    }
}

/// miniMD communication: small position halos + one energy allreduce.
pub fn minimd_comm_script(
    rank: u32,
    dims: [u32; 3],
    halo_bytes: u64,
    steps: u32,
    compute: SimTime,
) -> Vec<CommOp> {
    let mut ops = Vec::new();
    for _ in 0..steps {
        ops.extend(halo_exchange_3d(rank, dims, halo_bytes));
        ops.push(CommOp::Compute(compute));
        ops.push(CommOp::Allreduce { bytes: 8 });
    }
    ops
}

/// miniGhost: pure FDM/FVM stencil sweeps with BSPMA halo exchange (the
/// original "bulk synchronous parallel with message aggregation" proxy).
pub fn minighost_stream(core: usize, p: Problem, vars: u64) -> Box<dyn InstrStream> {
    let mut children: Vec<Box<dyn InstrStream>> = Vec::new();
    for v in 0..vars {
        children.push(Box::new(StencilStream::new(
            "minighost.sweep",
            p.elements(),
            7, // 7-point stencil
            10,
            (p.nx * p.nx * 8).max(4096),
            (core as u64 + 0x60 + v) << 36,
        )));
    }
    Box::new(SeqStream::new("minighost", children))
}

pub fn minighost_comm_script(
    rank: u32,
    dims: [u32; 3],
    face_bytes: u64,
    steps: u32,
    compute: SimTime,
) -> Vec<CommOp> {
    // Aggregated faces: one big message per neighbor per step.
    cth_comm_script(rank, dims, face_bytes, steps, compute)
}

/// miniXyce: circuit (RC-ladder) simulation — very sparse, irregular
/// matrix with short rows and latency-bound tiny messages.
pub fn minixyce_stream(core: usize, nodes: u64, steps: u64) -> Box<dyn InstrStream> {
    let mut children: Vec<Box<dyn InstrStream>> = Vec::new();
    for s in 0..steps {
        children.push(Box::new(SpmvStream::new(
            "minixyce.mna",
            nodes,
            4, // RC ladder: ~4 nnz per row
            nodes * 8,
            (core as u64 + 0x8C) << 36,
            core as u64 ^ s,
        )));
        children.push(Box::new(VectorStream::axpy(
            "minixyce.update",
            nodes,
            ((core as u64 + 0x8C) << 36) + (3 << 34),
            nodes * 8,
        )));
    }
    Box::new(SeqStream::new("minixyce", children))
}

pub fn minixyce_comm_script(rank: u32, ranks: u32, steps: u32, compute: SimTime) -> Vec<CommOp> {
    // Ring of tiny boundary exchanges + solver reduction.
    let next = (rank + 1) % ranks;
    let prev = (rank + ranks - 1) % ranks;
    let mut ops = Vec::new();
    for _ in 0..steps {
        ops.push(CommOp::Send {
            to: next,
            bytes: 64,
        });
        ops.push(CommOp::Send {
            to: prev,
            bytes: 64,
        });
        ops.push(CommOp::Recv { from: prev });
        ops.push(CommOp::Recv { from: next });
        ops.push(CommOp::Compute(compute));
        ops.push(CommOp::Allreduce { bytes: 8 });
    }
    ops
}

/// phdMesh: explicit FEM with contact detection — large irregular gathers
/// (proximity search over an octree-ish working set).
pub fn phdmesh_stream(core: usize, p: Problem) -> Box<dyn InstrStream> {
    Box::new(FeaStream::new(
        "phdmesh.contact",
        p.elements(),
        90, // geometric predicates, less dense than implicit FEA
        p.rows() * 24,
        p.matrix_bytes() * 2, // search structure is large and scattered
        (core as u64 + 0xBD) << 36,
        core as u64 ^ 0xBD,
    ))
}

/// miniDSMC: direct-simulation Monte Carlo — random particle access and
/// collision FLOPs (under development in the paper's table).
pub fn minidsmc_stream(core: usize, particles: u64) -> Box<dyn InstrStream> {
    Box::new(MiniMdStream {
        atoms: particles,
        neighbors: 6,
        i: 0,
        slot: 0,
        base: (core as u64 + 0xD5) << 36,
        window: (particles * 64).max(8192),
        rng: SmallRng::seed_from_u64(core as u64 ^ 0xD5),
        label: "minidsmc.collide".into(),
    })
}

/// miniAero: explicit unstructured-grid aero/fluids (under development).
pub fn miniaero_stream(core: usize, p: Problem) -> Box<dyn InstrStream> {
    Box::new(StencilStream::new(
        "miniaero.flux",
        p.elements(),
        16, // face-based flux gathers
        60,
        (p.nx * p.nx * 8).max(4096),
        (core as u64 + 0xAE) << 36,
    ))
}

/// miniExDyn: explicit-dynamics finite elements.
pub fn miniexdyn_stream(core: usize, p: Problem) -> Box<dyn InstrStream> {
    Box::new(FeaStream::new(
        "miniexdyn.step",
        p.elements(),
        240,
        p.rows() * 24,
        p.rows() * 24, // explicit: scatter to nodal forces, not a matrix
        (core as u64 + 0xED) << 36,
        core as u64 ^ 0xED,
    ))
}

/// miniITC: implicit thermal conduction — SpMV-dominated like HPCCG but on
/// a 7-point operator.
pub fn miniitc_stream(core: usize, p: Problem, iters: u64) -> Box<dyn InstrStream> {
    let base = (core as u64 + 0x17C) << 36;
    let mut children: Vec<Box<dyn InstrStream>> = Vec::new();
    for it in 0..iters {
        children.push(Box::new(SpmvStream::new(
            "miniitc.spmv",
            p.rows(),
            7,
            p.vector_bytes(),
            base,
            core as u64 ^ (it << 4),
        )));
        children.push(Box::new(VectorStream::dot(
            "miniitc.dot",
            p.rows(),
            base + (3 << 34),
            p.vector_bytes(),
        )));
    }
    Box::new(SeqStream::new("miniitc", children))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sst_cpu::isa::Op;

    fn drain(mut s: Box<dyn InstrStream>) -> Vec<Instr> {
        std::iter::from_fn(move || s.next_instr()).collect()
    }

    #[test]
    fn cth_moves_much_more_data_than_charon_style_halos() {
        let cth = cth_comm_script(0, [2, 2, 2], 2 << 20, 1, SimTime::us(1));
        let bytes: u64 = cth
            .iter()
            .filter_map(|o| match o {
                CommOp::Send { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .sum();
        assert_eq!(bytes, 6 * (2 << 20));
    }

    #[test]
    fn xnobel_computes_between_sends_and_recvs() {
        let ops = xnobel_comm_script(0, [2, 2, 2], 512 << 10, 1, SimTime::ms(1));
        let send_pos = ops
            .iter()
            .position(|o| matches!(o, CommOp::Send { .. }))
            .unwrap();
        let compute_pos = ops
            .iter()
            .position(|o| matches!(o, CommOp::Compute(_)))
            .unwrap();
        let recv_pos = ops
            .iter()
            .position(|o| matches!(o, CommOp::Recv { .. }))
            .unwrap();
        assert!(send_pos < compute_pos && compute_pos < recv_pos);
    }

    #[test]
    fn minimd_gathers_within_window() {
        let s = MiniMdStream::new(0, 200, 20);
        let base = s.base;
        let window = s.window;
        for i in drain(Box::new(s)) {
            if i.op == Op::Load && i.addr < base + (1 << 33) {
                assert!(i.addr >= base && i.addr < base + window);
            }
        }
    }

    #[test]
    fn all_table1_streams_produce_instructions() {
        let p = Problem::new(6);
        let streams: Vec<Box<dyn InstrStream>> = vec![
            Box::new(MiniMdStream::new(0, 100, 10)),
            minighost_stream(0, p, 2),
            minixyce_stream(0, 200, 2),
            phdmesh_stream(0, p),
            minidsmc_stream(0, 100),
            miniaero_stream(0, p),
            miniexdyn_stream(0, p),
            miniitc_stream(0, p, 2),
        ];
        for s in streams {
            let label = s.label().to_string();
            let v = drain(s);
            assert!(!v.is_empty(), "{label} produced nothing");
        }
    }

    #[test]
    fn comm_scripts_run_clean() {
        use sst_net::mpi::MpiSim;
        use sst_net::network::{NetConfig, Network};
        use sst_net::topology::Torus3D;
        let p = 8u32;
        let dims = [2, 2, 2];
        for mk in [
            cth_comm_script as fn(u32, [u32; 3], u64, u32, SimTime) -> Vec<CommOp>,
            sage_comm_script,
            xnobel_comm_script,
            minimd_comm_script,
            minighost_comm_script,
        ] {
            let mut net = Network::new(Box::new(Torus3D::fitting(p)), NetConfig::xt5());
            let scripts: Vec<_> = (0..p)
                .map(|r| mk(r, dims, 64 << 10, 2, SimTime::us(30)))
                .collect();
            let run = MpiSim::new(&mut net, 1).run(scripts);
            assert!(run.end_time > SimTime::ZERO);
        }
        let mut net = Network::new(Box::new(Torus3D::fitting(p)), NetConfig::xt5());
        let scripts: Vec<_> = (0..p)
            .map(|r| minixyce_comm_script(r, p, 2, SimTime::us(5)))
            .collect();
        assert!(MpiSim::new(&mut net, 1).run(scripts).messages > 0);
    }
}
