//! The mini-app registry — Table 1 of the paper, enumerable at runtime
//! (`sst list-miniapps`).

use serde::{Deserialize, Serialize};

/// Development status as given in the paper's table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Status {
    Released,
    New,
    UnderDevelopment,
    /// Not a Mantevo mini-app: a production application proxy used by the
    /// experiments (Charon, CTH, SAGE, xNOBEL, LULESH).
    AppProxy,
}

/// One registry entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MiniappInfo {
    pub name: &'static str,
    pub description: &'static str,
    pub status: Status,
    /// Module implementing the proxy in this crate.
    pub module: &'static str,
}

/// Every workload proxy this crate implements: the full Mantevo table plus
/// the production-application proxies the experiments need.
pub fn all() -> Vec<MiniappInfo> {
    vec![
        MiniappInfo {
            name: "HPCCG",
            description: "Sparse linear algebra (Krylov) solver",
            status: Status::Released,
            module: "hpccg",
        },
        MiniappInfo {
            name: "miniFE",
            description: "Unstructured implicit FEM/FVM",
            status: Status::Released,
            module: "minife",
        },
        MiniappInfo {
            name: "phdMesh",
            description: "Explicit FEM, contact detection",
            status: Status::Released,
            module: "apps",
        },
        MiniappInfo {
            name: "miniMD",
            description: "Molecular dynamics for force computations",
            status: Status::Released,
            module: "apps",
        },
        MiniappInfo {
            name: "miniXyce",
            description: "Circuit RC ladder",
            status: Status::Released,
            module: "apps",
        },
        MiniappInfo {
            name: "miniExDyn",
            description: "Explicit Dynamics Finite Element",
            status: Status::New,
            module: "apps",
        },
        MiniappInfo {
            name: "miniITC",
            description: "Implicit Thermal Conduction Finite Element",
            status: Status::New,
            module: "apps",
        },
        MiniappInfo {
            name: "miniGhost",
            description: "FDM/FVM",
            status: Status::New,
            module: "apps",
        },
        MiniappInfo {
            name: "miniAero",
            description: "Aero/fluids",
            status: Status::UnderDevelopment,
            module: "apps",
        },
        MiniappInfo {
            name: "miniDSMC",
            description: "Particle-based simulation of low-density fluids",
            status: Status::UnderDevelopment,
            module: "apps",
        },
        MiniappInfo {
            name: "LULESH",
            description: "Hydrodynamics challenge problem (LLNL)",
            status: Status::AppProxy,
            module: "lulesh",
        },
        MiniappInfo {
            name: "Charon",
            description: "Semiconductor device simulation (drift-diffusion FEM)",
            status: Status::AppProxy,
            module: "charon",
        },
        MiniappInfo {
            name: "CTH",
            description: "Shock physics with structured AMR",
            status: Status::AppProxy,
            module: "apps",
        },
        MiniappInfo {
            name: "SAGE",
            description: "Adaptive-grid Eulerian hydrodynamics",
            status: Status::AppProxy,
            module: "apps",
        },
        MiniappInfo {
            name: "xNOBEL",
            description: "Eulerian solid dynamics with comm/compute overlap",
            status: Status::AppProxy,
            module: "apps",
        },
    ]
}

/// Look up one entry by (case-insensitive) name.
pub fn find(name: &str) -> Option<MiniappInfo> {
    all()
        .into_iter()
        .find(|m| m.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_mantevo_entries_present() {
        // The ten Mantevo rows of Table 1.
        for name in [
            "HPCCG",
            "miniFE",
            "phdMesh",
            "miniMD",
            "miniXyce",
            "miniExDyn",
            "miniITC",
            "miniGhost",
            "miniAero",
            "miniDSMC",
        ] {
            assert!(find(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn statuses_match_paper_annotations() {
        assert_eq!(find("miniGhost").unwrap().status, Status::New);
        assert_eq!(find("miniAero").unwrap().status, Status::UnderDevelopment);
        assert_eq!(find("HPCCG").unwrap().status, Status::Released);
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(find("minife").is_some());
        assert!(find("MINIFE").is_some());
        assert!(find("nonexistent").is_none());
    }

    #[test]
    fn no_duplicate_names() {
        let names: Vec<_> = all().iter().map(|m| m.name.to_lowercase()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
    }
}
