//! Composable instruction-stream generators for mini-app phases.
//!
//! Each generator emits the dynamic instruction skeleton of one numerical
//! kernel — op mix, dependency structure, and address stream — with
//! working-set sizes as parameters, so the same proxy can be made
//! L1-resident or DRAM-streaming the way the real codes' problems scale.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
#[cfg(test)]
use sst_cpu::isa::Op;
use sst_cpu::isa::{Instr, InstrStream};

/// Run child streams one after another.
pub struct SeqStream {
    label: String,
    children: Vec<Box<dyn InstrStream>>,
    idx: usize,
}

impl SeqStream {
    pub fn new(label: impl Into<String>, children: Vec<Box<dyn InstrStream>>) -> SeqStream {
        SeqStream {
            label: label.into(),
            children,
            idx: 0,
        }
    }
}

impl InstrStream for SeqStream {
    fn next_instr(&mut self) -> Option<Instr> {
        while self.idx < self.children.len() {
            if let Some(i) = self.children[self.idx].next_instr() {
                return Some(i);
            }
            self.idx += 1;
        }
        None
    }
    fn label(&self) -> &str {
        &self.label
    }
}

/// Sparse matrix–vector product (CSR): the inner loop of every Krylov
/// solver. Per row: stream `nnz` (index, value) pairs, gather `nnz` vector
/// entries from a `vector_span` window, accumulate with a serial FMA chain,
/// and store the result — low FLOP:byte, bandwidth-bound at scale.
pub struct SpmvStream {
    rows: u64,
    nnz_per_row: u32,
    matrix_base: u64,
    vector_base: u64,
    vector_span: u64,
    out_base: u64,
    row: u64,
    slot: u32,
    rng: SmallRng,
    label: String,
}

impl SpmvStream {
    pub fn new(
        label: impl Into<String>,
        rows: u64,
        nnz_per_row: u32,
        vector_span: u64,
        base: u64,
        seed: u64,
    ) -> SpmvStream {
        assert!(nnz_per_row >= 1);
        SpmvStream {
            rows,
            nnz_per_row,
            matrix_base: base,
            vector_base: base + (1 << 34),
            vector_span: vector_span.max(64),
            out_base: base + (2 << 34),
            row: 0,
            slot: 0,
            rng: SmallRng::seed_from_u64(seed ^ 0x59A1),
            label: label.into(),
        }
    }

    /// Instructions emitted per row.
    pub fn instrs_per_row(nnz: u32) -> u64 {
        // per nnz: idx load + val load + vec gather + FMA (2 flop ops) = 5
        // per row: + store + loop alu
        5 * nnz as u64 + 2
    }
    /// Total instructions this stream will emit.
    pub fn len(&self) -> u64 {
        self.rows * Self::instrs_per_row(self.nnz_per_row)
    }
    /// True when the stream will emit no instructions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl InstrStream for SpmvStream {
    fn next_instr(&mut self) -> Option<Instr> {
        if self.row >= self.rows {
            return None;
        }
        let per = 5 * self.nnz_per_row + 2;
        let slot = self.slot;
        self.slot += 1;
        if self.slot == per {
            self.slot = 0;
            self.row += 1;
        }

        let nnz_zone = 5 * self.nnz_per_row;
        Some(if slot < nnz_zone {
            let k = (slot / 5) as u64;
            let within = slot % 5;
            let flat = (self.row * self.nnz_per_row as u64 + k) * 8;
            match within {
                0 => Instr::load(self.matrix_base + flat, 0), // column index
                1 => Instr::load(self.matrix_base + (1 << 33) + flat, 0), // value
                2 => {
                    // vector gather: random within the local vector window
                    let off = (self.rng.gen::<u64>() % (self.vector_span / 8)) * 8;
                    Instr::load(self.vector_base + off, 0)
                }
                // val * x[j]: consumes a gather issued two unrolled
                // iterations earlier — software pipelining / out-of-order
                // slack keeps the multiply off the load's critical path.
                3 => Instr::fmul(11),
                // Accumulate into one of several rotating partial sums
                // (dep reaches back one nnz group): compilers unroll the
                // reduction, so the chain does not serialize the loop.
                _ => Instr::fadd(5),
            }
        } else if slot == nnz_zone {
            Instr::store(self.out_base + self.row * 8)
        } else {
            Instr::alu()
        })
    }

    fn label(&self) -> &str {
        &self.label
    }
}

/// Vector kernels: dot products and AXPYs — pure streaming with high
/// independence (the other half of a Krylov iteration).
pub struct VectorStream {
    n: u64,
    /// loads per element (2 for dot/axpy).
    loads: u32,
    /// stores per element (0 for dot, 1 for axpy).
    stores: u32,
    flops: u32,
    base: u64,
    span: u64,
    i: u64,
    slot: u32,
    label: String,
}

impl VectorStream {
    pub fn dot(label: impl Into<String>, n: u64, base: u64, span: u64) -> VectorStream {
        VectorStream {
            n,
            loads: 2,
            stores: 0,
            flops: 2,
            base,
            span: span.max(64),
            i: 0,
            slot: 0,
            label: label.into(),
        }
    }

    pub fn axpy(label: impl Into<String>, n: u64, base: u64, span: u64) -> VectorStream {
        VectorStream {
            n,
            loads: 2,
            stores: 1,
            flops: 2,
            base,
            span: span.max(64),
            i: 0,
            slot: 0,
            label: label.into(),
        }
    }

    pub fn len(&self) -> u64 {
        self.n * (self.loads + self.stores + self.flops) as u64
    }
    /// True when the stream will emit no instructions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl InstrStream for VectorStream {
    fn next_instr(&mut self) -> Option<Instr> {
        if self.i >= self.n {
            return None;
        }
        let per = self.loads + self.flops + self.stores;
        let slot = self.slot;
        self.slot += 1;
        if self.slot == per {
            self.slot = 0;
            self.i += 1;
        }
        let idx = (self.i * 8) % self.span;
        Some(if slot < self.loads {
            Instr::load(self.base + slot as u64 * (1 << 30) + idx, 0)
        } else if slot < self.loads + self.flops {
            // Software-pipelined: the arithmetic consumes loads issued two
            // elements earlier, so issue never stalls on the loads and the
            // stream stays bandwidth-limited (as vectorized BLAS-1 code is).
            if slot == self.loads {
                Instr::fmul(0)
            } else {
                Instr::fadd(10)
            }
        } else {
            // AXPY updates y in place: the store hits the line the second
            // load just brought in (write-back traffic is per line, not
            // per element — as in real vectorized BLAS-1).
            Instr::store(self.base + (1 << 30) + idx)
        })
    }

    fn label(&self) -> &str {
        &self.label
    }
}

/// Finite-element assembly: per element, gather a small set of node data
/// (high locality), run a dense FLOP-heavy element computation with real
/// dependency chains, then scatter-add into the global matrix
/// (read-modify-write pairs over a large span).
pub struct FeaStream {
    elements: u64,
    gathers: u32,
    flops_per_element: u32,
    scatters: u32,
    /// Accesses to the element-local workspace (the 8x8 operator and
    /// Jacobian live on the stack): L1-resident by construction, these are
    /// what give real assembly kernels their high L1 hit rates.
    workspace: u32,
    node_base: u64,
    node_span: u64,
    matrix_base: u64,
    matrix_span: u64,
    elem: u64,
    slot: u32,
    rng: SmallRng,
    label: String,
}

impl FeaStream {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        label: impl Into<String>,
        elements: u64,
        flops_per_element: u32,
        node_span: u64,
        matrix_span: u64,
        base: u64,
        seed: u64,
    ) -> FeaStream {
        FeaStream {
            elements,
            gathers: 24, // 8 nodes x coordinates
            flops_per_element,
            // The element operator accumulates in registers/stack; only a
            // handful of line-granular flushes reach the global arrays per
            // element (which keeps assembly compute-dense and memory-speed
            // insensitive, as measured — Fig. 3 — even though the *hit
            // rates* of those flushes differ wildly between codes, Fig. 4).
            scatters: 3,
            workspace: 218,
            node_base: base,
            node_span: node_span.max(64),
            matrix_base: base + (1 << 34),
            matrix_span: matrix_span.max(64),
            elem: 0,
            slot: 0,
            rng: SmallRng::seed_from_u64(seed ^ 0xFEA),
            label: label.into(),
        }
    }

    pub fn instrs_per_element(&self) -> u64 {
        (self.gathers + self.workspace + self.flops_per_element + 2 * self.scatters + 2) as u64
    }
    pub fn len(&self) -> u64 {
        self.elements * self.instrs_per_element()
    }
    /// True when the stream will emit no instructions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl InstrStream for FeaStream {
    fn next_instr(&mut self) -> Option<Instr> {
        if self.elem >= self.elements {
            return None;
        }
        let per = self.instrs_per_element() as u32;
        let slot = self.slot;
        self.slot += 1;
        if self.slot == per {
            self.slot = 0;
            self.elem += 1;
        }

        let g = self.gathers;
        let wk = self.workspace;
        let f = self.flops_per_element;
        Some(if slot < g {
            // Node gathers: elements walk the mesh, so consecutive elements
            // share nodes — emulate with a slowly advancing window.
            let window = 64 * 64u64; // 4 KiB hot window
            let base = self.node_base + (self.elem * 32) % self.node_span;
            let off = (self.rng.gen::<u64>() % window) & !7;
            Instr::load((base + off) % (self.node_base + self.node_span), 0)
        } else if slot < g + wk {
            // Element-local workspace (stack): a 2 KiB window, pure L1.
            let off = ((slot - g) as u64 * 8) % 2048;
            if (slot - g) % 3 == 2 {
                Instr::store(self.node_base + (7 << 30) + off)
            } else {
                Instr::load(self.node_base + (7 << 30) + off, 0)
            }
        } else if slot < g + wk + f {
            // Dense element computation: moderate ILP (chains of ~4).
            let k = slot - g - wk;
            let dep = if k.is_multiple_of(4) { 0 } else { 1 };
            if k.is_multiple_of(2) {
                Instr::fmul(dep)
            } else {
                Instr::fadd(dep)
            }
        } else if slot < g + wk + f + 2 * self.scatters {
            // Scatter-add: load then store the same random matrix entry.
            let k = slot - g - wk - f;
            if k.is_multiple_of(2) {
                let off = (self.rng.gen::<u64>() % (self.matrix_span / 8)) * 8;
                Instr::load(self.matrix_base + off, 0)
            } else {
                // store to the address just loaded — reuse rng state by
                // regenerating deterministically is awkward; approximate
                // with an adjacent strided store within the same span.
                let off = (self.rng.gen::<u64>() % (self.matrix_span / 8)) * 8;
                Instr::store(self.matrix_base + off)
            }
        } else {
            Instr::alu()
        })
    }

    fn label(&self) -> &str {
        &self.label
    }
}

/// Matrix-structure generation: integer-dominated graph construction —
/// per nonzero, neighbor-id arithmetic, an irregular connectivity-map
/// lookup (dependent load over a multi-MB window), and a CSR store. Little
/// FP, poor vectorizability, latency-bound — which is why this phase gains
/// nothing from accelerators.
pub struct StructGenStream {
    rows: u64,
    nnz_per_row: u32,
    base: u64,
    /// Connectivity-map span the lookups wander over.
    map_span: u64,
    row: u64,
    slot: u32,
    rng: SmallRng,
    label: String,
}

impl StructGenStream {
    pub fn new(
        label: impl Into<String>,
        rows: u64,
        nnz_per_row: u32,
        base: u64,
    ) -> StructGenStream {
        StructGenStream {
            rows,
            nnz_per_row,
            base,
            map_span: (rows * 32).max(1 << 16),
            row: 0,
            slot: 0,
            rng: SmallRng::seed_from_u64(base ^ 0x5796),
            label: label.into(),
        }
    }
    const PER_NNZ: u64 = 8; // 4 alu + 2 map loads + dependent alu + store
    pub fn len(&self) -> u64 {
        self.rows * (Self::PER_NNZ * self.nnz_per_row as u64 + 2)
    }
    /// True when the stream will emit no instructions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl InstrStream for StructGenStream {
    fn next_instr(&mut self) -> Option<Instr> {
        if self.row >= self.rows {
            return None;
        }
        let per = Self::PER_NNZ as u32 * self.nnz_per_row + 2;
        let slot = self.slot;
        self.slot += 1;
        if self.slot == per {
            self.slot = 0;
            self.row += 1;
        }
        Some(if slot < Self::PER_NNZ as u32 * self.nnz_per_row {
            match slot % Self::PER_NNZ as u32 {
                0..=3 => Instr::alu(), // neighbor index arithmetic
                4 | 5 => {
                    // connectivity-map lookup (irregular)
                    let off = (self.rng.gen::<u64>() % (self.map_span / 8)) * 8;
                    Instr::load(self.base + (1 << 33) + off, 1)
                }
                6 => Instr {
                    op: sst_cpu::isa::Op::IAlu,
                    addr: 0,
                    dep_dist: 1, // consumes the lookup
                },
                _ => Instr::store(
                    self.base
                        + (self.row * self.nnz_per_row as u64
                            + (slot / Self::PER_NNZ as u32) as u64)
                            * 8,
                ),
            }
        } else {
            Instr::alu()
        })
    }

    fn label(&self) -> &str {
        &self.label
    }
}

/// A 3-D structured-grid stencil sweep (FDM/FVM, hydro): reads a handful of
/// neighboring planes (mixed reuse), heavy FP per point, streaming stores.
pub struct StencilStream {
    points: u64,
    stencil_loads: u32,
    flops_per_point: u32,
    plane_bytes: u64,
    base: u64,
    i: u64,
    slot: u32,
    label: String,
}

impl StencilStream {
    pub fn new(
        label: impl Into<String>,
        points: u64,
        stencil_loads: u32,
        flops_per_point: u32,
        plane_bytes: u64,
        base: u64,
    ) -> StencilStream {
        StencilStream {
            points,
            stencil_loads,
            flops_per_point,
            plane_bytes: plane_bytes.max(64),
            base,
            i: 0,
            slot: 0,
            label: label.into(),
        }
    }
    pub fn instrs_per_point(&self) -> u64 {
        (self.stencil_loads + self.flops_per_point + 2) as u64
    }
    pub fn len(&self) -> u64 {
        self.points * self.instrs_per_point()
    }
    /// True when the stream will emit no instructions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl InstrStream for StencilStream {
    fn next_instr(&mut self) -> Option<Instr> {
        if self.i >= self.points {
            return None;
        }
        let per = self.instrs_per_point() as u32;
        let slot = self.slot;
        self.slot += 1;
        if self.slot == per {
            self.slot = 0;
            self.i += 1;
        }
        Some(if slot < self.stencil_loads {
            // Neighbors at +-1 point, +-1 row, +-1 plane from a marching
            // cursor: plane-distance offsets give L2/L3-resident reuse.
            let cursor = self.base + self.i * 8;
            let k = slot as u64;
            let off = match k % 3 {
                0 => 8 * (k / 3 + 1),
                1 => 512 * (k / 3 + 1),
                _ => self.plane_bytes * (k / 3 + 1),
            };
            Instr::load(cursor + off, 0)
        } else if slot < self.stencil_loads + self.flops_per_point {
            // Several interleaved dependency chains (the vectorizable
            // structure of hydro kernels): wide cores can exploit the ILP.
            let k = slot - self.stencil_loads;
            let dep = if k < 6 { 0 } else { 6 };
            if k.is_multiple_of(2) {
                Instr::fadd(dep)
            } else {
                Instr::fmul(dep)
            }
        } else if slot == self.stencil_loads + self.flops_per_point {
            Instr::store(self.base + (1 << 32) + self.i * 8)
        } else {
            Instr::alu()
        })
    }

    fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(mut s: impl InstrStream) -> Vec<Instr> {
        std::iter::from_fn(move || s.next_instr()).collect()
    }

    #[test]
    fn spmv_emits_declared_length_and_mix() {
        let s = SpmvStream::new("spmv", 100, 27, 1 << 20, 0, 1);
        let expected = s.len();
        let v = drain(s);
        assert_eq!(v.len() as u64, expected);
        let loads = v.iter().filter(|i| i.op == Op::Load).count();
        let flops = v.iter().filter(|i| i.op.is_flop()).count();
        let stores = v.iter().filter(|i| i.op == Op::Store).count();
        assert_eq!(loads, 100 * 27 * 3);
        assert_eq!(flops, 100 * 27 * 2);
        assert_eq!(stores, 100);
        // FLOP:byte well under 1 (memory bound): 54 flops vs 28 loads*8B.
        assert!((flops as f64) < (loads as f64 * 8.0));
    }

    #[test]
    fn spmv_gathers_stay_in_vector_window() {
        let span = 1 << 16;
        let s = SpmvStream::new("spmv", 50, 10, span, 0, 2);
        let vb = s.vector_base;
        for i in drain(s) {
            if i.op == Op::Load && i.addr >= vb && i.addr < vb + (1 << 30) {
                assert!(i.addr < vb + span);
            }
        }
    }

    #[test]
    fn vector_streams_have_streaming_addresses() {
        let d = VectorStream::dot("dot", 1000, 0, 1 << 20);
        let expected = d.len();
        let v = drain(d);
        assert_eq!(v.len() as u64, expected);
        let loads: Vec<u64> = v
            .iter()
            .filter(|i| i.op == Op::Load && i.addr < 1 << 30)
            .map(|i| i.addr)
            .collect();
        assert!(loads.windows(2).all(|w| w[1] >= w[0]), "monotone stream");
        assert!(v.iter().all(|i| i.op != Op::Store));
        let a = VectorStream::axpy("axpy", 10, 0, 1 << 20);
        let va = drain(a);
        assert_eq!(va.iter().filter(|i| i.op == Op::Store).count(), 10);
    }

    #[test]
    fn fea_is_flop_dense() {
        let f = FeaStream::new("fea", 50, 300, 1 << 16, 1 << 24, 0, 3);
        let expected = f.len();
        let v = drain(f);
        assert_eq!(v.len() as u64, expected);
        let flops = v.iter().filter(|i| i.op.is_flop()).count() as f64;
        let mems = v.iter().filter(|i| i.op.is_mem()).count() as f64;
        assert!(
            flops / mems > 1.0,
            "assembly must be compute-dense: {flops}/{mems}"
        );
    }

    #[test]
    fn structgen_is_integer_heavy() {
        let s = StructGenStream::new("gen", 100, 27, 0);
        let expected = s.len();
        let v = drain(s);
        assert_eq!(v.len() as u64, expected);
        assert_eq!(v.iter().filter(|i| i.op.is_flop()).count(), 0);
        assert!(v.iter().filter(|i| i.op == Op::IAlu).count() > v.len() / 2);
    }

    #[test]
    fn stencil_mix() {
        let s = StencilStream::new("st", 200, 27, 40, 1 << 16, 0);
        let expected = s.len();
        let v = drain(s);
        assert_eq!(v.len() as u64, expected);
        assert_eq!(v.iter().filter(|i| i.op == Op::Load).count(), 200 * 27);
        assert_eq!(v.iter().filter(|i| i.op == Op::Store).count(), 200);
    }

    #[test]
    fn seq_stream_chains_children() {
        let a = VectorStream::dot("a", 5, 0, 1 << 12);
        let b = VectorStream::axpy("b", 5, 1 << 20, 1 << 12);
        let total = a.len() + b.len();
        let s = SeqStream::new("ab", vec![Box::new(a), Box::new(b)]);
        assert_eq!(drain(s).len() as u64, total);
    }

    #[test]
    fn streams_are_deterministic() {
        let v1 = drain(SpmvStream::new("s", 40, 9, 1 << 14, 0, 7));
        let v2 = drain(SpmvStream::new("s", 40, 9, 1 << 14, 0, 7));
        assert_eq!(v1, v2);
    }
}
