//! # sst-workloads — mini-application proxies
//!
//! Workload frontends for the SST reproduction: Mantevo-style
//! mini-application *proxies*, each a generator of calibrated instruction
//! streams (for the node/processor models), communication scripts (for the
//! network models), and — where the studies need them — GPU kernel
//! descriptors.
//!
//! The proxies substitute for the real applications and mini-apps of the
//! studies (which need real inputs and testbeds); each captures the
//! published performance signature of its parent: op mix, FLOP:byte ratio,
//! working-set structure, and message size/count behavior. See DESIGN.md's
//! substitution table.
//!
//! * [`streams`] — composable kernel generators (SpMV, stencil, FEA, …).
//! * [`registry`] — the enumerable mini-app table (Table 1).
//! * [`minife`], [`hpccg`], [`charon`], [`lulesh`], [`apps`] — the proxies.

pub mod apps;
pub mod charon;
pub mod hpccg;
pub mod lulesh;
pub mod minife;
pub mod registry;
pub mod streams;

pub use minife::Problem;
pub use registry::{all as all_miniapps, find as find_miniapp, MiniappInfo, Status};
