//! Charon proxy: the production semiconductor device simulator
//! (drift-diffusion, stabilized FEM) that miniFE is validated against.
//!
//! Charon is the "parent application" side of the validation study:
//!
//! * Its **FEA** phase resembles miniFE's but revisits far more auxiliary
//!   structure (material models, Jacobian workspace), giving it markedly
//!   higher L2/L3 hit rates — the dimension on which miniFE is *not*
//!   predictive (Fig. 4).
//! * Its **solver** is BiCGSTAB (two SpMV and more vector work per
//!   iteration than CG) behind either an ILU(0) or an "ML" (algebraic
//!   multigrid) preconditioner. ML sends 40+% more messages per core —
//!   the mechanism behind its distinct weak-scaling curve (Fig. 5).
//! * Communication is dominated by **many small messages**, which is why
//!   Charon is insensitive to injection bandwidth (Fig. 9).

use crate::streams::{FeaStream, SeqStream, SpmvStream, VectorStream};
use sst_core::time::SimTime;
use sst_cpu::isa::InstrStream;
use sst_net::mpi::{halo_exchange_3d, CommOp};

pub use crate::minife::Problem;

/// Which preconditioner the BiCGSTAB solve uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precond {
    /// Incomplete factorization, no fill.
    Ilu0,
    /// Multilevel (algebraic multigrid) — more, smaller messages.
    Ml,
}

fn arena(core: usize) -> u64 {
    (core as u64 + 0x51) << 36
}

/// Charon's assembly phase: heavier per-element physics than miniFE, and
/// — crucially for the cache study — a much *larger* irregular footprint:
/// the production code scatters into the Jacobian, the residual, and
/// auxiliary material/state arrays, so its deep-cache (L2/L3) hit rates
/// are surprisingly low. miniFE's simplified single-matrix assembly reuses
/// several-fold more (Fig. 4's divergence).
pub fn fea(core: usize, p: Problem) -> Box<dyn InstrStream> {
    Box::new(FeaStream::new(
        "charon.fea",
        p.elements(),
        560, // drift-diffusion physics per element
        p.rows() * 24,
        // Jacobian + residual + material-state arrays: ~4x the matrix.
        p.matrix_bytes() * 4,
        arena(core),
        core as u64 ^ 0xC4A0,
    ))
}

/// One BiCGSTAB iteration: two SpMVs (plus preconditioner application),
/// four dots, six AXPYs.
fn bicgstab_iteration(
    core: usize,
    p: Problem,
    precond: Precond,
    iter: u64,
) -> Vec<Box<dyn InstrStream>> {
    let base = arena(core);
    let n = p.rows();
    let mut v: Vec<Box<dyn InstrStream>> = Vec::new();
    for half in 0..2u64 {
        v.push(Box::new(SpmvStream::new(
            "charon.spmv",
            n,
            27,
            p.vector_bytes(),
            base,
            (core as u64) ^ (iter << 8) ^ half,
        )));
        // Preconditioner application.
        match precond {
            Precond::Ilu0 => {
                // Triangular solves: another sparse sweep with serial
                // dependencies (shorter rows).
                v.push(Box::new(SpmvStream::new(
                    "charon.ilu0",
                    n,
                    13,
                    p.vector_bytes(),
                    base + (8 << 34),
                    (core as u64) ^ (iter << 9) ^ half,
                )));
            }
            Precond::Ml => {
                // V-cycle: smoother at fine level + coarse-grid sweeps
                // (1/8 the rows per level).
                let mut rows = n;
                for level in 0..3u64 {
                    v.push(Box::new(SpmvStream::new(
                        "charon.ml.smooth",
                        rows.max(64),
                        9,
                        (rows * 8).max(4096),
                        base + ((9 + level) << 34),
                        (core as u64) ^ (iter << 10) ^ level,
                    )));
                    rows /= 8;
                }
            }
        }
        for k in 0..2u64 {
            v.push(Box::new(VectorStream::dot(
                "charon.dot",
                n,
                base + ((13 + k) << 34),
                p.vector_bytes(),
            )));
        }
        for k in 0..3u64 {
            v.push(Box::new(VectorStream::axpy(
                "charon.axpy",
                n,
                base + ((15 + k) << 34),
                p.vector_bytes(),
            )));
        }
    }
    v
}

/// The BiCGSTAB solver phase.
pub fn solver(core: usize, p: Problem, precond: Precond, iters: u64) -> Box<dyn InstrStream> {
    let mut children = Vec::new();
    for it in 0..iters {
        children.extend(bicgstab_iteration(core, p, precond, it));
    }
    Box::new(SeqStream::new("charon.solver", children))
}

/// Per-rank communication for one BiCGSTAB iteration.
///
/// Charon's hallmark: many small messages. ILU(0) exchanges one small halo
/// per SpMV; ML adds coarse-level halos — 40+% more messages per core,
/// each smaller — plus the same four dot-product allreduces.
pub fn solver_comm_script(
    rank: u32,
    dims: [u32; 3],
    precond: Precond,
    face_bytes: u64,
    iters: u32,
    compute: SimTime,
) -> Vec<CommOp> {
    let mut ops = Vec::new();
    for _ in 0..iters {
        for _spmv in 0..2 {
            ops.extend(halo_exchange_3d(rank, dims, face_bytes));
            if precond == Precond::Ml {
                // Coarse-level halos: one exchange round per level along a
                // rotating axis, with faces shrinking 4x per level. Every
                // rank participates (deadlock-free matching) but each
                // message is small — exactly Charon+ML's "many more, much
                // smaller messages" signature.
                for level in 1..=3u64 {
                    ops.extend(axis_halo(
                        rank,
                        dims,
                        ((level - 1) % 3) as usize,
                        (face_bytes >> (2 * level)).max(256),
                    ));
                }
            }
            ops.push(CommOp::Compute(compute / 2));
        }
        for _ in 0..4 {
            ops.push(CommOp::Allreduce { bytes: 8 });
        }
    }
    ops
}

/// Halo exchange along a single axis of the full process grid: each rank
/// sends to and receives from its ±1 neighbors (with wrap) on that axis.
fn axis_halo(rank: u32, dims: [u32; 3], axis: usize, bytes: u64) -> Vec<CommOp> {
    let n = dims[axis];
    if n <= 1 {
        return Vec::new();
    }
    let coords = [
        rank % dims[0],
        (rank / dims[0]) % dims[1],
        rank / (dims[0] * dims[1]),
    ];
    let idx = |c: [u32; 3]| c[0] + c[1] * dims[0] + c[2] * dims[0] * dims[1];
    let mut neighbors = Vec::new();
    for dir in [1i64, -1] {
        let mut c = coords;
        c[axis] = ((c[axis] as i64 + dir).rem_euclid(n as i64)) as u32;
        neighbors.push(idx(c));
    }
    neighbors.dedup();
    let mut ops = Vec::new();
    for nb in &neighbors {
        ops.push(CommOp::Send { to: *nb, bytes });
    }
    for nb in &neighbors {
        ops.push(CommOp::Recv { from: *nb });
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use sst_cpu::isa::Op;

    fn drain_count(mut s: Box<dyn InstrStream>, op: fn(&sst_cpu::isa::Instr) -> bool) -> u64 {
        let mut n = 0;
        while let Some(i) = s.next_instr() {
            if op(&i) {
                n += 1;
            }
        }
        n
    }

    #[test]
    fn bicgstab_does_more_work_per_iteration_than_cg() {
        let p = Problem::new(8);
        let charon = drain_count(solver(0, p, Precond::Ilu0, 1), |_| true);
        let minife = drain_count(crate::minife::solver(0, p, 1), |_| true);
        assert!(charon > minife, "charon {charon} vs minife {minife}");
    }

    #[test]
    fn ml_solver_contains_coarse_sweeps() {
        let p = Problem::new(8);
        let ilu = drain_count(solver(0, p, Precond::Ilu0, 1), |_| true);
        let ml = drain_count(solver(0, p, Precond::Ml, 1), |_| true);
        assert!(ml > 0 && ilu > 0);
    }

    #[test]
    fn fea_scatter_window_smaller_than_minife() {
        // Charon's FEA reuses a blocked scatter window — verify the streams
        // at least produce valid instruction sequences with stores present.
        let p = Problem::new(8);
        let stores = drain_count(fea(0, p), |i| i.op == Op::Store);
        assert!(stores > 0);
    }

    #[test]
    fn ml_sends_at_least_40_percent_more_messages() {
        let dims = [4, 4, 2];
        let count = |pc: Precond| {
            let ops = solver_comm_script(5, dims, pc, 64 << 10, 3, SimTime::us(50));
            ops.iter()
                .filter(|o| matches!(o, CommOp::Send { .. }))
                .count() as f64
        };
        let ilu = count(Precond::Ilu0);
        let ml = count(Precond::Ml);
        assert!(
            ml >= ilu * 1.4,
            "ML must send 40%+ more messages: ilu={ilu} ml={ml}"
        );
    }

    #[test]
    fn ml_messages_are_smaller_on_coarse_levels() {
        let ops = solver_comm_script(0, [4, 4, 4], Precond::Ml, 64 << 10, 1, SimTime::us(1));
        let sizes: Vec<u64> = ops
            .iter()
            .filter_map(|o| match o {
                CommOp::Send { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .collect();
        assert!(sizes.iter().any(|b| *b < 64 << 10));
        assert!(sizes.contains(&(64 << 10)));
    }

    #[test]
    fn axis_halo_shapes() {
        // 4-wide axis: two distinct neighbors.
        let ops = axis_halo(5, [4, 4, 4], 0, 1024);
        assert_eq!(
            ops.iter()
                .filter(|o| matches!(o, CommOp::Send { .. }))
                .count(),
            2
        );
        // Degenerate axis: no exchange.
        assert!(axis_halo(0, [1, 4, 4], 0, 1024).is_empty());
        // 2-wide axis: both directions collapse to one neighbor.
        let ops2 = axis_halo(0, [2, 1, 1], 0, 64);
        assert_eq!(
            ops2.iter()
                .filter(|o| matches!(o, CommOp::Send { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn ml_comm_scripts_execute_without_deadlock() {
        use sst_net::mpi::MpiSim;
        use sst_net::network::{NetConfig, Network};
        use sst_net::topology::Torus3D;
        let dims = [4u32, 2, 2];
        let p = 16;
        let mut net = Network::new(Box::new(Torus3D::fitting(p)), NetConfig::xt5());
        let scripts: Vec<_> = (0..p)
            .map(|r| solver_comm_script(r, dims, Precond::Ml, 32 << 10, 2, SimTime::us(20)))
            .collect();
        let run = MpiSim::new(&mut net, 1).run(scripts);
        assert!(run.end_time > SimTime::ZERO);
    }
}
