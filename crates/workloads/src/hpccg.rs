//! HPCCG proxy: the original Mantevo mini-app — a sparse
//! preconditioned-iterative-method (Krylov) kernel on a 27-point problem.
//!
//! HPCCG is essentially "the solver phase alone": SpMV + dot + AXPY
//! per iteration with a ring halo. It is one of the two mini-apps in the
//! SST memory-technology / issue-width design-space study (Figs. 10–12),
//! where its low FLOP:byte ratio makes it the *bandwidth-hungry* pole of
//! the comparison.

use crate::streams::{SeqStream, SpmvStream, VectorStream};
use sst_core::time::SimTime;
use sst_cpu::isa::InstrStream;
use sst_net::mpi::{halo_exchange_3d, CommOp};

pub use crate::minife::Problem;

fn arena(core: usize) -> u64 {
    (core as u64 + 0x11) << 36
}

/// `iters` iterations of CG on `nx³` rows per core.
pub fn solver(core: usize, p: Problem, iters: u64) -> Box<dyn InstrStream> {
    let base = arena(core);
    let n = p.rows();
    let mut children: Vec<Box<dyn InstrStream>> = Vec::new();
    for it in 0..iters {
        children.push(Box::new(SpmvStream::new(
            "hpccg.spmv",
            n,
            27,
            p.vector_bytes(),
            base,
            core as u64 ^ (it << 8),
        )));
        children.push(Box::new(VectorStream::dot(
            "hpccg.dot",
            n,
            base + (3 << 34),
            p.vector_bytes(),
        )));
        for k in 0..2u64 {
            children.push(Box::new(VectorStream::axpy(
                "hpccg.axpy",
                n,
                base + ((4 + k) << 34),
                p.vector_bytes(),
            )));
        }
    }
    Box::new(SeqStream::new("hpccg.solver", children))
}

/// Per-rank communication: halo + one allreduce per iteration.
pub fn comm_script(
    rank: u32,
    dims: [u32; 3],
    face_bytes: u64,
    iters: u32,
    compute: SimTime,
) -> Vec<CommOp> {
    let mut ops = Vec::new();
    for _ in 0..iters {
        ops.extend(halo_exchange_3d(rank, dims, face_bytes));
        ops.push(CommOp::Compute(compute));
        ops.push(CommOp::Allreduce { bytes: 8 });
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use sst_cpu::isa::Op;

    #[test]
    fn solver_is_memory_bound_mix() {
        let mut s = solver(0, Problem::new(8), 2);
        let (mut flops, mut loads) = (0u64, 0u64);
        while let Some(i) = s.next_instr() {
            if i.op.is_flop() {
                flops += 1;
            }
            if i.op == Op::Load {
                loads += 1;
            }
        }
        assert!(loads > 0 && flops > 0);
        // bytes moved >> flops: loads * 8 / flops > 3
        assert!((loads * 8) as f64 / flops as f64 > 3.0);
    }

    #[test]
    fn comm_script_shape() {
        let ops = comm_script(0, [2, 2, 2], 16 << 10, 5, SimTime::us(10));
        let allreduces = ops
            .iter()
            .filter(|o| matches!(o, CommOp::Allreduce { .. }))
            .count();
        assert_eq!(allreduces, 5);
    }
}
