//! miniFE proxy: unstructured implicit finite elements (the Mantevo
//! flagship of the validation and GPU studies).
//!
//! Three phases, matching the real mini-app:
//!
//! 1. **structure generation** — integer-heavy CSR construction;
//! 2. **FEA (assembly)** — compute-dense element operators with
//!    scatter-adds into the global matrix;
//! 3. **solver** — unpreconditioned Conjugate Gradient: SpMV + dots +
//!    AXPYs, bandwidth-bound.
//!
//! Problems are `nx³` hexahedral elements per core. GPU kernel descriptors
//! carry the register-state numbers from the CUDA port study (32 B node
//! ids + 96 B coordinates + 512 B diffusion matrix + 64 B source vector —
//! far beyond Fermi's 63-register cap, hence spilling).

use crate::streams::{FeaStream, SeqStream, SpmvStream, StructGenStream, VectorStream};
use sst_core::time::SimTime;
use sst_cpu::gpu::GpuKernel;
use sst_cpu::isa::InstrStream;
use sst_net::mpi::{halo_exchange_3d, CommOp};

/// Per-core problem scale: `nx^3` elements.
#[derive(Debug, Clone, Copy)]
pub struct Problem {
    pub nx: u64,
}

impl Problem {
    pub fn new(nx: u64) -> Problem {
        assert!(nx >= 2);
        Problem { nx }
    }
    pub fn elements(&self) -> u64 {
        self.nx * self.nx * self.nx
    }
    pub fn rows(&self) -> u64 {
        (self.nx + 1).pow(3)
    }
    /// Bytes of one solution vector.
    pub fn vector_bytes(&self) -> u64 {
        self.rows() * 8
    }
    /// Bytes of the assembled CSR matrix (27-point coupling).
    pub fn matrix_bytes(&self) -> u64 {
        self.rows() * 27 * 12 // 8B value + 4B index
    }
}

/// Distinct per-core address arenas so multicore runs don't falsely share.
fn arena(core: usize) -> u64 {
    (core as u64 + 1) << 36
}

/// Phase 1: matrix structure generation.
pub fn structure_gen(core: usize, p: Problem) -> Box<dyn InstrStream> {
    Box::new(StructGenStream::new(
        "minife.structgen",
        p.rows(),
        27,
        arena(core),
    ))
}

/// Phase 2: finite-element assembly.
pub fn fea(core: usize, p: Problem) -> Box<dyn InstrStream> {
    Box::new(FeaStream::new(
        "minife.fea",
        p.elements(),
        420,           // dense element operator: determinant + Jacobian + diffusion
        p.rows() * 24, // node coordinates
        // Simplified assembly: one matrix, element-ordered scatters reuse
        // an L3-resident band of it.
        (p.matrix_bytes() / 32).max(1 << 16),
        arena(core),
        core as u64,
    ))
}

/// One CG iteration's streams.
fn cg_iteration(core: usize, p: Problem, iter: u64) -> Vec<Box<dyn InstrStream>> {
    let base = arena(core);
    let n = p.rows();
    vec![
        Box::new(SpmvStream::new(
            "minife.spmv",
            n,
            27,
            p.vector_bytes(),
            base,
            core as u64 ^ (iter << 8),
        )) as Box<dyn InstrStream>,
        Box::new(VectorStream::dot(
            "minife.dot1",
            n,
            base + (3 << 34),
            p.vector_bytes(),
        )),
        Box::new(VectorStream::axpy(
            "minife.axpy1",
            n,
            base + (4 << 34),
            p.vector_bytes(),
        )),
        Box::new(VectorStream::dot(
            "minife.dot2",
            n,
            base + (5 << 34),
            p.vector_bytes(),
        )),
        Box::new(VectorStream::axpy(
            "minife.axpy2",
            n,
            base + (6 << 34),
            p.vector_bytes(),
        )),
        Box::new(VectorStream::axpy(
            "minife.axpy3",
            n,
            base + (7 << 34),
            p.vector_bytes(),
        )),
    ]
}

/// Phase 3: `iters` iterations of unpreconditioned CG.
pub fn solver(core: usize, p: Problem, iters: u64) -> Box<dyn InstrStream> {
    let mut children = Vec::with_capacity(iters as usize * 6);
    for it in 0..iters {
        children.extend(cg_iteration(core, p, it));
    }
    Box::new(SeqStream::new("minife.solver", children))
}

/// Per-rank CG communication script: halo exchange (6 faces) plus the two
/// dot-product allreduces per iteration, with `compute` of local work.
pub fn cg_comm_script(
    rank: u32,
    dims: [u32; 3],
    face_bytes: u64,
    iters: u32,
    compute: SimTime,
) -> Vec<CommOp> {
    let mut ops = Vec::new();
    for _ in 0..iters {
        ops.extend(halo_exchange_3d(rank, dims, face_bytes));
        ops.push(CommOp::Compute(compute));
        ops.push(CommOp::Allreduce { bytes: 8 });
        ops.push(CommOp::Allreduce { bytes: 8 });
    }
    ops
}

/// GPU kernel descriptor for the FEA phase of the CUDA port.
///
/// `optimized` applies the paper's tuning: symmetry exploitation and
/// just-in-time loads cut the register demand, the source vector moves to
/// shared memory, and the large-L1 configuration is selected — still
/// leaving 512 B of spilled state per thread.
pub fn gpu_fea_kernel(p: Problem, optimized: bool) -> GpuKernel {
    // Raw state: 32B ids + 96B coords + 512B diffusion + 64B source +
    // Jacobian/determinant ~= 760B+ of live state. The paper's tuning
    // (symmetry in the diffusion operator, just-in-time loads, source
    // vector in shared memory, large L1) shrinks that, but 512B per thread
    // (= 128 registers past the 63-register cap) still spills.
    let (regs, shared, coalescing) = if optimized {
        (63 + 128, 64, 0.65)
    } else {
        (230, 0, 0.45)
    };
    GpuKernel {
        name: "minife.fea.cuda".into(),
        threads: p.elements(),
        threads_per_block: 256,
        regs_demand_per_thread: regs,
        shared_bytes_per_thread: shared,
        flops_per_thread: 1400,
        global_bytes_per_thread: 24 * 8 + 64, // node data + scatter traffic
        coalescing,
        spill_reuse: 2,
        prefer_large_l1: optimized,
    }
}

/// GPU kernel descriptor for one CG solver iteration (ELL SpMV + vector
/// ops): bandwidth-bound, well coalesced in ELL format.
pub fn gpu_solver_kernel(p: Problem) -> GpuKernel {
    GpuKernel {
        name: "minife.cg.cuda".into(),
        threads: p.rows(),
        threads_per_block: 256,
        regs_demand_per_thread: 24,
        shared_bytes_per_thread: 0,
        flops_per_thread: 27 * 2 + 10,
        global_bytes_per_thread: 27 * 12 + 6 * 8,
        // ELL matrix streams coalesce, but the x[j] vector gathers do not.
        coalescing: 0.40,
        spill_reuse: 1,
        prefer_large_l1: false,
    }
}

/// Host→device cost of the structure-generation phase in the CUDA port:
/// the structure is built on the host (CPU time `host_time`), shipped over
/// PCIe, and converted to ELL on arrival (paper: computed on the host in
/// CSR, transferred, then converted — a net GPU-side *slowdown*).
pub fn gpu_structure_gen_overhead(
    gpu: &sst_cpu::gpu::GpuConfig,
    p: Problem,
    host_time: SimTime,
) -> SimTime {
    let transfer = gpu.pcie_time(p.matrix_bytes());
    // ELL conversion: bandwidth-bound pass over the matrix on device.
    let convert_s = (2 * p.matrix_bytes()) as f64 / (gpu.mem_bw_gbs * 1e9 * gpu.mem_efficiency);
    host_time + transfer + SimTime::ps((convert_s * 1e12) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sst_cpu::gpu::{run_kernel, GpuConfig};

    fn count_ops(mut s: Box<dyn InstrStream>) -> (u64, u64, u64) {
        let (mut flops, mut mems, mut total) = (0u64, 0u64, 0u64);
        while let Some(i) = s.next_instr() {
            total += 1;
            if i.op.is_flop() {
                flops += 1;
            }
            if i.op.is_mem() {
                mems += 1;
            }
        }
        (total, flops, mems)
    }

    #[test]
    fn phases_have_distinct_signatures() {
        let p = Problem::new(8);
        let (gt, gf, _gm) = count_ops(structure_gen(0, p));
        let (ft, ff, fm) = count_ops(fea(0, p));
        let (st, sf, sm) = count_ops(solver(0, p, 2));
        assert!(gt > 0 && ft > 0 && st > 0);
        assert_eq!(gf, 0, "structure gen has no FP");
        assert!(ff as f64 / fm as f64 > 1.2, "FEA is compute-dense");
        assert!(
            (sf as f64 / sm as f64) < 1.0,
            "solver is memory-dominated: {sf}/{sm}"
        );
    }

    #[test]
    fn problem_scaling() {
        let small = Problem::new(8);
        let big = Problem::new(16);
        assert!(big.elements() == 8 * small.elements());
        assert!(big.matrix_bytes() > small.matrix_bytes());
        let (ts, _, _) = count_ops(solver(0, small, 1));
        let (tb, _, _) = count_ops(solver(0, big, 1));
        assert!(tb > 6 * ts);
    }

    #[test]
    fn comm_script_counts() {
        let ops = cg_comm_script(0, [4, 4, 4], 32 << 10, 10, SimTime::us(100));
        let sends = ops
            .iter()
            .filter(|o| matches!(o, CommOp::Send { .. }))
            .count();
        let allreduces = ops
            .iter()
            .filter(|o| matches!(o, CommOp::Allreduce { .. }))
            .count();
        assert_eq!(sends, 6 * 10);
        assert_eq!(allreduces, 20);
    }

    #[test]
    fn gpu_fea_spills_heavily_on_fermi() {
        let gpu = GpuConfig::fermi_m2090();
        let p = Problem::new(64);
        let raw = run_kernel(&gpu, &gpu_fea_kernel(p, false));
        let opt = run_kernel(&gpu, &gpu_fea_kernel(p, true));
        assert!(raw.spilled_regs_per_thread > 100);
        assert!(
            opt.spilled_regs_per_thread >= 512 / 4,
            "paper: 512B still spilled"
        );
        assert!(opt.time < raw.time, "tuning must help");
        assert_eq!(opt.limiter, sst_cpu::gpu::Limiter::Memory);
    }

    #[test]
    fn gpu_structgen_dominated_by_transfer() {
        let gpu = GpuConfig::fermi_m2090();
        let p = Problem::new(128);
        let host = SimTime::ms(50);
        let total = gpu_structure_gen_overhead(&gpu, p, host);
        assert!(total > host, "GPU path adds transfer+conversion overhead");
    }
}
