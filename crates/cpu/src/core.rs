//! Cycle-level superscalar core timing model.
//!
//! An in-order-issue, out-of-order-completion, non-blocking-memory core with
//! a configurable issue width — the knob swept by the paper's design-space
//! study. Issue stalls on: unavailable producers (ILP limit), functional
//! units (structural limit), memory ports, and outstanding-miss slots
//! (memory-level-parallelism limit). Mispredicted branches flush the front
//! end for a fixed penalty.
//!
//! The model is deliberately memory-interface-shaped: every `Load`/`Store`
//! calls back into a [`MemPort`] (the node's shared hierarchy), so cache and
//! DRAM contention feed straight into issue stalls.

use crate::isa::{Instr, InstrStream, Op};
use serde::{Deserialize, Serialize};
use sst_core::time::{Frequency, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Completion-time window size (covers dependency lookback).
const RING: usize = 256;

/// Core microarchitecture parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    pub freq: Frequency,
    /// Instructions issued per cycle (1, 2, 4, 8 in the paper's sweep).
    pub issue_width: u32,
    /// Integer/branch pipes.
    pub int_units: u32,
    /// FP pipes.
    pub fp_units: u32,
    /// Load/store ports.
    pub mem_ports: u32,
    /// Maximum in-flight loads (MSHRs / memory-level parallelism).
    pub max_outstanding: u32,
    pub lat_ialu: u32,
    pub lat_imul: u32,
    pub lat_fadd: u32,
    pub lat_fmul: u32,
    pub lat_fdiv: u32,
    pub mispredict_penalty: u32,
}

impl CoreConfig {
    /// A core scaled for `issue_width`, with secondary resources growing the
    /// way real designs grow them (FP/mem ports at about half the width,
    /// MSHRs with width).
    pub fn with_width(issue_width: u32, freq: Frequency) -> CoreConfig {
        assert!(issue_width >= 1);
        CoreConfig {
            freq,
            issue_width,
            int_units: issue_width,
            fp_units: issue_width.div_ceil(2),
            mem_ports: issue_width.div_ceil(2),
            max_outstanding: 2 + 2 * issue_width,
            lat_ialu: 1,
            lat_imul: 3,
            lat_fadd: 3,
            lat_fmul: 4,
            lat_fdiv: 20,
            mispredict_penalty: 12,
        }
    }

    fn latency(&self, op: Op) -> u64 {
        (match op {
            Op::IAlu => self.lat_ialu,
            Op::IMul => self.lat_imul,
            Op::FAdd => self.lat_fadd,
            Op::FMul => self.lat_fmul,
            Op::FDiv => self.lat_fdiv,
            Op::Branch | Op::BranchMiss => 1,
            Op::Load | Op::Store => unreachable!("memory latency comes from MemPort"),
        }) as u64
    }
}

/// The core's window into the memory system.
pub trait MemPort {
    /// Perform an access issued at `now`; return the completion time.
    fn access(&mut self, core: usize, addr: u64, write: bool, now: SimTime) -> SimTime;
}

/// Fixed-latency memory, for standalone core tests.
pub struct FlatMem(pub SimTime);
impl MemPort for FlatMem {
    fn access(&mut self, _core: usize, _addr: u64, _write: bool, now: SimTime) -> SimTime {
        now + self.0
    }
}

/// Per-core execution counters.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct CoreStats {
    pub instrs: u64,
    pub flops: u64,
    pub loads: u64,
    pub stores: u64,
    pub branches: u64,
    pub mispredicts: u64,
    /// Cycles in which nothing issued because of a register dependency.
    pub stall_dep: u64,
    /// Cycles blocked on outstanding-miss slots.
    pub stall_mem: u64,
    /// Cycles lost to front-end flushes.
    pub stall_frontend: u64,
    /// Cycle at which this core retired its last instruction.
    pub finish_cycle: u64,
}

impl CoreStats {
    pub fn ipc(&self, cycles: u64) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            self.instrs as f64 / cycles as f64
        }
    }
}

/// What a call to [`Core::tick`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tick {
    /// Instructions issued this cycle (may be 0); if 0, `wake` is the
    /// earliest cycle at which issue could resume.
    Issued { n: u32, wake: u64 },
    /// The stream is exhausted and all work has drained.
    Done,
}

/// One core's issue state machine.
pub struct Core {
    cfg: CoreConfig,
    period_ps: u64,
    /// Completion cycles of the last `RING` instructions.
    ring: [u64; RING],
    issued_total: u64,
    pending: Option<Instr>,
    outstanding: BinaryHeap<Reverse<u64>>,
    frontend_stall_until: u64,
    stream_done: bool,
    pub stats: CoreStats,
}

impl Core {
    pub fn new(cfg: CoreConfig) -> Core {
        Core {
            period_ps: cfg.freq.period().as_ps(),
            cfg,
            ring: [0; RING],
            issued_total: 0,
            pending: None,
            outstanding: BinaryHeap::new(),
            frontend_stall_until: 0,
            stream_done: false,
            stats: CoreStats::default(),
        }
    }

    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    #[inline]
    fn to_cycle(&self, t: SimTime) -> u64 {
        t.as_ps().div_ceil(self.period_ps)
    }

    #[inline]
    fn to_time(&self, cycle: u64) -> SimTime {
        SimTime::ps(cycle * self.period_ps)
    }

    /// Has every issued instruction (including in-flight loads) completed by
    /// `cycle`?
    pub fn drained(&self, cycle: u64) -> bool {
        self.stream_done && self.outstanding.peek().is_none_or(|Reverse(c)| *c <= cycle)
    }

    /// Attempt one cycle of issue at `cycle`, pulling from `stream` and
    /// resolving memory through `mem`.
    pub fn tick(
        &mut self,
        core_id: usize,
        cycle: u64,
        stream: &mut dyn InstrStream,
        mem: &mut dyn MemPort,
    ) -> Tick {
        if self.stream_done {
            return if self.drained(cycle) {
                Tick::Done
            } else {
                let wake = self
                    .outstanding
                    .peek()
                    .map(|Reverse(c)| *c)
                    .unwrap_or(cycle);
                Tick::Issued { n: 0, wake }
            };
        }
        if cycle < self.frontend_stall_until {
            self.stats.stall_frontend += 1;
            return Tick::Issued {
                n: 0,
                wake: self.frontend_stall_until,
            };
        }

        // Retire completed misses.
        while self
            .outstanding
            .peek()
            .is_some_and(|Reverse(c)| *c <= cycle)
        {
            self.outstanding.pop();
        }

        let mut int_used = 0u32;
        let mut fp_used = 0u32;
        let mut mem_used = 0u32;
        let mut issued = 0u32;
        let mut wake = cycle + 1;

        while issued < self.cfg.issue_width {
            let instr = match self.pending.take().or_else(|| stream.next_instr()) {
                Some(i) => i,
                None => {
                    self.stream_done = true;
                    self.stats.finish_cycle = self.stats.finish_cycle.max(
                        self.outstanding
                            .iter()
                            .map(|Reverse(c)| *c)
                            .max()
                            .unwrap_or(cycle),
                    );
                    break;
                }
            };

            // Register dependency: producer must have completed.
            if instr.dep_dist > 0 {
                let d = (instr.dep_dist as u64).min(RING as u64 - 1);
                if d <= self.issued_total {
                    let ready = self.ring[((self.issued_total - d) % RING as u64) as usize];
                    if ready > cycle {
                        self.pending = Some(instr);
                        if issued == 0 {
                            self.stats.stall_dep += 1;
                            wake = ready;
                        }
                        break;
                    }
                }
            }

            // Structural hazards.
            let fu_ok = match instr.op {
                Op::IAlu | Op::IMul | Op::Branch | Op::BranchMiss => {
                    if int_used < self.cfg.int_units {
                        int_used += 1;
                        true
                    } else {
                        false
                    }
                }
                Op::FAdd | Op::FMul | Op::FDiv => {
                    if fp_used < self.cfg.fp_units {
                        fp_used += 1;
                        true
                    } else {
                        false
                    }
                }
                Op::Load | Op::Store => {
                    if mem_used >= self.cfg.mem_ports {
                        false
                    } else if self.outstanding.len() >= self.cfg.max_outstanding as usize {
                        self.pending = Some(instr);
                        if issued == 0 {
                            self.stats.stall_mem += 1;
                            wake = self
                                .outstanding
                                .peek()
                                .map(|Reverse(c)| *c)
                                .unwrap_or(cycle + 1);
                        }
                        break;
                    } else {
                        mem_used += 1;
                        true
                    }
                }
            };
            if !fu_ok {
                self.pending = Some(instr);
                break; // wake stays cycle+1: units free next cycle
            }

            // Issue.
            let completion = match instr.op {
                Op::Load => {
                    self.stats.loads += 1;
                    let done = mem.access(core_id, instr.addr, false, self.to_time(cycle));
                    let c = self.to_cycle(done).max(cycle + 1);
                    self.outstanding.push(Reverse(c));
                    c
                }
                Op::Store => {
                    self.stats.stores += 1;
                    // Store buffer hides latency from the pipeline; the
                    // hierarchy still sees the bandwidth.
                    mem.access(core_id, instr.addr, true, self.to_time(cycle));
                    cycle + 1
                }
                Op::BranchMiss => {
                    self.stats.branches += 1;
                    self.stats.mispredicts += 1;
                    self.frontend_stall_until = cycle + 1 + self.cfg.mispredict_penalty as u64;
                    cycle + 1
                }
                op => {
                    if op.is_flop() {
                        self.stats.flops += 1;
                    }
                    if op == Op::Branch {
                        self.stats.branches += 1;
                    }
                    cycle + self.cfg.latency(op)
                }
            };

            self.ring[(self.issued_total % RING as u64) as usize] = completion;
            self.issued_total += 1;
            self.stats.instrs += 1;
            self.stats.finish_cycle = self.stats.finish_cycle.max(completion);
            issued += 1;

            if instr.op == Op::BranchMiss {
                break; // flush
            }
        }

        if self.stream_done && self.drained(cycle) {
            Tick::Done
        } else {
            Tick::Issued { n: issued, wake }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{KernelSpec, TraceStream};

    fn run_core(
        cfg: CoreConfig,
        mut stream: impl InstrStream,
        mem: &mut dyn MemPort,
    ) -> (u64, CoreStats) {
        let mut core = Core::new(cfg);
        let mut cycle = 0u64;
        loop {
            match core.tick(0, cycle, &mut stream, mem) {
                Tick::Done => break,
                Tick::Issued { n, wake } => {
                    cycle = if n > 0 {
                        cycle + 1
                    } else {
                        wake.max(cycle + 1)
                    };
                }
            }
            assert!(cycle < 100_000_000, "runaway simulation");
        }
        (core.stats.finish_cycle.max(cycle), core.stats)
    }

    fn ghz1() -> Frequency {
        Frequency::ghz(1.0)
    }

    #[test]
    fn independent_alu_ops_reach_issue_width() {
        for width in [1u32, 2, 4, 8] {
            let cfg = CoreConfig::with_width(width, ghz1());
            let instrs = vec![Instr::alu(); 10_000];
            let (cycles, stats) = run_core(
                cfg,
                TraceStream::new("alu", instrs),
                &mut FlatMem(SimTime::ns(1)),
            );
            let ipc = stats.ipc(cycles);
            let rel_err = (ipc - width as f64).abs() / f64::from(width);
            assert!(rel_err < 0.05, "width {width}: ipc {ipc}");
        }
    }

    #[test]
    fn dependent_chain_limits_ilp() {
        // Every FAdd depends on the previous one: IPC ~= 1/lat_fadd
        // regardless of width.
        let mk = |n: usize| TraceStream::new("chain", (0..n).map(|_| Instr::fadd(1)).collect());
        let (c1, s1) = run_core(
            CoreConfig::with_width(1, ghz1()),
            mk(2000),
            &mut FlatMem(SimTime::ns(1)),
        );
        let (c8, s8) = run_core(
            CoreConfig::with_width(8, ghz1()),
            mk(2000),
            &mut FlatMem(SimTime::ns(1)),
        );
        let ipc1 = s1.ipc(c1);
        let ipc8 = s8.ipc(c8);
        assert!((ipc1 - ipc8).abs() < 0.05, "ipc1={ipc1} ipc8={ipc8}");
        assert!((ipc1 - 1.0 / 3.0).abs() < 0.05, "ipc1={ipc1}");
        assert!(s8.stall_dep > 0);
    }

    #[test]
    fn wider_helps_mixed_ilp() {
        let spec = KernelSpec {
            label: "mixed".into(),
            iters: 3000,
            loads: 2,
            stores: 1,
            flops: 6,
            ialu: 3,
            flop_dep: 0,
            load_pattern: crate::isa::AddrPattern::Stream {
                base: 0,
                stride: 64,
                span: 1 << 16,
            },
            store_pattern: crate::isa::AddrPattern::Stream {
                base: 1 << 30,
                stride: 64,
                span: 1 << 16,
            },
            mispredict_every: 0,
            seed: 3,
        };
        let lat = SimTime::ns(2);
        let (c1, s1) = run_core(
            CoreConfig::with_width(1, ghz1()),
            spec.stream(),
            &mut FlatMem(lat),
        );
        let (c4, s4) = run_core(
            CoreConfig::with_width(4, ghz1()),
            spec.stream(),
            &mut FlatMem(lat),
        );
        let (c8, s8) = run_core(
            CoreConfig::with_width(8, ghz1()),
            spec.stream(),
            &mut FlatMem(lat),
        );
        assert_eq!(s1.instrs, s4.instrs);
        assert!(
            c4 * 2 < c1,
            "4-wide ({c4}) should be >2x faster than 1-wide ({c1})"
        );
        assert!(c8 <= c4);
        assert!(
            c8 * 6 > c1,
            "8-wide speedup must stay sublinear (c1={c1}, c8={c8})"
        );
        let _ = s8;
    }

    #[test]
    fn memory_latency_hurts_dependent_loads() {
        // load -> use chains: runtime tracks memory latency.
        let mk = |n: usize| {
            let mut v = Vec::with_capacity(2 * n);
            for i in 0..n {
                v.push(Instr::load(64 * i as u64, 0));
                v.push(Instr::fadd(1)); // consumes the load
            }
            TraceStream::new("ld-use", v)
        };
        let (fast, _) = run_core(
            CoreConfig::with_width(2, ghz1()),
            mk(500),
            &mut FlatMem(SimTime::ns(2)),
        );
        let (slow, _) = run_core(
            CoreConfig::with_width(2, ghz1()),
            mk(500),
            &mut FlatMem(SimTime::ns(50)),
        );
        assert!(
            slow > fast * 10,
            "50ns mem ({slow}) should dwarf 2ns mem ({fast})"
        );
    }

    #[test]
    fn mlp_limit_caps_overlapped_misses() {
        // Independent loads with huge latency: completion time scales with
        // n / max_outstanding.
        let mk = |n: usize| {
            TraceStream::new(
                "mlp",
                (0..n).map(|i| Instr::load(64 * i as u64, 0)).collect(),
            )
        };
        let mut cfg = CoreConfig::with_width(4, ghz1());
        cfg.max_outstanding = 4;
        let (t4, s) = run_core(cfg, mk(400), &mut FlatMem(SimTime::ns(100)));
        assert!(s.stall_mem > 0);
        // 400 loads / 4 outstanding * 100 cycles ~= 10_000 cycles minimum.
        assert!(t4 >= 9_000, "t4={t4}");
        let mut cfg16 = CoreConfig::with_width(4, ghz1());
        cfg16.max_outstanding = 16;
        let (t16, _) = run_core(cfg16, mk(400), &mut FlatMem(SimTime::ns(100)));
        assert!(
            t16 * 3 < t4,
            "4x MLP should be ~4x faster: t4={t4} t16={t16}"
        );
    }

    #[test]
    fn mispredicts_cost_frontend_cycles() {
        let mut with = KernelSpec {
            label: "br".into(),
            iters: 1000,
            loads: 0,
            stores: 0,
            flops: 0,
            ialu: 3,
            flop_dep: 0,
            load_pattern: crate::isa::AddrPattern::Stream {
                base: 0,
                stride: 8,
                span: 64,
            },
            store_pattern: crate::isa::AddrPattern::Stream {
                base: 0,
                stride: 8,
                span: 64,
            },
            mispredict_every: 0,
            seed: 0,
        };
        let (t_clean, _) = run_core(
            CoreConfig::with_width(2, ghz1()),
            with.stream(),
            &mut FlatMem(SimTime::ns(1)),
        );
        with.mispredict_every = 4;
        let (t_missy, s) = run_core(
            CoreConfig::with_width(2, ghz1()),
            with.stream(),
            &mut FlatMem(SimTime::ns(1)),
        );
        assert_eq!(s.mispredicts, 250);
        assert!(t_missy > t_clean + 200 * 12);
    }

    #[test]
    fn stats_count_op_classes() {
        let v = vec![
            Instr::alu(),
            Instr::fadd(0),
            Instr::fmul(0),
            Instr::load(0, 0),
            Instr::store(64),
        ];
        let (_, s) = run_core(
            CoreConfig::with_width(4, ghz1()),
            TraceStream::new("mix", v),
            &mut FlatMem(SimTime::ns(1)),
        );
        assert_eq!(s.instrs, 5);
        assert_eq!(s.flops, 2);
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 1);
    }
}
