//! # sst-cpu — processor models
//!
//! Processor substrate of the SST reproduction (the gem5-frontend analog):
//!
//! * [`isa`] — the mini-ISA, the [`isa::InstrStream`] trait, and synthetic
//!   kernel generators.
//! * [`core`] — a cycle-level superscalar core with configurable issue
//!   width, functional units, and memory-level parallelism.
//! * [`node`] — a multicore node: N cores in lockstep against one shared
//!   `sst-mem` hierarchy.
//! * [`gpu`] — a Fermi-class SIMT throughput model with occupancy and
//!   register-spilling behavior, plus a PCIe transfer model.
//! * [`components`] — a stream-driven DES processor endpoint for
//!   full-system simulations.
//! * [`model`] — the fidelity-selectable [`CoreModel`](model::CoreModel)
//!   trait unifying the analytic node and the DES component path.

pub mod components;
pub mod core;
pub mod gpu;
pub mod isa;
pub mod model;
pub mod node;

pub use crate::core::{Core, CoreConfig, CoreStats, FlatMem, MemPort, Tick};
pub use components::CoreComponent;
pub use gpu::{run_kernel, GpuConfig, GpuKernel, GpuKernelResult, Limiter};
pub use isa::{AddrPattern, Instr, InstrStream, KernelSpec, Op, SyntheticStream, TraceStream};
pub use model::{node_model, AnalyticNode, CoreModel, DesNode};
pub use node::{Node, NodeConfig, PhaseResult};
