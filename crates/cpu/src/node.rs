//! Multicore node model.
//!
//! Drives N [`Core`]s in cycle lockstep against one shared [`MemHierarchy`],
//! so cache-capacity and DRAM-bandwidth contention between cores is modeled
//! faithfully — the substrate for the cores-per-node, memory-speed, and
//! issue-width experiments. Phases run back-to-back on a persistent time
//! base, and per-phase deltas of both core and memory statistics are
//! reported.

use crate::core::{Core, CoreConfig, CoreStats, MemPort, Tick};
use crate::isa::InstrStream;
use serde::{Deserialize, Serialize};
use sst_core::fidelity::Fidelity;
use sst_core::time::SimTime;
use sst_mem::cache::Access;
use sst_mem::hierarchy::{HierarchyStats, MemHierarchy, MemHierarchyConfig};

/// Node shape: identical cores + one shared hierarchy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeConfig {
    pub core: CoreConfig,
    pub cores: usize,
    pub mem: MemHierarchyConfig,
    /// Which model backs `run_phase`: the analytic lockstep loop or the
    /// DES component path (see `crate::model::node_model`).
    #[serde(default)]
    pub fidelity: Fidelity,
}

impl NodeConfig {
    /// Builder-style fidelity override.
    pub fn with_fidelity(mut self, fidelity: Fidelity) -> NodeConfig {
        self.fidelity = fidelity;
        self
    }
}

/// Result of one phase run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseResult {
    pub label: String,
    /// Cycles from phase start to the last core draining.
    pub cycles: u64,
    /// Wall-clock simulated duration of the phase.
    pub time: SimTime,
    pub instrs: u64,
    pub flops: u64,
    pub per_core: Vec<CoreStats>,
    /// Memory-system activity during this phase only.
    pub mem: HierarchyStats,
}

impl PhaseResult {
    /// Aggregate instructions per cycle across active cores.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instrs as f64 / self.cycles as f64
        }
    }
    /// Achieved GFLOP/s.
    pub fn gflops(&self) -> f64 {
        if self.time == SimTime::ZERO {
            0.0
        } else {
            self.flops as f64 / self.time.as_secs_f64() / 1e9
        }
    }
}

struct HierarchyPort<'a> {
    hierarchy: &'a mut MemHierarchy,
}

impl MemPort for HierarchyPort<'_> {
    fn access(&mut self, core: usize, addr: u64, write: bool, now: SimTime) -> SimTime {
        let kind = if write { Access::Write } else { Access::Read };
        self.hierarchy.access(core, addr, kind, now).complete
    }
}

/// A simulated compute node.
pub struct Node {
    cfg: NodeConfig,
    hierarchy: MemHierarchy,
    /// Persistent cycle counter: phases continue on one time base so the
    /// DRAM controller's state stays monotonic.
    now_cycle: u64,
}

impl Node {
    pub fn new(cfg: NodeConfig) -> Node {
        let hierarchy = MemHierarchy::new(cfg.mem.clone(), cfg.cores, cfg.core.freq);
        Node {
            cfg,
            hierarchy,
            now_cycle: 0,
        }
    }

    pub fn config(&self) -> &NodeConfig {
        &self.cfg
    }

    /// Shared hierarchy access (inspection between phases).
    pub fn hierarchy(&self) -> &MemHierarchy {
        &self.hierarchy
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.cfg.core.freq.cycles(self.now_cycle)
    }

    /// Run one phase: stream `i` executes on core `i` (streams may be fewer
    /// than the node's cores — the rest idle, as in a cores-per-node sweep).
    pub fn run_phase(
        &mut self,
        label: impl Into<String>,
        streams: Vec<Box<dyn InstrStream>>,
    ) -> PhaseResult {
        let active = streams.len();
        assert!(active >= 1 && active <= self.cfg.cores, "bad stream count");
        let label = label.into();

        // Drop stats accumulated before this phase.
        let _ = self.hierarchy.take_stats();

        let start_cycle = self.now_cycle;
        let mut cores: Vec<Core> = (0..active).map(|_| Core::new(self.cfg.core)).collect();
        let mut streams = streams;
        let mut done = vec![false; active];
        let mut cycle = start_cycle;
        // Offset core-model cycles: Core thinks in absolute cycles already
        // (we pass the absolute cycle), so time stays monotonic.
        loop {
            let mut all_done = true;
            let mut any_issued = false;
            let mut min_wake = u64::MAX;
            for i in 0..active {
                if done[i] {
                    continue;
                }
                let mut port = HierarchyPort {
                    hierarchy: &mut self.hierarchy,
                };
                match cores[i].tick(i, cycle, &mut streams[i], &mut port) {
                    Tick::Done => {
                        done[i] = true;
                    }
                    Tick::Issued { n, wake } => {
                        all_done = false;
                        if n > 0 {
                            any_issued = true;
                        } else {
                            min_wake = min_wake.min(wake.max(cycle + 1));
                        }
                    }
                }
            }
            if all_done {
                break;
            }
            cycle = if any_issued {
                cycle + 1
            } else {
                min_wake.max(cycle + 1)
            };
            debug_assert!(cycle < start_cycle + (1 << 40), "runaway phase");
        }

        // The phase ends when the last core drained; `cycle` may have
        // overshot by the final wake.
        let finish = cores
            .iter()
            .map(|c| c.stats.finish_cycle)
            .max()
            .unwrap_or(cycle)
            .max(start_cycle);
        self.now_cycle = finish;

        let per_core: Vec<CoreStats> = cores.iter().map(|c| c.stats).collect();
        let cycles = finish - start_cycle;
        PhaseResult {
            label,
            cycles,
            time: self.cfg.core.freq.cycles(cycles),
            instrs: per_core.iter().map(|s| s.instrs).sum(),
            flops: per_core.iter().map(|s| s.flops).sum(),
            per_core,
            mem: self.hierarchy.take_stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{AddrPattern, KernelSpec};
    use sst_core::time::Frequency;
    use sst_mem::dram::DramConfig;

    fn node(cores: usize, width: u32, dram: DramConfig) -> Node {
        Node::new(NodeConfig {
            core: CoreConfig::with_width(width, Frequency::ghz(2.0)),
            cores,
            mem: MemHierarchyConfig::typical(dram),
            fidelity: Fidelity::Analytic,
        })
    }

    /// A bandwidth-hungry streaming kernel (STREAM-triad-like), disjoint
    /// per-core address spaces.
    fn stream_kernel(core: usize, iters: u64) -> Box<dyn InstrStream> {
        let base = (core as u64 + 1) << 32;
        Box::new(
            KernelSpec {
                label: format!("stream{core}"),
                iters,
                loads: 2,
                stores: 1,
                flops: 2,
                ialu: 1,
                flop_dep: 0,
                load_pattern: AddrPattern::Stream {
                    base,
                    stride: 8,
                    span: 1 << 26,
                },
                store_pattern: AddrPattern::Stream {
                    base: base + (1 << 28),
                    stride: 8,
                    span: 1 << 26,
                },
                mispredict_every: 0,
                seed: core as u64,
            }
            .stream(),
        )
    }

    /// A cache-resident compute kernel.
    pub(super) fn compute_kernel(core: usize, iters: u64) -> Box<dyn InstrStream> {
        let base = (core as u64 + 1) << 32;
        Box::new(
            KernelSpec {
                label: format!("compute{core}"),
                iters,
                loads: 1,
                stores: 0,
                flops: 8,
                ialu: 2,
                flop_dep: 0,
                load_pattern: AddrPattern::Stream {
                    base,
                    stride: 8,
                    span: 16 << 10, // L1-resident
                },
                store_pattern: AddrPattern::Stream {
                    base,
                    stride: 8,
                    span: 16 << 10,
                },
                mispredict_every: 0,
                seed: core as u64,
            }
            .stream(),
        )
    }

    #[test]
    fn phase_runs_and_reports() {
        let mut n = node(2, 2, DramConfig::ddr3_1333(2));
        let r = n.run_phase("p", vec![stream_kernel(0, 2000), stream_kernel(1, 2000)]);
        assert_eq!(r.per_core.len(), 2);
        assert!(r.cycles > 0);
        assert!(r.instrs > 0);
        assert!(r.ipc() > 0.0);
        assert!(r.mem.l1.accesses() > 0);
        assert!(r.mem.dram.accesses() > 0, "streams must reach DRAM");
    }

    #[test]
    fn bandwidth_bound_kernel_scales_sublinearly() {
        // Per-core runtime of a streaming kernel grows as cores contend for
        // DRAM; a cache-resident kernel's does not.
        let per_core_cycles = |mk: &dyn Fn(usize, u64) -> Box<dyn InstrStream>, cores: usize| {
            let mut n = node(8, 4, DramConfig::ddr3_1333(1));
            let streams: Vec<_> = (0..cores).map(|c| mk(c, 6000)).collect();
            n.run_phase("p", streams).cycles
        };
        // Long-running variant so the one-time cold-miss warmup amortizes
        // away (the cache-resident kernel touches DRAM only during warmup).
        let per_core_cycles_long = |mk: &dyn Fn(usize, u64) -> Box<dyn InstrStream>,
                                    cores: usize| {
            let mut n = node(8, 4, DramConfig::ddr3_1333(1));
            let streams: Vec<_> = (0..cores).map(|c| mk(c, 60_000)).collect();
            n.run_phase("p", streams).cycles
        };
        let s1 = per_core_cycles(&stream_kernel, 1);
        let s8 = per_core_cycles(&stream_kernel, 8);
        let slowdown_stream = s8 as f64 / s1 as f64;
        let c1 = per_core_cycles_long(&compute_kernel, 1);
        let c8 = per_core_cycles_long(&compute_kernel, 8);
        let slowdown_compute = c8 as f64 / c1 as f64;
        assert!(
            slowdown_stream > 1.5,
            "8 streaming cores should contend: {slowdown_stream}"
        );
        assert!(
            slowdown_compute < 1.2,
            "compute kernels should not contend: {slowdown_compute}"
        );
        assert!(slowdown_stream > slowdown_compute);
    }

    #[test]
    fn faster_memory_speeds_up_streams_not_compute() {
        let run = |dram: DramConfig, mk: &dyn Fn(usize, u64) -> Box<dyn InstrStream>| {
            let mut n = node(4, 4, dram);
            let streams: Vec<_> = (0..4).map(|c| mk(c, 5000)).collect();
            n.run_phase("p", streams).cycles
        };
        let slow = run(DramConfig::ddr2_800(1), &stream_kernel);
        let fast = run(DramConfig::gddr5(8), &stream_kernel);
        assert!(
            slow as f64 / fast as f64 > 1.5,
            "streams: ddr2 {slow} vs gddr5 {fast}"
        );
        // Long compute kernels amortize warmup; they should barely notice
        // the memory technology.
        let run_long = |dram: DramConfig| {
            let mut n = node(4, 4, dram);
            let streams: Vec<_> = (0..4).map(|c| compute_kernel(c, 60_000)).collect();
            n.run_phase("p", streams).cycles
        };
        let slow_c = run_long(DramConfig::ddr2_800(1));
        let fast_c = run_long(DramConfig::gddr5(8));
        let ratio = slow_c as f64 / fast_c as f64;
        assert!(
            ratio < 1.15,
            "compute phase should be memory-insensitive: {ratio}"
        );
    }

    #[test]
    fn phases_share_a_time_base() {
        let mut n = node(1, 2, DramConfig::ddr3_1333(2));
        let t0 = n.now();
        n.run_phase("a", vec![compute_kernel(0, 100)]);
        let t1 = n.now();
        n.run_phase("b", vec![compute_kernel(0, 100)]);
        let t2 = n.now();
        assert!(t0 < t1 && t1 < t2);
    }

    #[test]
    fn per_phase_mem_stats_are_differential() {
        let mut n = node(1, 2, DramConfig::ddr3_1333(2));
        let a = n.run_phase("a", vec![stream_kernel(0, 500)]);
        let b = n.run_phase("b", vec![compute_kernel(0, 500)]);
        // Phase b is L1-resident after warmup; it must not inherit phase a's
        // DRAM counts.
        assert!(a.mem.dram.accesses() > 0);
        assert!(b.mem.dram.accesses() < a.mem.dram.accesses());
    }

    #[test]
    fn wider_cores_run_compute_faster() {
        let run = |w: u32| {
            let mut n = node(1, w, DramConfig::ddr3_1333(2));
            n.run_phase("p", vec![compute_kernel(0, 4000)]).cycles
        };
        let w1 = run(1);
        let w4 = run(4);
        assert!(w4 * 2 < w1, "w1={w1} w4={w4}");
    }
}
