//! SIMT GPU model (Fermi-class) with register spilling and occupancy.
//!
//! An abstract-machine-model-style throughput model of an NVIDIA-Fermi-like
//! accelerator, built for the GPU mini-app study: kernels are described by
//! per-thread resource demands (registers, live state, shared memory) and
//! work (FLOPs, global traffic). The model computes
//!
//! * **occupancy** — resident threads per SM limited by the register file,
//!   shared memory, and the hardware thread cap;
//! * **register spilling** — demand above the per-thread architectural
//!   register cap spills; spill traffic lands in L1 if the per-thread slice
//!   of L1 can hold it, else it goes to device memory and the kernel becomes
//!   bandwidth-bound (the paper's central finding for the FEA kernel);
//! * **kernel time** — max of compute and memory time, degraded when
//!   occupancy is too low to hide DRAM latency.
//!
//! A PCIe link model covers host↔device transfers (the reason the paper's
//! matrix-structure-generation phase *slows down* on the GPU).

use serde::{Deserialize, Serialize};
use sst_core::time::SimTime;

/// GPU device description.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GpuConfig {
    pub name: String,
    /// Streaming multiprocessors.
    pub sms: u32,
    /// Thread processors per SM.
    pub cores_per_sm: u32,
    /// Shader clock (GHz).
    pub clock_ghz: f64,
    /// Architectural cap on registers per thread (63 on Fermi).
    pub max_regs_per_thread: u32,
    /// 32-bit registers per SM.
    pub regfile_regs_per_sm: u32,
    /// Hardware-resident thread cap per SM.
    pub max_threads_per_sm: u32,
    /// Shared memory per SM (bytes) when the large-shared split is chosen.
    pub shared_mem_per_sm: u32,
    /// L1 size options (bytes): (small, large). Fermi: 16 KiB / 48 KiB.
    pub l1_bytes_options: (u32, u32),
    pub l2_bytes: u32,
    /// Device memory peak bandwidth (GB/s).
    pub mem_bw_gbs: f64,
    /// Fraction of peak bandwidth achievable by well-coalesced kernels.
    pub mem_efficiency: f64,
    /// Occupancy needed to fully hide device-memory latency.
    pub occupancy_knee: f64,
    /// PCIe bandwidth (GB/s, one direction).
    pub pcie_gbs: f64,
    /// PCIe transfer setup latency.
    pub pcie_latency: SimTime,
    /// Board power (W), for energy roll-ups.
    pub board_power_w: f64,
}

impl GpuConfig {
    /// An NVIDIA Tesla M2090-like device (Fermi, 16 SMs, 177 GB/s GDDR5).
    pub fn fermi_m2090() -> GpuConfig {
        GpuConfig {
            name: "Fermi-M2090".into(),
            sms: 16,
            cores_per_sm: 32,
            clock_ghz: 1.3,
            max_regs_per_thread: 63,
            regfile_regs_per_sm: 32 << 10,
            max_threads_per_sm: 1536,
            shared_mem_per_sm: 48 << 10,
            l1_bytes_options: (16 << 10, 48 << 10),
            l2_bytes: 768 << 10,
            mem_bw_gbs: 177.0,
            mem_efficiency: 0.80,
            occupancy_knee: 0.35,
            pcie_gbs: 6.0,
            pcie_latency: SimTime::us(10),
            board_power_w: 225.0,
        }
    }

    /// A Kepler-like successor: more registers per thread and bigger
    /// caches — the "expected hardware modification" the paper predicts
    /// will lift the spilling bottleneck.
    pub fn kepler_like() -> GpuConfig {
        GpuConfig {
            name: "Kepler-like".into(),
            max_regs_per_thread: 255,
            regfile_regs_per_sm: 64 << 10,
            l1_bytes_options: (16 << 10, 48 << 10),
            l2_bytes: 1536 << 10,
            mem_bw_gbs: 250.0,
            ..Self::fermi_m2090()
        }
    }

    /// Peak single-precision-equivalent FLOP rate (1 FLOP/core/cycle).
    pub fn peak_flops(&self) -> f64 {
        self.sms as f64 * self.cores_per_sm as f64 * self.clock_ghz * 1e9
    }

    /// Host↔device transfer time over PCIe.
    pub fn pcie_time(&self, bytes: u64) -> SimTime {
        self.pcie_latency + SimTime::ps((bytes as f64 / (self.pcie_gbs * 1e9) * 1e12) as u64)
    }
}

/// Per-thread description of a CUDA-style kernel.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GpuKernel {
    pub name: String,
    /// Total threads launched.
    pub threads: u64,
    pub threads_per_block: u32,
    /// Registers the compiler *wants* per thread; demand above the
    /// architectural cap spills.
    pub regs_demand_per_thread: u32,
    /// Shared memory per thread (bytes).
    pub shared_bytes_per_thread: u32,
    pub flops_per_thread: u64,
    /// Global memory traffic per thread, assuming perfect caching of
    /// spills (bytes).
    pub global_bytes_per_thread: u64,
    /// Coalescing efficiency in (0, 1]: effective traffic is
    /// `global_bytes / coalescing`.
    pub coalescing: f64,
    /// How many times each spilled register round-trips per thread.
    pub spill_reuse: u32,
    /// Use the large-L1 configuration (paper: best FEA performance came
    /// from a larger L1).
    pub prefer_large_l1: bool,
}

/// Why the kernel ran as fast (slow) as it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Limiter {
    Compute,
    Memory,
}

/// Model output for one kernel launch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GpuKernelResult {
    pub time: SimTime,
    pub occupancy: f64,
    pub spilled_regs_per_thread: u32,
    /// Spill bytes per thread that fit in the L1 slice (cheap).
    pub spill_in_l1_bytes: u32,
    /// Spill bytes per thread that overflow to device memory (expensive).
    pub spill_to_mem_bytes: u32,
    /// Total effective device-memory traffic (bytes).
    pub mem_traffic_bytes: u64,
    pub limiter: Limiter,
    pub compute_time: SimTime,
    pub memory_time: SimTime,
}

/// Execute (analytically) one kernel on the device.
pub fn run_kernel(gpu: &GpuConfig, k: &GpuKernel) -> GpuKernelResult {
    assert!(k.coalescing > 0.0 && k.coalescing <= 1.0);
    // --- register allocation & spilling ---
    let regs_alloc = k.regs_demand_per_thread.min(gpu.max_regs_per_thread);
    let spilled = k.regs_demand_per_thread - regs_alloc;
    let spill_bytes = spilled * 4;

    // --- occupancy ---
    let by_regs = gpu.regfile_regs_per_sm / regs_alloc.max(1);
    let by_threads = gpu.max_threads_per_sm;
    let by_shared = gpu
        .shared_mem_per_sm
        .checked_div(k.shared_bytes_per_thread)
        .unwrap_or(u32::MAX);
    // Round resident threads down to whole blocks.
    let raw = by_regs.min(by_threads).min(by_shared);
    let resident = (raw / k.threads_per_block).max(1) * k.threads_per_block;
    let resident = resident.min(by_threads);
    let occupancy = resident as f64 / gpu.max_threads_per_sm as f64;

    // --- where do spills live? ---
    let l1_bytes = if k.prefer_large_l1 {
        gpu.l1_bytes_options.1
    } else {
        gpu.l1_bytes_options.0
    };
    let l1_per_thread = l1_bytes / resident.max(1);
    let spill_in_l1 = spill_bytes.min(l1_per_thread);
    let spill_to_mem = spill_bytes - spill_in_l1;

    // --- time ---
    let compute_s = k.threads as f64 * k.flops_per_thread as f64 / gpu.peak_flops();
    let demand_bytes = (k.threads as f64 * k.global_bytes_per_thread as f64) / k.coalescing;
    let spill_traffic = k.threads as f64 * spill_to_mem as f64 * 2.0 * k.spill_reuse.max(1) as f64;
    let mem_bytes = demand_bytes + spill_traffic;
    let mem_s = mem_bytes / (gpu.mem_bw_gbs * 1e9 * gpu.mem_efficiency);

    // Low occupancy exposes memory latency: degrade throughput below the
    // knee.
    let hide = (occupancy / gpu.occupancy_knee).clamp(0.05, 1.0);
    let total_s = compute_s.max(mem_s) / hide;
    let (limiter, _) = if mem_s > compute_s {
        (Limiter::Memory, mem_s)
    } else {
        (Limiter::Compute, compute_s)
    };

    GpuKernelResult {
        time: SimTime::ps((total_s * 1e12) as u64),
        occupancy,
        spilled_regs_per_thread: spilled,
        spill_in_l1_bytes: spill_in_l1,
        spill_to_mem_bytes: spill_to_mem,
        mem_traffic_bytes: mem_bytes as u64,
        limiter,
        compute_time: SimTime::ps((compute_s * 1e12) as u64),
        memory_time: SimTime::ps((mem_s * 1e12) as u64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_kernel() -> GpuKernel {
        GpuKernel {
            name: "k".into(),
            threads: 1 << 20,
            threads_per_block: 256,
            regs_demand_per_thread: 32,
            shared_bytes_per_thread: 0,
            flops_per_thread: 200,
            global_bytes_per_thread: 64,
            coalescing: 1.0,
            spill_reuse: 1,
            prefer_large_l1: true,
        }
    }

    #[test]
    fn no_spill_below_cap() {
        let r = run_kernel(&GpuConfig::fermi_m2090(), &base_kernel());
        assert_eq!(r.spilled_regs_per_thread, 0);
        assert_eq!(r.spill_to_mem_bytes, 0);
    }

    #[test]
    fn high_register_demand_spills_and_slows() {
        let gpu = GpuConfig::fermi_m2090();
        let mut k = base_kernel();
        let fast = run_kernel(&gpu, &k);
        // FEA-like state: ~700B of live state per thread => huge spill.
        k.regs_demand_per_thread = 180;
        let slow = run_kernel(&gpu, &k);
        assert_eq!(slow.spilled_regs_per_thread, 180 - 63);
        assert!(
            slow.spill_to_mem_bytes > 0,
            "L1 slice cannot hold the state"
        );
        assert!(slow.time > fast.time * 2, "spilling must be costly");
        assert_eq!(slow.limiter, Limiter::Memory);
        let _ = fast;
    }

    #[test]
    fn occupancy_limited_by_registers() {
        let gpu = GpuConfig::fermi_m2090();
        let mut k = base_kernel();
        k.regs_demand_per_thread = 63;
        let r = run_kernel(&gpu, &k);
        // 32768 regs / 63 = 520 threads -> 2 blocks of 256.
        assert!(
            (r.occupancy - 512.0 / 1536.0).abs() < 1e-9,
            "occ={}",
            r.occupancy
        );
    }

    #[test]
    fn occupancy_limited_by_shared_memory() {
        let gpu = GpuConfig::fermi_m2090();
        let mut k = base_kernel();
        k.shared_bytes_per_thread = 96; // 48K / 96 = 512 threads
        let r = run_kernel(&gpu, &k);
        assert!((r.occupancy - 512.0 / 1536.0).abs() < 1e-9);
    }

    #[test]
    fn larger_l1_absorbs_more_spill() {
        let gpu = GpuConfig::fermi_m2090();
        let mut k = base_kernel();
        k.regs_demand_per_thread = 100;
        k.prefer_large_l1 = false;
        let small = run_kernel(&gpu, &k);
        k.prefer_large_l1 = true;
        let large = run_kernel(&gpu, &k);
        assert!(large.spill_in_l1_bytes >= small.spill_in_l1_bytes);
        assert!(large.time <= small.time);
    }

    #[test]
    fn poor_coalescing_multiplies_traffic() {
        let gpu = GpuConfig::fermi_m2090();
        let mut k = base_kernel();
        k.flops_per_thread = 10; // memory bound
        let good = run_kernel(&gpu, &k);
        k.coalescing = 0.25;
        let bad = run_kernel(&gpu, &k);
        assert!(bad.mem_traffic_bytes > 3 * good.mem_traffic_bytes);
        assert!(bad.time.as_ps() as f64 > 3.0 * good.time.as_ps() as f64);
    }

    #[test]
    fn kepler_fixes_the_spill() {
        let mut k = base_kernel();
        k.regs_demand_per_thread = 180;
        k.flops_per_thread = 500;
        let fermi = run_kernel(&GpuConfig::fermi_m2090(), &k);
        let kepler = run_kernel(&GpuConfig::kepler_like(), &k);
        assert!(fermi.spill_to_mem_bytes > 0);
        assert_eq!(kepler.spilled_regs_per_thread, 0);
        assert!(kepler.time * 2 < fermi.time);
    }

    #[test]
    fn pcie_transfer_time() {
        let gpu = GpuConfig::fermi_m2090();
        let t = gpu.pcie_time(6_000_000_000);
        // 6 GB at 6 GB/s = 1 s (+10us latency).
        assert!((t.as_secs_f64() - 1.0).abs() < 0.01);
        assert!(gpu.pcie_time(0) == gpu.pcie_latency);
    }

    #[test]
    fn compute_bound_kernel_tracks_peak_flops() {
        let gpu = GpuConfig::fermi_m2090();
        let mut k = base_kernel();
        k.flops_per_thread = 10_000;
        k.global_bytes_per_thread = 8;
        let r = run_kernel(&gpu, &k);
        assert_eq!(r.limiter, Limiter::Compute);
        let expected = (k.threads * k.flops_per_thread) as f64 / gpu.peak_flops();
        assert!((r.time.as_secs_f64() - expected).abs() / expected < 0.05);
    }
}
