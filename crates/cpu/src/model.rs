//! Fidelity-selectable node model.
//!
//! [`CoreModel`] is the node-level trait of the multi-fidelity layer: run an
//! instruction-stream phase, get a [`PhaseResult`]. Two implementations:
//!
//! * [`AnalyticNode`] — wraps [`Node`]: the cycle-lockstep loop driving
//!   [`Core`](crate::core::Core) timing models against the immediate-mode
//!   [`MemHierarchy`](sst_mem::MemHierarchy).
//! * [`DesNode`] — assembles [`CoreComponent`]s and an `sst-mem` component
//!   hierarchy with [`install_hierarchy`], runs the system through an
//!   [`Engine`], and rebuilds the [`PhaseResult`] from the run's
//!   [`StatsSnapshot`] (per-core op tallies, `done_at_ns` finish times, and
//!   per-level cache/DRAM counters).
//!
//! [`node_model`] picks the implementation from
//! [`NodeConfig::fidelity`](crate::node::NodeConfig) — this is the seam the
//! figure experiments program against, so `--fidelity des` swaps the whole
//! backend without touching experiment code.
//!
//! Fidelity contract: the DES core batches non-memory work between memory
//! operations (no per-instruction dependence or functional-unit modeling)
//! and each DES phase starts with cold caches, so absolute times diverge
//! from the analytic path; the figure experiments report *relative* rows,
//! which stay within the tolerance bands pinned by
//! `tests/tests/fidelity_equivalence.rs`.

use crate::components::CoreComponent;
use crate::core::CoreStats;
use crate::isa::InstrStream;
use crate::node::{Node, NodeConfig, PhaseResult};
use sst_core::prelude::*;
use sst_mem::model::{hierarchy_stats_from_snapshot, install_hierarchy};

/// A compute node at some fidelity: run instruction streams phase by phase.
pub trait CoreModel {
    fn fidelity(&self) -> Fidelity;
    fn config(&self) -> &NodeConfig;
    /// Simulated time accumulated across phases.
    fn now(&self) -> SimTime;
    /// Run one phase: stream `i` executes on core `i` (streams may be fewer
    /// than the node's cores).
    fn run_phase(&mut self, label: &str, streams: Vec<Box<dyn InstrStream>>) -> PhaseResult;
}

/// Build the node model selected by `cfg.fidelity`.
pub fn node_model(cfg: NodeConfig) -> Box<dyn CoreModel> {
    node_model_with(cfg, TelemetrySpec::disabled())
}

/// As [`node_model`], with a telemetry spec threaded into the DES backend.
/// Each phase engine runs under `telemetry.labeled(phase_label)`, so trace
/// files and run manifests attribute records to the phase that produced
/// them. The analytic backend has no event loop and ignores the spec.
pub fn node_model_with(cfg: NodeConfig, telemetry: TelemetrySpec) -> Box<dyn CoreModel> {
    match cfg.fidelity {
        Fidelity::Analytic => Box::new(AnalyticNode::new(cfg)),
        Fidelity::Des => Box::new(DesNode::with_telemetry(cfg, telemetry)),
    }
}

/// Analytic fidelity: the lockstep [`Node`] loop.
pub struct AnalyticNode {
    node: Node,
}

impl AnalyticNode {
    pub fn new(cfg: NodeConfig) -> AnalyticNode {
        AnalyticNode {
            node: Node::new(cfg),
        }
    }
}

impl CoreModel for AnalyticNode {
    fn fidelity(&self) -> Fidelity {
        Fidelity::Analytic
    }
    fn config(&self) -> &NodeConfig {
        self.node.config()
    }
    fn now(&self) -> SimTime {
        self.node.now()
    }
    fn run_phase(&mut self, label: &str, streams: Vec<Box<dyn InstrStream>>) -> PhaseResult {
        self.node.run_phase(label, streams)
    }
}

/// DES fidelity: each phase builds a fresh component system (cores, caches,
/// buses, DRAM), runs it to exhaustion on a serial [`Engine`], and extracts
/// the phase result from the stats snapshot. Phases advance a persistent
/// `now` so multi-phase experiments keep a monotonic time base, but
/// component state (cache contents, DRAM row buffers) does not carry across
/// phases.
pub struct DesNode {
    cfg: NodeConfig,
    now: SimTime,
    telemetry: TelemetrySpec,
}

impl DesNode {
    pub fn new(cfg: NodeConfig) -> DesNode {
        DesNode::with_telemetry(cfg, TelemetrySpec::disabled())
    }

    pub fn with_telemetry(cfg: NodeConfig, telemetry: TelemetrySpec) -> DesNode {
        DesNode {
            cfg,
            now: SimTime::ZERO,
            telemetry,
        }
    }
}

impl CoreModel for DesNode {
    fn fidelity(&self) -> Fidelity {
        Fidelity::Des
    }
    fn config(&self) -> &NodeConfig {
        &self.cfg
    }
    fn now(&self) -> SimTime {
        self.now
    }

    fn run_phase(&mut self, label: &str, streams: Vec<Box<dyn InstrStream>>) -> PhaseResult {
        let active = streams.len();
        assert!(
            active >= 1 && active <= self.cfg.cores,
            "bad stream count: {} streams on a {}-core node",
            active,
            self.cfg.cores
        );

        let mut b = SystemBuilder::new();
        let mut ups = Vec::with_capacity(active);
        for (i, stream) in streams.into_iter().enumerate() {
            let core = b.add(
                format!("core{i}"),
                CoreComponent::from_config(stream, &self.cfg.core),
            );
            ups.push((core, CoreComponent::MEM));
        }
        install_hierarchy(&mut b, &self.cfg.mem, self.cfg.core.freq, &ups);
        let report =
            Engine::with_telemetry(b, self.telemetry.labeled(label)).run(RunLimit::Exhaust);

        let period_ns = self.cfg.core.freq.period().as_ns_f64();
        let mut per_core = Vec::with_capacity(active);
        let mut finish = SimTime::ZERO;
        for i in 0..active {
            let owner = format!("core{i}");
            let snap = &report.stats;
            let mem_ops = snap.counter(&owner, "mem_ops");
            let done = SimTime::ns_f64(snap.mean(&owner, "done_at_ns").unwrap_or(0.0));
            finish = finish.max(done);
            per_core.push(CoreStats {
                instrs: snap.counter(&owner, "instrs") + mem_ops,
                flops: snap.counter(&owner, "flops"),
                loads: snap.counter(&owner, "loads"),
                stores: snap.counter(&owner, "stores"),
                finish_cycle: (done.as_ns_f64() / period_ns).round() as u64,
                ..CoreStats::default()
            });
        }
        // The engine can idle past the last retirement only by in-flight
        // fill responses; the phase ends at the later of the two.
        finish = finish.max(report.end_time);
        self.now += finish;

        PhaseResult {
            label: label.to_string(),
            cycles: (finish.as_ns_f64() / period_ns).round() as u64,
            time: finish,
            instrs: per_core.iter().map(|s| s.instrs).sum(),
            flops: per_core.iter().map(|s| s.flops).sum(),
            per_core,
            mem: hierarchy_stats_from_snapshot(&report.stats),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::CoreConfig;
    use crate::isa::{AddrPattern, KernelSpec};
    use sst_mem::dram::DramConfig;
    use sst_mem::hierarchy::MemHierarchyConfig;

    fn cfg(cores: usize, width: u32, fidelity: Fidelity) -> NodeConfig {
        NodeConfig {
            core: CoreConfig::with_width(width, Frequency::ghz(2.0)),
            cores,
            mem: MemHierarchyConfig::typical(DramConfig::ddr3_1333(2)),
            fidelity,
        }
    }

    fn stream_kernel(core: usize, iters: u64, span: u64) -> Box<dyn InstrStream> {
        let base = (core as u64 + 1) << 32;
        Box::new(
            KernelSpec {
                label: format!("stream{core}"),
                iters,
                loads: 2,
                stores: 1,
                flops: 2,
                ialu: 1,
                flop_dep: 0,
                load_pattern: AddrPattern::Stream {
                    base,
                    stride: 8,
                    span,
                },
                store_pattern: AddrPattern::Stream {
                    base: base + (1 << 28),
                    stride: 8,
                    span,
                },
                mispredict_every: 0,
                seed: core as u64,
            }
            .stream(),
        )
    }

    #[test]
    fn factory_dispatches_on_fidelity() {
        let a = node_model(cfg(2, 2, Fidelity::Analytic));
        let d = node_model(cfg(2, 2, Fidelity::Des));
        assert_eq!(a.fidelity(), Fidelity::Analytic);
        assert_eq!(d.fidelity(), Fidelity::Des);
        assert_eq!(a.config().cores, 2);
        assert_eq!(d.config().fidelity, Fidelity::Des);
    }

    #[test]
    fn des_phase_reports_full_result() {
        let mut m = node_model(cfg(2, 2, Fidelity::Des));
        let r = m.run_phase(
            "p",
            vec![
                stream_kernel(0, 2000, 1 << 26),
                stream_kernel(1, 2000, 1 << 26),
            ],
        );
        assert_eq!(r.label, "p");
        assert_eq!(r.per_core.len(), 2);
        // 2000 iters × (2 loads + 1 store + 2 flops + 1 ialu + 1 branch)
        assert_eq!(r.per_core[0].loads, 4000);
        assert_eq!(r.per_core[0].stores, 2000);
        assert_eq!(r.per_core[0].flops, 4000);
        assert!(
            r.instrs >= 2 * 2000 * 7 - 2,
            "all instrs counted: {}",
            r.instrs
        );
        assert!(r.cycles > 0 && r.time > SimTime::ZERO);
        assert!(r.ipc() > 0.0);
        assert_eq!(r.mem.l1.accesses(), 2 * 6000);
        assert!(r.mem.dram.accesses() > 0, "streams must reach DRAM");
        assert!(m.now() == r.time, "phase advances the model clock");
    }

    #[test]
    fn des_phases_share_a_time_base() {
        let mut m = node_model(cfg(1, 2, Fidelity::Des));
        let r1 = m.run_phase("a", vec![stream_kernel(0, 300, 16 << 10)]);
        let t1 = m.now();
        let r2 = m.run_phase("b", vec![stream_kernel(0, 300, 16 << 10)]);
        assert!(t1 > SimTime::ZERO);
        assert_eq!(m.now(), r1.time + r2.time);
    }

    #[test]
    fn fidelities_agree_on_relative_memory_sensitivity() {
        // The relative contract behind fig03: streaming phases speed up with
        // faster memory, and both fidelities agree on the direction and
        // rough magnitude of the ratio.
        let ratio = |fidelity: Fidelity| {
            let mut slow = cfg(1, 4, fidelity);
            slow.mem = MemHierarchyConfig::typical(DramConfig::ddr2_800(1));
            let mut fast = cfg(1, 4, fidelity);
            fast.mem = MemHierarchyConfig::typical(DramConfig::gddr5(4));
            let ts = node_model(slow)
                .run_phase("s", vec![stream_kernel(0, 4000, 1 << 26)])
                .time;
            let tf = node_model(fast)
                .run_phase("f", vec![stream_kernel(0, 4000, 1 << 26)])
                .time;
            ts.as_ns_f64() / tf.as_ns_f64()
        };
        let ra = ratio(Fidelity::Analytic);
        let rd = ratio(Fidelity::Des);
        assert!(ra > 1.2 && rd > 1.2, "both must see the speedup: {ra} {rd}");
        let rel = (ra - rd).abs() / ra.max(rd);
        assert!(rel < 0.35, "ratios diverge too far: analytic={ra} des={rd}");
    }

    #[test]
    fn des_is_deterministic_across_reruns() {
        let run = || {
            let mut m = node_model(cfg(4, 2, Fidelity::Des));
            let streams = (0..4).map(|c| stream_kernel(c, 800, 1 << 22)).collect();
            let r = m.run_phase("p", streams);
            (r.time, r.cycles, r.instrs, r.mem.dram.bytes)
        };
        assert_eq!(run(), run(), "DES reruns must be bit-identical");
    }
}
