//! The mini-ISA and instruction streams.
//!
//! The processor models are *stream-driven* (the SST trace-frontend idiom):
//! a workload is an iterator of [`Instr`]s carrying an operation class, an
//! optional memory address, and a dependency distance. Mini-app proxies in
//! `sst-workloads` generate these streams with calibrated op mixes, working
//! sets, and ILP structure; this module provides the vocabulary plus generic
//! synthetic generators used by tests and microbenchmarks.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize, Value};

/// Operation classes the timing model distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// Integer ALU op (1 cycle).
    IAlu,
    /// Integer multiply.
    IMul,
    /// Floating add/sub.
    FAdd,
    /// Floating multiply.
    FMul,
    /// Floating divide / sqrt (long latency, unpipelined).
    FDiv,
    /// Memory load (address in `Instr::addr`).
    Load,
    /// Memory store.
    Store,
    /// Correctly predicted branch (costs an issue slot).
    Branch,
    /// Mispredicted branch: flushes the front end for the configured
    /// penalty.
    BranchMiss,
}

impl Op {
    /// Is this op handled by the memory ports?
    #[inline]
    pub fn is_mem(self) -> bool {
        matches!(self, Op::Load | Op::Store)
    }
    /// Is this op handled by the FP units?
    #[inline]
    pub fn is_fp(self) -> bool {
        matches!(self, Op::FAdd | Op::FMul | Op::FDiv)
    }
    /// Does this op count as a floating-point operation for FLOP rates?
    #[inline]
    pub fn is_flop(self) -> bool {
        self.is_fp()
    }
}

/// One dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Instr {
    pub op: Op,
    /// Byte address for `Load`/`Store`; ignored otherwise.
    pub addr: u64,
    /// Distance (in dynamic instructions) back to the producer of this
    /// instruction's input; `0` = no register dependency. The core stalls
    /// issue until the producer has completed — this is what bounds ILP.
    pub dep_dist: u16,
}

impl Instr {
    #[inline]
    pub fn alu() -> Self {
        Instr {
            op: Op::IAlu,
            addr: 0,
            dep_dist: 0,
        }
    }
    #[inline]
    pub fn fadd(dep: u16) -> Self {
        Instr {
            op: Op::FAdd,
            addr: 0,
            dep_dist: dep,
        }
    }
    #[inline]
    pub fn fmul(dep: u16) -> Self {
        Instr {
            op: Op::FMul,
            addr: 0,
            dep_dist: dep,
        }
    }
    #[inline]
    pub fn load(addr: u64, dep: u16) -> Self {
        Instr {
            op: Op::Load,
            addr,
            dep_dist: dep,
        }
    }
    #[inline]
    pub fn store(addr: u64) -> Self {
        Instr {
            op: Op::Store,
            addr,
            dep_dist: 0,
        }
    }
}

/// A resumable dynamic instruction stream.
pub trait InstrStream: Send {
    /// Produce the next instruction, or `None` when the stream ends.
    fn next_instr(&mut self) -> Option<Instr>;

    /// A short label for reports.
    fn label(&self) -> &str {
        "stream"
    }

    /// Serialize the stream's cursor (position, per-stream RNG) for an
    /// engine checkpoint. The default `Null` is only correct for streams
    /// with no mutable state; resumable streams must override this *and*
    /// [`InstrStream::load_state`].
    fn save_state(&self) -> Value {
        Value::Null
    }

    /// Restore a cursor captured by [`InstrStream::save_state`].
    fn load_state(&mut self, _state: &Value) {}
}

impl InstrStream for Box<dyn InstrStream> {
    fn next_instr(&mut self) -> Option<Instr> {
        (**self).next_instr()
    }
    fn label(&self) -> &str {
        (**self).label()
    }
    fn save_state(&self) -> Value {
        (**self).save_state()
    }
    fn load_state(&mut self, state: &Value) {
        (**self).load_state(state)
    }
}

/// A stream backed by a fixed instruction vector (for tests and traces).
pub struct TraceStream {
    instrs: Vec<Instr>,
    pos: usize,
    label: String,
}

impl TraceStream {
    pub fn new(label: impl Into<String>, instrs: Vec<Instr>) -> Self {
        TraceStream {
            instrs,
            pos: 0,
            label: label.into(),
        }
    }
}

/// Checkpoint cursor for [`TraceStream`] (the trace itself is part of the
/// rebuilt system, not the snapshot).
#[derive(Serialize, Deserialize)]
struct TraceCursor {
    pos: u64,
}

impl InstrStream for TraceStream {
    fn next_instr(&mut self) -> Option<Instr> {
        let i = self.instrs.get(self.pos).copied();
        self.pos += 1;
        i
    }
    fn label(&self) -> &str {
        &self.label
    }
    fn save_state(&self) -> Value {
        TraceCursor {
            pos: self.pos as u64,
        }
        .to_value()
    }
    fn load_state(&mut self, state: &Value) {
        let c = TraceCursor::from_value(state).expect("malformed trace-stream cursor");
        self.pos = c.pos as usize;
    }
}

/// Address generation patterns for synthetic kernels.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum AddrPattern {
    /// Sequential walk: `base + k*stride`, wrapping at `span` bytes.
    Stream { base: u64, stride: u64, span: u64 },
    /// Uniform random within `[base, base + span)`, 8-byte aligned.
    Random { base: u64, span: u64 },
}

impl AddrPattern {
    fn next(&self, k: u64, rng: &mut SmallRng) -> u64 {
        match *self {
            AddrPattern::Stream { base, stride, span } => base + (k * stride) % span.max(1),
            AddrPattern::Random { base, span } => base + ((rng.gen::<u64>() % span.max(8)) & !7),
        }
    }
}

/// Specification of a synthetic instruction mix.
///
/// Each "iteration" emits `loads` loads, `flops` floating ops (alternating
/// add/mul) that depend on the loads, `ialu` integer ops (address math), and
/// `stores` stores, mimicking the skeleton of an inner loop.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelSpec {
    pub label: String,
    /// Number of loop iterations to emit.
    pub iters: u64,
    pub loads: u32,
    pub stores: u32,
    pub flops: u32,
    pub ialu: u32,
    /// Dependency distance for the FP ops; small = serial chain (low ILP),
    /// large/0 = independent (high ILP).
    pub flop_dep: u16,
    pub load_pattern: AddrPattern,
    pub store_pattern: AddrPattern,
    /// One mispredicted branch every `mispredict_every` iterations
    /// (0 = never).
    pub mispredict_every: u64,
    pub seed: u64,
}

impl KernelSpec {
    pub fn stream(&self) -> SyntheticStream {
        SyntheticStream {
            spec: self.clone(),
            iter: 0,
            slot: 0,
            load_k: 0,
            store_k: 0,
            rng: SmallRng::seed_from_u64(self.seed),
        }
    }

    /// Instructions emitted per iteration.
    pub fn instrs_per_iter(&self) -> u64 {
        (self.loads + self.stores + self.flops + self.ialu + 1) as u64
    }
}

/// Generator over a [`KernelSpec`].
pub struct SyntheticStream {
    spec: KernelSpec,
    iter: u64,
    slot: u32,
    load_k: u64,
    store_k: u64,
    rng: SmallRng,
}

impl InstrStream for SyntheticStream {
    fn next_instr(&mut self) -> Option<Instr> {
        let s = &self.spec;
        if self.iter >= s.iters {
            return None;
        }
        let per = s.loads + s.flops + s.ialu + s.stores + 1; // +1 loop branch
        let slot = self.slot;
        self.slot += 1;
        if self.slot >= per {
            self.slot = 0;
            self.iter += 1;
        }

        let instr = if slot < s.loads {
            let addr = s.load_pattern.next(self.load_k, &mut self.rng);
            self.load_k += 1;
            // Loads depend lightly on address math from the previous iter.
            Instr::load(addr, 0)
        } else if slot < s.loads + s.flops {
            // FP ops consume the loads: first FP op depends on the first
            // load of this iteration; later ones chain at `flop_dep`.
            let fp_idx = slot - s.loads;
            let dep = if fp_idx == 0 {
                (s.flops + s.ialu + s.stores).min(u16::MAX as u32) as u16 // reach back to a load
            } else {
                s.flop_dep
            };
            if fp_idx.is_multiple_of(2) {
                Instr::fadd(dep)
            } else {
                Instr::fmul(dep)
            }
        } else if slot < s.loads + s.flops + s.ialu {
            Instr::alu()
        } else if slot < s.loads + s.flops + s.ialu + s.stores {
            let addr = s.store_pattern.next(self.store_k, &mut self.rng);
            self.store_k += 1;
            Instr::store(addr)
        } else {
            // Loop branch.
            let miss = s.mispredict_every > 0 && self.iter.is_multiple_of(s.mispredict_every);
            Instr {
                op: if miss { Op::BranchMiss } else { Op::Branch },
                addr: 0,
                dep_dist: 0,
            }
        };
        Some(instr)
    }

    fn label(&self) -> &str {
        &self.spec.label
    }

    fn save_state(&self) -> Value {
        SyntheticCursor {
            iter: self.iter,
            slot: self.slot,
            load_k: self.load_k,
            store_k: self.store_k,
            rng: self.rng.state().to_vec(),
        }
        .to_value()
    }

    fn load_state(&mut self, state: &Value) {
        let c = SyntheticCursor::from_value(state).expect("malformed synthetic-stream cursor");
        self.iter = c.iter;
        self.slot = c.slot;
        self.load_k = c.load_k;
        self.store_k = c.store_k;
        let rng: [u64; 4] = c
            .rng
            .try_into()
            .expect("synthetic-stream cursor: RNG state must be 4 words");
        self.rng = SmallRng::from_state(rng);
    }
}

/// Checkpoint cursor for [`SyntheticStream`]: generation indices plus the
/// raw xoshiro state, so a restored stream continues the same address
/// sequence. The spec itself is rebuilt with the system.
#[derive(Serialize, Deserialize)]
struct SyntheticCursor {
    iter: u64,
    slot: u32,
    load_k: u64,
    store_k: u64,
    rng: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> KernelSpec {
        KernelSpec {
            label: "test".into(),
            iters: 10,
            loads: 2,
            stores: 1,
            flops: 4,
            ialu: 1,
            flop_dep: 1,
            load_pattern: AddrPattern::Stream {
                base: 0,
                stride: 8,
                span: 1 << 20,
            },
            store_pattern: AddrPattern::Stream {
                base: 1 << 30,
                stride: 8,
                span: 1 << 20,
            },
            mispredict_every: 0,
            seed: 1,
        }
    }

    #[test]
    fn emits_expected_count_and_mix() {
        let s = spec();
        let all: Vec<Instr> = std::iter::from_fn({
            let mut st = s.stream();
            move || st.next_instr()
        })
        .collect();
        assert_eq!(all.len() as u64, s.iters * s.instrs_per_iter());
        let loads = all.iter().filter(|i| i.op == Op::Load).count() as u64;
        let stores = all.iter().filter(|i| i.op == Op::Store).count() as u64;
        let flops = all.iter().filter(|i| i.op.is_flop()).count() as u64;
        assert_eq!(loads, 20);
        assert_eq!(stores, 10);
        assert_eq!(flops, 40);
    }

    #[test]
    fn stream_addresses_stride_and_wrap() {
        let p = AddrPattern::Stream {
            base: 100,
            stride: 8,
            span: 32,
        };
        let mut rng = SmallRng::seed_from_u64(0);
        let addrs: Vec<u64> = (0..6).map(|k| p.next(k, &mut rng)).collect();
        assert_eq!(addrs, vec![100, 108, 116, 124, 100, 108]);
    }

    #[test]
    fn random_addresses_in_range() {
        let p = AddrPattern::Random {
            base: 4096,
            span: 1024,
        };
        let mut rng = SmallRng::seed_from_u64(7);
        for k in 0..100 {
            let a = p.next(k, &mut rng);
            assert!((4096..4096 + 1024).contains(&a));
            assert_eq!(a % 8, 0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let s = spec();
        let v1: Vec<Instr> = std::iter::from_fn({
            let mut st = s.stream();
            move || st.next_instr()
        })
        .collect();
        let v2: Vec<Instr> = std::iter::from_fn({
            let mut st = s.stream();
            move || st.next_instr()
        })
        .collect();
        assert_eq!(v1, v2);
    }

    #[test]
    fn mispredicts_inserted() {
        let mut s = spec();
        s.mispredict_every = 2;
        let misses = std::iter::from_fn({
            let mut st = s.stream();
            move || st.next_instr()
        })
        .filter(|i| i.op == Op::BranchMiss)
        .count();
        assert_eq!(misses, 5);
    }

    #[test]
    fn trace_stream_replays() {
        let mut t = TraceStream::new("t", vec![Instr::alu(), Instr::store(8)]);
        assert_eq!(t.next_instr().unwrap().op, Op::IAlu);
        assert_eq!(t.next_instr().unwrap().op, Op::Store);
        assert!(t.next_instr().is_none());
        assert!(t.next_instr().is_none());
    }
}
