//! Discrete-event processor component.
//!
//! [`CoreComponent`] is a stream-driven processor endpoint for full-system
//! DES simulations: it issues its instruction stream, sending `Load`/`Store`
//! requests over its `"mem"` port (toward an `sst-mem` cache chain) and
//! blocking on outstanding-miss limits exactly like the immediate-mode core.
//! Non-memory instructions are batched between memory operations, so the
//! event count stays proportional to memory traffic, not instruction count
//! (SST's abstract-processor trick for simulating big systems).

use crate::core::CoreConfig;
use crate::isa::{InstrStream, Op};
use serde::{Deserialize, Serialize, Value};
use sst_core::config::ConfigError;
use sst_core::prelude::*;
use sst_mem::components::{MemReq, MemResp};
use std::collections::VecDeque;

/// A trace/stream-driven processor endpoint.
pub struct CoreComponent {
    stream: Box<dyn InstrStream>,
    freq: Frequency,
    issue_width: u32,
    max_outstanding: u32,
    outstanding: u32,
    next_req_id: u64,
    /// Memory ops discovered while batching non-memory work.
    queued_mem: VecDeque<(u64, bool)>,
    stream_done: bool,
    /// Op-class tallies published at finish time (for rebuilding
    /// [`CoreStats`](crate::core::CoreStats) from a snapshot).
    flops: u64,
    loads: u64,
    stores: u64,
    instrs: Option<StatId>,
    mem_ops: Option<StatId>,
    done_at: Option<StatId>,
}

/// Self-scheduled "continue issuing" marker.
#[derive(Debug, Serialize, Deserialize)]
struct Resume;

impl CoreComponent {
    pub const MEM: PortId = PortId(0);

    pub fn new(stream: Box<dyn InstrStream>, freq: Frequency, issue_width: u32) -> CoreComponent {
        CoreComponent {
            stream,
            freq,
            issue_width: issue_width.max(1),
            max_outstanding: 8,
            outstanding: 0,
            next_req_id: 0,
            queued_mem: VecDeque::new(),
            stream_done: false,
            flops: 0,
            loads: 0,
            stores: 0,
            instrs: None,
            mem_ops: None,
            done_at: None,
        }
    }

    /// Build from the immediate-mode core's configuration, so both
    /// fidelities share one knob set (width, frequency, MLP limit).
    pub fn from_config(stream: Box<dyn InstrStream>, cfg: &CoreConfig) -> CoreComponent {
        let mut c = CoreComponent::new(stream, cfg.freq, cfg.issue_width);
        c.max_outstanding = cfg.max_outstanding.max(1);
        c
    }

    /// Pull from the stream until the next memory op, charging issue
    /// cycles for the skipped compute. Returns the compute delay consumed.
    fn advance(&mut self) -> (SimTime, u64) {
        let mut non_mem = 0u64;
        loop {
            match self.stream.next_instr() {
                None => {
                    self.stream_done = true;
                    break;
                }
                Some(i) if i.op.is_mem() => {
                    if i.op == Op::Store {
                        self.stores += 1;
                    } else {
                        self.loads += 1;
                    }
                    self.queued_mem.push_back((i.addr, i.op == Op::Store));
                    break;
                }
                Some(i) => {
                    if i.op.is_flop() {
                        self.flops += 1;
                    }
                    non_mem += 1;
                }
            }
        }
        let cycles = non_mem.div_ceil(self.issue_width as u64);
        (self.freq.cycles(cycles), non_mem)
    }

    fn issue(&mut self, ctx: &mut SimCtx<'_>) {
        let mut delay = SimTime::ZERO;
        let mut batch = 0u64;
        while self.outstanding < self.max_outstanding {
            if self.queued_mem.is_empty() && !self.stream_done {
                let (d, n) = self.advance();
                delay += d;
                batch += n;
            }
            let Some((addr, write)) = self.queued_mem.pop_front() else {
                break;
            };
            let id = self.next_req_id;
            self.next_req_id += 1;
            self.outstanding += 1;
            ctx.add_stat(self.mem_ops.unwrap(), 1);
            ctx.send_delayed(Self::MEM, MemReq { id, addr, write }, delay);
        }
        if batch > 0 {
            ctx.add_stat(self.instrs.unwrap(), batch);
        }
        if self.stream_done && self.outstanding == 0 && self.queued_mem.is_empty() {
            ctx.trace_mark("stream_done", self.next_req_id);
            ctx.record_stat(self.done_at.unwrap(), (ctx.now() + delay).as_ns_f64());
        }
    }
}

/// Checkpoint form of [`CoreComponent`]: issue-engine cursors plus the
/// stream's own saved cursor.
#[derive(Serialize, Deserialize)]
struct CoreComponentState {
    outstanding: u32,
    next_req_id: u64,
    queued_mem: Vec<(u64, bool)>,
    stream_done: bool,
    flops: u64,
    loads: u64,
    stores: u64,
    stream: Value,
}

impl Component for CoreComponent {
    fn setup(&mut self, ctx: &mut SimCtx<'_>) {
        register_payload::<Resume>("cpu.resume");
        register_payload::<MemReq>("mem.req");
        register_payload::<MemResp>("mem.resp");
        self.instrs = Some(ctx.stat_counter("instrs"));
        self.mem_ops = Some(ctx.stat_counter("mem_ops"));
        self.done_at = Some(ctx.stat_accumulator("done_at_ns"));
        // Kick off issue after one cycle.
        ctx.schedule_self(self.freq.period(), Resume);
    }

    fn on_event(&mut self, port: PortId, payload: PayloadSlot, ctx: &mut SimCtx<'_>) {
        match port {
            SELF_PORT => {
                let _ = downcast::<Resume>(payload);
                self.issue(ctx);
            }
            Self::MEM => {
                let _ = downcast::<MemResp>(payload);
                self.outstanding -= 1;
                self.issue(ctx);
            }
            other => panic!("core got event on unexpected port {other:?}"),
        }
    }

    /// Publish op-class tallies for snapshot-level extraction.
    fn finish(&mut self, ctx: &mut SimCtx<'_>) {
        for (name, v) in [
            ("flops", self.flops),
            ("loads", self.loads),
            ("stores", self.stores),
        ] {
            let id = ctx.stat_counter(name);
            ctx.add_stat(id, v);
        }
    }

    fn ports(&self) -> &'static [&'static str] {
        &["mem"]
    }

    fn save_state(&self) -> Value {
        CoreComponentState {
            outstanding: self.outstanding,
            next_req_id: self.next_req_id,
            queued_mem: self.queued_mem.iter().copied().collect(),
            stream_done: self.stream_done,
            flops: self.flops,
            loads: self.loads,
            stores: self.stores,
            stream: self.stream.save_state(),
        }
        .to_value()
    }

    fn load_state(&mut self, state: &Value) {
        let s = CoreComponentState::from_value(state).expect("malformed cpu.core state");
        self.outstanding = s.outstanding;
        self.next_req_id = s.next_req_id;
        self.queued_mem = s.queued_mem.into_iter().collect();
        self.stream_done = s.stream_done;
        self.flops = s.flops;
        self.loads = s.loads;
        self.stores = s.stores;
        self.stream.load_state(&s.stream);
    }
}

/// Register processor components for JSON-config simulations.
pub fn register(registry: &mut ComponentRegistry) {
    registry.register(
        "cpu.stream_core",
        "stream-driven core endpoint (port: mem); params: ghz, issue_width, kernel iters/loads/stores/flops",
        |p| {
            let spec = crate::isa::KernelSpec {
                label: p.str_or("label", "kernel").to_string(),
                iters: p.u64_or("iters", 1000),
                loads: p.u64_or("loads", 2) as u32,
                stores: p.u64_or("stores", 1) as u32,
                flops: p.u64_or("flops", 2) as u32,
                ialu: p.u64_or("ialu", 1) as u32,
                flop_dep: p.u64_or("flop_dep", 0) as u16,
                load_pattern: crate::isa::AddrPattern::Stream {
                    base: p.u64_or("base", 0),
                    stride: p.u64_or("stride", 8),
                    span: p.u64_or("span", 1 << 24),
                },
                store_pattern: crate::isa::AddrPattern::Stream {
                    base: p.u64_or("base", 0) + (1 << 30),
                    stride: p.u64_or("stride", 8),
                    span: p.u64_or("span", 1 << 24),
                },
                mispredict_every: 0,
                seed: p.u64_or("seed", 1),
            };
            if spec.iters == 0 {
                return Err(ConfigError::BadFormat("iters must be > 0".into()));
            }
            let mut core = CoreComponent::new(
                Box::new(spec.stream()),
                Frequency::ghz(p.f64_or("ghz", 2.0)),
                p.u64_or("issue_width", 2) as u32,
            );
            core.max_outstanding = p.u64_or("max_outstanding", 8).max(1) as u32;
            Ok(Box::new(core))
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{AddrPattern, KernelSpec};
    use sst_mem::components::{CacheComponent, MemoryComponent};
    use sst_mem::{CacheConfig, DramConfig};

    fn system(iters: u64, span: u64) -> SimReport {
        let spec = KernelSpec {
            label: "k".into(),
            iters,
            loads: 2,
            stores: 1,
            flops: 4,
            ialu: 2,
            flop_dep: 0,
            load_pattern: AddrPattern::Stream {
                base: 0,
                stride: 64,
                span,
            },
            store_pattern: AddrPattern::Stream {
                base: 1 << 30,
                stride: 64,
                span,
            },
            mispredict_every: 0,
            seed: 5,
        };
        let mut b = SystemBuilder::new();
        let cpu = b.add(
            "cpu0",
            CoreComponent::new(Box::new(spec.stream()), Frequency::ghz(2.0), 4),
        );
        let l1 = b.add(
            "l1",
            CacheComponent::new(CacheConfig::l1d_32k(), SimTime::ns(1)),
        );
        let mem = b.add("mem", MemoryComponent::new(DramConfig::ddr3_1333(2)));
        b.link(
            (cpu, CoreComponent::MEM),
            (l1, CacheComponent::CPU),
            SimTime::ns(1),
        );
        b.link(
            (l1, CacheComponent::MEM),
            (mem, MemoryComponent::BUS),
            SimTime::ns(4),
        );
        Engine::new(b).run(RunLimit::Exhaust)
    }

    #[test]
    fn full_chain_executes_all_memory_ops() {
        let report = system(500, 16 << 10);
        assert_eq!(report.stats.counter("cpu0", "mem_ops"), 500 * 3);
        // All requests got responses: l1 hits + misses == mem_ops (plus the
        // fills that came back).
        let hits = report.stats.counter("l1", "hits");
        let misses = report.stats.counter("l1", "misses");
        assert_eq!(hits + misses, 1500);
        assert!(report.stats.mean("cpu0", "done_at_ns").is_some());
    }

    #[test]
    fn small_working_set_finishes_faster() {
        let hot = system(500, 8 << 10); // fits in L1
        let cold = system(500, 64 << 20); // streams from DRAM
        assert!(hot.end_time < cold.end_time);
        assert!(hot.stats.counter("l1", "hits") > cold.stats.counter("l1", "hits"));
    }

    #[test]
    fn registry_round_trip() {
        let mut reg = ComponentRegistry::new();
        register(&mut reg);
        let c = reg
            .create("cpu.stream_core", &Params::new().set("iters", 10u64))
            .unwrap();
        assert_eq!(c.ports(), &["mem"]);
        assert!(reg
            .create("cpu.stream_core", &Params::new().set("iters", 0u64))
            .is_err());
    }
}
