//! # sst-sim — system assembly and the experiment harness
//!
//! The top of the toolkit: machine presets ([`machines`]), the full DES
//! component registry ([`registry`]), the validation-metric framework
//! ([`validation`]), result tables ([`table`]), and one experiment runner
//! per reproduced figure ([`experiments`]). The `sst` binary exposes all of
//! it on the command line:
//!
//! ```text
//! sst experiment fig10          # regenerate a figure (paper scale)
//! sst experiment all --quick    # every figure, test scale
//! sst run system.json           # run a JSON-configured simulation
//! sst list-components           # registered DES component types
//! sst list-miniapps             # the Table-1 workload registry
//! ```

pub mod analyze;
pub mod cli;
pub mod experiments;
pub mod machines;
pub mod registry;
pub mod sweep;
pub mod table;
pub mod validation;

pub use registry::full_registry;
pub use table::Table;
