//! Fig. 2 — effect of cores-per-node on the FEA and solver phases of
//! Charon and miniFE (Cray XE6 node).
//!
//! Weak scaling within the node: every active core owns the same problem,
//! so perfect hardware would hold per-core time flat. The solver phases
//! are bandwidth-bound and lose efficiency as cores contend for DRAM; the
//! FEA phases are compute-dense and stay near 1.0. The proportional
//! comparison between the app (Charon) and its mini-app (miniFE) is the
//! validation evidence — the paper found them within ~13%.

use super::common::{max_rel_diff, run_fea_solver, App};
use crate::machines::xe6_node;
use crate::table::Table;

#[derive(Debug, Clone)]
pub struct Params {
    pub core_counts: Vec<usize>,
    pub nx: u64,
    pub solver_iters: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            core_counts: vec![1, 2, 4, 6, 8, 12],
            nx: 18,
            solver_iters: 8,
        }
    }
}

impl Params {
    /// Scaled-down version for tests.
    pub fn quick() -> Params {
        Params {
            core_counts: vec![1, 2, 4],
            nx: 10,
            solver_iters: 3,
        }
    }
}

pub fn run(p: &Params) -> Table {
    let mut t = Table::new(
        "Fig 2: per-core efficiency vs cores per node (XE6)",
        p.core_counts.iter().map(|c| format!("{c} cores")).collect(),
    );

    // Every run uses the full node: the hierarchy (shared-cache and DRAM
    // capacity) is that of the largest configuration, and varying `cores`
    // only changes how many of its cores are active.
    let full_node_cores = p.core_counts.iter().copied().max().unwrap();

    let mut series: Vec<(String, Vec<f64>)> = Vec::new();
    for app in [App::Charon, App::MiniFe] {
        let mut fea_eff = Vec::new();
        let mut sol_eff = Vec::new();
        let mut fea_base = 0.0;
        let mut sol_base = 0.0;
        for (i, &cores) in p.core_counts.iter().enumerate() {
            let cfg = xe6_node(full_node_cores);
            let (fea, solver) = run_fea_solver(&cfg, app, cores, p.nx, p.solver_iters);
            let fea_t = fea.expect("fea phase").time.as_secs_f64();
            let sol_t = solver.time.as_secs_f64();
            if i == 0 {
                fea_base = fea_t;
                sol_base = sol_t;
            }
            // Efficiency: per-core work is constant, so time(1)/time(n).
            fea_eff.push(fea_base / fea_t);
            sol_eff.push(sol_base / sol_t);
        }
        series.push((format!("{} FEA eff", app.name()), fea_eff));
        series.push((format!("{} solver eff", app.name()), sol_eff));
    }
    for (label, vals) in &series {
        t.push(label.clone(), vals.clone());
    }

    // Proportional comparison rows (validation metric inputs).
    let fea_diff = max_rel_diff(&series[0].1, &series[2].1);
    let sol_diff = max_rel_diff(&series[1].1, &series[3].1);
    t.push("proportional diff FEA", vec![fea_diff; p.core_counts.len()]);
    t.push(
        "proportional diff solver",
        vec![sol_diff; p.core_counts.len()],
    );
    t.note(format!(
        "max proportional difference: FEA {:.1}%, solver {:.1}% (paper: within ~13%)",
        fea_diff * 100.0,
        sol_diff * 100.0
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_efficiency_declines_with_cores() {
        let t = run(&Params::quick());
        for app in ["Charon", "miniFE"] {
            let row = t.row(&format!("{app} solver eff"));
            assert!((row[0] - 1.0).abs() < 1e-9);
            assert!(
                row[row.len() - 1] < 0.9,
                "{app} solver should lose efficiency: {row:?}"
            );
            let fea = t.row(&format!("{app} FEA eff"));
            assert!(
                fea[fea.len() - 1] > row[row.len() - 1],
                "{app} FEA must contend less than solver"
            );
        }
    }

    #[test]
    fn miniapp_tracks_app() {
        let t = run(&Params::quick());
        let d = t.get("proportional diff solver", "1 cores");
        assert!(d < 0.25, "solver proportional diff too large: {d}");
    }
}
