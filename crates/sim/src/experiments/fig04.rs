//! Fig. 4 — cache behavior (L1/L2/L3 hit rates) of the FEA and solver
//! phases of Charon and miniFE.
//!
//! The validation study's *negative* result: the two codes' FEA phases
//! agree at L1 (within ~3%) but diverge sharply at L2/L3 — the production
//! code scatters across Jacobian/residual/material arrays several times
//! the matrix size (hence its surprisingly low deep-cache hit rates),
//! while miniFE's simplified single-matrix assembly reuses an L3-resident
//! band, leaving miniFE's L2/L3 hit rates several-fold *higher*. The
//! solver phases, both streaming SpMV + vectors, agree at every level.

use super::common::{run_fea_solver, App};
use crate::machines::nehalem_node;
use crate::table::Table;
use sst_mem::dram::DramConfig;

#[derive(Debug, Clone)]
pub struct Params {
    pub nx: u64,
    pub solver_iters: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            nx: 44,
            solver_iters: 3,
        }
    }
}

impl Params {
    pub fn quick() -> Params {
        Params {
            nx: 34,
            solver_iters: 2,
        }
    }
}

pub fn run(p: &Params) -> Table {
    let mut t = Table::cols(
        "Fig 4: cache hit rates by phase (1 core, Nehalem-like)",
        &["L1", "L2", "L3"],
    );
    for app in [App::Charon, App::MiniFe] {
        let cfg = nehalem_node(1, DramConfig::ddr3_1333(2));
        let (fea, solver) = run_fea_solver(&cfg, app, 1, p.nx, p.solver_iters);
        let fea = fea.expect("fea");
        t.push(
            format!("{} FEA", app.name()),
            vec![
                fea.mem.l1.hit_rate(),
                fea.mem.l2.hit_rate(),
                fea.mem.l3.hit_rate(),
            ],
        );
        t.push(
            format!("{} solver", app.name()),
            vec![
                solver.mem.l1.hit_rate(),
                solver.mem.l2.hit_rate(),
                solver.mem.l3.hit_rate(),
            ],
        );
    }
    let l2_ratio = t.get("miniFE FEA", "L2") / t.get("Charon FEA", "L2").max(1e-9);
    let l3_ratio = t.get("miniFE FEA", "L3") / t.get("Charon FEA", "L3").max(1e-9);
    t.note(format!(
        "FEA divergence: miniFE/Charon L2 hit ratio {l2_ratio:.1}x, L3 {l3_ratio:.1}x \
         (paper: ~3x and ~6x apart => miniFE FEA cache behavior not predictive)"
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fea_l1_agrees_but_l2_l3_diverge() {
        let t = run(&Params::quick());
        let l1_c = t.get("Charon FEA", "L1");
        let l1_m = t.get("miniFE FEA", "L1");
        assert!(
            (l1_c - l1_m).abs() / l1_c.max(l1_m) < 0.06,
            "FEA L1 should agree within a few %: {l1_c} vs {l1_m}"
        );
        let l2_c = t.get("Charon FEA", "L2");
        let l2_m = t.get("miniFE FEA", "L2");
        assert!(
            l2_m > 1.8 * l2_c,
            "miniFE FEA L2 must be several-fold higher than Charon's: {l2_m} vs {l2_c}"
        );
        let l3_c = t.get("Charon FEA", "L3");
        let l3_m = t.get("miniFE FEA", "L3");
        assert!(
            l3_m > 1.8 * l3_c,
            "miniFE FEA L3 must be several-fold higher than Charon's: {l3_m} vs {l3_c}"
        );
    }

    #[test]
    fn solver_phases_agree_at_all_levels() {
        let t = run(&Params::quick());
        for lvl in ["L1", "L2", "L3"] {
            let c = t.get("Charon solver", lvl);
            let m = t.get("miniFE solver", lvl);
            let denom: f64 = c.abs().max(m.abs()).max(0.05);
            assert!(
                (c - m).abs() / denom < 0.35,
                "solver {lvl} should be comparable: {c} vs {m}"
            );
        }
    }

    #[test]
    fn hit_rates_are_rates() {
        let t = run(&Params::quick());
        for r in &t.rows {
            for v in &r.values {
                assert!((0.0..=1.0).contains(v), "{}: {v}", r.label);
            }
        }
    }
}
