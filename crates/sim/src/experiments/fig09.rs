//! Fig. 9 — application sensitivity to network injection bandwidth
//! (Cray XT5 testbed, firmware-throttled NICs).
//!
//! Each application runs at full (3.2 GB/s), half, quarter, and eighth
//! injection bandwidth; results are slowdowns relative to full. The
//! shapes: Charon (many small, latency-bound messages) is essentially
//! flat; CTH and SAGE (few, very large messages that must complete before
//! the step advances) degrade past 2x at one-eighth; xNOBEL hides its
//! messages behind computation at small scale but loses the overlap as
//! strong scaling shrinks the per-rank compute block (the falloff past
//! ~384 cores).

use crate::table::Table;
use sst_core::time::SimTime;
use sst_net::mpi::{CommOp, MpiSim};
use sst_net::network::{NetConfig, Network};
use sst_net::topology::Torus3D;
use sst_workloads::apps;
use sst_workloads::charon::{self, Precond};

#[derive(Debug, Clone)]
pub struct Params {
    pub bw_factors: Vec<f64>,
    /// Rank count for the per-app comparison.
    pub ranks: u32,
    /// Rank counts for the xNOBEL strong-scaling falloff series.
    pub xnobel_ranks: Vec<u32>,
    pub steps: u32,
    pub ranks_per_node: u32,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            bw_factors: vec![1.0, 0.5, 0.25, 0.125],
            ranks: 512,
            xnobel_ranks: vec![64, 384, 1024],
            steps: 4,
            ranks_per_node: 8,
        }
    }
}

impl Params {
    pub fn quick() -> Params {
        Params {
            ranks: 64,
            xnobel_ranks: vec![27, 216],
            steps: 2,
            ..Default::default()
        }
    }
}

fn grid_dims(p: u32) -> [u32; 3] {
    let c = (p as f64).cbrt().round().max(1.0) as u32;
    if c * c * c == p {
        [c, c, c]
    } else {
        let mut d = [1u32; 3];
        let mut rem = p;
        for (slot, dim) in d.iter_mut().enumerate() {
            let target = (rem as f64).powf(1.0 / (3 - slot) as f64).round() as u32;
            let mut f = target.max(1);
            while !rem.is_multiple_of(f) {
                f -= 1;
            }
            *dim = f;
            rem /= f;
        }
        d
    }
}

fn scripts_for(app: &str, ranks: u32, steps: u32) -> Vec<Vec<CommOp>> {
    let dims = grid_dims(ranks);
    // Strong-scaled problem: per-rank compute shrinks with rank count,
    // faces shrink with the 2/3 power (surface/volume).
    let scale = ranks as f64;
    let compute = |base_ms: f64| SimTime::ps((base_ms * 1e9 * 512.0 / scale) as u64);
    let face = |base: u64| ((base as f64 * (512.0 / scale).powf(2.0 / 3.0)) as u64).max(1024);
    (0..ranks)
        .map(|r| match app {
            "CTH" => apps::cth_comm_script(r, dims, face(2 << 20), steps, compute(16.0)),
            "SAGE" => apps::sage_comm_script(r, dims, face(1536 << 10), steps, compute(14.0)),
            "xNOBEL" => apps::xnobel_comm_script(r, dims, face(640 << 10), steps, compute(12.0)),
            "Charon" => charon::solver_comm_script(
                r,
                dims,
                Precond::Ilu0,
                face(24 << 10),
                steps,
                compute(10.0),
            ),
            other => panic!("unknown app {other}"),
        })
        .collect()
}

fn run_once(app: &str, ranks: u32, steps: u32, bw_factor: f64, rpn: u32) -> SimTime {
    let nodes = ranks.div_ceil(rpn);
    let mut net = Network::new(
        Box::new(Torus3D::fitting(nodes)),
        NetConfig::xt5().with_injection_scale(bw_factor),
    );
    let scripts = scripts_for(app, ranks, steps);
    MpiSim::new(&mut net, rpn).run(scripts).end_time
}

pub fn run(p: &Params) -> Table {
    let mut t = Table::new(
        "Fig 9: slowdown vs injection bandwidth (relative to full 3.2 GB/s)",
        p.bw_factors
            .iter()
            .map(|f| format!("{:.3} GB/s", 3.2 * f))
            .collect(),
    );
    for app in ["CTH", "SAGE", "xNOBEL", "Charon"] {
        let base = run_once(app, p.ranks, p.steps, p.bw_factors[0], p.ranks_per_node);
        let vals: Vec<f64> = p
            .bw_factors
            .iter()
            .map(|&f| {
                run_once(app, p.ranks, p.steps, f, p.ranks_per_node).as_secs_f64()
                    / base.as_secs_f64()
            })
            .collect();
        t.push(format!("{app} @{} ranks", p.ranks), vals);
    }
    // xNOBEL scale series: overlap survives at small scale, dies at large.
    for &r in &p.xnobel_ranks {
        let base = run_once("xNOBEL", r, p.steps, p.bw_factors[0], p.ranks_per_node);
        let vals: Vec<f64> = p
            .bw_factors
            .iter()
            .map(|&f| {
                run_once("xNOBEL", r, p.steps, f, p.ranks_per_node).as_secs_f64()
                    / base.as_secs_f64()
            })
            .collect();
        t.push(format!("xNOBEL @{r} ranks"), vals);
    }
    t.note("paper: Charon ~flat; CTH >2x at one-eighth; xNOBEL falls off past ~384 cores");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charon_flat_cth_degrades() {
        let p = Params::quick();
        let t = run(&p);
        let eighth = "0.400 GB/s";
        let charon = t.get(&format!("Charon @{} ranks", p.ranks), eighth);
        let cth = t.get(&format!("CTH @{} ranks", p.ranks), eighth);
        assert!(
            charon < 1.25,
            "Charon must be ~insensitive to injection bw: {charon}"
        );
        assert!(cth > 1.8, "CTH must degrade strongly: {cth}");
        assert!(cth > charon);
    }

    #[test]
    fn xnobel_overlap_dies_at_scale() {
        let p = Params::quick();
        let t = run(&p);
        let eighth = "0.400 GB/s";
        let small = t.get(&format!("xNOBEL @{} ranks", p.xnobel_ranks[0]), eighth);
        let large = t.get(
            &format!("xNOBEL @{} ranks", p.xnobel_ranks.last().unwrap()),
            eighth,
        );
        assert!(
            large > small,
            "xNOBEL degradation must grow with scale: {small} -> {large}"
        );
    }

    #[test]
    fn full_bandwidth_row_is_unity() {
        let p = Params::quick();
        let t = run(&p);
        for row in &t.rows {
            assert!((row.values[0] - 1.0).abs() < 1e-9, "{}", row.label);
        }
    }
}
