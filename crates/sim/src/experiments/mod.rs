//! The experiment harness: one runner per reproduced figure/table.
//!
//! Every runner takes a `Params` (with `Default` = paper-scale and
//! `quick()` = test-scale) and returns a [`Table`](crate::table::Table).
//! See DESIGN.md's per-experiment index and EXPERIMENTS.md for
//! paper-vs-measured comparisons.

pub mod ablate;
pub mod common;
pub mod dse;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig08;
pub mod fig09;
pub mod pdes;
pub mod pim;
pub mod topo;
pub mod validate;

use crate::table::Table;
use sst_core::fidelity::Fidelity;
use sst_core::telemetry::{CheckpointEntry, EngineProfile, TelemetrySpec};
use sst_core::{PartitionStrategy, SimTime, Snapshot, SyncMode, TransportKind};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Experiment ids accepted by the CLI.
pub const ALL: &[&str] = &[
    "fig02", "fig03", "fig04", "fig05", "fig08", "fig09", "fig10", "fig11", "fig12", "pdes",
    "topo", "validate", "ablate", "pim",
];

/// Experiments that accept `--fidelity des` (the rest are analytic-only and
/// reject a non-default fidelity rather than silently ignoring it).
/// Figs. 10-12 share the DSE sweep, so converting it converts all three.
pub const SUPPORTS_DES: &[&str] = &["fig03", "fig10", "fig11", "fig12"];

/// Run one experiment by id. `quick` selects the scaled-down parameters;
/// `fidelity` selects the modeling backend for the experiments in
/// [`SUPPORTS_DES`]. Returns `None` for an unknown id or an unsupported
/// id/fidelity combination.
pub fn run_by_name(name: &str, quick: bool, fidelity: Fidelity) -> Option<Vec<Table>> {
    run_with(name, quick, fidelity, &TelemetrySpec::disabled())
}

/// Parallel-engine knobs the CLI can override on engine-backed experiments
/// (`pdes` and `topo` honor them — the figure experiments run serial
/// engines). `ranks` replaces the experiment's rank sweep with one count;
/// `partition`/`profile` select and weight the rank partitioner;
/// `transport`/`sync` pick the cross-rank backend and epoch policy;
/// `topo`/`topo_nodes` reshape the lazy-topology study.
#[derive(Debug, Clone, Default)]
pub struct EngineTuning {
    pub ranks: Option<u32>,
    pub partition: Option<PartitionStrategy>,
    pub profile: Option<EngineProfile>,
    pub transport: Option<TransportKind>,
    pub sync: Option<SyncMode>,
    /// Topology family for the `topo` experiment (`--topo`).
    pub topo: Option<String>,
    /// Minimum component count for the `topo` experiment (`--topo-nodes`).
    pub topo_nodes: Option<u32>,
    /// Checkpoint cadence/destination (`--checkpoint-every`/`--checkpoint-dir`).
    pub checkpoint: Option<CheckpointPlan>,
    /// Live metrics registry backing a `--metrics-addr` endpoint; the
    /// engine-backed experiments report into it while they run.
    pub live: Option<Arc<sst_core::LiveMetrics>>,
}

impl EngineTuning {
    pub fn any(&self) -> bool {
        self.ranks.is_some()
            || self.partition.is_some()
            || self.profile.is_some()
            || self.transport.is_some()
            || self.sync.is_some()
    }
}

/// Where and how often an engine-backed experiment writes checkpoints.
/// Shared (via `Arc`) between the experiment's engine runs and the CLI, so
/// the manifest can list every snapshot file after the runs complete.
#[derive(Debug, Clone)]
pub struct CheckpointPlan {
    /// Simulated-time snapshot cadence.
    pub every: SimTime,
    /// Directory snapshot files are written into (must already exist).
    pub dir: PathBuf,
    records: Arc<Mutex<Vec<CheckpointEntry>>>,
    final_hash: Arc<Mutex<Option<String>>>,
}

impl CheckpointPlan {
    pub fn new(every: SimTime, dir: PathBuf) -> CheckpointPlan {
        CheckpointPlan {
            every,
            dir,
            records: Arc::new(Mutex::new(Vec::new())),
            final_hash: Arc::new(Mutex::new(None)),
        }
    }

    /// Write `snap` to `<dir>/<label>-t<time_ps>.snap.json` and record a
    /// manifest row. IO failure panics: a silently missing checkpoint file
    /// defeats the point of asking for one.
    pub fn store(&self, label: &str, snap: &Snapshot) {
        let path = self
            .dir
            .join(format!("{label}-t{}.snap.json", snap.time_ps));
        std::fs::write(&path, snap.to_json_pretty())
            .unwrap_or_else(|e| panic!("cannot write checkpoint {}: {e}", path.display()));
        self.records.lock().unwrap().push(CheckpointEntry {
            label: label.to_string(),
            time_ps: snap.time_ps,
            path: path.display().to_string(),
            state_hash: snap.state_hash.clone(),
        });
    }

    /// Record a run's final sealed state hash. Every engine run under one
    /// plan simulates the same system to the same limit, so disagreement is
    /// a determinism failure and panics.
    pub fn note_final(&self, label: &str, hash: &str) {
        let mut slot = self.final_hash.lock().unwrap();
        match &*slot {
            Some(prev) => assert_eq!(
                prev, hash,
                "final state hash diverged at `{label}`: runs under one checkpoint \
                 plan must agree"
            ),
            None => *slot = Some(hash.to_string()),
        }
    }

    /// Manifest rows and the agreed final hash, for the run manifest.
    pub fn take_records(&self) -> (Vec<CheckpointEntry>, Option<String>) {
        (
            self.records.lock().unwrap().clone(),
            self.final_hash.lock().unwrap().clone(),
        )
    }
}

/// As [`run_by_name`], with a telemetry spec threaded into the engine-backed
/// experiments (DES-fidelity figure runs and the `pdes` scaling study). The
/// purely analytic experiments have no event loop and ignore it.
pub fn run_with(
    name: &str,
    quick: bool,
    fidelity: Fidelity,
    telemetry: &TelemetrySpec,
) -> Option<Vec<Table>> {
    run_with_tuning(name, quick, fidelity, telemetry, &EngineTuning::default())
}

/// As [`run_with`], plus parallel-engine tuning for the experiments that
/// take it. The CLI rejects tuning flags for experiments that ignore them,
/// so an `EngineTuning` arriving here for a non-`pdes` id is a caller bug,
/// not a user error — it is silently unused.
pub fn run_with_tuning(
    name: &str,
    quick: bool,
    fidelity: Fidelity,
    telemetry: &TelemetrySpec,
    tuning: &EngineTuning,
) -> Option<Vec<Table>> {
    if fidelity != Fidelity::Analytic && !SUPPORTS_DES.contains(&name) {
        return None;
    }
    let telemetry = telemetry.labeled(name);
    let tables = match name {
        "fig02" => vec![fig02::run(&pick(
            quick,
            fig02::Params::default(),
            fig02::Params::quick(),
        ))],
        "fig03" => {
            let mut p = pick(quick, fig03::Params::default(), fig03::Params::quick());
            p.fidelity = fidelity;
            p.telemetry = telemetry;
            vec![fig03::run(&p)]
        }
        "fig04" => vec![fig04::run(&pick(
            quick,
            fig04::Params::default(),
            fig04::Params::quick(),
        ))],
        "fig05" => vec![fig05::run(&pick(
            quick,
            fig05::Params::default(),
            fig05::Params::quick(),
        ))],
        "fig08" => vec![fig08::run(&pick(
            quick,
            fig08::Params::default(),
            fig08::Params::quick(),
        ))],
        "fig09" => vec![fig09::run(&pick(
            quick,
            fig09::Params::default(),
            fig09::Params::quick(),
        ))],
        "fig10" | "fig11" | "fig12" => {
            let mut p = pick(quick, dse::Params::default(), dse::Params::quick());
            p.fidelity = fidelity;
            p.telemetry = telemetry;
            let points = dse::sweep(&p);
            match name {
                "fig10" => vec![dse::fig10(&points, &p)],
                "fig11" => vec![dse::fig11(&points, &p)],
                _ => vec![dse::fig12(&points, &p)],
            }
        }
        "pdes" => {
            let mut p = pick(quick, pdes::Params::default(), pdes::Params::quick());
            p.telemetry = telemetry;
            if let Some(n) = tuning.ranks {
                p.rank_counts = vec![n];
            }
            if let Some(s) = tuning.partition {
                p.partition = s;
            }
            if let Some(tr) = tuning.transport {
                p.transport = tr;
            }
            if let Some(sy) = tuning.sync {
                p.sync = sy;
            }
            p.profile = tuning.profile.clone();
            p.checkpoint = tuning.checkpoint.clone();
            p.live = tuning.live.clone();
            vec![pdes::run(&p)]
        }
        "topo" => {
            let mut p = pick(quick, topo::Params::default(), topo::Params::quick());
            p.telemetry = telemetry;
            if let Some(n) = tuning.ranks {
                p.rank_counts = vec![n];
            }
            if let Some(tr) = tuning.transport {
                p.transport = tr;
            }
            if let Some(sy) = tuning.sync {
                p.sync = sy;
            }
            if let Some(k) = &tuning.topo {
                p.topo = k.clone();
            }
            if let Some(n) = tuning.topo_nodes {
                p.nodes = n;
            }
            p.live = tuning.live.clone();
            vec![topo::run(&p)]
        }
        "ablate" => vec![ablate::run(&pick(
            quick,
            ablate::Params::default(),
            ablate::Params::quick(),
        ))],
        "pim" => vec![pim::run(&pick(
            quick,
            pim::Params::default(),
            pim::Params::quick(),
        ))],
        "validate" => vec![validate::run(&validate::Params { quick })],
        _ => return None,
    };
    Some(tables)
}

fn pick<T>(quick: bool, full: T, q: T) -> T {
    if quick {
        q
    } else {
        full
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ids_resolve() {
        // Smoke: the lookup table and the dispatcher agree (run the cheap
        // one only; the heavy ones have their own tests).
        assert!(run_by_name("nonexistent", true, Fidelity::Analytic).is_none());
        assert!(ALL.contains(&"fig10"));
    }

    #[test]
    fn des_only_for_converted_experiments() {
        for id in SUPPORTS_DES {
            assert!(ALL.contains(id), "{id} not a known experiment");
        }
        // Unconverted experiments reject a DES request outright.
        assert!(run_by_name("fig02", true, Fidelity::Des).is_none());
    }
}
