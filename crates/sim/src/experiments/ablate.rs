//! Ablation studies for the design choices DESIGN.md calls out: what each
//! modeling/architecture mechanism buys.
//!
//! * **Bank interleaving** — permutation-based bank hashing vs naive
//!   modulo mapping, under multi-stream traffic (power-of-two-strided
//!   arenas alias catastrophically without it).
//! * **Lookahead** — conservative-PDES window size (= minimum cross-rank
//!   link latency) vs synchronization epochs: the SST design premise that
//!   links-with-latency make parallel simulation cheap.
//! * **Memory-level parallelism** — HPCCG runtime vs the core's
//!   outstanding-miss limit: why non-blocking caches matter for sparse
//!   solvers.

use crate::machines::dse_node;
use crate::table::Table;
use sst_core::engine::RunLimit;
use sst_core::parallel::ParallelEngine;
use sst_core::time::SimTime;
use sst_cpu::node::Node;
use sst_mem::dram::{DramConfig, DramSystem};
use sst_workloads::Problem;

#[derive(Debug, Clone)]
pub struct Params {
    pub streams: usize,
    pub accesses_per_stream: u64,
    pub lookaheads_ns: Vec<u64>,
    pub mlp_limits: Vec<u32>,
    pub nx: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            streams: 8,
            accesses_per_stream: 20_000,
            lookaheads_ns: vec![5, 20, 80, 320],
            mlp_limits: vec![2, 4, 8, 16, 32],
            nx: 14,
        }
    }
}

impl Params {
    pub fn quick() -> Params {
        Params {
            accesses_per_stream: 4_000,
            lookaheads_ns: vec![5, 80],
            mlp_limits: vec![2, 8, 32],
            nx: 10,
            ..Default::default()
        }
    }
}

/// Interleave `streams` sequential walks over power-of-two-spaced arenas —
/// the access pattern of a multicore node — and time the drain.
fn bank_ablation_run(hash: bool, p: &Params) -> (SimTime, f64) {
    let mut cfg = DramConfig::ddr3_1333(1);
    cfg.bank_hash = hash;
    let mut d = DramSystem::new(cfg);
    let mut t = SimTime::ZERO;
    for i in 0..p.accesses_per_stream {
        for s in 0..p.streams {
            let addr = ((s as u64 + 1) << 32) + i * 64;
            let (done, _) = d.service(addr, false, t);
            t = t.max(done.saturating_sub(SimTime::ns(60)));
        }
    }
    (d.last_busy(), d.stats.row_hit_rate())
}

/// The PDES token-traffic workload at a given link latency; returns the
/// conservative-sync epoch count and wall time.
fn lookahead_run(latency_ns: u64) -> (u64, f64) {
    let params = super::pdes::Params {
        side: 10,
        tokens_per_node: 6,
        ttl: 120,
        rank_counts: vec![],
        telemetry: sst_core::telemetry::TelemetrySpec::disabled(),
        partition: Default::default(),
        transport: Default::default(),
        sync: Default::default(),
        profile: None,
        checkpoint: None,
        live: None,
        inject: None,
    };
    let b = super::pdes::build_with_latency(&params, SimTime::ns(latency_ns));
    let report = ParallelEngine::new(b, 2).run(RunLimit::Exhaust);
    (report.epochs, report.wall_seconds)
}

pub fn run(p: &Params) -> Table {
    let mut t = Table::cols(
        "Ablations: what each design mechanism buys",
        &["value", "baseline", "ratio"],
    );

    // --- bank interleaving ---
    let (t_hash, hr_hash) = bank_ablation_run(true, p);
    let (t_mod, hr_mod) = bank_ablation_run(false, p);
    t.push(
        "bank hash: drain time (s)",
        vec![
            t_hash.as_secs_f64(),
            t_mod.as_secs_f64(),
            t_mod.as_secs_f64() / t_hash.as_secs_f64(),
        ],
    );
    t.push(
        "bank hash: row hit rate",
        vec![hr_hash, hr_mod, hr_hash / hr_mod.max(1e-9)],
    );

    // --- lookahead ---
    let base = lookahead_run(*p.lookaheads_ns.last().unwrap());
    for &la in &p.lookaheads_ns {
        let (epochs, _wall) = lookahead_run(la);
        t.push(
            format!("lookahead {la} ns: sync epochs"),
            vec![
                epochs as f64,
                base.0 as f64,
                epochs as f64 / base.0.max(1) as f64,
            ],
        );
    }

    // --- next-line prefetching ---
    {
        use sst_core::time::Frequency;
        use sst_mem::cache::Access;
        use sst_mem::hierarchy::{MemHierarchy, MemHierarchyConfig};
        let run = |prefetch: bool, random: bool| {
            let mut m = MemHierarchy::new(
                MemHierarchyConfig::typical(DramConfig::ddr3_1333(2)),
                1,
                Frequency::ghz(2.0),
            );
            m.prefetch_next_line = prefetch;
            let mut t = SimTime::ZERO;
            let mut x = 0x9E37u64;
            for i in 0..p.accesses_per_stream {
                let addr = if random {
                    x ^= x << 13;
                    x ^= x >> 7;
                    (x % (1 << 28)) & !63
                } else {
                    i * 64
                };
                t = m.access(0, addr, Access::Read, t).complete;
            }
            t.as_secs_f64()
        };
        for (label, random) in [("stream", false), ("random", true)] {
            let off = run(false, random);
            let on = run(true, random);
            t.push(
                format!("prefetch on {label}: time (s)"),
                vec![on, off, on / off],
            );
        }
    }

    // --- memory-level parallelism ---
    let mlp_time = |mlp: u32| {
        let mut cfg = dse_node(4, DramConfig::ddr3_1333(1));
        cfg.core.max_outstanding = mlp;
        let mut node = Node::new(cfg);
        node.run_phase(
            "cg",
            vec![sst_workloads::hpccg::solver(0, Problem::new(p.nx), 2)],
        )
        .time
        .as_secs_f64()
    };
    let base_t = mlp_time(*p.mlp_limits.last().unwrap());
    for &mlp in &p.mlp_limits {
        let tt = mlp_time(mlp);
        t.push(
            format!("MLP {mlp}: HPCCG time (s)"),
            vec![tt, base_t, tt / base_t],
        );
    }

    t.note("bank hash: permutation interleaving vs naive modulo under 8 strided streams");
    t.note("lookahead: conservative-sync epochs shrink as link latency (lookahead) grows");
    t.note("MLP: blocking-ish caches strangle sparse solvers; deep MSHRs recover the bandwidth");
    t.note("prefetch: next-line prefetching wins on streams (ratio < 1) and loses on random traffic (ratio > 1)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_hash_wins_under_strided_streams() {
        let p = Params::quick();
        let (t_hash, hr_hash) = bank_ablation_run(true, &p);
        let (t_mod, hr_mod) = bank_ablation_run(false, &p);
        assert!(
            t_mod.as_ps() > t_hash.as_ps(),
            "hashing must help: {t_hash} vs {t_mod}"
        );
        assert!(hr_hash >= hr_mod);
    }

    #[test]
    fn bigger_lookahead_fewer_epochs() {
        let (e_small, _) = lookahead_run(5);
        let (e_big, _) = lookahead_run(320);
        assert!(
            e_small > 4 * e_big,
            "lookahead must amortize barriers: {e_small} vs {e_big}"
        );
    }

    #[test]
    fn mlp_recovers_solver_performance() {
        let p = Params::quick();
        let t2 = {
            let mut cfg = dse_node(4, DramConfig::ddr3_1333(1));
            cfg.core.max_outstanding = 2;
            let mut node = Node::new(cfg);
            node.run_phase(
                "cg",
                vec![sst_workloads::hpccg::solver(0, Problem::new(p.nx), 2)],
            )
            .time
        };
        let t32 = {
            let mut cfg = dse_node(4, DramConfig::ddr3_1333(1));
            cfg.core.max_outstanding = 32;
            let mut node = Node::new(cfg);
            node.run_phase(
                "cg",
                vec![sst_workloads::hpccg::solver(0, Problem::new(p.nx), 2)],
            )
            .time
        };
        assert!(
            t2.as_ps() as f64 > 1.5 * t32.as_ps() as f64,
            "MLP 2 ({t2}) must be much slower than MLP 32 ({t32})"
        );
    }

    #[test]
    fn table_assembles() {
        let t = run(&Params::quick());
        assert!(t.rows.len() >= 6);
    }
}
