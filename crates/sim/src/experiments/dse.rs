//! Figs. 10–12 — the SST design-space exploration: memory technology
//! (DDR2 / DDR3 / GDDR5) × processor issue width (1/2/4/8) running the
//! HPCCG and LULESH mini-apps, evaluated for performance (Fig. 10),
//! power- and cost-efficiency of the memory systems (Fig. 11), and cost- /
//! power-efficiency across issue widths (Fig. 12).
//!
//! This is the experiment the paper runs with SST = gem5/x86 + DRAMSim2 +
//! McPAT + IC-Knowledge; here it is the stream-driven core + DRAM timing
//! model + McPAT-lite/CACTI-lite + the yield cost model.

use crate::machines::{dse_memories, dse_node};
use crate::table::Table;
use sst_core::fidelity::Fidelity;
use sst_core::sweep::run_jobs;
use sst_core::telemetry::TelemetrySpec;
use sst_cpu::isa::InstrStream;
use sst_cpu::model::node_model_with;
use sst_power::{evaluate, ProcessCost, TechReport};
use sst_workloads::Problem;

#[derive(Debug, Clone)]
pub struct Params {
    pub widths: Vec<u32>,
    /// HPCCG problem edge (rows = (nx+1)^3).
    pub nx: u64,
    /// LULESH problem edge (zones = nx^3); hydro needs a larger grid for
    /// its field arrays to exceed the caches, as the real code's do.
    pub nx_lulesh: u64,
    pub hpccg_iters: u64,
    pub lulesh_steps: u64,
    /// Backend for every design point of the sweep (figs. 10-12 share the
    /// sweep, so `--fidelity des` re-routes all three).
    pub fidelity: Fidelity,
    /// Telemetry sink for the DES engines (disabled by default).
    pub telemetry: TelemetrySpec,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            widths: vec![1, 2, 4, 8],
            nx: 14,
            nx_lulesh: 24,
            hpccg_iters: 8,
            lulesh_steps: 5,
            fidelity: Fidelity::Analytic,
            telemetry: TelemetrySpec::disabled(),
        }
    }
}

impl Params {
    pub fn quick() -> Params {
        Params {
            widths: vec![1, 4, 8],
            nx: 14,
            nx_lulesh: 24,
            hpccg_iters: 3,
            lulesh_steps: 2,
            ..Default::default()
        }
    }
}

/// One evaluated design point.
#[derive(Debug, Clone)]
pub struct Point {
    pub app: &'static str,
    pub mem: String,
    pub width: u32,
    pub report: TechReport,
}

/// Run the full sweep over the work-stealing pool. Each design point is an
/// independent job; results come back in enumeration order (app × memory ×
/// width) whatever the worker count, so figs. 10–12 are bit-stable. Runs
/// serially when telemetry is enabled — the trace sinks are per-run files
/// and interleaving them would scramble record order.
pub fn sweep(p: &Params) -> Vec<Point> {
    let mut jobs: Vec<_> = Vec::new();
    for app in ["HPCCG", "LULESH"] {
        for mem in dse_memories() {
            for &w in &p.widths {
                let mem = mem.clone();
                jobs.push(move || {
                    let cfg = dse_node(w, mem.clone()).with_fidelity(p.fidelity);
                    let label = format!("{app}/{}/{w}w", short_mem_name(&mem.name));
                    let mut node = node_model_with(cfg.clone(), p.telemetry.labeled(label));
                    let stream: Box<dyn InstrStream> = match app {
                        "HPCCG" => {
                            sst_workloads::hpccg::solver(0, Problem::new(p.nx), p.hpccg_iters)
                        }
                        _ => sst_workloads::lulesh::hydro(
                            0,
                            Problem::new(p.nx_lulesh),
                            p.lulesh_steps,
                        ),
                    };
                    let phase = node.run_phase(app, vec![stream]);
                    let report = evaluate(&cfg, &phase, &ProcessCost::n45());
                    Point {
                        app,
                        mem: short_mem_name(&mem.name),
                        width: w,
                        report,
                    }
                });
            }
        }
    }
    let workers = if p.telemetry.is_enabled() {
        1
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    let (points, _) = run_jobs(jobs, workers);
    points
}

fn short_mem_name(full: &str) -> String {
    full.split_whitespace().next().unwrap_or(full).to_string()
}

fn find<'a>(points: &'a [Point], app: &str, mem_prefix: &str, width: u32) -> &'a Point {
    points
        .iter()
        .find(|p| p.app == app && p.mem.starts_with(mem_prefix) && p.width == width)
        .unwrap_or_else(|| panic!("no point {app}/{mem_prefix}/{width}"))
}

/// Fig. 10 — runtime (normalized to the slowest config per app).
pub fn fig10(points: &[Point], p: &Params) -> Table {
    let mut t = Table::new(
        "Fig 10: relative performance by memory technology and issue width",
        p.widths.iter().map(|w| format!("{w}-wide")).collect(),
    );
    for app in ["HPCCG", "LULESH"] {
        // Normalize to DDR2 @ narrowest width.
        let base = find(points, app, "DDR2", p.widths[0])
            .report
            .time
            .as_secs_f64();
        for mem in ["DDR2", "DDR3", "GDDR5"] {
            let vals: Vec<f64> = p
                .widths
                .iter()
                .map(|&w| base / find(points, app, mem, w).report.time.as_secs_f64())
                .collect();
            t.push(format!("{app} {mem}"), vals);
        }
        // GDDR5-vs-DDR3 advantage, the headline number.
        let adv: Vec<f64> = p
            .widths
            .iter()
            .map(|&w| {
                find(points, app, "DDR3", w).report.time.as_secs_f64()
                    / find(points, app, "GDDR5", w).report.time.as_secs_f64()
                    - 1.0
            })
            .collect();
        t.push(format!("{app} GDDR5-vs-DDR3 gain"), adv);
    }
    t.note("paper: GDDR5 32-41% faster than DDR3 on HPCCG, 26-47% on LULESH");
    t
}

/// Fig. 11 — performance per Watt and per Dollar by memory technology.
pub fn fig11(points: &[Point], p: &Params) -> Table {
    let mut t = Table::new(
        "Fig 11: memory-technology efficiency (relative to DDR3 at each width)",
        p.widths.iter().map(|w| format!("{w}-wide")).collect(),
    );
    for app in ["HPCCG", "LULESH"] {
        for (metric, f) in [
            (
                "perf/W",
                (|r: &TechReport| r.perf_per_watt()) as fn(&TechReport) -> f64,
            ),
            ("perf/$", |r: &TechReport| r.perf_per_dollar()),
        ] {
            for mem in ["DDR2", "DDR3", "GDDR5"] {
                let vals: Vec<f64> = p
                    .widths
                    .iter()
                    .map(|&w| {
                        f(&find(points, app, mem, w).report)
                            / f(&find(points, app, "DDR3", w).report)
                    })
                    .collect();
                t.push(format!("{app} {mem} {metric}"), vals);
            }
        }
    }
    t.note("paper: DDR3 perf/W >= GDDR5 (up to ~2x at narrow widths); perf/$ crosses over at wide issue");
    t
}

/// Fig. 12 — cost- and power-efficiency across issue widths. Measured on
/// the GDDR5 configuration so the memory system is not the bottleneck and
/// the core's own scaling shows (the paper reports the processor effect
/// separately from the memory effect).
pub fn fig12(points: &[Point], p: &Params) -> Table {
    let mut t = Table::new(
        "Fig 12: issue-width efficiency (GDDR5 memory, relative to 1-wide)",
        p.widths.iter().map(|w| format!("{w}-wide")).collect(),
    );
    for app in ["HPCCG", "LULESH"] {
        let base = &find(points, app, "GDDR5", p.widths[0]).report;
        let perf: Vec<f64> = p
            .widths
            .iter()
            .map(|&w| find(points, app, "GDDR5", w).report.perf / base.perf)
            .collect();
        let power: Vec<f64> = p
            .widths
            .iter()
            .map(|&w| find(points, app, "GDDR5", w).report.power_w / base.power_w)
            .collect();
        let ppw: Vec<f64> = p
            .widths
            .iter()
            .map(|&w| find(points, app, "GDDR5", w).report.perf_per_watt() / base.perf_per_watt())
            .collect();
        let ppd: Vec<f64> = p
            .widths
            .iter()
            .map(|&w| {
                find(points, app, "GDDR5", w).report.perf_per_dollar() / base.perf_per_dollar()
            })
            .collect();
        t.push(format!("{app} perf"), perf);
        t.push(format!("{app} power"), power);
        t.push(format!("{app} perf/W"), ppw);
        t.push(format!("{app} perf/$"), ppd);
    }
    t.note("paper: 8-wide ~78% faster than 1-wide (LULESH) at ~123% more power; 1-2-wide most power-efficient, 2-4-wide most cost-efficient");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points() -> (Vec<Point>, Params) {
        let p = Params::quick();
        (sweep(&p), p)
    }

    #[test]
    fn fig10_memory_ordering_and_gain_bands() {
        let (pts, p) = points();
        let t = fig10(&pts, &p);
        for app in ["HPCCG", "LULESH"] {
            for (i, _) in p.widths.iter().enumerate() {
                let d2 = t.row(&format!("{app} DDR2"))[i];
                let d3 = t.row(&format!("{app} DDR3"))[i];
                let g5 = t.row(&format!("{app} GDDR5"))[i];
                assert!(
                    d2 <= d3 + 1e-9 && d3 <= g5 + 1e-9,
                    "{app} width idx {i}: {d2} {d3} {g5}"
                );
            }
            let gain = t.row(&format!("{app} GDDR5-vs-DDR3 gain"));
            assert!(
                gain.iter().all(|g| *g >= 0.0 && *g < 1.5),
                "{app} GDDR5 gain out of band: {gain:?}"
            );
        }
    }

    #[test]
    fn fig11_ddr3_wins_perf_per_watt_at_narrow() {
        let (pts, p) = points();
        let t = fig11(&pts, &p);
        for app in ["HPCCG", "LULESH"] {
            let g5 = t.row(&format!("{app} GDDR5 perf/W"));
            assert!(
                g5[0] < 1.0,
                "{app}: GDDR5 perf/W must lose to DDR3 at 1-wide: {g5:?}"
            );
        }
    }

    #[test]
    fn fig12_superlinear_power_sublinear_perf() {
        let (pts, p) = points();
        let t = fig12(&pts, &p);
        for app in ["HPCCG", "LULESH"] {
            let perf = t.row(&format!("{app} perf"));
            let power = t.row(&format!("{app} power"));
            let widest = p.widths.len() - 1;
            assert!(perf[widest] >= 1.0, "{app} wider is not slower");
            assert!(
                perf[widest] < p.widths[widest] as f64,
                "{app} speedup must be sublinear: {perf:?}"
            );
            assert!(
                power[widest] > perf[widest],
                "{app}: power must grow faster than perf: {power:?} vs {perf:?}"
            );
        }
    }
}
