//! Fig. 5 — relative weak scaling of the solvers: miniFE's
//! unpreconditioned CG vs Charon/BiCGSTAB with ILU(0) and with the ML
//! (multilevel) preconditioner.
//!
//! Weak scaling on a 3-D torus: per-rank work and face sizes stay fixed as
//! the rank count grows, so ideal scaling is a flat line. The collectives
//! grow logarithmically for everyone, but ML's extra coarse-level halos —
//! 40+% more messages per core, most of them small — erode its curve
//! fastest, which is why miniFE (no preconditioner) is *not* predictive of
//! Charon+ML.

use crate::table::Table;
use sst_core::time::SimTime;
use sst_net::mpi::MpiSim;
use sst_net::network::{NetConfig, Network};
use sst_net::topology::Torus3D;
use sst_workloads::charon::Precond;

#[derive(Debug, Clone)]
pub struct Params {
    /// Rank counts; perfect cubes keep the process grid cubic.
    pub rank_counts: Vec<u32>,
    pub iters: u32,
    pub face_bytes: u64,
    pub compute_per_iter: SimTime,
    pub ranks_per_node: u32,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            rank_counts: vec![8, 64, 216, 512, 1000],
            iters: 6,
            face_bytes: 64 << 10,
            compute_per_iter: SimTime::us(900),
            ranks_per_node: 8,
        }
    }
}

impl Params {
    pub fn quick() -> Params {
        Params {
            rank_counts: vec![8, 64, 216],
            iters: 3,
            ..Default::default()
        }
    }
}

fn grid_dims(p: u32) -> [u32; 3] {
    let c = (p as f64).cbrt().round() as u32;
    if c * c * c == p {
        return [c, c, c];
    }
    // Fall back to a flat-ish factorization.
    let mut best = [p, 1, 1];
    for x in 1..=p {
        if !p.is_multiple_of(x) {
            continue;
        }
        let rest = p / x;
        for y in 1..=rest {
            if !rest.is_multiple_of(y) {
                continue;
            }
            let z = rest / y;
            let cand = [x, y, z];
            let spread = |d: [u32; 3]| d.iter().max().unwrap() - d.iter().min().unwrap();
            if spread(cand) < spread(best) {
                best = cand;
            }
        }
    }
    best
}

fn run_solver(p: &Params, ranks: u32, which: &str) -> SimTime {
    let dims = grid_dims(ranks);
    let mut net = Network::new(
        Box::new(Torus3D::fitting(ranks.div_ceil(p.ranks_per_node))),
        NetConfig::xt5(),
    );
    let scripts: Vec<_> = (0..ranks)
        .map(|r| match which {
            "cg" => sst_workloads::minife::cg_comm_script(
                r,
                dims,
                p.face_bytes,
                p.iters,
                p.compute_per_iter,
            ),
            "ilu0" => sst_workloads::charon::solver_comm_script(
                r,
                dims,
                Precond::Ilu0,
                p.face_bytes,
                p.iters,
                p.compute_per_iter,
            ),
            "ml" => sst_workloads::charon::solver_comm_script(
                r,
                dims,
                Precond::Ml,
                p.face_bytes,
                p.iters,
                p.compute_per_iter,
            ),
            other => panic!("unknown solver {other}"),
        })
        .collect();
    let run = MpiSim::new(&mut net, p.ranks_per_node).run(scripts);
    SimTime::ps(run.end_time.as_ps() / p.iters as u64)
}

pub fn run(p: &Params) -> Table {
    let mut t = Table::new(
        "Fig 5: relative weak scaling of solvers (time per iteration / smallest-P time)",
        p.rank_counts.iter().map(|r| format!("{r} ranks")).collect(),
    );
    for (label, key) in [
        ("miniFE CG", "cg"),
        ("Charon BiCGSTAB+ILU(0)", "ilu0"),
        ("Charon BiCGSTAB+ML", "ml"),
    ] {
        let times: Vec<f64> = p
            .rank_counts
            .iter()
            .map(|&r| run_solver(p, r, key).as_secs_f64())
            .collect();
        let base = times[0];
        t.push(label, times.iter().map(|x| x / base).collect());
    }
    // Message-count evidence for the ML discussion.
    let dims = grid_dims(p.rank_counts[0]);
    let msgs = |pc: Precond| {
        sst_workloads::charon::solver_comm_script(0, dims, pc, p.face_bytes, 1, SimTime::us(1))
            .iter()
            .filter(|o| matches!(o, sst_net::mpi::CommOp::Send { .. }))
            .count() as f64
    };
    let extra = msgs(Precond::Ml) / msgs(Precond::Ilu0) - 1.0;
    t.note(format!(
        "ML sends {:.0}% more point-to-point messages per core than ILU(0) (paper: >40%)",
        extra * 100.0
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_dims_cubes_and_factors() {
        assert_eq!(grid_dims(8), [2, 2, 2]);
        assert_eq!(grid_dims(64), [4, 4, 4]);
        let d = grid_dims(12);
        assert_eq!(d.iter().product::<u32>(), 12);
    }

    #[test]
    fn ml_scales_worst() {
        let t = run(&Params::quick());
        let last = format!("{} ranks", Params::quick().rank_counts.last().unwrap());
        let cg = t.get("miniFE CG", &last);
        let ilu = t.get("Charon BiCGSTAB+ILU(0)", &last);
        let ml = t.get("Charon BiCGSTAB+ML", &last);
        assert!(
            ml > ilu && ml > cg,
            "ML must scale worst: cg={cg} ilu={ilu} ml={ml}"
        );
        // Everyone is normalized to 1.0 at the smallest count.
        let first = format!("{} ranks", Params::quick().rank_counts[0]);
        assert!((t.get("miniFE CG", &first) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scaling_degrades_monotonically_for_ml() {
        let t = run(&Params::quick());
        let row = t.row("Charon BiCGSTAB+ML");
        assert!(row.windows(2).all(|w| w[1] >= w[0] * 0.98), "{row:?}");
    }
}
