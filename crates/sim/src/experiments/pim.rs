//! E14 — exploring a *novel architecture*: processing-in-memory.
//!
//! The SC'06 SST work was built exactly for studies like this one: compare
//! a conventional node (few wide cores, deep caches, commodity DDR) against
//! a PIM part (many simple cores inside the memory stack, shallow hierarchy,
//! enormous internal bandwidth) on the two poles of the workload spectrum —
//! a bandwidth-bound sparse solver (HPCCG) and a compute-dense assembly
//! kernel (miniFE FEA). The expected *shape*: PIM wins decisively where
//! bytes dominate, and loses (or merely ties) where FLOPs dominate — the
//! classic PIM trade-off, with energy-to-solution favoring PIM on the
//! memory-bound side.

use crate::machines::{conventional_node, pim_node};
use crate::table::Table;
use sst_cpu::isa::InstrStream;
use sst_cpu::node::{Node, NodeConfig};
use sst_power::{evaluate, ProcessCost, TechReport};
use sst_workloads::Problem;

#[derive(Debug, Clone)]
pub struct Params {
    pub conventional_cores: usize,
    pub pim_cores: usize,
    /// Total problem edge; split evenly over each design's cores.
    pub nx_total: u64,
    pub solver_iters: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            conventional_cores: 4,
            pim_cores: 16,
            nx_total: 32,
            solver_iters: 4,
        }
    }
}

impl Params {
    pub fn quick() -> Params {
        Params {
            conventional_cores: 2,
            pim_cores: 8,
            nx_total: 20,
            solver_iters: 2,
        }
    }
}

fn per_core_problem(nx_total: u64, cores: usize) -> Problem {
    // Weak-ish split: keep total element count roughly constant.
    let nx = ((nx_total as f64).powi(3) / cores as f64).cbrt().round() as u64;
    Problem::new(nx.max(4))
}

fn run_design(cfg: &NodeConfig, app: &str, p: &Params) -> (sst_cpu::node::PhaseResult, TechReport) {
    let mut node = Node::new(cfg.clone());
    let prob = per_core_problem(p.nx_total, cfg.cores);
    let streams: Vec<Box<dyn InstrStream>> = (0..cfg.cores)
        .map(|c| match app {
            "HPCCG solve" => sst_workloads::hpccg::solver(c, prob, p.solver_iters),
            _ => sst_workloads::minife::fea(c, prob),
        })
        .collect();
    let phase = node.run_phase(app, streams);
    let report = evaluate(cfg, &phase, &ProcessCost::n45());
    (phase, report)
}

pub fn run(p: &Params) -> Table {
    let mut t = Table::cols(
        "E14: novel-architecture study — PIM vs conventional node",
        &["time_ms", "power_w", "energy_j", "GB/s", "speedup_vs_conv"],
    );
    for app in ["HPCCG solve", "miniFE FEA"] {
        let conv = run_design(&conventional_node(p.conventional_cores), app, p);
        let pim = run_design(&pim_node(p.pim_cores), app, p);
        let mut push = |label: String,
                        (phase, report): &(sst_cpu::node::PhaseResult, TechReport),
                        base: f64| {
            let secs = phase.time.as_secs_f64();
            t.push(
                label,
                vec![
                    secs * 1e3,
                    report.power_w,
                    report.energy_j,
                    phase.mem.dram.bytes as f64 / secs / 1e9,
                    base / secs,
                ],
            );
        };
        let base = conv.0.time.as_secs_f64();
        push(format!("{app}: conventional"), &conv, base);
        push(format!("{app}: PIM"), &pim, base);
    }
    t.note(format!(
        "conventional = {}x 4-wide @2.4 GHz + L1/L2/L3 + 2ch DDR3; PIM = {}x 1-wide @1.0 GHz in-stack, 8 wide internal channels",
        p.conventional_cores, p.pim_cores
    ));
    t.note("expected shape: PIM wins the bandwidth-bound solver (time and energy), conventional holds the compute-dense assembly");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pim_wins_bandwidth_loses_or_ties_compute() {
        let t = run(&Params::quick());
        let solver_speedup = t.get("HPCCG solve: PIM", "speedup_vs_conv");
        let fea_speedup = t.get("miniFE FEA: PIM", "speedup_vs_conv");
        assert!(
            solver_speedup > 1.2,
            "PIM must win the memory-bound solver: {solver_speedup}"
        );
        assert!(
            fea_speedup < solver_speedup,
            "PIM's edge must shrink on compute-dense work: fea {fea_speedup} vs solve {solver_speedup}"
        );
    }

    #[test]
    fn pim_is_more_energy_efficient_on_the_solver() {
        let t = run(&Params::quick());
        let e_conv = t.get("HPCCG solve: conventional", "energy_j");
        let e_pim = t.get("HPCCG solve: PIM", "energy_j");
        assert!(
            e_pim < e_conv,
            "PIM energy-to-solution must win on the solver: {e_pim} vs {e_conv}"
        );
    }

    #[test]
    fn bandwidth_delivered_is_higher_on_pim_solver() {
        let t = run(&Params::quick());
        assert!(t.get("HPCCG solve: PIM", "GB/s") > t.get("HPCCG solve: conventional", "GB/s"));
    }
}
