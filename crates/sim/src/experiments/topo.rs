//! E12 — lazy topologies at scale: the parallel engine consuming a
//! [`LazySystem`] instead of an eager [`SystemBuilder`].
//!
//! A parametric generator (3-D torus, dragonfly, or two-level fat tree of
//! [`sst_net::TrafficNode`]s) streams 10^2..10^6 components directly into
//! per-rank slot tables; the experiment sweeps rank counts over one shape
//! and checks every run agrees bit-for-bit with a reference run (the
//! materialized serial engine at quick scale, the first parallel run at
//! full scale, where a serial replay would dominate the wall clock).

use crate::table::Table;
use sst_core::prelude::*;
use sst_net::{LazyDragonfly, LazyFatTree, LazyTorus, LazyTraffic};

/// Topology names accepted by `--topo`.
pub const TOPOS: &[&str] = &["torus", "dragonfly", "fat-tree"];

#[derive(Debug, Clone)]
pub struct Params {
    /// One of [`TOPOS`].
    pub topo: String,
    /// Minimum component count; the generator rounds up to a balanced
    /// shape (`--topo-nodes`).
    pub nodes: u32,
    pub rank_counts: Vec<u32>,
    pub transport: TransportKind,
    pub sync: SyncMode,
    pub traffic: LazyTraffic,
    /// Also materialize the graph and run it serially as the reference
    /// (feasible at quick scale only).
    pub check_serial: bool,
    pub telemetry: TelemetrySpec,
    /// Live metrics registry shared with a `--metrics-addr` endpoint.
    pub live: Option<std::sync::Arc<LiveMetrics>>,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            topo: "torus".into(),
            nodes: 100_000,
            rank_counts: vec![4, 8, 16],
            transport: TransportKind::default(),
            sync: SyncMode::default(),
            traffic: LazyTraffic::default(),
            check_serial: false,
            telemetry: TelemetrySpec::disabled(),
            live: None,
        }
    }
}

impl Params {
    pub fn quick() -> Params {
        Params {
            nodes: 512,
            rank_counts: vec![1, 2, 4],
            traffic: LazyTraffic {
                tokens_per_node: 2,
                ttl: 24,
                latency: SimTime::ns(20),
            },
            check_serial: true,
            ..Params::default()
        }
    }
}

/// Instantiate the named generator at (at least) `nodes` components.
pub fn build_lazy(topo: &str, nodes: u32, traffic: LazyTraffic) -> Box<dyn LazySystem> {
    match topo {
        "torus" => Box::new(LazyTorus::fitting(nodes, traffic)),
        "dragonfly" => Box::new(LazyDragonfly::fitting(nodes, traffic)),
        "fat-tree" => Box::new(LazyFatTree::fitting(nodes, traffic)),
        other => panic!("unknown topology `{other}` (expected {})", TOPOS.join("|")),
    }
}

/// Everything that must agree between two runs of the same system.
#[derive(PartialEq)]
struct Signature {
    events: u64,
    end_time: SimTime,
    clock_ticks: u64,
    forwarded: u64,
    final_state_hash: Option<String>,
}

impl Signature {
    fn of(rep: &SimReport) -> Signature {
        Signature {
            events: rep.events,
            end_time: rep.end_time,
            clock_ticks: rep.clock_ticks,
            forwarded: rep.stats.sum_counters("forwarded"),
            final_state_hash: rep.final_state_hash.clone(),
        }
    }
}

fn push_row(t: &mut Table, label: String, rep: &SimReport, reference: &mut Option<Signature>) {
    let sig = Signature::of(rep);
    let same = match reference {
        Some(r) => *r == sig,
        None => {
            *reference = Some(sig);
            true
        }
    };
    t.push(
        label,
        vec![
            rep.events as f64,
            rep.wall_seconds * 1e3,
            rep.events_per_sec() / 1e6,
            same as u64 as f64,
        ],
    );
}

pub fn run(p: &Params) -> Table {
    let sys = build_lazy(&p.topo, p.nodes, p.traffic);
    let n = sys.component_count();
    let mut t = Table::cols(
        format!(
            "E12: lazy-built {} ({n} components) on the `{}` transport, `{}` sync",
            p.topo, p.transport, p.sync
        ),
        &["events", "wall_ms", "Mevents/s", "identical"],
    );
    let mut reference: Option<Signature> = None;
    if p.check_serial {
        let mut eng = Engine::with_telemetry(
            SystemBuilder::materialize(sys.as_ref()),
            p.telemetry.labeled("serial"),
        );
        if let Some(m) = &p.live {
            eng.attach_live_metrics(m, "serial");
        }
        let rep = eng.run(RunLimit::Exhaust);
        push_row(&mut t, "serial".into(), &rep, &mut reference);
    }
    for &ranks in &p.rank_counts {
        let cfg = ParallelConfig {
            ranks,
            transport: p.transport,
            sync: p.sync,
            telemetry: p.telemetry.labeled(format!("{ranks}ranks")),
            live: p.live.clone(),
            ..ParallelConfig::default()
        };
        let rep = ParallelEngine::lazy(sys.as_ref(), cfg).run(RunLimit::Exhaust);
        push_row(&mut t, format!("{ranks} ranks"), &rep, &mut reference);
    }
    t.note(
        "`identical` = 1 when events, end time, ticks, stats, and state hash \
         match the reference (first) row",
    );
    t.note(format!(
        "components stream through LazySystem::create into per-rank slot \
         tables — no eager {n}-element component vector is ever built"
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_all_identical(t: &Table) {
        assert!(t.rows.len() >= 2);
        for row in &t.rows {
            assert_eq!(
                *row.values.last().unwrap(),
                1.0,
                "{} diverged from the reference run",
                row.label
            );
        }
    }

    #[test]
    fn quick_torus_matches_serial_across_ranks() {
        let t = run(&Params::quick());
        assert_all_identical(&t);
    }

    #[test]
    fn every_topology_matches_serial() {
        for topo in TOPOS {
            let mut p = Params::quick();
            p.topo = topo.to_string();
            p.nodes = 96;
            p.rank_counts = vec![2, 4];
            assert_all_identical(&run(&p));
        }
    }

    #[test]
    fn tcp_and_fixed_sync_stay_identical() {
        let mut p = Params::quick();
        p.nodes = 64;
        p.rank_counts = vec![2];
        p.transport = TransportKind::TcpLoopback;
        p.sync = SyncMode::FixedEpoch;
        assert_all_identical(&run(&p));
    }

    #[test]
    #[should_panic(expected = "unknown topology")]
    fn unknown_topology_is_a_loud_error() {
        build_lazy("hypercube", 64, LazyTraffic::default());
    }
}
