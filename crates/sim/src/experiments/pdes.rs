//! E11 — the SST poster's own headline: conservative parallel DES
//! scalability. A synthetic component graph (a 2-D torus of traffic
//! generators) runs on 1..N ranks; the parallel runs must be
//! *bit-identical* to the serial run while delivering more events per
//! wall-clock second.

use super::CheckpointPlan;
use crate::table::Table;
use rand::Rng;
use serde::{Deserialize, Serialize, Value};
use sst_core::prelude::*;

/// A traffic node: forwards tokens to random neighbors until their TTL
/// expires; keeps its clock running while it has live tokens.
struct Traffic {
    ports: u16,
    initial_tokens: u32,
    ttl: u32,
    forwarded: Option<StatId>,
}

#[derive(Debug, Serialize, Deserialize)]
struct Token {
    ttl: u32,
}

impl Component for Traffic {
    fn setup(&mut self, ctx: &mut SimCtx<'_>) {
        register_payload::<Token>("pdes.token");
        self.forwarded = Some(ctx.stat_counter("forwarded"));
        for i in 0..self.initial_tokens {
            let port = PortId((i % self.ports as u32) as u16);
            ctx.send(port, Token { ttl: self.ttl });
        }
    }

    fn on_event(&mut self, _port: PortId, payload: PayloadSlot, ctx: &mut SimCtx<'_>) {
        let tok = downcast::<Token>(payload);
        ctx.add_stat(self.forwarded.unwrap(), 1);
        if tok.ttl > 0 {
            let out = PortId(ctx.rng().gen::<u16>() % self.ports);
            ctx.send(out, Token { ttl: tok.ttl - 1 });
        }
    }

    fn fuse_key(&self) -> Option<FuseKey> {
        Some(FuseKey::of::<Self>())
    }
    fn fuse_into(self: Box<Self>, group: &mut dyn FusedGroup) -> u32 {
        sst_core::specialize::absorb(group, *self)
    }
}

/// A late token injection: at `at_ps`, the `injector` component pushes
/// `tokens` fresh tokens with TTL `ttl` into the torus corner. Until that
/// instant the injector is inert — its `tokens`/`ttl` fields are never
/// read — which is exactly what makes them legal *divergent* parameters
/// for fork-at-checkpoint sweeps: a shared prefix captured at or before
/// `at_ps` can be patched per branch without perturbing the prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Inject {
    pub at_ps: u64,
    pub tokens: u32,
    pub ttl: u32,
}

/// The wake-up marker the injector schedules to itself at setup.
#[derive(Debug, Serialize, Deserialize)]
struct Wake {
    seq: u32,
}

/// Serialized injector state (component snapshot payload). The sweep
/// driver patches `tokens`/`ttl` in this document when forking a shared
/// prefix into divergent branches.
#[derive(Debug, Serialize, Deserialize)]
struct InjectorState {
    at_ps: u64,
    tokens: u32,
    ttl: u32,
    fired: bool,
}

/// The component behind [`Inject`]: sleeps until its wake-up, then emits
/// the configured burst out port 0 (linked into the torus corner). Not
/// fused — it is a singleton and its state must stay individually
/// addressable in snapshots.
struct Injector {
    at: SimTime,
    tokens: u32,
    ttl: u32,
    fired: bool,
}

impl Component for Injector {
    fn setup(&mut self, ctx: &mut SimCtx<'_>) {
        register_payload::<Token>("pdes.token");
        register_payload::<Wake>("pdes.wake");
        ctx.schedule_self(self.at, Wake { seq: 0 });
    }

    fn on_event(&mut self, _port: PortId, payload: PayloadSlot, ctx: &mut SimCtx<'_>) {
        let _wake = downcast::<Wake>(payload);
        if !self.fired {
            self.fired = true;
            for _ in 0..self.tokens {
                ctx.send(PortId(0), Token { ttl: self.ttl });
            }
        }
    }

    fn save_state(&self) -> Value {
        InjectorState {
            at_ps: self.at.as_ps(),
            tokens: self.tokens,
            ttl: self.ttl,
            fired: self.fired,
        }
        .to_value()
    }

    fn load_state(&mut self, state: &Value) {
        let s = InjectorState::from_value(state).expect("malformed pdes.injector state");
        self.at = SimTime::ps(s.at_ps);
        self.tokens = s.tokens;
        self.ttl = s.ttl;
        self.fired = s.fired;
    }
}

#[derive(Debug, Clone)]
pub struct Params {
    /// Torus side (side*side components).
    pub side: u32,
    pub tokens_per_node: u32,
    pub ttl: u32,
    pub rank_counts: Vec<u32>,
    /// Telemetry sink for the serial and parallel runs (disabled by
    /// default). Parallel runs contribute per-rank sync metrics to the
    /// profile.
    pub telemetry: TelemetrySpec,
    /// How to split the torus over ranks (`--partition`).
    pub partition: PartitionStrategy,
    /// Which backend carries cross-rank traffic (`--transport`).
    pub transport: TransportKind,
    /// Epoch synchronization policy (`--sync`).
    pub sync: SyncMode,
    /// Measured per-component event counts fed back in as partition weights
    /// (`--partition-profile`).
    pub profile: Option<sst_core::telemetry::EngineProfile>,
    /// Snapshot cadence/destination; every engine run (serial and each rank
    /// count) checkpoints on the same simulated-time boundaries, so the
    /// resulting files are byte-comparable across engines.
    pub checkpoint: Option<CheckpointPlan>,
    /// Live metrics registry shared with a `--metrics-addr` endpoint; every
    /// engine run (serial and each rank count) reports into it in turn.
    pub live: Option<std::sync::Arc<LiveMetrics>>,
    /// Optional late token injection (the sweep engine's divergence knob).
    pub inject: Option<Inject>,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            side: 24,
            tokens_per_node: 12,
            ttl: 600,
            rank_counts: vec![1, 2, 4, 8],
            telemetry: TelemetrySpec::disabled(),
            partition: PartitionStrategy::default(),
            transport: TransportKind::default(),
            sync: SyncMode::default(),
            profile: None,
            checkpoint: None,
            live: None,
            inject: None,
        }
    }
}

impl Params {
    pub fn quick() -> Params {
        Params {
            side: 8,
            tokens_per_node: 4,
            ttl: 60,
            rank_counts: vec![1, 2, 4],
            ..Default::default()
        }
    }
}

/// Build the component graph: a `side x side` torus, 4 ports per node
/// (E/W/N/S), partitioned into row bands (auto contiguous ranks line up
/// with the row-major add order).
pub fn build(p: &Params) -> SystemBuilder {
    build_with_latency(p, SimTime::ns(20))
}

/// As [`build`], with an explicit latency for the *vertical* (south)
/// links. Ranks partition into row bands, so the south links are the
/// cross-rank links and their latency *is* the conservative lookahead —
/// the knob of the lookahead ablation. Horizontal links stay at 20 ns so
/// the event density is unchanged.
pub fn build_with_latency(p: &Params, south_latency: SimTime) -> SystemBuilder {
    let mut b = SystemBuilder::new();
    let n = p.side * p.side;
    let ids: Vec<ComponentId> = (0..n)
        .map(|i| {
            b.add(
                format!("traffic{i}"),
                Traffic {
                    ports: 4,
                    initial_tokens: p.tokens_per_node,
                    ttl: p.ttl,
                    forwarded: None,
                },
            )
        })
        .collect();
    let idx = |x: u32, y: u32| (y % p.side) * p.side + (x % p.side);
    for y in 0..p.side {
        for x in 0..p.side {
            let me = ids[idx(x, y) as usize];
            let east = ids[idx(x + 1, y) as usize];
            let south = ids[idx(x, y + 1) as usize];
            // Port 0 (my E) <-> port 1 (neighbor W); port 2 (my S) <-> 3.
            b.link((me, PortId(0)), (east, PortId(1)), SimTime::ns(20));
            b.link((me, PortId(2)), (south, PortId(3)), south_latency);
        }
    }
    if let Some(inj) = &p.inject {
        let injector = b.add(
            "injector",
            Injector {
                at: SimTime::ps(inj.at_ps),
                tokens: inj.tokens,
                ttl: inj.ttl,
                fired: false,
            },
        );
        // Port 4 on the corner node is otherwise unused (tokens only ever
        // forward out ports 0..3), so the burst enters without disturbing
        // the torus wiring.
        b.link((injector, PortId(0)), (ids[0], PortId(4)), SimTime::ns(1));
    }
    b
}

/// Rebuild recipe stamped into every pdes snapshot: the build parameters
/// `sst restore` needs to call [`build`] again.
#[derive(Debug, Serialize, Deserialize)]
pub struct PdesOrigin {
    pub kind: String,
    pub side: u32,
    pub tokens_per_node: u32,
    pub ttl: u32,
    /// Injection recipe; absent in snapshots from before the sweep engine
    /// (and in uninjected runs), so old documents still parse.
    #[serde(default)]
    pub inject: Option<Inject>,
}

/// `origin.kind` tag of pdes snapshots.
pub const ORIGIN_KIND: &str = "pdes";

/// The origin document stamped into checkpoints of `p`'s system.
pub fn origin(p: &Params) -> Value {
    PdesOrigin {
        kind: ORIGIN_KIND.to_string(),
        side: p.side,
        tokens_per_node: p.tokens_per_node,
        ttl: p.ttl,
        inject: p.inject,
    }
    .to_value()
}

/// Parameters reconstructed from a snapshot's origin (engine knobs at their
/// defaults — they do not affect the simulated system).
pub fn params_from_origin(o: &PdesOrigin) -> Params {
    Params {
        side: o.side,
        tokens_per_node: o.tokens_per_node,
        ttl: o.ttl,
        inject: o.inject,
        ..Params::default()
    }
}

pub fn run(p: &Params) -> Table {
    let mut t = Table::cols(
        "E11: conservative parallel DES scaling (token traffic on a 2-D torus)",
        &["events", "wall_ms", "Mevents/s", "speedup", "identical"],
    );
    let origin = origin(p);
    let serial = {
        let mut eng = Engine::with_telemetry(build(p), p.telemetry.labeled("serial"));
        if let Some(m) = &p.live {
            eng.attach_live_metrics(m, "serial");
        }
        match &p.checkpoint {
            Some(plan) => eng.run_with_checkpoints(
                RunLimit::Exhaust,
                Some(plan.every),
                Some(&origin),
                &mut |s| plan.store("serial", &s),
            ),
            None => eng.run(RunLimit::Exhaust),
        }
    };
    if let (Some(plan), Some(h)) = (&p.checkpoint, &serial.final_state_hash) {
        plan.note_final("serial", h);
    }
    let serial_total = serial.stats.sum_counters("forwarded");
    let serial_wall = serial.wall_seconds;
    t.push(
        "serial",
        vec![
            serial.events as f64,
            serial_wall * 1e3,
            serial.events_per_sec() / 1e6,
            1.0,
            1.0,
        ],
    );
    let mut cut_notes: Vec<String> = Vec::new();
    for &ranks in &p.rank_counts {
        let engine = ParallelEngine::with_config(
            build(p),
            ParallelConfig {
                ranks,
                transport: p.transport,
                sync: p.sync,
                partition: Some(p.partition),
                profile: p.profile.clone(),
                telemetry: p.telemetry.labeled(format!("{ranks}ranks")),
                live: p.live.clone(),
            },
        );
        if ranks > 1 {
            let s = engine.partition_summary();
            cut_notes.push(format!(
                "partition {} @ {ranks} ranks: {}/{} links cut, lookahead {}",
                s.strategy,
                s.cut_links,
                s.total_links,
                s.min_lookahead_ps
                    .map(|ps| SimTime(ps).to_string())
                    .unwrap_or_else(|| "inf".into()),
            ));
        }
        let label = format!("{ranks}ranks");
        let par = match &p.checkpoint {
            Some(plan) => engine.run_with_checkpoints(
                RunLimit::Exhaust,
                Some(plan.every),
                Some(&origin),
                &mut |s| plan.store(&label, &s),
            ),
            None => engine.run(RunLimit::Exhaust),
        };
        if let (Some(plan), Some(h)) = (&p.checkpoint, &par.final_state_hash) {
            plan.note_final(&label, h);
        }
        let same = par.events == serial.events
            && par.end_time == serial.end_time
            && par.stats.sum_counters("forwarded") == serial_total
            && par.final_state_hash == serial.final_state_hash;
        t.push(
            format!("{ranks} ranks"),
            vec![
                par.events as f64,
                par.wall_seconds * 1e3,
                par.events_per_sec() / 1e6,
                serial_wall / par.wall_seconds.max(1e-9),
                same as u64 as f64,
            ],
        );
    }
    t.note(
        "`identical` = 1 when events, end time, and all statistics match the serial run exactly",
    );
    t.note(format!(
        "parallel runs use the `{}` transport with `{}` epoch sync",
        p.transport, p.sync
    ));
    for n in cut_notes {
        t.note(n);
    }
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    t.note(format!(
        "host has {host} usable CPU(s); wall-clock speedup requires >1 — determinism holds regardless"
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_runs_are_bit_identical_to_serial() {
        let t = run(&Params::quick());
        for row in &t.rows {
            assert_eq!(
                *row.values.last().unwrap(),
                1.0,
                "{} diverged from serial",
                row.label
            );
        }
    }

    #[test]
    fn every_partition_strategy_stays_identical() {
        for &strategy in PartitionStrategy::ALL {
            let mut p = Params::quick();
            p.rank_counts = vec![2, 4];
            p.partition = strategy;
            let t = run(&p);
            for row in &t.rows {
                assert_eq!(
                    *row.values.last().unwrap(),
                    1.0,
                    "{strategy}: {} diverged from serial",
                    row.label
                );
            }
        }
    }

    #[test]
    fn tcp_transport_and_fixed_sync_stay_identical() {
        let mut p = Params::quick();
        p.rank_counts = vec![2];
        p.transport = TransportKind::TcpLoopback;
        p.sync = SyncMode::FixedEpoch;
        let t = run(&p);
        for row in &t.rows {
            assert_eq!(
                *row.values.last().unwrap(),
                1.0,
                "{} diverged from serial over tcp/fixed",
                row.label
            );
        }
    }

    #[test]
    fn workload_is_nontrivial() {
        let t = run(&Params::quick());
        assert!(t.get("serial", "events") > 1000.0);
    }
}
