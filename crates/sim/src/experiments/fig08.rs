//! Fig. 8 — speedup of the CUDA miniFE port (Fermi M2090) over the
//! MPI-parallel CPU version (hex-core 2.7 GHz E5-2680), by phase.
//!
//! The paper's shape: matrix-structure generation *slows down* on the GPU
//! (it is computed on the host in CSR, transferred over PCIe, and converted
//! to ELL on the device), assembly speeds up ~4x (after tuning that still
//! leaves 512 B/thread of register spills), and the solve runs ~3x faster
//! (ELL SpMV riding GDDR5 bandwidth).

use crate::machines::e5_node;
use crate::table::Table;
use sst_cpu::gpu::{run_kernel, GpuConfig};
use sst_cpu::isa::InstrStream;
use sst_cpu::node::Node;
use sst_workloads::minife;
use sst_workloads::Problem;

#[derive(Debug, Clone)]
pub struct Params {
    /// Per-core problem edge on the 6-core CPU; the GPU runs the combined
    /// problem.
    pub nx_per_core: u64,
    pub cpu_cores: usize,
    pub solver_iters: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            nx_per_core: 20,
            cpu_cores: 6,
            solver_iters: 4,
        }
    }
}

impl Params {
    pub fn quick() -> Params {
        Params {
            nx_per_core: 10,
            cpu_cores: 4,
            solver_iters: 2,
        }
    }
}

pub fn run(p: &Params) -> Table {
    let prob = Problem::new(p.nx_per_core);
    let gpu = GpuConfig::fermi_m2090();

    // --- CPU side: three phases on the multicore node ---
    let mut node = Node::new(e5_node(p.cpu_cores));
    let sg: Vec<Box<dyn InstrStream>> = (0..p.cpu_cores)
        .map(|c| minife::structure_gen(c, prob))
        .collect();
    let t_sg_cpu = node.run_phase("structgen", sg).time;
    let fea: Vec<Box<dyn InstrStream>> = (0..p.cpu_cores).map(|c| minife::fea(c, prob)).collect();
    let t_fea_cpu = node.run_phase("fea", fea).time;
    let sol: Vec<Box<dyn InstrStream>> = (0..p.cpu_cores)
        .map(|c| minife::solver(c, prob, p.solver_iters))
        .collect();
    let t_sol_cpu = node.run_phase("solver", sol).time;

    // --- GPU side: combined problem ---
    let total = Problem::new(p.nx_per_core * (p.cpu_cores as f64).cbrt().ceil() as u64);
    // Structure generation stays on the host, then transfers + converts.
    let t_sg_gpu = minife::gpu_structure_gen_overhead(&gpu, total, t_sg_cpu);
    let fea_res = run_kernel(&gpu, &minife::gpu_fea_kernel(total, true));
    let t_fea_gpu = fea_res.time;
    let sol_res = run_kernel(&gpu, &minife::gpu_solver_kernel(total));
    let t_sol_gpu = sol_res.time * p.solver_iters;

    // CPU ran 1/cores of the problem per core in parallel; the GPU numbers
    // above are for the whole combined problem, so scale CPU times to the
    // same total problem (weak->strong normalization: cores cover the
    // total already, so CPU times stand as-is).
    let speedup = |cpu: sst_core::time::SimTime, gpu_t: sst_core::time::SimTime| {
        cpu.as_secs_f64() / gpu_t.as_secs_f64().max(1e-12)
    };

    let mut t = Table::cols(
        "Fig 8: miniFE CUDA speedup (M2090 vs hex-core E5-2680)",
        &["speedup"],
    );
    t.push("structure generation", vec![speedup(t_sg_cpu, t_sg_gpu)]);
    t.push("assembly (FEA)", vec![speedup(t_fea_cpu, t_fea_gpu)]);
    t.push("solve (CG)", vec![speedup(t_sol_cpu, t_sol_gpu)]);
    t.note(format!(
        "FEA kernel: occupancy {:.2}, {} regs spilled/thread ({} B to device memory), {:?}-limited",
        fea_res.occupancy,
        fea_res.spilled_regs_per_thread,
        fea_res.spill_to_mem_bytes,
        fea_res.limiter
    ));
    t.note("paper: structure gen < 1x (host compute + PCIe + ELL conversion), FEA ~4x, solve ~3x");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_speedup_shape() {
        let t = run(&Params::quick());
        let sg = t.get("structure generation", "speedup");
        let fea = t.get("assembly (FEA)", "speedup");
        let sol = t.get("solve (CG)", "speedup");
        assert!(sg < 1.0, "structure generation must slow down on GPU: {sg}");
        assert!(fea > 1.5, "assembly must speed up: {fea}");
        assert!(sol > 1.5, "solve must speed up: {sol}");
        assert!(fea > sol * 0.8, "assembly speedup should be >= solve-ish");
    }
}
