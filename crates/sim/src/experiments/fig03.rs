//! Fig. 3 — effect of memory speed (800/1066/1333 MT/s) on the FEA and
//! solver phases of Charon and miniFE.
//!
//! Performance is relative to the 1333 MT/s configuration. The finding:
//! FEA phases are insensitive to memory speed while the solvers scale with
//! it, and miniFE tracks Charon within ~4% — the strongest validation
//! evidence in the study.

use super::common::{max_rel_diff, run_fea_solver_with, App};
use crate::machines::nehalem_node;
use crate::table::Table;
use sst_core::fidelity::Fidelity;
use sst_core::telemetry::TelemetrySpec;
use sst_mem::dram::DramConfig;

#[derive(Debug, Clone)]
pub struct Params {
    pub speeds_mts: Vec<f64>,
    pub channels: u32,
    pub cores: usize,
    pub nx: u64,
    pub solver_iters: u64,
    /// Backend for the node model (`--fidelity des` swaps in the
    /// component/event path; relative rows agree within the bands pinned by
    /// `tests/tests/fidelity_equivalence.rs`).
    pub fidelity: Fidelity,
    /// Telemetry sink for the DES engines (disabled by default; the
    /// analytic backend has no event loop to instrument).
    pub telemetry: TelemetrySpec,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            speeds_mts: vec![800.0, 1066.0, 1333.0],
            channels: 2,
            cores: 4,
            // Per-core subdomains sized as in the dialed-DIMM experiment:
            // the working sets must be cache-overflowing but not so large
            // that gather latency (memory-speed-independent) dominates.
            nx: 12,
            solver_iters: 8,
            fidelity: Fidelity::Analytic,
            telemetry: TelemetrySpec::disabled(),
        }
    }
}

impl Params {
    pub fn quick() -> Params {
        Params {
            cores: 4,
            nx: 12,
            solver_iters: 3,
            ..Default::default()
        }
    }
}

pub fn run(p: &Params) -> Table {
    let mut t = Table::new(
        "Fig 3: performance vs memory speed (relative to fastest)",
        p.speeds_mts.iter().map(|s| format!("{s} MT/s")).collect(),
    );

    let mut series: Vec<(String, Vec<f64>)> = Vec::new();
    for app in [App::Charon, App::MiniFe] {
        let mut fea_times = Vec::new();
        let mut sol_times = Vec::new();
        for &mts in &p.speeds_mts {
            let cfg = nehalem_node(p.cores, DramConfig::ddr3_speed(mts, p.channels))
                .with_fidelity(p.fidelity);
            let telemetry = p.telemetry.labeled(format!("{mts}MTs"));
            let (fea, solver) =
                run_fea_solver_with(&cfg, app, p.cores, p.nx, p.solver_iters, &telemetry);
            fea_times.push(fea.expect("fea").time.as_secs_f64());
            sol_times.push(solver.time.as_secs_f64());
        }
        // Relative performance: t(fastest) / t(speed).
        let fbase = *fea_times.last().unwrap();
        let sbase = *sol_times.last().unwrap();
        series.push((
            format!("{} FEA", app.name()),
            fea_times.iter().map(|x| fbase / x).collect(),
        ));
        series.push((
            format!("{} solver", app.name()),
            sol_times.iter().map(|x| sbase / x).collect(),
        ));
    }
    for (label, vals) in &series {
        t.push(label.clone(), vals.clone());
    }

    let fea_diff = max_rel_diff(&series[0].1, &series[2].1);
    let sol_diff = max_rel_diff(&series[1].1, &series[3].1);
    t.note(format!(
        "max proportional difference: FEA {:.1}%, solver {:.1}% (paper: within 4%)",
        fea_diff * 100.0,
        sol_diff * 100.0
    ));
    t.push("proportional diff FEA", vec![fea_diff; p.speeds_mts.len()]);
    t.push(
        "proportional diff solver",
        vec![sol_diff; p.speeds_mts.len()],
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_scales_with_memory_speed_fea_does_not() {
        let t = run(&Params::quick());
        for app in ["Charon", "miniFE"] {
            let fea = t.row(&format!("{app} FEA"));
            let sol = t.row(&format!("{app} solver"));
            // FEA: flat within a few percent.
            assert!(
                fea[0] > 0.93,
                "{app} FEA should be memory-speed-insensitive: {fea:?}"
            );
            // Solver: clearly slower at 800 than 1333.
            assert!(
                sol[0] < 0.95,
                "{app} solver should track bandwidth: {sol:?}"
            );
            assert!(sol[0] < sol[1] && sol[1] < sol[2] + 1e-9);
        }
    }

    #[test]
    fn proxy_tracks_app_within_band() {
        let t = run(&Params::quick());
        assert!(t.get("proportional diff solver", "800 MT/s") < 0.15);
        assert!(t.get("proportional diff FEA", "800 MT/s") < 0.10);
    }
}
