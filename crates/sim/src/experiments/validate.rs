//! E12 — run the §2.2 validation methodology end-to-end: extract
//! diagnostics from the Fig. 2/3/4/5 simulations (Charon as referent `B`,
//! miniFE as measurement `A`), apply the validation metric and thresholds,
//! and emit the verdict table.
//!
//! Expected verdicts (the paper's conclusions): memory-bandwidth response —
//! pass; memory-speed response — pass; FEA cache behavior — fail;
//! solver cache behavior — pass; weak scaling vs ILU(0) — caution;
//! weak scaling vs ML — fail.

use super::{dse, fig02, fig03, fig04, fig05};
use crate::table::Table;
use crate::validation::{Diagnostic, Thresholds, ValidationStudy};

#[derive(Debug, Clone, Default)]
pub struct Params {
    pub quick: bool,
}

pub fn run(p: &Params) -> Table {
    let _ = dse::Params::default(); // (DSE not part of the validation domain)
    let (f2, f3, f4, f5) = if p.quick {
        (
            fig02::run(&fig02::Params::quick()),
            fig03::run(&fig03::Params::quick()),
            fig04::run(&fig04::Params::quick()),
            fig05::run(&fig05::Params::quick()),
        )
    } else {
        (
            fig02::run(&fig02::Params::default()),
            fig03::run(&fig03::Params::default()),
            fig04::run(&fig04::Params::default()),
            fig05::run(&fig05::Params::default()),
        )
    };

    let mut study = ValidationStudy::new();

    // D1: on-node memory-bandwidth sensitivity (Fig 2, solver efficiency at
    // the largest core count). The paper observed ~13% at worst and called
    // it predictive; a 20% pass band encodes the same judgment.
    let last_col = f2.columns.last().unwrap().clone();
    study.add(Diagnostic::new(
        "memory-bandwidth response (solver eff @ max cores)",
        f2.get("Charon solver eff", &last_col),
        f2.get("miniFE solver eff", &last_col),
        Thresholds::new(0.20, 0.35),
    ));

    // D2: memory-speed sensitivity (Fig 3, solver relative perf at the
    // slowest speed). Paper: within 4%; pass band 8%.
    let slow_col = f3.columns[0].clone();
    study.add(Diagnostic::new(
        "memory-speed response (solver perf @ 800 MT/s)",
        f3.get("Charon solver", &slow_col),
        f3.get("miniFE solver", &slow_col),
        Thresholds::new(0.08, 0.20),
    ));
    study.add(Diagnostic::new(
        "memory-speed response (FEA perf @ 800 MT/s)",
        f3.get("Charon FEA", &slow_col),
        f3.get("miniFE FEA", &slow_col),
        Thresholds::new(0.08, 0.20),
    ));

    // D3: cache behavior (Fig 4). L1 passes; L2/L3 for FEA fail.
    for lvl in ["L1", "L2", "L3"] {
        study.add(Diagnostic::new(
            format!("FEA {lvl} hit rate"),
            f4.get("Charon FEA", lvl),
            f4.get("miniFE FEA", lvl),
            Thresholds::new(0.06, 0.25),
        ));
        study.add(Diagnostic::new(
            format!("solver {lvl} hit rate"),
            f4.get("Charon solver", lvl),
            f4.get("miniFE solver", lvl),
            Thresholds::new(0.20, 0.40),
        ));
    }

    // D4: weak scaling (Fig 5, normalized time/iter at the largest rank
    // count). CG-vs-ILU0 sits on the judgment boundary (the paper assigns
    // "caution"); CG-vs-ML should fail.
    let last = f5.columns.last().unwrap().clone();
    let cg = f5.get("miniFE CG", &last);
    study.add(Diagnostic::new(
        "weak scaling vs BiCGSTAB+ILU(0)",
        f5.get("Charon BiCGSTAB+ILU(0)", &last),
        cg,
        Thresholds::new(0.04, 0.35),
    ));
    study.add(Diagnostic::new(
        "weak scaling vs BiCGSTAB+ML",
        f5.get("Charon BiCGSTAB+ML", &last),
        cg,
        Thresholds::new(0.04, 0.15),
    ));

    study.to_table("E12: miniFE-vs-Charon validation verdicts (Eqs. 1-5)")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_pattern_matches_paper() {
        let t = run(&Params { quick: true });
        // Memory behavior: predictive.
        assert_eq!(
            t.get(
                "memory-bandwidth response (solver eff @ max cores)",
                "verdict"
            ),
            1.0
        );
        assert_eq!(
            t.get("memory-speed response (solver perf @ 800 MT/s)", "verdict"),
            1.0
        );
        // FEA L1 agrees...
        assert_eq!(t.get("FEA L1 hit rate", "verdict"), 1.0);
        // ...but deeper cache levels diverge (fail or at best caution).
        assert!(t.get("FEA L2 hit rate", "verdict") < 1.0);
        // ML scaling is not predicted by the unpreconditioned mini-app.
        assert!(t.get("weak scaling vs BiCGSTAB+ML", "verdict") < 1.0);
    }
}
