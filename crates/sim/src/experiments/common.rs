//! Shared plumbing for the experiment runners.

use sst_core::telemetry::TelemetrySpec;
use sst_cpu::isa::InstrStream;
use sst_cpu::model::node_model_with;
use sst_cpu::node::{NodeConfig, PhaseResult};
use sst_workloads::Problem;

/// Which application proxy a node-level study runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum App {
    MiniFe,
    Charon,
    Hpccg,
    Lulesh,
}

impl App {
    pub fn name(self) -> &'static str {
        match self {
            App::MiniFe => "miniFE",
            App::Charon => "Charon",
            App::Hpccg => "HPCCG",
            App::Lulesh => "LULESH",
        }
    }
}

/// Run the FEA and solver phases of `app` with `cores` active cores, each
/// owning an `nx³` problem. Returns `(fea, solver)` phase results.
/// (`Hpccg`/`Lulesh` have a single phase; it is returned as "solver" with a
/// trivial FEA placeholder skipped by callers.)
pub fn run_fea_solver(
    cfg: &NodeConfig,
    app: App,
    cores: usize,
    nx: u64,
    solver_iters: u64,
) -> (Option<PhaseResult>, PhaseResult) {
    run_fea_solver_with(
        cfg,
        app,
        cores,
        nx,
        solver_iters,
        &TelemetrySpec::disabled(),
    )
}

/// As [`run_fea_solver`], with a telemetry spec threaded into the node
/// model (effective under DES fidelity; the analytic path ignores it).
pub fn run_fea_solver_with(
    cfg: &NodeConfig,
    app: App,
    cores: usize,
    nx: u64,
    solver_iters: u64,
    telemetry: &TelemetrySpec,
) -> (Option<PhaseResult>, PhaseResult) {
    let p = Problem::new(nx);
    // Fidelity dispatch happens here: `cfg.fidelity` selects the analytic
    // lockstep node or the DES component path behind one trait object.
    let mut node = node_model_with(cfg.clone(), telemetry.labeled(app.name()));

    let fea = match app {
        App::MiniFe => {
            let streams: Vec<Box<dyn InstrStream>> = (0..cores)
                .map(|c| sst_workloads::minife::fea(c, p))
                .collect();
            Some(node.run_phase("fea", streams))
        }
        App::Charon => {
            let streams: Vec<Box<dyn InstrStream>> = (0..cores)
                .map(|c| sst_workloads::charon::fea(c, p))
                .collect();
            Some(node.run_phase("fea", streams))
        }
        App::Hpccg | App::Lulesh => None,
    };

    let solver_streams: Vec<Box<dyn InstrStream>> = (0..cores)
        .map(|c| match app {
            App::MiniFe => sst_workloads::minife::solver(c, p, solver_iters),
            App::Charon => sst_workloads::charon::solver(
                c,
                p,
                sst_workloads::charon::Precond::Ilu0,
                solver_iters,
            ),
            App::Hpccg => sst_workloads::hpccg::solver(c, p, solver_iters),
            App::Lulesh => sst_workloads::lulesh::hydro(c, p, solver_iters),
        })
        .collect();
    let solver = node.run_phase("solver", solver_streams);

    (fea, solver)
}

/// Largest relative discrepancy between two equal-length series — the
/// "proportional comparison" of the validation methodology.
pub fn max_rel_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let denom = x.abs().max(y.abs()).max(1e-12);
            (x - y).abs() / denom
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines::xe6_node;

    #[test]
    fn phases_run_for_all_apps() {
        let cfg = xe6_node(2);
        for app in [App::MiniFe, App::Charon, App::Hpccg, App::Lulesh] {
            let (fea, solver) = run_fea_solver(&cfg, app, 2, 6, 2);
            match app {
                App::MiniFe | App::Charon => assert!(fea.unwrap().cycles > 0),
                _ => assert!(fea.is_none()),
            }
            assert!(solver.cycles > 0, "{}", app.name());
        }
    }

    #[test]
    fn phases_run_under_des_fidelity() {
        use sst_core::fidelity::Fidelity;
        let cfg = xe6_node(2).with_fidelity(Fidelity::Des);
        let (fea, solver) = run_fea_solver(&cfg, App::MiniFe, 2, 6, 2);
        assert!(fea.unwrap().cycles > 0);
        assert!(solver.cycles > 0 && solver.mem.l1.accesses() > 0);
    }

    #[test]
    fn rel_diff() {
        assert!(max_rel_diff(&[1.0, 2.0], &[1.0, 2.0]) < 1e-12);
        let d = max_rel_diff(&[1.0, 1.0], &[1.0, 1.3]);
        assert!((d - 0.3 / 1.3).abs() < 1e-9);
    }
}
