//! Post-hoc trace analysis: critical-path extraction and bottleneck tables.
//!
//! `sst analyze <trace.jsonl>` replays the causal structure recorded by the
//! tracer and answers two questions the live metrics endpoint cannot:
//!
//! 1. **What is the critical path?** Every `sched` record is a dependency
//!    edge — the handler running at `t` on `src` scheduled a delivery onto
//!    `dst` at `at`. Chaining each `deliver` back through the `sched` that
//!    produced it (and each `clock` tick through the component's own prior
//!    work) yields a DAG whose longest path is the sequence of events that
//!    bounds how fast the simulated system could possibly have run — adding
//!    ranks cannot shorten it. The analyzer reports that path with
//!    per-component attribution: which components the simulation's forward
//!    progress actually serializes through. Traces from specialized runs
//!    still record one hop per fused-group *member* (instrumented runs take
//!    the generic delivery path), so attribution names every member
//!    individually; on top of that the analyzer flags constant-latency
//!    forwarder runs on the path — the structures the specializer fuses and
//!    folds (DESIGN.md §11) — as chains, with per-member hop counts.
//! 2. **Where did the wallclock go?** Given the `.profile.json` dump from
//!    the same run (`--profile-dump`, or the trace's sibling file found
//!    automatically), the report merges per-component handler wallclock with
//!    each rank's sync-wait share into one bottleneck table: hot handlers on
//!    one axis, ranks that spent their time blocked on neighbors on the
//!    other.
//!
//! The chain reconstruction is O(records log records) time and
//! O(delivers + clocks) memory: records sort by sim-time (stable, so
//! same-instant records keep their causal file order), `sched` edges wait in
//! a pending map keyed by `(dst, at, port)`, and every `deliver`/`clock`
//! appends one arena node carrying its chain depth and a parent pointer for
//! the final walk-back.

use serde::{Map, Number, Value};
use sst_core::telemetry::{ProfileDump, PROFILE_SCHEMA};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Schema tag stamped into every JSON report.
pub const ANALYZE_SCHEMA: &str = "sst-analyze-report-v1";

/// One hop on the reconstructed critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hop {
    pub t_ps: u64,
    pub component: String,
    /// `"deliver"` or `"clock"`.
    pub kind: &'static str,
}

/// A maximal run of consecutive `deliver` hops on the critical path with
/// constant inter-hop latency through more than one component — the
/// signature of a forwarder chain the specializer folds (DESIGN.md §11).
/// Members are reported individually so a fused chain never reads as one
/// opaque blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainRun {
    pub start_ps: u64,
    pub end_ps: u64,
    pub latency_ps: u64,
    /// Total hops in the run (counting the entry hop).
    pub hops: u64,
    /// `(component, hops inside this run)`, in first-appearance order.
    pub members: Vec<(String, u64)>,
}

/// Everything extracted from one trace file.
#[derive(Debug, Clone)]
pub struct Analysis {
    pub records: u64,
    pub delivers: u64,
    pub scheds: u64,
    pub clocks: u64,
    /// The longest causal chain, in time order.
    pub path: Vec<Hop>,
    /// `(component, hops on the critical path)`, descending by hops.
    pub attribution: Vec<(String, u64)>,
    /// Constant-latency forwarder runs detected on the path.
    pub chains: Vec<ChainRun>,
}

impl Analysis {
    /// Sim-time covered by the critical path (last hop minus first).
    pub fn span_ps(&self) -> u64 {
        match (self.path.first(), self.path.last()) {
            (Some(a), Some(b)) => b.t_ps - a.t_ps,
            _ => 0,
        }
    }
}

#[derive(Clone, Copy)]
enum Kind {
    Sched {
        src: u32,
        dst: u32,
        at: u64,
        port: u64,
    },
    Deliver {
        dst: u32,
        port: u64,
    },
    Clock {
        dst: u32,
    },
}

struct Rec {
    t: u64,
    kind: Kind,
}

/// Arena node: one executed event (`deliver` or `clock`) on some chain.
struct Node {
    comp: u32,
    t: u64,
    clock: bool,
    depth: u64,
    parent: Option<u32>,
}

fn intern(names: &mut Vec<String>, idx: &mut HashMap<String, u32>, name: &str) -> u32 {
    if let Some(&i) = idx.get(name) {
        return i;
    }
    let i = names.len() as u32;
    names.push(name.to_string());
    idx.insert(name.to_string(), i);
    i
}

/// Reconstruct the causal chains of a JSONL trace and return the longest.
/// Invalid JSON or a record missing `t`/`k` is an error; records whose kind
/// carries no causality (`mark`, future kinds) are skipped.
pub fn analyze_trace_text(text: &str) -> Result<Analysis, String> {
    let mut names: Vec<String> = Vec::new();
    let mut name_idx: HashMap<String, u32> = HashMap::new();
    let mut recs: Vec<Rec> = Vec::new();
    let mut records = 0u64;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v: Value =
            serde_json::from_str(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let t = v
            .get("t")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("line {}: record lacks `t`", lineno + 1))?;
        let k = v
            .get("k")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {}: record lacks `k`", lineno + 1))?
            .to_string();
        records += 1;
        let port = v.get("port").and_then(Value::as_u64).unwrap_or(0);
        let mut comp = |key: &str| {
            v.get(key)
                .and_then(Value::as_str)
                .map(|s| intern(&mut names, &mut name_idx, s))
        };
        let kind = match k.as_str() {
            "sched" => {
                let (Some(src), Some(dst), Some(at)) = (
                    comp("src"),
                    comp("dst"),
                    v.get("at").and_then(Value::as_u64),
                ) else {
                    continue; // malformed sched: drop the edge, not the run
                };
                Kind::Sched { src, dst, at, port }
            }
            "deliver" => {
                let Some(dst) = comp("dst") else { continue };
                Kind::Deliver { dst, port }
            }
            "clock" => {
                let Some(dst) = comp("dst") else { continue };
                Kind::Clock { dst }
            }
            _ => continue,
        };
        recs.push(Rec { t, kind });
    }
    Ok(build_chains(names, recs, records))
}

fn build_chains(names: Vec<String>, mut recs: Vec<Rec>, records: u64) -> Analysis {
    // Stable by sim-time: same-instant records keep file order, which is the
    // causal order the tracer wrote them in (a deliver precedes the scheds
    // its handler emits at the same timestamp).
    recs.sort_by_key(|r| r.t);

    let mut nodes: Vec<Node> = Vec::new();
    // Longest chain currently ending at each component (arena index).
    let mut best: Vec<Option<u32>> = vec![None; names.len()];
    // Pending sched edges waiting for their delivery: (dst, at, port) ->
    // (depth at src, parent node). Deeper wins on collision.
    let mut pending: HashMap<(u32, u64, u64), (u64, Option<u32>)> = HashMap::new();

    let mut delivers = 0u64;
    let mut scheds = 0u64;
    let mut clocks = 0u64;
    let depth_of = |nodes: &[Node], b: Option<u32>| b.map_or(0, |i| nodes[i as usize].depth);

    for rec in &recs {
        match rec.kind {
            Kind::Sched { src, dst, at, port } => {
                scheds += 1;
                let d = depth_of(&nodes, best[src as usize]);
                let entry = pending.entry((dst, at, port)).or_insert((0, None));
                if d >= entry.0 {
                    *entry = (d, best[src as usize]);
                }
            }
            Kind::Deliver { dst, port } => {
                delivers += 1;
                // No pending edge (setup-time sends, filtered traces) starts
                // a fresh chain.
                let (d, parent) = pending.remove(&(dst, rec.t, port)).unwrap_or((0, None));
                let depth = d + 1;
                let idx = nodes.len() as u32;
                nodes.push(Node {
                    comp: dst,
                    t: rec.t,
                    clock: false,
                    depth,
                    parent,
                });
                if depth > depth_of(&nodes, best[dst as usize]) {
                    best[dst as usize] = Some(idx);
                }
            }
            Kind::Clock { dst } => {
                clocks += 1;
                // A tick extends the component's own longest chain: the tick
                // handler observes all state the prior chain produced.
                let parent = best[dst as usize];
                let depth = depth_of(&nodes, parent) + 1;
                let idx = nodes.len() as u32;
                nodes.push(Node {
                    comp: dst,
                    t: rec.t,
                    clock: true,
                    depth,
                    parent,
                });
                best[dst as usize] = Some(idx);
            }
        }
    }

    // Walk back from the globally deepest node.
    let tip = best
        .iter()
        .flatten()
        .copied()
        .max_by_key(|&i| nodes[i as usize].depth);
    let mut path = Vec::new();
    let mut cursor = tip;
    while let Some(i) = cursor {
        let n = &nodes[i as usize];
        path.push(Hop {
            t_ps: n.t,
            component: names[n.comp as usize].clone(),
            kind: if n.clock { "clock" } else { "deliver" },
        });
        cursor = n.parent;
    }
    path.reverse();

    let mut counts: HashMap<&str, u64> = HashMap::new();
    for h in &path {
        *counts.entry(h.component.as_str()).or_insert(0) += 1;
    }
    let mut attribution: Vec<(String, u64)> = counts
        .into_iter()
        .map(|(n, c)| (n.to_string(), c))
        .collect();
    attribution.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

    let chains = detect_chains(&path);
    Analysis {
        records,
        delivers,
        scheds,
        clocks,
        path,
        attribution,
        chains,
    }
}

/// Minimum hops before a constant-latency run is reported as a chain —
/// below this, "constant" is indistinguishable from coincidence.
const CHAIN_MIN_HOPS: usize = 4;

/// Scan the critical path for maximal runs of consecutive `deliver` hops
/// whose inter-hop latency is constant (zero-latency runs count: those are
/// exactly what chain folding elides). Clock ticks break a run, as does a
/// latency change; a run confined to a single component is a self-loop, not
/// a forwarder chain, and is dropped.
fn detect_chains(path: &[Hop]) -> Vec<ChainRun> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < path.len() {
        if path[i].kind != "deliver" || path[i + 1].kind != "deliver" {
            i += 1;
            continue;
        }
        let latency = path[i + 1].t_ps - path[i].t_ps;
        let mut j = i + 1;
        while j + 1 < path.len()
            && path[j + 1].kind == "deliver"
            && path[j + 1].t_ps - path[j].t_ps == latency
        {
            j += 1;
        }
        let hops = j - i + 1;
        if hops >= CHAIN_MIN_HOPS {
            let mut members: Vec<(String, u64)> = Vec::new();
            for h in &path[i..=j] {
                match members.iter_mut().find(|(n, _)| *n == h.component) {
                    Some((_, c)) => *c += 1,
                    None => members.push((h.component.clone(), 1)),
                }
            }
            if members.len() >= 2 {
                out.push(ChainRun {
                    start_ps: path[i].t_ps,
                    end_ps: path[j].t_ps,
                    latency_ps: latency,
                    hops: hops as u64,
                    members,
                });
            }
            // The run's last hop may start the next run at a new latency.
            i = j;
        } else {
            i += 1;
        }
    }
    out
}

// --- bottleneck table ------------------------------------------------------

/// One row of the handler-wallclock table.
#[derive(Debug, Clone)]
pub struct HandlerRow {
    pub name: String,
    pub events: u64,
    pub total_ns: u64,
    pub max_ns: u64,
    /// Share of all handler wallclock in the dump.
    pub share: f64,
    /// Hops this component contributes to the critical path.
    pub path_hops: u64,
}

/// One row of the per-rank sync table.
#[derive(Debug, Clone)]
pub struct RankRow {
    pub label: String,
    pub rank: u32,
    pub sync_rounds: u64,
    pub stall_rounds: u64,
    pub stall_ns: u64,
    pub barriers_skipped: u64,
    pub epochs_widened: u64,
    /// Estimated share of the rank's wallclock spent blocked on neighbors:
    /// `stall / (stall + handler_time / n_ranks)`. The handler term divides
    /// the run's total handler time evenly because the dump does not record
    /// per-rank handler time — treat it as a ranking signal, not a
    /// measurement.
    pub wait_share: f64,
}

/// Merge a profile dump with the critical-path attribution.
pub fn bottlenecks(dump: &ProfileDump, analysis: &Analysis) -> (Vec<HandlerRow>, Vec<RankRow>) {
    let merged = dump.merged();
    let total_ns: u64 = merged.components.iter().map(|c| c.total_ns).sum();
    let hops: HashMap<&str, u64> = analysis
        .attribution
        .iter()
        .map(|(n, c)| (n.as_str(), *c))
        .collect();
    let mut handlers: Vec<HandlerRow> = merged
        .components
        .iter()
        .map(|c| HandlerRow {
            name: c.name.clone(),
            events: c.events,
            total_ns: c.total_ns,
            max_ns: c.max_ns,
            share: if total_ns > 0 {
                c.total_ns as f64 / total_ns as f64
            } else {
                0.0
            },
            path_hops: hops.get(c.name.as_str()).copied().unwrap_or(0),
        })
        .collect();
    handlers.sort_by(|a, b| {
        b.total_ns
            .cmp(&a.total_ns)
            .then_with(|| a.name.cmp(&b.name))
    });

    let mut ranks = Vec::new();
    for lp in &dump.profiles {
        if lp.profile.ranks.is_empty() {
            continue;
        }
        let handler_ns: u64 = lp.profile.components.iter().map(|c| c.total_ns).sum();
        let per_rank_ns = handler_ns as f64 / lp.profile.ranks.len() as f64;
        for r in &lp.profile.ranks {
            let denom = r.stall_ns as f64 + per_rank_ns;
            ranks.push(RankRow {
                label: lp.label.clone(),
                rank: r.rank,
                sync_rounds: r.sync_rounds,
                stall_rounds: r.stall_rounds,
                stall_ns: r.stall_ns,
                barriers_skipped: r.barriers_skipped,
                epochs_widened: r.epochs_widened,
                wait_share: if denom > 0.0 {
                    r.stall_ns as f64 / denom
                } else {
                    0.0
                },
            });
        }
    }
    (handlers, ranks)
}

// --- report rendering ------------------------------------------------------

fn num(v: u64) -> Value {
    Value::Number(Number::from_u64(v))
}

fn fnum(v: f64) -> Value {
    Value::Number(Number::from_f64(v))
}

/// The full report as a JSON value (`sst-analyze-report-v1`).
pub fn report_value(
    trace: &Path,
    analysis: &Analysis,
    tables: Option<&(Vec<HandlerRow>, Vec<RankRow>)>,
    top: usize,
) -> Value {
    let mut root = Map::new();
    root.insert("schema".into(), Value::String(ANALYZE_SCHEMA.into()));
    root.insert("trace".into(), Value::String(trace.display().to_string()));
    root.insert("records".into(), num(analysis.records));
    root.insert("delivers".into(), num(analysis.delivers));
    root.insert("scheds".into(), num(analysis.scheds));
    root.insert("clocks".into(), num(analysis.clocks));

    let mut cp = Map::new();
    cp.insert("length".into(), num(analysis.path.len() as u64));
    cp.insert("span_ps".into(), num(analysis.span_ps()));
    if let (Some(a), Some(b)) = (analysis.path.first(), analysis.path.last()) {
        cp.insert("start_ps".into(), num(a.t_ps));
        cp.insert("end_ps".into(), num(b.t_ps));
    }
    cp.insert(
        "components".into(),
        Value::Array(
            analysis
                .attribution
                .iter()
                .map(|(name, hops)| {
                    let mut m = Map::new();
                    m.insert("component".into(), Value::String(name.clone()));
                    m.insert("hops".into(), num(*hops));
                    Value::Object(m)
                })
                .collect(),
        ),
    );
    // The path itself can be enormous; ship only head and tail.
    let hop_val = |h: &Hop| {
        let mut m = Map::new();
        m.insert("t_ps".into(), num(h.t_ps));
        m.insert("component".into(), Value::String(h.component.clone()));
        m.insert("kind".into(), Value::String(h.kind.into()));
        Value::Object(m)
    };
    cp.insert(
        "head".into(),
        Value::Array(analysis.path.iter().take(top).map(hop_val).collect()),
    );
    // Tail starts no earlier than where head ended, so the two never overlap.
    let tail_from = analysis
        .path
        .len()
        .saturating_sub(top)
        .max(top)
        .min(analysis.path.len());
    cp.insert(
        "tail".into(),
        Value::Array(analysis.path[tail_from..].iter().map(hop_val).collect()),
    );
    cp.insert(
        "chains".into(),
        Value::Array(
            analysis
                .chains
                .iter()
                .map(|c| {
                    let mut m = Map::new();
                    m.insert("start_ps".into(), num(c.start_ps));
                    m.insert("end_ps".into(), num(c.end_ps));
                    m.insert("latency_ps".into(), num(c.latency_ps));
                    m.insert("hops".into(), num(c.hops));
                    m.insert(
                        "members".into(),
                        Value::Array(
                            c.members
                                .iter()
                                .map(|(name, hops)| {
                                    let mut mm = Map::new();
                                    mm.insert("component".into(), Value::String(name.clone()));
                                    mm.insert("hops".into(), num(*hops));
                                    Value::Object(mm)
                                })
                                .collect(),
                        ),
                    );
                    Value::Object(m)
                })
                .collect(),
        ),
    );
    root.insert("critical_path".into(), Value::Object(cp));

    if let Some((handlers, ranks)) = tables {
        let mut b = Map::new();
        b.insert(
            "handlers".into(),
            Value::Array(
                handlers
                    .iter()
                    .take(top)
                    .map(|h| {
                        let mut m = Map::new();
                        m.insert("component".into(), Value::String(h.name.clone()));
                        m.insert("events".into(), num(h.events));
                        m.insert("total_ns".into(), num(h.total_ns));
                        m.insert("max_ns".into(), num(h.max_ns));
                        m.insert("share".into(), fnum(h.share));
                        m.insert("path_hops".into(), num(h.path_hops));
                        Value::Object(m)
                    })
                    .collect(),
            ),
        );
        b.insert(
            "ranks".into(),
            Value::Array(
                ranks
                    .iter()
                    .map(|r| {
                        let mut m = Map::new();
                        m.insert("label".into(), Value::String(r.label.clone()));
                        m.insert("rank".into(), num(r.rank as u64));
                        m.insert("sync_rounds".into(), num(r.sync_rounds));
                        m.insert("stall_rounds".into(), num(r.stall_rounds));
                        m.insert("stall_ns".into(), num(r.stall_ns));
                        m.insert("barriers_skipped".into(), num(r.barriers_skipped));
                        m.insert("epochs_widened".into(), num(r.epochs_widened));
                        m.insert("wait_share".into(), fnum(r.wait_share));
                        Value::Object(m)
                    })
                    .collect(),
            ),
        );
        root.insert("bottlenecks".into(), Value::Object(b));
    }
    Value::Object(root)
}

/// Human-readable report.
pub fn render_text(
    trace: &Path,
    analysis: &Analysis,
    tables: Option<&(Vec<HandlerRow>, Vec<RankRow>)>,
    top: usize,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace {}: {} record(s) ({} deliver, {} sched, {} clock)",
        trace.display(),
        analysis.records,
        analysis.delivers,
        analysis.scheds,
        analysis.clocks
    );
    let _ = writeln!(
        out,
        "critical path: {} hop(s) spanning {} ps",
        analysis.path.len(),
        analysis.span_ps()
    );
    if let (Some(a), Some(b)) = (analysis.path.first(), analysis.path.last()) {
        let _ = writeln!(
            out,
            "  starts t={} ps at {} ({}), ends t={} ps at {} ({})",
            a.t_ps, a.component, a.kind, b.t_ps, b.component, b.kind
        );
    }
    if !analysis.attribution.is_empty() {
        let _ = writeln!(out, "  per-component attribution (top {top}):");
        let _ = writeln!(out, "    {:<28} {:>10} {:>7}", "component", "hops", "share");
        for (name, hops) in analysis.attribution.iter().take(top) {
            let share = *hops as f64 / analysis.path.len().max(1) as f64;
            let _ = writeln!(out, "    {name:<28} {hops:>10} {:>6.1}%", share * 100.0);
        }
    }
    if !analysis.chains.is_empty() {
        let _ = writeln!(
            out,
            "  constant-latency chains on the path (fusable — see DESIGN.md §11):"
        );
        for c in &analysis.chains {
            let mut names = c
                .members
                .iter()
                .take(8)
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>()
                .join(" ");
            if c.members.len() > 8 {
                let _ = write!(names, " …(+{} more)", c.members.len() - 8);
            }
            let _ = writeln!(
                out,
                "    {} member(s), {} hop(s), {} ps/hop, t=[{}..{}]: {}",
                c.members.len(),
                c.hops,
                c.latency_ps,
                c.start_ps,
                c.end_ps,
                names
            );
        }
    }
    if let Some((handlers, ranks)) = tables {
        let _ = writeln!(out, "handler wallclock (top {top}):");
        let _ = writeln!(
            out,
            "    {:<28} {:>10} {:>10} {:>9} {:>6} {:>9}",
            "component", "events", "total_ms", "max_us", "share", "path_hops"
        );
        for h in handlers.iter().take(top) {
            let _ = writeln!(
                out,
                "    {:<28} {:>10} {:>10.3} {:>9.1} {:>5.1}% {:>9}",
                h.name,
                h.events,
                h.total_ns as f64 / 1e6,
                h.max_ns as f64 / 1e3,
                h.share * 100.0,
                h.path_hops
            );
        }
        if !ranks.is_empty() {
            let _ = writeln!(
                out,
                "rank sync-wait (wait_share is an even-split estimate):"
            );
            let _ = writeln!(
                out,
                "    {:<12} {:>4} {:>9} {:>9} {:>10} {:>8} {:>7} {:>6}",
                "run", "rank", "rounds", "stalls", "stall_ms", "skipped", "widened", "wait"
            );
            for r in ranks {
                let _ = writeln!(
                    out,
                    "    {:<12} {:>4} {:>9} {:>9} {:>10.3} {:>8} {:>7} {:>5.1}%",
                    r.label,
                    r.rank,
                    r.sync_rounds,
                    r.stall_rounds,
                    r.stall_ns as f64 / 1e6,
                    r.barriers_skipped,
                    r.epochs_widened,
                    r.wait_share * 100.0
                );
            }
        }
    } else {
        let _ = writeln!(
            out,
            "no profile dump found (pass --profile-dump or run with --profile) — \
             bottleneck tables skipped"
        );
    }
    out
}

// --- CLI entry point -------------------------------------------------------

/// `foo.trace.jsonl` -> `foo.trace.profile.json` (the sibling a `--profile`
/// run writes next to its trace).
fn sibling_profile(trace: &Path) -> PathBuf {
    let mut p = trace.to_path_buf();
    p.set_extension("profile.json");
    p
}

fn load_dump(path: &Path) -> Result<ProfileDump, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read profile dump {}: {e}", path.display()))?;
    let dump: ProfileDump = serde_json::from_str(&text)
        .map_err(|e| format!("{}: not a profile dump: {e}", path.display()))?;
    if dump.schema != PROFILE_SCHEMA {
        return Err(format!(
            "{}: schema `{}` is not `{PROFILE_SCHEMA}`",
            path.display(),
            dump.schema
        ));
    }
    Ok(dump)
}

/// Run the `sst analyze` subcommand. Prints the text report (or, with
/// `json`, the JSON report) to stdout; `report` additionally writes the JSON
/// report to a file.
pub fn run(
    trace: &Path,
    profile_dump: Option<&Path>,
    report: Option<&Path>,
    top: usize,
    json: bool,
) -> Result<(), String> {
    let text = std::fs::read_to_string(trace)
        .map_err(|e| format!("cannot read {}: {e}", trace.display()))?;
    let analysis = analyze_trace_text(&text).map_err(|e| format!("{}: {e}", trace.display()))?;
    let dump = match profile_dump {
        Some(p) => Some(load_dump(p)?), // explicitly named: must parse
        None => {
            let sib = sibling_profile(trace);
            if sib.exists() {
                Some(load_dump(&sib)?)
            } else {
                None
            }
        }
    };
    let tables = dump.as_ref().map(|d| bottlenecks(d, &analysis));
    let value = report_value(trace, &analysis, tables.as_ref(), top);
    if let Some(path) = report {
        std::fs::write(path, value.to_json_string_pretty())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        eprintln!("[sst] analyze report {}", path.display());
    }
    if json {
        println!("{}", value.to_json_string_pretty());
    } else {
        print!("{}", render_text(trace, &analysis, tables.as_ref(), top));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sst_core::telemetry::{ComponentProfile, EngineProfile, RankSyncProfile};

    fn line_sched(t: u64, src: &str, dst: &str, port: u64, at: u64) -> String {
        format!(r#"{{"t":{t},"k":"sched","src":"{src}","dst":"{dst}","port":{port},"at":{at}}}"#)
    }
    fn line_deliver(t: u64, src: &str, dst: &str, port: u64) -> String {
        format!(r#"{{"t":{t},"k":"deliver","src":"{src}","dst":"{dst}","port":{port}}}"#)
    }

    #[test]
    fn chains_link_sched_to_deliver() {
        // a -> b -> c, one hop each, plus an unrelated single delivery on d.
        let text = [
            line_deliver(100, "env", "a", 0),
            line_sched(100, "a", "b", 0, 200),
            line_deliver(150, "env", "d", 0),
            line_deliver(200, "a", "b", 0),
            line_sched(200, "b", "c", 1, 350),
            line_deliver(350, "b", "c", 1),
        ]
        .join("\n");
        let a = analyze_trace_text(&text).unwrap();
        assert_eq!(a.records, 6);
        assert_eq!(a.delivers, 4);
        assert_eq!(a.scheds, 2);
        let comps: Vec<&str> = a.path.iter().map(|h| h.component.as_str()).collect();
        assert_eq!(comps, ["a", "b", "c"]);
        assert_eq!(a.span_ps(), 250);
        assert_eq!(a.attribution.len(), 3);
        assert!(a.attribution.iter().all(|(_, c)| *c == 1));
    }

    #[test]
    fn clock_ticks_extend_self_chains() {
        let text = [
            r#"{"t":0,"k":"clock","dst":"cpu","cycle":0}"#.to_string(),
            r#"{"t":1000,"k":"clock","dst":"cpu","cycle":1}"#.to_string(),
            r#"{"t":2000,"k":"clock","dst":"cpu","cycle":2}"#.to_string(),
            line_deliver(500, "env", "nic", 0),
        ]
        .join("\n");
        let a = analyze_trace_text(&text).unwrap();
        assert_eq!(a.clocks, 3);
        assert_eq!(a.path.len(), 3);
        assert!(a
            .path
            .iter()
            .all(|h| h.component == "cpu" && h.kind == "clock"));
        assert_eq!(a.attribution[0], ("cpu".to_string(), 3));
    }

    #[test]
    fn deeper_sched_edge_wins_on_collision() {
        // Two scheds target (c, 300, 0); the one whose source has the longer
        // chain must carry the path.
        let text = [
            line_deliver(10, "env", "a", 0),
            line_sched(10, "a", "b", 0, 20),
            line_deliver(20, "a", "b", 0),
            line_sched(20, "b", "c", 0, 300), // depth 2 source
            line_deliver(15, "env", "x", 0),
            line_sched(15, "x", "c", 0, 300), // depth 1 source
            line_deliver(300, "b", "c", 0),
        ]
        .join("\n");
        let a = analyze_trace_text(&text).unwrap();
        let comps: Vec<&str> = a.path.iter().map(|h| h.component.as_str()).collect();
        assert_eq!(comps, ["a", "b", "c"]);
    }

    #[test]
    fn marks_and_unknown_kinds_are_ignored() {
        let text = [
            r#"{"t":5,"k":"mark","dst":"a","label":"warm","v":1}"#.to_string(),
            line_deliver(10, "env", "a", 0),
            r#"{"t":11,"k":"someday","dst":"a"}"#.to_string(),
        ]
        .join("\n");
        let a = analyze_trace_text(&text).unwrap();
        assert_eq!(a.records, 3);
        assert_eq!(a.path.len(), 1);
    }

    #[test]
    fn invalid_lines_error() {
        assert!(analyze_trace_text("not json").is_err());
        assert!(analyze_trace_text(r#"{"k":"deliver"}"#).is_err());
        assert!(analyze_trace_text("").unwrap().path.is_empty());
    }

    fn test_dump() -> ProfileDump {
        let profile = EngineProfile {
            components: vec![
                ComponentProfile {
                    name: "a".into(),
                    events: 10,
                    total_ns: 3_000_000,
                    max_ns: 900,
                },
                ComponentProfile {
                    name: "b".into(),
                    events: 5,
                    total_ns: 1_000_000,
                    max_ns: 500,
                },
            ],
            ranks: vec![RankSyncProfile {
                rank: 0,
                sync_rounds: 7,
                batches_sent: 4,
                null_batches_sent: 2,
                events_sent: 9,
                barriers_skipped: 1,
                epochs_widened: 2,
                stall_rounds: 3,
                stall_ns: 4_000_000,
            }],
            ..EngineProfile::default()
        };
        ProfileDump::new(&[("2ranks".to_string(), profile)])
    }

    #[test]
    fn bottleneck_tables_merge_profile_and_path() {
        let text = [
            line_deliver(100, "env", "a", 0),
            line_sched(100, "a", "b", 0, 200),
            line_deliver(200, "a", "b", 0),
        ]
        .join("\n");
        let analysis = analyze_trace_text(&text).unwrap();
        let (handlers, ranks) = bottlenecks(&test_dump(), &analysis);
        assert_eq!(handlers[0].name, "a"); // hottest first
        assert!((handlers[0].share - 0.75).abs() < 1e-9);
        assert_eq!(handlers[0].path_hops, 1);
        assert_eq!(ranks.len(), 1);
        assert_eq!(ranks[0].stall_rounds, 3);
        // 4ms stall vs 4ms handler-even-split: 50% wait share.
        assert!((ranks[0].wait_share - 0.5).abs() < 1e-9);
    }

    /// Trace of a 4-repeater forwarder chain (`a -> b -> c -> d -> a`,
    /// 10 ps/hop) run for `laps` laps — the shape the specializer fuses.
    fn chain_trace(laps: u64) -> String {
        let comps = ["a", "b", "c", "d"];
        let mut lines = vec![line_deliver(10, "env", "a", 0)];
        let mut t = 10;
        for _ in 0..laps {
            for w in comps.windows(2) {
                lines.push(line_sched(t, w[0], w[1], 0, t + 10));
                lines.push(line_deliver(t + 10, w[0], w[1], 0));
                t += 10;
            }
            lines.push(line_sched(t, "d", "a", 0, t + 10));
            lines.push(line_deliver(t + 10, "d", "a", 0));
            t += 10;
        }
        lines.join("\n")
    }

    #[test]
    fn fused_chain_reports_per_member_hops() {
        let a = analyze_trace_text(&chain_trace(3)).unwrap();
        // 1 entry + 3 laps x 4 hops, every hop on the critical path.
        assert_eq!(a.path.len(), 13);
        assert_eq!(a.chains.len(), 1, "chains: {:?}", a.chains);
        let c = &a.chains[0];
        assert_eq!(c.latency_ps, 10);
        assert_eq!(c.hops, 13);
        assert_eq!((c.start_ps, c.end_ps), (10, 130));
        // Per-member attribution, never one blob: each repeater is named
        // with its own hop count.
        let members: Vec<(&str, u64)> = c.members.iter().map(|(n, h)| (n.as_str(), *h)).collect();
        assert_eq!(members, [("a", 4), ("b", 3), ("c", 3), ("d", 3)]);
    }

    #[test]
    fn latency_change_splits_chain_runs() {
        // a->b->c->d->e at 10 ps, then e->f->g->h->i at 25 ps: two runs
        // sharing the boundary hop.
        let comps = ["a", "b", "c", "d", "e", "f", "g", "h", "i"];
        let mut lines = vec![line_deliver(0, "env", "a", 0)];
        let mut t = 0;
        for (k, w) in comps.windows(2).enumerate() {
            let lat = if k < 4 { 10 } else { 25 };
            lines.push(line_sched(t, w[0], w[1], 0, t + lat));
            lines.push(line_deliver(t + lat, w[0], w[1], 0));
            t += lat;
        }
        let a = analyze_trace_text(&lines.join("\n")).unwrap();
        assert_eq!(a.chains.len(), 2);
        assert_eq!(a.chains[0].latency_ps, 10);
        assert_eq!(a.chains[0].members.len(), 5);
        assert_eq!(a.chains[1].latency_ps, 25);
        assert_eq!(a.chains[1].members.len(), 5);
        assert_eq!(a.chains[0].end_ps, a.chains[1].start_ps);
    }

    #[test]
    fn self_loops_and_short_runs_are_not_chains() {
        // One component messaging itself at a constant period is a
        // self-loop, not a forwarder chain.
        let mut lines = vec![line_deliver(0, "env", "s", 0)];
        for t in (0..50).step_by(10) {
            lines.push(line_sched(t, "s", "s", 0, t + 10));
            lines.push(line_deliver(t + 10, "s", "s", 0));
        }
        let a = analyze_trace_text(&lines.join("\n")).unwrap();
        assert_eq!(a.path.len(), 6);
        assert!(a.chains.is_empty(), "chains: {:?}", a.chains);

        // A 3-hop constant-latency stretch is below the reporting
        // threshold: too short to distinguish structure from coincidence.
        let lines = [
            line_deliver(0, "env", "x", 1),
            line_sched(0, "x", "y", 1, 10),
            line_deliver(10, "x", "y", 1),
            line_sched(10, "y", "z", 1, 20),
            line_deliver(20, "y", "z", 1),
            line_sched(20, "z", "w", 1, 55),
            line_deliver(55, "z", "w", 1),
        ]
        .join("\n");
        let a = analyze_trace_text(&lines).unwrap();
        assert_eq!(a.path.len(), 4);
        assert!(a.chains.is_empty(), "chains: {:?}", a.chains);
    }

    #[test]
    fn report_value_shape() {
        let text = [
            line_deliver(100, "env", "a", 0),
            line_sched(100, "a", "b", 0, 200),
            line_deliver(200, "a", "b", 0),
        ]
        .join("\n");
        let analysis = analyze_trace_text(&text).unwrap();
        let tables = bottlenecks(&test_dump(), &analysis);
        let v = report_value(Path::new("t.jsonl"), &analysis, Some(&tables), 10);
        assert_eq!(
            v.get("schema").and_then(Value::as_str),
            Some(ANALYZE_SCHEMA)
        );
        let cp = v.get("critical_path").unwrap();
        assert_eq!(cp.get("length").and_then(Value::as_u64), Some(2));
        assert_eq!(cp.get("span_ps").and_then(Value::as_u64), Some(100));
        assert_eq!(
            cp.get("chains").and_then(Value::as_array).map(Vec::len),
            Some(0)
        );
        let b = v.get("bottlenecks").unwrap();
        assert!(b.get("handlers").and_then(Value::as_array).is_some());
        let txt = render_text(Path::new("t.jsonl"), &analysis, Some(&tables), 10);
        assert!(txt.contains("critical path: 2 hop(s)"));
        assert!(txt.contains("handler wallclock"));
    }
}
