//! The full component registry: every DES component type in the toolkit,
//! instantiable from JSON system configurations (`sst run <config.json>`).

use sst_core::config::ComponentRegistry;

/// Build the registry with all library components registered.
pub fn full_registry() -> ComponentRegistry {
    let mut r = ComponentRegistry::new();
    sst_mem::components::register(&mut r);
    sst_cpu::components::register(&mut r);
    sst_net::components::register(&mut r);
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use sst_core::prelude::*;

    #[test]
    fn registry_has_all_component_families() {
        let r = full_registry();
        for ty in [
            "mem.cache",
            "mem.dram",
            "cpu.stream_core",
            "net.fabric",
            "net.traffic",
        ] {
            assert!(r.contains(ty), "missing {ty}");
        }
        assert!(r.list().len() >= 3);
    }

    #[test]
    fn json_config_end_to_end() {
        let cfg = SystemConfig::from_json(
            r#"{
            "seed": 42,
            "components": [
                {"name": "cpu0", "type": "cpu.stream_core",
                 "params": {"iters": 200, "span": 16384}},
                {"name": "l1", "type": "mem.cache",
                 "params": {"size_bytes": 32768, "latency_ns": 1.0}},
                {"name": "mem", "type": "mem.dram",
                 "params": {"preset": "ddr3_1333", "channels": 2}}
            ],
            "links": [
                {"from": "cpu0.mem", "to": "l1.cpu", "latency_ns": 1.0},
                {"from": "l1.mem", "to": "mem.bus", "latency_ns": 4.0}
            ]
        }"#,
        )
        .unwrap();
        let b = cfg.build(&full_registry()).unwrap();
        let report = Engine::new(b).run(RunLimit::Exhaust);
        assert_eq!(report.stats.counter("cpu0", "mem_ops"), 200 * 3);
        assert!(report.stats.counter("l1", "hits") > 0);
    }
}
