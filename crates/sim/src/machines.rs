//! Machine presets: the testbeds of the studies, as node and network
//! configurations.

use sst_core::fidelity::Fidelity;
use sst_core::time::Frequency;
use sst_cpu::core::CoreConfig;
use sst_cpu::node::NodeConfig;
use sst_mem::cache::CacheConfig;
use sst_mem::dram::DramConfig;
use sst_mem::hierarchy::MemHierarchyConfig;
use sst_net::network::NetConfig;

/// A Cray-XE6-"Cielo"-like node: single-socket view of a 2.4 GHz
/// Magny-Cours with `cores` active, 4 DDR3-1333 channels, 12-way-ish L3.
pub fn xe6_node(cores: usize) -> NodeConfig {
    NodeConfig {
        core: CoreConfig::with_width(4, Frequency::ghz(2.4)),
        cores,
        mem: MemHierarchyConfig {
            l1: CacheConfig::l1d_32k(),
            l2: CacheConfig {
                size_bytes: 512 << 10,
                assoc: 8,
                line_bytes: 64,
                latency_cycles: 14,
                write_back: true,
            },
            l3: Some(CacheConfig {
                size_bytes: 6 << 20,
                assoc: 12,
                line_bytes: 64,
                latency_cycles: 40,
                write_back: true,
            }),
            l2_shared: false,
            dram: DramConfig::ddr3_1333(4),
        },
        fidelity: Fidelity::Analytic,
    }
}

/// A Nehalem-like node (dual-socket quad-core in the memory-speed study):
/// `cores` active, memory technology supplied by the caller.
pub fn nehalem_node(cores: usize, dram: DramConfig) -> NodeConfig {
    NodeConfig {
        core: CoreConfig::with_width(4, Frequency::ghz(2.8)),
        cores,
        mem: MemHierarchyConfig {
            l1: CacheConfig::l1d_32k(),
            l2: CacheConfig::l2_256k(),
            l3: Some(CacheConfig::l3_8m()),
            l2_shared: false,
            dram,
        },
        fidelity: Fidelity::Analytic,
    }
}

/// A hex-core Sandy-Bridge-EP-like node (E5-2680, the Fig. 8 CPU
/// baseline).
pub fn e5_node(cores: usize) -> NodeConfig {
    NodeConfig {
        core: CoreConfig::with_width(4, Frequency::ghz(2.7)),
        cores,
        mem: MemHierarchyConfig {
            l1: CacheConfig::l1d_32k(),
            l2: CacheConfig::l2_256k(),
            l3: Some(CacheConfig {
                size_bytes: 20 << 20,
                assoc: 20,
                line_bytes: 64,
                latency_cycles: 40,
                write_back: true,
            }),
            l2_shared: false,
            dram: DramConfig::ddr3_1600(4),
        },
        fidelity: Fidelity::Analytic,
    }
}

/// The design-space-study node (Figs. 10–12): one core of the given issue
/// width in front of a chosen memory technology — the gem5/x86 +
/// DRAMSim2 configuration of the paper's exploration.
pub fn dse_node(issue_width: u32, dram: DramConfig) -> NodeConfig {
    // The gem5 cores of the study are out-of-order with deep MSHR files;
    // give the stream-driven core matching memory aggressiveness so its
    // demand actually exercises the memory technologies.
    let mut core = CoreConfig::with_width(issue_width, Frequency::ghz(3.2));
    core.mem_ports = issue_width.max(1);
    core.max_outstanding = 4 + 6 * issue_width;
    NodeConfig {
        core,
        cores: 1,
        mem: MemHierarchyConfig {
            l1: CacheConfig::l1d_32k(),
            l2: CacheConfig::l2_256k(),
            l3: None, // small exploration chip: L1+L2 only
            l2_shared: false,
            dram,
        },
        fidelity: Fidelity::Analytic,
    }
}

/// The memory technologies compared by the design-space study.
pub fn dse_memories() -> Vec<DramConfig> {
    // Single-channel DDR parts vs a two-channel GDDR5 stack: the
    // exploration-point chip is small, so its memory system is narrow —
    // which is what makes the technology choice matter.
    vec![
        DramConfig::ddr2_800(1),
        DramConfig::ddr3_1333(1),
        DramConfig::gddr5(2),
    ]
}

/// XT5-like network (the bandwidth-degradation testbed).
pub fn xt5_net() -> NetConfig {
    NetConfig::xt5()
}

/// A conventional host processor for the novel-architecture comparison:
/// a few wide out-of-order-ish cores behind a deep cache hierarchy and
/// commodity DDR3.
pub fn conventional_node(cores: usize) -> NodeConfig {
    NodeConfig {
        core: CoreConfig::with_width(4, Frequency::ghz(2.4)),
        cores,
        mem: MemHierarchyConfig {
            l1: CacheConfig::l1d_32k(),
            l2: CacheConfig::l2_256k(),
            l3: Some(CacheConfig::l3_8m()),
            l2_shared: false,
            dram: DramConfig::ddr3_1333(2),
        },
        fidelity: Fidelity::Analytic,
    }
}

/// A processing-in-memory (PIM) part — the novel architecture the original
/// SST work explored: many simple, slow, narrow cores placed *inside* the
/// memory stack. Each core sees a shallow hierarchy (small L1 only) but
/// enormous internal bandwidth at low latency: the DRAM "channels" here are
/// on-die TSV-like links, wide and fast.
pub fn pim_node(cores: usize) -> NodeConfig {
    let mut core = CoreConfig::with_width(1, Frequency::ghz(1.0));
    core.max_outstanding = 8;
    let internal = DramConfig {
        name: "PIM-internal x8".into(),
        channels: 8,
        ranks_per_channel: 1,
        banks_per_rank: 32,
        data_rate_mts: 1600.0,
        bus_bytes: 16, // wide internal interface
        burst_length: 4,
        tcl_ns: 8.0, // no board crossing: row logic only
        trcd_ns: 8.0,
        trp_ns: 8.0,
        tras_ns: 24.0,
        row_bytes: 8 << 10,
        e_act_nj: 6.0, // short wires
        e_rd_nj: 1.5,
        e_wr_nj: 1.7,
        p_bg_mw_per_rank: 90.0,
        cost_per_gb_usd: 14.0, // logic-in-memory process premium
        capacity_gb: 8.0,
        bank_hash: true,
    };
    NodeConfig {
        core,
        cores,
        mem: MemHierarchyConfig {
            l1: CacheConfig {
                size_bytes: 16 << 10,
                assoc: 4,
                line_bytes: 64,
                latency_cycles: 2,
                write_back: true,
            },
            l2: CacheConfig {
                // token 32 KiB buffer standing in for a scratch level; PIM
                // parts carry almost no hierarchy.
                size_bytes: 32 << 10,
                assoc: 4,
                line_bytes: 64,
                latency_cycles: 4,
                write_back: true,
            },
            l3: None,
            l2_shared: false,
            dram: internal,
        },
        fidelity: Fidelity::Analytic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_construct() {
        assert_eq!(xe6_node(12).cores, 12);
        assert_eq!(nehalem_node(4, DramConfig::ddr3_1066(3)).cores, 4);
        assert_eq!(e5_node(6).core.freq.as_ghz(), 2.7);
        let d = dse_node(8, DramConfig::gddr5(4));
        assert_eq!(d.core.issue_width, 8);
        assert!(d.mem.l3.is_none());
        assert_eq!(dse_memories().len(), 3);
    }
}
