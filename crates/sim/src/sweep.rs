//! The sweep engine: run a grid of pdes configurations over a work-stealing
//! worker pool, with a content-addressed result cache and fork-at-checkpoint
//! prefix sharing.
//!
//! A sweep spec (`sst-sweep-spec-v1`) names a base configuration plus a
//! `grid` (cartesian product over per-parameter value lists) and/or an
//! explicit `points` list of overrides. Every expanded point is hashed —
//! canonical JSON through [`config_hash_hex`], the same FNV-1a helper run
//! manifests use — and that hash addresses the point's cache entry.
//!
//! With `fork_at_ns` set, points that agree on every *prefix* parameter
//! share one prefix simulation: the prefix runs once to the fork instant,
//! its sealed [`Snapshot`] is cached under its state hash, and each branch
//! restores the snapshot with only its divergent parameters patched in.
//! Legality: a parameter may diverge inside a prefix group only if the
//! simulation provably never reads it before the fork instant — here
//! `until_ns` (the run limit) always qualifies, and the injector's
//! `inject_tokens`/`inject_ttl` qualify exactly when the injection fires
//! strictly after the fork (`inject_at_ns > fork_at_ns`); otherwise they
//! are folded into the prefix key and cannot diverge.

use crate::experiments::pdes::{self, Inject};
use serde::{Deserialize, Serialize, Value};
use sst_core::prelude::*;
use sst_core::sweep::{run_jobs, CacheStats, CachedResult, ResultCache, SchedStats};
use sst_core::telemetry::config_hash_hex;

/// Version tag of the sweep spec document.
pub const SWEEP_SPEC_SCHEMA: &str = "sst-sweep-spec-v1";
/// Version tag of the per-point manifest the driver writes.
pub const SWEEP_POINT_SCHEMA: &str = "sst-sweep-point-v1";
/// Version tag of the sweep-level summary document.
pub const SWEEP_SUMMARY_SCHEMA: &str = "sst-sweep-summary-v1";

/// One fully-resolved sweep point: the canonical configuration whose JSON
/// rendering (declaration order, via the derive) is the cache key.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PointConfig {
    /// Torus side (side*side traffic nodes).
    pub side: u32,
    pub tokens_per_node: u32,
    pub ttl: u32,
    /// Engine RNG seed.
    pub seed: u64,
    /// Run limit in simulated nanoseconds.
    pub until_ns: u64,
    /// Injection instant in simulated nanoseconds; 0 = no injector.
    pub inject_at_ns: u64,
    pub inject_tokens: u32,
    pub inject_ttl: u32,
}

impl Default for PointConfig {
    fn default() -> Self {
        PointConfig {
            side: 8,
            tokens_per_node: 4,
            ttl: 60,
            seed: 0xC0DE_5EED,
            until_ns: 2000,
            inject_at_ns: 0,
            inject_tokens: 0,
            inject_ttl: 0,
        }
    }
}

impl PointConfig {
    /// The point's canonical config hash — its cache address.
    pub fn config_hash(&self) -> String {
        config_hash_hex(self.to_value().to_json_string().as_bytes())
    }
}

/// Apply one `key: value` override onto `cfg`.
fn apply(cfg: &mut PointConfig, key: &str, value: &Value) -> Result<(), String> {
    let num = |what: &str| {
        value
            .as_u64()
            .ok_or_else(|| format!("sweep spec: `{what}` must be a non-negative integer"))
    };
    match key {
        "side" => cfg.side = num(key)? as u32,
        "tokens_per_node" => cfg.tokens_per_node = num(key)? as u32,
        "ttl" => cfg.ttl = num(key)? as u32,
        "seed" => cfg.seed = num(key)?,
        "until_ns" => cfg.until_ns = num(key)?,
        "inject_at_ns" => cfg.inject_at_ns = num(key)?,
        "inject_tokens" => cfg.inject_tokens = num(key)? as u32,
        "inject_ttl" => cfg.inject_ttl = num(key)? as u32,
        other => return Err(format!("sweep spec: unknown parameter `{other}`")),
    }
    Ok(())
}

/// A parsed, fully-expanded sweep.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    pub points: Vec<PointConfig>,
    /// Fork instant in simulated nanoseconds, when prefix sharing is on.
    pub fork_at_ns: Option<u64>,
}

impl SweepSpec {
    /// Parse and expand a spec document. Grid keys expand in sorted order
    /// (later keys vary fastest), values in listed order, and explicit
    /// `points` entries follow the grid — so the point order, and with it
    /// the result order, is a pure function of the document.
    pub fn parse(text: &str) -> Result<SweepSpec, String> {
        let doc: Value = serde_json::from_str(text).map_err(|e| format!("sweep spec: {e}"))?;
        let obj = doc
            .as_object()
            .ok_or("sweep spec: document must be a JSON object")?;
        match obj.get("schema").and_then(|v| v.as_str()) {
            Some(SWEEP_SPEC_SCHEMA) => {}
            Some(other) => {
                return Err(format!(
                    "sweep spec: schema `{other}` (expected `{SWEEP_SPEC_SCHEMA}`)"
                ))
            }
            None => return Err("sweep spec: missing `schema`".to_string()),
        }
        let mut base = PointConfig::default();
        if let Some(b) = obj.get("base") {
            let b = b
                .as_object()
                .ok_or("sweep spec: `base` must be an object")?;
            for (k, v) in b.iter() {
                apply(&mut base, k, v)?;
            }
        }
        let mut points = Vec::new();
        if let Some(grid) = obj.get("grid") {
            let grid = grid
                .as_object()
                .ok_or("sweep spec: `grid` must be an object")?;
            let mut axes: Vec<(&String, &Vec<Value>)> = Vec::new();
            for (k, v) in grid.iter() {
                let vals = v
                    .as_array()
                    .ok_or_else(|| format!("sweep spec: grid `{k}` must be an array"))?;
                if vals.is_empty() {
                    return Err(format!("sweep spec: grid `{k}` is empty"));
                }
                axes.push((k, vals));
            }
            axes.sort_by(|a, b| a.0.cmp(b.0));
            let combos: usize = axes.iter().map(|(_, v)| v.len()).product();
            for i in 0..combos {
                let mut cfg = base.clone();
                let mut rest = i;
                // Last axis varies fastest: decompose from the right.
                for (k, vals) in axes.iter().rev() {
                    apply(&mut cfg, k, &vals[rest % vals.len()])?;
                    rest /= vals.len();
                }
                points.push(cfg);
            }
        }
        if let Some(list) = obj.get("points") {
            let list = list
                .as_array()
                .ok_or("sweep spec: `points` must be an array")?;
            for (i, entry) in list.iter().enumerate() {
                let entry = entry
                    .as_object()
                    .ok_or_else(|| format!("sweep spec: points[{i}] must be an object"))?;
                let mut cfg = base.clone();
                for (k, v) in entry.iter() {
                    apply(&mut cfg, k, v)?;
                }
                points.push(cfg);
            }
        }
        if points.is_empty() {
            points.push(base);
        }
        for (i, p) in points.iter().enumerate() {
            if p.side == 0 || p.until_ns == 0 {
                return Err(format!(
                    "sweep spec: point {i} needs side >= 1 and until_ns >= 1"
                ));
            }
        }
        let fork_at_ns = match obj.get("fork_at_ns") {
            None => None,
            Some(v) => Some(
                v.as_u64()
                    .ok_or("sweep spec: `fork_at_ns` must be a non-negative integer")?,
            ),
        };
        Ok(SweepSpec { points, fork_at_ns })
    }
}

/// How a point's result was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResultSource {
    /// Simulated from scratch.
    Cold,
    /// Served from the result cache.
    Cache,
    /// Resumed from a shared prefix snapshot.
    Fork,
}

impl std::fmt::Display for ResultSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ResultSource::Cold => "cold",
            ResultSource::Cache => "cache",
            ResultSource::Fork => "fork",
        })
    }
}

/// One point's outcome: the canonicalized report (wall-clock zeroed, so
/// bytes are identical across worker counts, cache hits, and fork mode)
/// plus the measured wall time for throughput accounting.
#[derive(Debug, Clone)]
pub struct PointResult {
    pub config: PointConfig,
    pub config_hash: String,
    pub source: ResultSource,
    /// Measured seconds this point actually cost in this sweep.
    pub wall_seconds: f64,
    pub report: SimReport,
}

/// Sweep-wide outcome.
pub struct SweepOutcome {
    pub results: Vec<PointResult>,
    pub sched: SchedStats,
    pub cache: CacheStats,
    /// Distinct prefix simulations executed (not served from cache).
    pub prefix_runs: usize,
    pub wall_seconds: f64,
}

impl SweepOutcome {
    pub fn configs_per_sec(&self) -> f64 {
        self.results.len() as f64 / self.wall_seconds.max(1e-9)
    }
}

/// Execution options, lowered from the CLI flags.
pub struct SweepOptions {
    pub workers: usize,
    pub cache: ResultCache,
    /// Overrides the spec's `fork_at_ns` when set.
    pub fork_at_ns: Option<u64>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            workers: 1,
            cache: ResultCache::disabled(),
            fork_at_ns: None,
        }
    }
}

fn pdes_params(cfg: &PointConfig) -> pdes::Params {
    pdes::Params {
        side: cfg.side,
        tokens_per_node: cfg.tokens_per_node,
        ttl: cfg.ttl,
        rank_counts: Vec::new(),
        inject: (cfg.inject_at_ns > 0).then_some(Inject {
            at_ps: cfg.inject_at_ns * 1000,
            tokens: cfg.inject_tokens,
            ttl: cfg.inject_ttl,
        }),
        ..pdes::Params::default()
    }
}

fn build_point(cfg: &PointConfig) -> SystemBuilder {
    let mut b = pdes::build(&pdes_params(cfg));
    b.seed(cfg.seed);
    b
}

/// Simulate one point from scratch. The checkpointing entry point is used
/// (with no intermediate captures) so the report carries the sealed final
/// state hash.
pub fn run_point(cfg: &PointConfig) -> SimReport {
    let limit = RunLimit::Until(SimTime::ns(cfg.until_ns));
    Engine::with_telemetry(build_point(cfg), TelemetrySpec::disabled()).run_with_checkpoints(
        limit,
        None,
        None,
        &mut |_| {},
    )
}

/// The prefix configuration a point belongs to under `fork_at_ns`: every
/// divergence-legal parameter is canonicalized to zero so all group members
/// hash to the same prefix key. `None` when the point cannot legally fork
/// (the fork instant is not strictly inside the run).
fn prefix_config(cfg: &PointConfig, fork_at_ns: u64) -> Option<PointConfig> {
    if fork_at_ns == 0 || fork_at_ns >= cfg.until_ns {
        return None;
    }
    let mut p = cfg.clone();
    p.until_ns = 0;
    // The injector reads `tokens`/`ttl` only at its firing instant; they
    // are prefix-inert exactly when that instant is strictly after the
    // fork (the prefix delivers every event at or before `fork_at_ns`).
    if p.inject_at_ns > fork_at_ns {
        p.inject_tokens = 0;
        p.inject_ttl = 0;
    }
    Some(p)
}

/// The document hashed into a prefix cache key: the canonicalized prefix
/// config plus the fork instant itself.
#[derive(Serialize, Deserialize)]
struct PrefixKey {
    fork_at_ns: u64,
    prefix: PointConfig,
}

fn prefix_hash(prefix: &PointConfig, fork_at_ns: u64) -> String {
    let key = PrefixKey {
        fork_at_ns,
        prefix: prefix.clone(),
    };
    config_hash_hex(key.to_value().to_json_string().as_bytes())
}

/// Simulate a prefix config up to the fork instant and seal the state.
fn run_prefix(prefix: &PointConfig, fork_at_ns: u64) -> Snapshot {
    let eng: Engine = Engine::with_telemetry(build_point(prefix), TelemetrySpec::disabled());
    eng.run_to_snapshot(SimTime::ns(fork_at_ns), None)
}

/// Patch a prefix snapshot into `cfg`'s branch: overwrite the injector's
/// divergent fields in its serialized state — the only mutation fork mode
/// ever makes — and reseal.
fn patch_branch(snap: &mut Snapshot, prefix: &PointConfig, cfg: &PointConfig) {
    if prefix.inject_tokens == cfg.inject_tokens && prefix.inject_ttl == cfg.inject_ttl {
        return;
    }
    let comp = snap
        .components
        .iter_mut()
        .find(|c| c.name == "injector")
        .expect("prefix snapshot has no injector to patch");
    let mut state = comp.state.as_object().cloned().unwrap_or_default();
    state.insert("tokens".to_string(), Value::from(cfg.inject_tokens as u64));
    state.insert("ttl".to_string(), Value::from(cfg.inject_ttl as u64));
    comp.state = Value::Object(state);
    snap.seal();
}

/// Resume `cfg` from its (already patched) prefix snapshot.
fn run_branch(cfg: &PointConfig, snap: &Snapshot) -> SimReport {
    let limit = RunLimit::Until(SimTime::ns(cfg.until_ns));
    Engine::restore(build_point(cfg), TelemetrySpec::disabled(), snap).run_with_checkpoints(
        limit,
        None,
        None,
        &mut |_| {},
    )
}

/// Run the sweep: cache lookups first, then shared prefixes, then every
/// missing point — the latter two phases over the work-stealing pool.
/// Results come back in point order whatever the worker count.
pub fn run_sweep(spec: &SweepSpec, opts: &SweepOptions) -> SweepOutcome {
    let t0 = std::time::Instant::now();
    let fork_at_ns = opts.fork_at_ns.or(spec.fork_at_ns);
    let hashes: Vec<String> = spec.points.iter().map(|p| p.config_hash()).collect();

    // Phase 1: serve what the cache already has.
    let mut results: Vec<Option<PointResult>> = Vec::with_capacity(spec.points.len());
    for (cfg, hash) in spec.points.iter().zip(&hashes) {
        results.push(opts.cache.lookup(hash).map(|entry| PointResult {
            config: cfg.clone(),
            config_hash: hash.clone(),
            source: ResultSource::Cache,
            wall_seconds: 0.0,
            report: entry.report,
        }));
    }

    // Phase 2: group the misses by prefix key and materialize each group's
    // snapshot (cache first, simulate once on miss) over the worker pool.
    let misses: Vec<usize> = (0..spec.points.len())
        .filter(|&i| results[i].is_none())
        .collect();
    let mut prefix_of: Vec<Option<(String, PointConfig)>> = vec![None; spec.points.len()];
    if let Some(fork_ns) = fork_at_ns {
        for &i in &misses {
            if let Some(prefix) = prefix_config(&spec.points[i], fork_ns) {
                prefix_of[i] = Some((prefix_hash(&prefix, fork_ns), prefix));
            }
        }
    }
    let mut groups: Vec<(String, PointConfig)> = Vec::new();
    for p in misses.iter().filter_map(|&i| prefix_of[i].as_ref()) {
        if !groups.iter().any(|(h, _)| *h == p.0) {
            groups.push(p.clone());
        }
    }
    let mut prefix_runs = 0usize;
    let mut snapshots: Vec<(String, Snapshot)> = Vec::new();
    let mut sched = SchedStats {
        workers: opts.workers.max(1),
        jobs: 0,
        steals: 0,
    };
    if !groups.is_empty() {
        let fork_ns = fork_at_ns.expect("groups exist only when forking");
        let cache = &opts.cache;
        let jobs: Vec<_> = groups
            .iter()
            .map(|(hash, prefix)| {
                move || match cache.lookup_prefix(hash) {
                    Some(snap) => (snap, false),
                    None => {
                        let snap = run_prefix(prefix, fork_ns);
                        cache.store_prefix(hash, &snap);
                        (snap, true)
                    }
                }
            })
            .collect();
        let (snaps, s) = run_jobs(jobs, opts.workers);
        sched.jobs += s.jobs;
        sched.steals += s.steals;
        for ((hash, _), (snap, simulated)) in groups.iter().zip(snaps) {
            prefix_runs += simulated as usize;
            snapshots.push((hash.clone(), snap));
        }
    }

    // Phase 3: every remaining point — forked from its prefix when one
    // exists, from scratch otherwise — over the worker pool.
    let cache = &opts.cache;
    let snapshots = &snapshots;
    let jobs: Vec<_> = misses
        .iter()
        .map(|&i| {
            let cfg = &spec.points[i];
            let hash = &hashes[i];
            let prefix = &prefix_of[i];
            move || {
                let t = std::time::Instant::now();
                let (report, source) = match prefix {
                    Some((phash, pcfg)) => {
                        let mut snap = snapshots
                            .iter()
                            .find(|(h, _)| h == phash)
                            .expect("prefix snapshot materialized in phase 2")
                            .1
                            .clone();
                        patch_branch(&mut snap, pcfg, cfg);
                        (run_branch(cfg, &snap), ResultSource::Fork)
                    }
                    None => (run_point(cfg), ResultSource::Cold),
                };
                let entry = CachedResult::new(hash, report);
                cache.store(&entry);
                PointResult {
                    config: cfg.clone(),
                    config_hash: hash.clone(),
                    source,
                    wall_seconds: t.elapsed().as_secs_f64(),
                    report: entry.report,
                }
            }
        })
        .collect();
    let (computed, s) = run_jobs(jobs, opts.workers);
    sched.jobs += s.jobs;
    sched.steals += s.steals;
    for (&i, r) in misses.iter().zip(computed) {
        results[i] = Some(r);
    }

    SweepOutcome {
        results: results
            .into_iter()
            .map(|r| r.expect("every point resolved"))
            .collect(),
        sched,
        cache: opts.cache.stats(),
        prefix_runs,
        wall_seconds: t0.elapsed().as_secs_f64(),
    }
}

/// The per-point manifest document (`sst-sweep-point-v1`).
#[derive(Serialize, Deserialize)]
pub struct PointManifest {
    pub schema: String,
    pub index: usize,
    pub config: PointConfig,
    pub config_hash: String,
    pub source: String,
    pub wall_seconds: f64,
    pub events: u64,
    pub end_time_ps: u64,
    pub final_state_hash: Option<String>,
}

impl PointManifest {
    pub fn new(index: usize, r: &PointResult) -> PointManifest {
        PointManifest {
            schema: SWEEP_POINT_SCHEMA.to_string(),
            index,
            config: r.config.clone(),
            config_hash: r.config_hash.clone(),
            source: r.source.to_string(),
            wall_seconds: r.wall_seconds,
            events: r.report.events,
            end_time_ps: r.report.end_time.as_ps(),
            final_state_hash: r.report.final_state_hash.clone(),
        }
    }
}

/// The sweep-level summary document (`sst-sweep-summary-v1`).
#[derive(Serialize, Deserialize)]
pub struct SweepSummary {
    pub schema: String,
    pub points: usize,
    pub wall_seconds: f64,
    pub configs_per_sec: f64,
    pub workers: usize,
    pub steals: u64,
    pub prefix_runs: usize,
    pub cache: CacheStats,
    pub results: Vec<PointManifest>,
}

impl SweepSummary {
    pub fn new(outcome: &SweepOutcome) -> SweepSummary {
        SweepSummary {
            schema: SWEEP_SUMMARY_SCHEMA.to_string(),
            points: outcome.results.len(),
            wall_seconds: outcome.wall_seconds,
            configs_per_sec: outcome.configs_per_sec(),
            workers: outcome.sched.workers,
            steals: outcome.sched.steals,
            prefix_runs: outcome.prefix_runs,
            cache: outcome.cache.clone(),
            results: outcome
                .results
                .iter()
                .enumerate()
                .map(|(i, r)| PointManifest::new(i, r))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_text(points: usize) -> String {
        format!(
            r#"{{
  "schema": "sst-sweep-spec-v1",
  "base": {{ "side": 4, "tokens_per_node": 2, "ttl": 12, "until_ns": 1500 }},
  "grid": {{ "tokens_per_node": [{}] }}
}}"#,
            (1..=points)
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        )
    }

    #[test]
    fn spec_expands_grid_in_sorted_cartesian_order() {
        let text = r#"{
  "schema": "sst-sweep-spec-v1",
  "base": { "side": 4, "until_ns": 1000 },
  "grid": { "ttl": [10, 20], "seed": [1, 2, 3] },
  "points": [ { "side": 6 } ]
}"#;
        let spec = SweepSpec::parse(text).unwrap();
        assert_eq!(spec.points.len(), 7);
        // `seed` sorts before `ttl`, so ttl varies fastest.
        let head: Vec<(u64, u32)> = spec.points[..6].iter().map(|p| (p.seed, p.ttl)).collect();
        assert_eq!(
            head,
            vec![(1, 10), (1, 20), (2, 10), (2, 20), (3, 10), (3, 20)]
        );
        assert_eq!(spec.points[6].side, 6);
    }

    #[test]
    fn spec_rejects_bad_documents() {
        assert!(SweepSpec::parse("not json").is_err());
        assert!(SweepSpec::parse(r#"{"schema": "sst-sweep-spec-v9"}"#).is_err());
        assert!(SweepSpec::parse(
            r#"{"schema": "sst-sweep-spec-v1", "grid": {"bogus_param": [1]}}"#
        )
        .is_err());
        assert!(
            SweepSpec::parse(r#"{"schema": "sst-sweep-spec-v1", "base": {"until_ns": 0}}"#)
                .is_err()
        );
    }

    #[test]
    fn config_hash_is_stable_and_distinguishes_points() {
        let a = PointConfig::default();
        let mut b = PointConfig::default();
        assert_eq!(a.config_hash(), b.config_hash());
        b.ttl += 1;
        assert_ne!(a.config_hash(), b.config_hash());
    }

    #[test]
    fn fork_mode_matches_from_scratch() {
        let text = r#"{
  "schema": "sst-sweep-spec-v1",
  "base": { "side": 4, "tokens_per_node": 2, "ttl": 12, "until_ns": 4000,
            "inject_at_ns": 2000, "inject_ttl": 10 },
  "grid": { "inject_tokens": [1, 3], "until_ns": [3000, 4000] }
}"#;
        let spec = SweepSpec::parse(text).unwrap();
        let scratch = run_sweep(&spec, &SweepOptions::default());
        let forked = run_sweep(
            &spec,
            &SweepOptions {
                fork_at_ns: Some(1000),
                ..Default::default()
            },
        );
        assert!(forked
            .results
            .iter()
            .all(|r| r.source == ResultSource::Fork));
        for (a, b) in scratch.results.iter().zip(&forked.results) {
            assert_eq!(
                a.report.to_value().to_json_string(),
                b.report.to_value().to_json_string(),
                "fork diverged from scratch"
            );
        }
    }

    #[test]
    fn sweep_results_are_worker_independent() {
        let spec = SweepSpec::parse(&spec_text(6)).unwrap();
        let base = run_sweep(&spec, &SweepOptions::default());
        for workers in [2, 4] {
            let out = run_sweep(
                &spec,
                &SweepOptions {
                    workers,
                    ..Default::default()
                },
            );
            for (a, b) in base.results.iter().zip(&out.results) {
                assert_eq!(
                    a.report.to_value().to_json_string(),
                    b.report.to_value().to_json_string(),
                    "workers={workers} diverged"
                );
            }
        }
    }
}
