//! Result tables: the common output type of every experiment runner.
//!
//! A [`Table`] is what a paper figure's data underneath looks like: named
//! rows × named columns of numbers, plus free-form notes. Tables render as
//! aligned text (for the CLI) and serialize to JSON (for EXPERIMENTS.md
//! tooling and tests).

use serde::{Deserialize, Serialize};
use std::fmt;

/// One experiment's regenerated figure/table data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    pub title: String,
    pub columns: Vec<String>,
    pub rows: Vec<Row>,
    pub notes: Vec<String>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    pub label: String,
    pub values: Vec<f64>,
}

impl Table {
    pub fn new(title: impl Into<String>, columns: Vec<String>) -> Table {
        Table {
            title: title.into(),
            columns,
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn cols(title: impl Into<String>, columns: &[&str]) -> Table {
        Table::new(title, columns.iter().map(|s| s.to_string()).collect())
    }

    pub fn push(&mut self, label: impl Into<String>, values: Vec<f64>) {
        let label = label.into();
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row `{label}` width mismatch"
        );
        self.rows.push(Row { label, values });
    }

    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Value at (row label, column name); panics if absent (test helper).
    pub fn get(&self, row: &str, col: &str) -> f64 {
        let c = self
            .columns
            .iter()
            .position(|x| x == col)
            .unwrap_or_else(|| panic!("no column `{col}` in {:?}", self.columns));
        let r = self
            .rows
            .iter()
            .find(|r| r.label == row)
            .unwrap_or_else(|| panic!("no row `{row}`"));
        r.values[c]
    }

    /// A whole row by label.
    pub fn row(&self, label: &str) -> &[f64] {
        &self
            .rows
            .iter()
            .find(|r| r.label == label)
            .unwrap_or_else(|| panic!("no row `{label}`"))
            .values
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("table serializes")
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        let label_w = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .chain(std::iter::once(8))
            .max()
            .unwrap();
        let col_w = self
            .columns
            .iter()
            .map(|c| c.len().max(10))
            .collect::<Vec<_>>();
        write!(f, "{:<label_w$}", "")?;
        for (c, w) in self.columns.iter().zip(&col_w) {
            write!(f, "  {c:>w$}")?;
        }
        writeln!(f)?;
        for r in &self.rows {
            write!(f, "{:<label_w$}", r.label)?;
            for (v, w) in r.values.iter().zip(&col_w) {
                if v.abs() >= 1000.0 || (*v != 0.0 && v.abs() < 0.01) {
                    write!(f, "  {v:>w$.3e}")?;
                } else {
                    write!(f, "  {v:>w$.3}")?;
                }
            }
            writeln!(f)?;
        }
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut t = Table::cols("demo", &["a", "b"]);
        t.push("row1", vec![1.0, 2.0]);
        t.push("row2", vec![3.0, 4.5]);
        assert_eq!(t.get("row2", "b"), 4.5);
        assert_eq!(t.row("row1"), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut t = Table::cols("demo", &["a", "b"]);
        t.push("r", vec![1.0]);
    }

    #[test]
    fn renders_and_serializes() {
        let mut t = Table::cols("demo", &["x"]);
        t.push("r", vec![1234.5]);
        t.note("hello");
        let s = t.to_string();
        assert!(s.contains("demo") && s.contains("hello"));
        let j = t.to_json();
        let back: Table = serde_json::from_str(&j).unwrap();
        assert_eq!(back.get("r", "x"), 1234.5);
    }
}
