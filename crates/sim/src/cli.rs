//! Strict command-line parsing for the `sst` binary.
//!
//! Every flag is declared here; an unrecognized flag is a usage error (the
//! binary exits with code 2) rather than being silently ignored. Flags
//! accept both `--flag value` and `--flag=value` spellings.

use crate::experiments::topo::TOPOS;
use sst_core::telemetry::{parse_trace_kind, TelemetryOptions};
use sst_core::{Fidelity, PartitionStrategy, SimTime, SyncMode, TransportKind};
use std::path::PathBuf;

/// Telemetry-related flags shared by `experiment` and `run`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetryCliOpts {
    /// `--trace <path>`: JSONL trace output (a Chrome `trace_event` sibling
    /// is written next to it).
    pub trace: Option<PathBuf>,
    /// `--trace-comps <a,b,core*>`: component-name filter (exact names or
    /// trailing-`*` prefixes).
    pub trace_comps: Option<Vec<String>>,
    /// `--trace-kinds <deliver,sched,clock,mark>` bit mask; 0 = all.
    pub trace_kinds: u8,
    /// `--stats-interval <ms>`: periodic stats sampling period (fractional
    /// milliseconds of simulated time).
    pub stats_interval_ms: Option<f64>,
    /// `--profile`: engine self-profiling.
    pub profile: bool,
}

impl TelemetryCliOpts {
    /// Any telemetry requested at all?
    pub fn any(&self) -> bool {
        self.trace.is_some() || self.stats_interval_ms.is_some() || self.profile
    }

    /// Lower to the engine-level options.
    pub fn to_options(&self) -> TelemetryOptions {
        TelemetryOptions {
            trace_path: self.trace.clone(),
            trace_components: self.trace_comps.clone(),
            trace_kinds: self.trace_kinds,
            stats_interval: self
                .stats_interval_ms
                .map(|ms| SimTime(((ms * 1e9).round() as u64).max(1))),
            profile: self.profile,
        }
    }
}

/// Partitioning flags shared by `experiment` and `run`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PartitionCliOpts {
    /// `--partition <block|round-robin|latency-cut>`.
    pub strategy: Option<PartitionStrategy>,
    /// `--partition-profile <profile.json>`: a `<base>.profile.json` dump
    /// from an earlier `--profile` run; per-component event counts become
    /// partition weights.
    pub profile: Option<PathBuf>,
}

impl PartitionCliOpts {
    pub fn any(&self) -> bool {
        self.strategy.is_some() || self.profile.is_some()
    }
}

/// Checkpointing flags shared by `experiment`, `run`, and `restore`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheckpointCliOpts {
    /// `--checkpoint-every <ms>`: snapshot period in simulated milliseconds
    /// (fractional values allowed).
    pub every_ms: Option<f64>,
    /// `--checkpoint-dir <dir>`: where `<label>-t<ps>.snap.json` files land
    /// (default `checkpoints/`).
    pub dir: Option<PathBuf>,
}

impl CheckpointCliOpts {
    pub fn any(&self) -> bool {
        self.every_ms.is_some() || self.dir.is_some()
    }

    /// The cadence as engine time (ps), when checkpointing was requested.
    pub fn every(&self) -> Option<SimTime> {
        self.every_ms
            .map(|ms| SimTime(((ms * 1e9).round() as u64).max(1)))
    }
}

/// Live-metrics flags shared by `experiment` and `run`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsCliOpts {
    /// `--metrics-addr <host:port>`: serve Prometheus `/metrics` and JSON
    /// `/status` over HTTP while the run executes (port 0 picks a free
    /// port; the bound address is printed at startup).
    pub addr: Option<String>,
    /// `--watchdog-secs <s>`: flag a rank as stalled when its committed
    /// sim-time stops advancing for this many wallclock seconds
    /// (default 10).
    pub watchdog_secs: Option<f64>,
}

impl MetricsCliOpts {
    pub fn any(&self) -> bool {
        self.addr.is_some()
    }
}

/// A fully parsed invocation.
#[derive(Debug, PartialEq)]
pub enum Cmd {
    Experiment {
        id: String,
        quick: bool,
        json: bool,
        fidelity: Fidelity,
        ranks: Option<u32>,
        partition: PartitionCliOpts,
        /// `--transport shm|tcp`: cross-rank event backend.
        transport: Option<TransportKind>,
        /// `--sync fixed|adaptive`: epoch synchronization policy.
        sync: Option<SyncMode>,
        /// `--topo torus|dragonfly|fat-tree`: lazy-topology family (the
        /// `topo` experiment only).
        topo: Option<String>,
        /// `--topo-nodes N`: minimum component count for `--topo`.
        topo_nodes: Option<u32>,
        /// `--no-specialize`: disable build-time graph specialization
        /// (component fusion, chain flattening, queue auto-selection).
        no_specialize: bool,
        telemetry: TelemetryCliOpts,
        checkpoint: CheckpointCliOpts,
        metrics: MetricsCliOpts,
    },
    Run {
        config: String,
        until_ms: Option<u64>,
        ranks: u32,
        partition: PartitionCliOpts,
        transport: Option<TransportKind>,
        sync: Option<SyncMode>,
        /// `--no-specialize`: disable build-time graph specialization.
        no_specialize: bool,
        telemetry: TelemetryCliOpts,
        checkpoint: CheckpointCliOpts,
        metrics: MetricsCliOpts,
    },
    /// Resume a run from a `.snap.json` checkpoint written by `run` or
    /// `experiment pdes`.
    Restore {
        snapshot: PathBuf,
        until_ms: Option<u64>,
        /// Rank count for the resumed run; `None` = the origin's (or serial).
        ranks: Option<u32>,
        telemetry: TelemetryCliOpts,
        checkpoint: CheckpointCliOpts,
    },
    ListComponents,
    ListMiniapps,
    ListExperiments,
    ValidateTrace {
        trace: PathBuf,
        chrome: Option<PathBuf>,
    },
    /// Run a sweep spec (`sst-sweep-spec-v1`) over a work-stealing worker
    /// pool, with a content-addressed result cache and optional
    /// fork-at-checkpoint prefix sharing.
    Sweep {
        spec: PathBuf,
        /// `--workers N`: worker-pool size (default: available parallelism).
        workers: Option<usize>,
        /// `--cache-dir <dir>`: result/prefix cache location (default
        /// `sweep_cache/`).
        cache_dir: Option<PathBuf>,
        /// `--no-cache`: neither read nor write the cache.
        no_cache: bool,
        /// `--fork-at <ns>`: fork shared prefixes at this simulated
        /// nanosecond (overrides the spec's `fork_at_ns`).
        fork_at_ns: Option<u64>,
        /// `--out-dir <dir>`: per-point manifests + summary destination
        /// (default `sweep_out/`).
        out_dir: Option<PathBuf>,
        /// `--json`: print the summary JSON to stdout instead of the table.
        json: bool,
    },
    /// Post-hoc critical-path and bottleneck analysis over a trace JSONL
    /// (and, when present, its sibling profile dump).
    Analyze {
        trace: PathBuf,
        /// `--profile-dump <path>`: explicit `<base>.profile.json`; by
        /// default the sibling of the trace is used when it exists.
        profile_dump: Option<PathBuf>,
        /// `--report <path>`: also write the JSON report here.
        report: Option<PathBuf>,
        /// `--top <n>`: rows in the bottleneck/attribution tables.
        top: usize,
        /// `--json`: print the JSON report to stdout instead of text.
        json: bool,
    },
}

#[derive(Default)]
struct Parsed {
    quick: bool,
    json: bool,
    profile: bool,
    fidelity: Option<Fidelity>,
    trace: Option<PathBuf>,
    trace_comps: Option<Vec<String>>,
    trace_kinds: u8,
    stats_interval_ms: Option<f64>,
    until_ms: Option<u64>,
    ranks: Option<u32>,
    partition: Option<PartitionStrategy>,
    partition_profile: Option<PathBuf>,
    transport: Option<TransportKind>,
    sync: Option<SyncMode>,
    topo: Option<String>,
    topo_nodes: Option<u32>,
    no_specialize: bool,
    checkpoint_every_ms: Option<f64>,
    checkpoint_dir: Option<PathBuf>,
    metrics_addr: Option<String>,
    watchdog_secs: Option<f64>,
    profile_dump: Option<PathBuf>,
    report: Option<PathBuf>,
    top: Option<usize>,
    workers: Option<usize>,
    cache_dir: Option<PathBuf>,
    no_cache: bool,
    fork_at_ns: Option<u64>,
    out_dir: Option<PathBuf>,
    seen: Vec<&'static str>,
}

impl Parsed {
    fn reject_unless(&self, cmd: &str, allowed: &[&str]) -> Result<(), String> {
        for f in &self.seen {
            if !allowed.contains(f) {
                return Err(format!("`sst {cmd}` does not accept --{f}"));
            }
        }
        Ok(())
    }

    fn telemetry(&self) -> TelemetryCliOpts {
        TelemetryCliOpts {
            trace: self.trace.clone(),
            trace_comps: self.trace_comps.clone(),
            trace_kinds: self.trace_kinds,
            stats_interval_ms: self.stats_interval_ms,
            profile: self.profile,
        }
    }

    fn partition_opts(&self) -> PartitionCliOpts {
        PartitionCliOpts {
            strategy: self.partition,
            profile: self.partition_profile.clone(),
        }
    }

    /// A destination without a cadence is meaningless, so reject it rather
    /// than silently checkpointing never.
    fn checkpoint_opts(&self) -> Result<CheckpointCliOpts, String> {
        if self.checkpoint_dir.is_some() && self.checkpoint_every_ms.is_none() {
            return Err("--checkpoint-dir needs --checkpoint-every".into());
        }
        Ok(CheckpointCliOpts {
            every_ms: self.checkpoint_every_ms,
            dir: self.checkpoint_dir.clone(),
        })
    }

    /// A watchdog policy without an endpoint has nothing to report through,
    /// so reject it rather than silently watching nothing.
    fn metrics_opts(&self) -> Result<MetricsCliOpts, String> {
        if self.watchdog_secs.is_some() && self.metrics_addr.is_none() {
            return Err("--watchdog-secs needs --metrics-addr".into());
        }
        Ok(MetricsCliOpts {
            addr: self.metrics_addr.clone(),
            watchdog_secs: self.watchdog_secs,
        })
    }
}

const TELEMETRY_FLAGS: &[&str] = &[
    "trace",
    "trace-comps",
    "trace-kinds",
    "stats-interval",
    "profile",
];

const CHECKPOINT_FLAGS: &[&str] = &["checkpoint-every", "checkpoint-dir"];

const METRICS_FLAGS: &[&str] = &["metrics-addr", "watchdog-secs"];

/// Parse `args` (without the program name). Any error is a usage error —
/// the caller prints it plus the usage text and exits with code 2.
pub fn parse(args: &[String]) -> Result<Cmd, String> {
    let mut p = Parsed::default();
    let mut pos: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        let Some(rest) = a.strip_prefix("--") else {
            pos.push(a.clone());
            i += 1;
            continue;
        };
        let (name, inline) = match rest.split_once('=') {
            Some((n, v)) => (n, Some(v.to_string())),
            None => (rest, None),
        };
        let needs_value = matches!(
            name,
            "fidelity"
                | "trace"
                | "trace-comps"
                | "trace-kinds"
                | "stats-interval"
                | "until-ms"
                | "ranks"
                | "partition"
                | "partition-profile"
                | "transport"
                | "sync"
                | "topo"
                | "topo-nodes"
                | "checkpoint-every"
                | "checkpoint-dir"
                | "metrics-addr"
                | "watchdog-secs"
                | "profile-dump"
                | "report"
                | "top"
                | "workers"
                | "cache-dir"
                | "fork-at"
                | "out-dir"
        );
        let value: Option<String> = if needs_value {
            match inline {
                Some(v) => Some(v),
                None => {
                    i += 1;
                    Some(
                        args.get(i)
                            .cloned()
                            .ok_or_else(|| format!("--{name} needs a value"))?,
                    )
                }
            }
        } else {
            if inline.is_some() {
                return Err(format!("--{name} takes no value"));
            }
            None
        };
        match name {
            "quick" => {
                p.quick = true;
                p.seen.push("quick");
            }
            "json" => {
                p.json = true;
                p.seen.push("json");
            }
            "profile" => {
                p.profile = true;
                p.seen.push("profile");
            }
            "no-specialize" => {
                p.no_specialize = true;
                p.seen.push("no-specialize");
            }
            "fidelity" => {
                p.fidelity = Some(value.unwrap().parse().map_err(|e| format!("{e}"))?);
                p.seen.push("fidelity");
            }
            "trace" => {
                p.trace = Some(PathBuf::from(value.unwrap()));
                p.seen.push("trace");
            }
            "trace-comps" => {
                let comps: Vec<String> = value
                    .unwrap()
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                if comps.is_empty() {
                    return Err("--trace-comps needs at least one component pattern".into());
                }
                p.trace_comps = Some(comps);
                p.seen.push("trace-comps");
            }
            "trace-kinds" => {
                let mut mask = 0u8;
                for k in value.unwrap().split(',') {
                    mask |= parse_trace_kind(k.trim())?;
                }
                p.trace_kinds = mask;
                p.seen.push("trace-kinds");
            }
            "stats-interval" => {
                let ms: f64 = value
                    .unwrap()
                    .parse()
                    .map_err(|_| "--stats-interval needs a millisecond count".to_string())?;
                if !(ms > 0.0 && ms.is_finite()) {
                    return Err("--stats-interval must be a positive number of ms".into());
                }
                p.stats_interval_ms = Some(ms);
                p.seen.push("stats-interval");
            }
            "until-ms" => {
                p.until_ms = Some(
                    value
                        .unwrap()
                        .parse()
                        .map_err(|_| "--until-ms needs an integer".to_string())?,
                );
                p.seen.push("until-ms");
            }
            "ranks" => {
                let n: u32 = value
                    .unwrap()
                    .parse()
                    .map_err(|_| "--ranks needs an integer".to_string())?;
                if n == 0 {
                    return Err("--ranks must be >= 1".into());
                }
                p.ranks = Some(n);
                p.seen.push("ranks");
            }
            "partition" => {
                p.partition = Some(value.unwrap().parse::<PartitionStrategy>()?);
                p.seen.push("partition");
            }
            "partition-profile" => {
                p.partition_profile = Some(PathBuf::from(value.unwrap()));
                p.seen.push("partition-profile");
            }
            "transport" => {
                p.transport = Some(value.unwrap().parse::<TransportKind>()?);
                p.seen.push("transport");
            }
            "sync" => {
                p.sync = Some(value.unwrap().parse::<SyncMode>()?);
                p.seen.push("sync");
            }
            "topo" => {
                let v = value.unwrap();
                if !TOPOS.contains(&v.as_str()) {
                    return Err(format!(
                        "unknown topology `{v}` (expected {})",
                        TOPOS.join("|")
                    ));
                }
                p.topo = Some(v);
                p.seen.push("topo");
            }
            "topo-nodes" => {
                let n: u32 = value
                    .unwrap()
                    .parse()
                    .map_err(|_| "--topo-nodes needs an integer".to_string())?;
                if n == 0 {
                    return Err("--topo-nodes must be >= 1".into());
                }
                p.topo_nodes = Some(n);
                p.seen.push("topo-nodes");
            }
            "checkpoint-every" => {
                let ms: f64 = value
                    .unwrap()
                    .parse()
                    .map_err(|_| "--checkpoint-every needs a millisecond count".to_string())?;
                if !(ms > 0.0 && ms.is_finite()) {
                    return Err("--checkpoint-every must be a positive number of ms".into());
                }
                p.checkpoint_every_ms = Some(ms);
                p.seen.push("checkpoint-every");
            }
            "checkpoint-dir" => {
                p.checkpoint_dir = Some(PathBuf::from(value.unwrap()));
                p.seen.push("checkpoint-dir");
            }
            "metrics-addr" => {
                let v = value.unwrap();
                if !v.contains(':') {
                    return Err("--metrics-addr needs a host:port address".into());
                }
                p.metrics_addr = Some(v);
                p.seen.push("metrics-addr");
            }
            "watchdog-secs" => {
                let s: f64 = value
                    .unwrap()
                    .parse()
                    .map_err(|_| "--watchdog-secs needs a second count".to_string())?;
                if !(s > 0.0 && s.is_finite()) {
                    return Err("--watchdog-secs must be a positive number of seconds".into());
                }
                p.watchdog_secs = Some(s);
                p.seen.push("watchdog-secs");
            }
            "profile-dump" => {
                p.profile_dump = Some(PathBuf::from(value.unwrap()));
                p.seen.push("profile-dump");
            }
            "report" => {
                p.report = Some(PathBuf::from(value.unwrap()));
                p.seen.push("report");
            }
            "top" => {
                let n: usize = value
                    .unwrap()
                    .parse()
                    .map_err(|_| "--top needs an integer".to_string())?;
                if n == 0 {
                    return Err("--top must be >= 1".into());
                }
                p.top = Some(n);
                p.seen.push("top");
            }
            "workers" => {
                let n: usize = value
                    .unwrap()
                    .parse()
                    .map_err(|_| "--workers needs an integer".to_string())?;
                if n == 0 {
                    return Err("--workers must be >= 1".into());
                }
                p.workers = Some(n);
                p.seen.push("workers");
            }
            "cache-dir" => {
                p.cache_dir = Some(PathBuf::from(value.unwrap()));
                p.seen.push("cache-dir");
            }
            "no-cache" => {
                p.no_cache = true;
                p.seen.push("no-cache");
            }
            "fork-at" => {
                let ns: u64 = value
                    .unwrap()
                    .parse()
                    .map_err(|_| "--fork-at needs a nanosecond count".to_string())?;
                if ns == 0 {
                    return Err("--fork-at must be >= 1 ns".into());
                }
                p.fork_at_ns = Some(ns);
                p.seen.push("fork-at");
            }
            "out-dir" => {
                p.out_dir = Some(PathBuf::from(value.unwrap()));
                p.seen.push("out-dir");
            }
            other => return Err(format!("unknown flag `--{other}`")),
        }
        i += 1;
    }

    let exactly = |n: usize, what: &str| -> Result<(), String> {
        match pos.len().cmp(&(n + 1)) {
            std::cmp::Ordering::Less => Err(format!("missing {what}")),
            std::cmp::Ordering::Greater => Err(format!("unexpected argument `{}`", pos[n + 1])),
            std::cmp::Ordering::Equal => Ok(()),
        }
    };

    let Some(cmd) = pos.first().map(String::as_str) else {
        return Err("missing command".into());
    };
    match cmd {
        "experiment" => {
            exactly(1, "experiment id (or `all`)")?;
            let mut allowed = vec![
                "quick",
                "json",
                "fidelity",
                "ranks",
                "partition",
                "partition-profile",
                "transport",
                "sync",
                "topo",
                "topo-nodes",
                "no-specialize",
            ];
            allowed.extend_from_slice(TELEMETRY_FLAGS);
            allowed.extend_from_slice(CHECKPOINT_FLAGS);
            allowed.extend_from_slice(METRICS_FLAGS);
            p.reject_unless("experiment", &allowed)?;
            Ok(Cmd::Experiment {
                id: pos[1].clone(),
                quick: p.quick,
                json: p.json,
                fidelity: p.fidelity.unwrap_or_default(),
                ranks: p.ranks,
                partition: p.partition_opts(),
                transport: p.transport,
                sync: p.sync,
                topo: p.topo.clone(),
                topo_nodes: p.topo_nodes,
                no_specialize: p.no_specialize,
                telemetry: p.telemetry(),
                checkpoint: p.checkpoint_opts()?,
                metrics: p.metrics_opts()?,
            })
        }
        "run" => {
            exactly(1, "config path")?;
            let mut allowed = vec![
                "until-ms",
                "ranks",
                "partition",
                "partition-profile",
                "transport",
                "sync",
                "no-specialize",
            ];
            allowed.extend_from_slice(TELEMETRY_FLAGS);
            allowed.extend_from_slice(CHECKPOINT_FLAGS);
            allowed.extend_from_slice(METRICS_FLAGS);
            p.reject_unless("run", &allowed)?;
            Ok(Cmd::Run {
                config: pos[1].clone(),
                until_ms: p.until_ms,
                ranks: p.ranks.unwrap_or(1),
                partition: p.partition_opts(),
                transport: p.transport,
                sync: p.sync,
                no_specialize: p.no_specialize,
                telemetry: p.telemetry(),
                checkpoint: p.checkpoint_opts()?,
                metrics: p.metrics_opts()?,
            })
        }
        "restore" => {
            exactly(1, "snapshot path")?;
            let mut allowed = vec!["until-ms", "ranks"];
            allowed.extend_from_slice(TELEMETRY_FLAGS);
            allowed.extend_from_slice(CHECKPOINT_FLAGS);
            p.reject_unless("restore", &allowed)?;
            Ok(Cmd::Restore {
                snapshot: PathBuf::from(&pos[1]),
                until_ms: p.until_ms,
                ranks: p.ranks,
                telemetry: p.telemetry(),
                checkpoint: p.checkpoint_opts()?,
            })
        }
        "list-components" => {
            exactly(0, "")?;
            p.reject_unless("list-components", &[])?;
            Ok(Cmd::ListComponents)
        }
        "list-miniapps" => {
            exactly(0, "")?;
            p.reject_unless("list-miniapps", &[])?;
            Ok(Cmd::ListMiniapps)
        }
        "list-experiments" => {
            exactly(0, "")?;
            p.reject_unless("list-experiments", &[])?;
            Ok(Cmd::ListExperiments)
        }
        "validate-trace" => {
            if pos.len() < 2 {
                return Err("missing trace path".into());
            }
            if pos.len() > 3 {
                return Err(format!("unexpected argument `{}`", pos[3]));
            }
            p.reject_unless("validate-trace", &[])?;
            Ok(Cmd::ValidateTrace {
                trace: PathBuf::from(&pos[1]),
                chrome: pos.get(2).map(PathBuf::from),
            })
        }
        "sweep" => {
            exactly(1, "sweep spec path")?;
            if p.no_cache && p.cache_dir.is_some() {
                return Err("--no-cache conflicts with --cache-dir".into());
            }
            p.reject_unless(
                "sweep",
                &[
                    "workers",
                    "cache-dir",
                    "no-cache",
                    "fork-at",
                    "out-dir",
                    "json",
                ],
            )?;
            Ok(Cmd::Sweep {
                spec: PathBuf::from(&pos[1]),
                workers: p.workers,
                cache_dir: p.cache_dir.clone(),
                no_cache: p.no_cache,
                fork_at_ns: p.fork_at_ns,
                out_dir: p.out_dir.clone(),
                json: p.json,
            })
        }
        "analyze" => {
            exactly(1, "trace path")?;
            p.reject_unless("analyze", &["profile-dump", "report", "top", "json"])?;
            Ok(Cmd::Analyze {
                trace: PathBuf::from(&pos[1]),
                profile_dump: p.profile_dump.clone(),
                report: p.report.clone(),
                top: p.top.unwrap_or(10),
                json: p.json,
            })
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sst_core::telemetry::{TRACE_DELIVER, TRACE_MARK};

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn experiment_with_telemetry_flags() {
        let cmd = parse(&args(
            "experiment fig03 --quick --fidelity des --trace t.jsonl \
             --stats-interval 0.5 --profile --trace-comps core*,l1 \
             --trace-kinds deliver,mark",
        ))
        .unwrap();
        let Cmd::Experiment {
            id,
            quick,
            fidelity,
            telemetry,
            ..
        } = cmd
        else {
            panic!("wrong command")
        };
        assert_eq!(id, "fig03");
        assert!(quick);
        assert_eq!(fidelity, Fidelity::Des);
        assert_eq!(
            telemetry.trace.as_deref(),
            Some(std::path::Path::new("t.jsonl"))
        );
        assert_eq!(telemetry.stats_interval_ms, Some(0.5));
        assert!(telemetry.profile);
        assert_eq!(
            telemetry.trace_comps.as_deref(),
            Some(&["core*".to_string(), "l1".to_string()][..])
        );
        assert_eq!(telemetry.trace_kinds, TRACE_DELIVER | TRACE_MARK);
        // Fractional ms interval converts to picoseconds.
        let opts = telemetry.to_options();
        assert_eq!(opts.stats_interval, Some(SimTime(500_000_000)));
    }

    #[test]
    fn equals_spelling_works() {
        let cmd = parse(&args("experiment fig03 --fidelity=des --trace=x.jsonl")).unwrap();
        let Cmd::Experiment {
            fidelity,
            telemetry,
            ..
        } = cmd
        else {
            panic!()
        };
        assert_eq!(fidelity, Fidelity::Des);
        assert!(telemetry.trace.is_some());
    }

    #[test]
    fn unknown_flag_is_rejected() {
        let e = parse(&args("experiment fig03 --frobnicate")).unwrap_err();
        assert!(e.contains("unknown flag"), "{e}");
        let e = parse(&args("run cfg.json --quick")).unwrap_err();
        assert!(e.contains("does not accept"), "{e}");
    }

    #[test]
    fn missing_or_extra_positionals_are_rejected() {
        assert!(parse(&args("experiment")).is_err());
        assert!(parse(&args("experiment fig03 extra")).is_err());
        assert!(parse(&args("list-components extra")).is_err());
        assert!(parse(&[]).is_err());
    }

    #[test]
    fn value_flags_need_values() {
        assert!(parse(&args("experiment fig03 --trace")).is_err());
        assert!(parse(&args("experiment fig03 --stats-interval abc")).is_err());
        assert!(parse(&args("experiment fig03 --stats-interval -1")).is_err());
        assert!(parse(&args("experiment fig03 --profile=yes")).is_err());
        assert!(parse(&args("experiment fig03 --trace-kinds bogus")).is_err());
    }

    #[test]
    fn run_and_validate_parse() {
        let cmd = parse(&args("run cfg.json --until-ms 5 --ranks 4 --profile")).unwrap();
        assert_eq!(
            cmd,
            Cmd::Run {
                config: "cfg.json".into(),
                until_ms: Some(5),
                ranks: 4,
                partition: PartitionCliOpts::default(),
                transport: None,
                sync: None,
                no_specialize: false,
                telemetry: TelemetryCliOpts {
                    profile: true,
                    ..Default::default()
                },
                checkpoint: CheckpointCliOpts::default(),
                metrics: MetricsCliOpts::default(),
            }
        );
        let cmd = parse(&args("validate-trace t.jsonl t.chrome.json")).unwrap();
        assert_eq!(
            cmd,
            Cmd::ValidateTrace {
                trace: "t.jsonl".into(),
                chrome: Some("t.chrome.json".into()),
            }
        );
    }

    #[test]
    fn no_specialize_parses_on_run_and_experiment() {
        let cmd = parse(&args("experiment pdes --no-specialize")).unwrap();
        let Cmd::Experiment { no_specialize, .. } = cmd else {
            panic!("wrong command")
        };
        assert!(no_specialize);
        let cmd = parse(&args("run cfg.json --no-specialize")).unwrap();
        let Cmd::Run { no_specialize, .. } = cmd else {
            panic!("wrong command")
        };
        assert!(no_specialize);
        // Takes no value; restore does not accept it.
        assert!(parse(&args("experiment pdes --no-specialize=yes")).is_err());
        assert!(parse(&args("restore s.snap.json --no-specialize")).is_err());
    }

    #[test]
    fn partition_flags_parse() {
        let cmd = parse(&args(
            "experiment pdes --ranks 4 --partition latency-cut --partition-profile prof.json",
        ))
        .unwrap();
        let Cmd::Experiment {
            ranks, partition, ..
        } = cmd
        else {
            panic!("wrong command")
        };
        assert_eq!(ranks, Some(4));
        assert_eq!(partition.strategy, Some(PartitionStrategy::LatencyCut));
        assert_eq!(
            partition.profile.as_deref(),
            Some(std::path::Path::new("prof.json"))
        );
        assert!(partition.any());

        let cmd = parse(&args("run cfg.json --ranks 2 --partition=round-robin")).unwrap();
        let Cmd::Run { partition, .. } = cmd else {
            panic!("wrong command")
        };
        assert_eq!(partition.strategy, Some(PartitionStrategy::RoundRobin));

        let e = parse(&args("experiment pdes --partition frobnicate")).unwrap_err();
        assert!(e.contains("unknown partition strategy"), "{e}");
        let e = parse(&args("list-components --partition block")).unwrap_err();
        assert!(e.contains("does not accept"), "{e}");
    }

    #[test]
    fn transport_and_sync_flags_parse() {
        let cmd = parse(&args(
            "experiment pdes --quick --ranks 4 --transport tcp --sync fixed",
        ))
        .unwrap();
        let Cmd::Experiment {
            transport, sync, ..
        } = cmd
        else {
            panic!("wrong command")
        };
        assert_eq!(transport, Some(TransportKind::TcpLoopback));
        assert_eq!(sync, Some(SyncMode::FixedEpoch));

        let cmd = parse(&args(
            "run cfg.json --ranks 2 --transport=shm --sync=adaptive",
        ))
        .unwrap();
        let Cmd::Run {
            transport, sync, ..
        } = cmd
        else {
            panic!("wrong command")
        };
        assert_eq!(transport, Some(TransportKind::SharedMem));
        assert_eq!(sync, Some(SyncMode::Adaptive));

        let e = parse(&args("experiment pdes --transport carrier-pigeon")).unwrap_err();
        assert!(e.contains("unknown transport"), "{e}");
        let e = parse(&args("experiment pdes --sync optimistic")).unwrap_err();
        assert!(e.contains("unknown sync mode"), "{e}");
        let e = parse(&args("restore a.snap.json --transport tcp")).unwrap_err();
        assert!(e.contains("does not accept"), "{e}");
    }

    #[test]
    fn topo_flags_parse() {
        let cmd = parse(&args(
            "experiment topo --quick --topo dragonfly --topo-nodes 4096",
        ))
        .unwrap();
        let Cmd::Experiment {
            id,
            topo,
            topo_nodes,
            ..
        } = cmd
        else {
            panic!("wrong command")
        };
        assert_eq!(id, "topo");
        assert_eq!(topo.as_deref(), Some("dragonfly"));
        assert_eq!(topo_nodes, Some(4096));

        let e = parse(&args("experiment topo --topo hypercube")).unwrap_err();
        assert!(e.contains("unknown topology"), "{e}");
        let e = parse(&args("experiment topo --topo-nodes 0")).unwrap_err();
        assert!(e.contains(">= 1"), "{e}");
        let e = parse(&args("run cfg.json --topo torus")).unwrap_err();
        assert!(e.contains("does not accept"), "{e}");
    }

    #[test]
    fn checkpoint_flags_parse() {
        let cmd = parse(&args(
            "run cfg.json --checkpoint-every 0.25 --checkpoint-dir snaps",
        ))
        .unwrap();
        let Cmd::Run { checkpoint, .. } = cmd else {
            panic!("wrong command")
        };
        assert_eq!(checkpoint.every_ms, Some(0.25));
        assert_eq!(
            checkpoint.dir.as_deref(),
            Some(std::path::Path::new("snaps"))
        );
        assert!(checkpoint.any());
        // Fractional ms cadence converts to picoseconds.
        assert_eq!(checkpoint.every(), Some(SimTime(250_000_000)));

        let cmd = parse(&args("experiment pdes --quick --checkpoint-every=1")).unwrap();
        let Cmd::Experiment { checkpoint, .. } = cmd else {
            panic!("wrong command")
        };
        assert_eq!(checkpoint.every_ms, Some(1.0));
        assert_eq!(checkpoint.dir, None);

        let e = parse(&args("run cfg.json --checkpoint-every 0")).unwrap_err();
        assert!(e.contains("positive"), "{e}");
        let e = parse(&args("run cfg.json --checkpoint-dir snaps")).unwrap_err();
        assert!(e.contains("needs --checkpoint-every"), "{e}");
        let e = parse(&args("validate-trace t.jsonl --checkpoint-every 1")).unwrap_err();
        assert!(e.contains("does not accept"), "{e}");
    }

    #[test]
    fn metrics_flags_parse() {
        let cmd = parse(&args(
            "run cfg.json --ranks 4 --metrics-addr 127.0.0.1:9464 --watchdog-secs 2.5",
        ))
        .unwrap();
        let Cmd::Run { metrics, .. } = cmd else {
            panic!("wrong command")
        };
        assert_eq!(metrics.addr.as_deref(), Some("127.0.0.1:9464"));
        assert_eq!(metrics.watchdog_secs, Some(2.5));
        assert!(metrics.any());

        let cmd = parse(&args("experiment pdes --quick --metrics-addr=127.0.0.1:0")).unwrap();
        let Cmd::Experiment { metrics, .. } = cmd else {
            panic!("wrong command")
        };
        assert_eq!(metrics.addr.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(metrics.watchdog_secs, None);

        let e = parse(&args("run cfg.json --metrics-addr nocolon")).unwrap_err();
        assert!(e.contains("host:port"), "{e}");
        let e = parse(&args("run cfg.json --watchdog-secs 5")).unwrap_err();
        assert!(e.contains("needs --metrics-addr"), "{e}");
        let e = parse(&args(
            "run cfg.json --metrics-addr 127.0.0.1:0 --watchdog-secs 0",
        ))
        .unwrap_err();
        assert!(e.contains("positive"), "{e}");
        let e = parse(&args("validate-trace t.jsonl --metrics-addr 127.0.0.1:0")).unwrap_err();
        assert!(e.contains("does not accept"), "{e}");
    }

    #[test]
    fn analyze_parses() {
        let cmd = parse(&args(
            "analyze t.jsonl --profile-dump t.profile.json --report out.json --top 5 --json",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Cmd::Analyze {
                trace: "t.jsonl".into(),
                profile_dump: Some("t.profile.json".into()),
                report: Some("out.json".into()),
                top: 5,
                json: true,
            }
        );

        let cmd = parse(&args("analyze t.jsonl")).unwrap();
        let Cmd::Analyze { top, json, .. } = cmd else {
            panic!("wrong command")
        };
        assert_eq!(top, 10);
        assert!(!json);

        assert!(parse(&args("analyze")).is_err());
        assert!(parse(&args("analyze a.jsonl b.jsonl")).is_err());
        let e = parse(&args("analyze t.jsonl --top 0")).unwrap_err();
        assert!(e.contains(">= 1"), "{e}");
        let e = parse(&args("analyze t.jsonl --ranks 2")).unwrap_err();
        assert!(e.contains("does not accept"), "{e}");
    }

    #[test]
    fn sweep_parses() {
        let cmd = parse(&args(
            "sweep grid.json --workers 4 --cache-dir cache --fork-at 1000 --out-dir out --json",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Cmd::Sweep {
                spec: "grid.json".into(),
                workers: Some(4),
                cache_dir: Some("cache".into()),
                no_cache: false,
                fork_at_ns: Some(1000),
                out_dir: Some("out".into()),
                json: true,
            }
        );

        let cmd = parse(&args("sweep grid.json --no-cache")).unwrap();
        let Cmd::Sweep {
            no_cache,
            workers,
            fork_at_ns,
            ..
        } = cmd
        else {
            panic!("wrong command")
        };
        assert!(no_cache);
        assert_eq!(workers, None);
        assert_eq!(fork_at_ns, None);

        assert!(parse(&args("sweep")).is_err());
        assert!(parse(&args("sweep a.json b.json")).is_err());
        let e = parse(&args("sweep grid.json --workers 0")).unwrap_err();
        assert!(e.contains(">= 1"), "{e}");
        let e = parse(&args("sweep grid.json --fork-at 0")).unwrap_err();
        assert!(e.contains(">= 1"), "{e}");
        let e = parse(&args("sweep grid.json --no-cache --cache-dir c")).unwrap_err();
        assert!(e.contains("conflicts"), "{e}");
        let e = parse(&args("sweep grid.json --ranks 2")).unwrap_err();
        assert!(e.contains("does not accept"), "{e}");
        let e = parse(&args("run cfg.json --workers 2")).unwrap_err();
        assert!(e.contains("does not accept"), "{e}");
    }

    #[test]
    fn restore_parses() {
        let cmd = parse(&args(
            "restore snaps/run-t5000.snap.json --ranks 2 --until-ms 9 \
             --stats-interval 1 --checkpoint-every 2 --checkpoint-dir snaps2",
        ))
        .unwrap();
        let Cmd::Restore {
            snapshot,
            until_ms,
            ranks,
            telemetry,
            checkpoint,
        } = cmd
        else {
            panic!("wrong command")
        };
        assert_eq!(snapshot, PathBuf::from("snaps/run-t5000.snap.json"));
        assert_eq!(until_ms, Some(9));
        assert_eq!(ranks, Some(2));
        assert_eq!(telemetry.stats_interval_ms, Some(1.0));
        assert_eq!(checkpoint.every_ms, Some(2.0));

        assert!(parse(&args("restore")).is_err());
        assert!(parse(&args("restore a.snap.json extra")).is_err());
        let e = parse(&args("restore a.snap.json --partition block")).unwrap_err();
        assert!(e.contains("does not accept"), "{e}");
    }
}
