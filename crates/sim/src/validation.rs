//! The mini-app validation-metric framework (§2.2, Eqs. (1)–(5)).
//!
//! For a *performance domain* of diagnostics `{D}`, full-application
//! referents `{B}` (Eq. 2) are compared with mini-app measurements `{A}`
//! (Eq. 3) through a validation metric `X_i = B_i − A_i` (Eq. 4, here in
//! proportional form), and each dimension receives a
//! pass / caution / fail verdict against thresholds (Eq. 5). The paper is
//! explicit that threshold choice embeds judgment; the thresholds are
//! therefore data, not code.

use crate::table::Table;
use serde::{Deserialize, Serialize};

/// Eq. (5)'s three-way assessment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    Pass,
    Caution,
    Fail,
}

impl Verdict {
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Pass => "pass",
            Verdict::Caution => "caution",
            Verdict::Fail => "fail",
        }
    }
    fn score(self) -> f64 {
        match self {
            Verdict::Pass => 1.0,
            Verdict::Caution => 0.5,
            Verdict::Fail => 0.0,
        }
    }
}

/// Acceptance bands on the proportional metric |X|/|B|.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Thresholds {
    /// |X| below this is a pass.
    pub pass: f64,
    /// |X| below this (but above `pass`) is a caution; above is a fail.
    pub caution: f64,
}

impl Thresholds {
    pub fn new(pass: f64, caution: f64) -> Thresholds {
        assert!(pass >= 0.0 && caution >= pass);
        Thresholds { pass, caution }
    }
}

/// One performance-domain dimension D_i with its referent and measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Diagnostic {
    pub name: String,
    /// B_i — the full application's observation.
    pub referent: f64,
    /// A_i — the mini-app's measurement.
    pub measurement: f64,
    pub thresholds: Thresholds,
}

impl Diagnostic {
    pub fn new(
        name: impl Into<String>,
        referent: f64,
        measurement: f64,
        thresholds: Thresholds,
    ) -> Diagnostic {
        Diagnostic {
            name: name.into(),
            referent,
            measurement,
            thresholds,
        }
    }

    /// X_i in proportional form: |B − A| / max(|B|, |A|, eps).
    pub fn metric(&self) -> f64 {
        let denom = self.referent.abs().max(self.measurement.abs()).max(1e-12);
        (self.referent - self.measurement).abs() / denom
    }

    /// Eq. (5).
    pub fn verdict(&self) -> Verdict {
        let x = self.metric();
        if x <= self.thresholds.pass {
            Verdict::Pass
        } else if x <= self.thresholds.caution {
            Verdict::Caution
        } else {
            Verdict::Fail
        }
    }
}

/// A whole validation study: many diagnostics, one appraisal.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ValidationStudy {
    pub diagnostics: Vec<Diagnostic>,
}

impl ValidationStudy {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add(&mut self, d: Diagnostic) -> &mut Self {
        self.diagnostics.push(d);
        self
    }

    /// Fraction of diagnostics passing (caution counts half) — one way to
    /// combine the V_i into a single appraisal; the paper leaves this
    /// combination open, so it is reported alongside the raw verdicts.
    pub fn aggregate_score(&self) -> f64 {
        if self.diagnostics.is_empty() {
            return 0.0;
        }
        self.diagnostics
            .iter()
            .map(|d| d.verdict().score())
            .sum::<f64>()
            / self.diagnostics.len() as f64
    }

    pub fn to_table(&self, title: &str) -> Table {
        let mut t = Table::cols(title, &["B (app)", "A (miniapp)", "X (prop.)", "verdict"]);
        for d in &self.diagnostics {
            t.push(
                d.name.clone(),
                vec![d.referent, d.measurement, d.metric(), d.verdict().score()],
            );
        }
        t.note("verdict column: 1.0 = pass, 0.5 = caution, 0.0 = fail");
        t.note(format!("aggregate score: {:.2}", self.aggregate_score()));
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_bands() {
        let th = Thresholds::new(0.05, 0.20);
        assert_eq!(Diagnostic::new("a", 1.0, 0.97, th).verdict(), Verdict::Pass);
        assert_eq!(
            Diagnostic::new("b", 1.0, 0.85, th).verdict(),
            Verdict::Caution
        );
        assert_eq!(Diagnostic::new("c", 1.0, 0.5, th).verdict(), Verdict::Fail);
    }

    #[test]
    fn metric_is_symmetric_and_bounded() {
        let th = Thresholds::new(0.1, 0.2);
        let d1 = Diagnostic::new("x", 2.0, 1.0, th);
        let d2 = Diagnostic::new("y", 1.0, 2.0, th);
        assert!((d1.metric() - d2.metric()).abs() < 1e-12);
        assert!(d1.metric() <= 1.0);
    }

    #[test]
    fn zero_referent_does_not_divide_by_zero() {
        let d = Diagnostic::new("z", 0.0, 0.0, Thresholds::new(0.1, 0.2));
        assert_eq!(d.metric(), 0.0);
        assert_eq!(d.verdict(), Verdict::Pass);
    }

    #[test]
    fn aggregate_and_table() {
        let mut s = ValidationStudy::new();
        let th = Thresholds::new(0.05, 0.2);
        s.add(Diagnostic::new("good", 1.0, 1.0, th));
        s.add(Diagnostic::new("meh", 1.0, 0.9, th));
        s.add(Diagnostic::new("bad", 1.0, 0.1, th));
        assert!((s.aggregate_score() - 0.5).abs() < 1e-12);
        let t = s.to_table("demo");
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.get("good", "verdict"), 1.0);
        assert_eq!(t.get("bad", "verdict"), 0.0);
    }
}
