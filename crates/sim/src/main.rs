//! The `sst` command-line driver.

use serde::{Deserialize, Serialize, Value};
use sst_core::prelude::*;
use sst_core::telemetry::{
    chrome_trace_path, live, manifest_config_hash, CheckpointEntry, EngineProfile, ProfileDump,
    RunManifest, TelemetrySummary, MANIFEST_SCHEMA, PROFILE_SCHEMA, SERIES_SCHEMA,
};
use sst_sim::cli::{
    self, CheckpointCliOpts, Cmd, MetricsCliOpts, PartitionCliOpts, TelemetryCliOpts,
};
use sst_sim::experiments::{pdes, CheckpointPlan, EngineTuning};
use sst_sim::{analyze, experiments, full_registry, sweep, Table};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ExitCode {
    eprintln!(
        "usage:
  sst experiment <id>|all [--quick] [--json] [--fidelity analytic|des]
                 [--ranks N] [--partition block|round-robin|latency-cut]
                 [--partition-profile <run.profile.json>]
                 [--transport shm|tcp] [--sync fixed|adaptive]
                 [--topo torus|dragonfly|fat-tree] [--topo-nodes N]
                 [--no-specialize]
                 [--trace <path.jsonl>] [--trace-comps <a,core*>]
                 [--trace-kinds deliver,sched,clock,mark]
                 [--stats-interval <ms>] [--profile]
                 [--metrics-addr host:port] [--watchdog-secs S]
                                               regenerate a figure/table
                                               (--fidelity des re-routes the
                                               converted experiments through
                                               the discrete-event backend;
                                               the telemetry flags trace and
                                               profile its engine runs; the
                                               ranks/partition/transport/sync
                                               flags tune the pdes and topo
                                               scaling studies; --topo picks
                                               the lazy topology family)
  sst run <config.json> [--until-ms N] [--ranks N]
                 [--partition block|round-robin|latency-cut]
                 [--partition-profile <run.profile.json>]
                 [--transport shm|tcp] [--sync fixed|adaptive]
                 [--no-specialize]
                 [--trace <path.jsonl>] [--trace-comps ...]
                 [--trace-kinds ...] [--stats-interval <ms>] [--profile]
                 [--checkpoint-every <ms>] [--checkpoint-dir <dir>]
                 [--metrics-addr host:port] [--watchdog-secs S]
  sst restore <snapshot.snap.json> [--until-ms N] [--ranks N]
                 [--trace ...] [--stats-interval <ms>] [--profile]
                 [--checkpoint-every <ms>] [--checkpoint-dir <dir>]
                                               resume a checkpointed run; the
                                               resumed run is bit-identical
                                               to the uninterrupted one
  sst sweep <spec.json> [--workers N] [--cache-dir <dir>] [--no-cache]
                 [--fork-at <ns>] [--out-dir <dir>] [--json]
                                               run a sweep spec
                                               (sst-sweep-spec-v1: base +
                                               grid/points) over a
                                               work-stealing worker pool;
                                               results are served from the
                                               content-addressed cache when
                                               present, and --fork-at shares
                                               one simulated prefix across
                                               points that agree on it
  sst validate-trace <trace.jsonl> [<trace.chrome.json>]
                                               check telemetry output parses
                                               (including any sibling
                                               .stats.json/.profile.json;
                                               schema mismatches exit 2)
  sst analyze <trace.jsonl> [--profile-dump <run.profile.json>]
                 [--report <path.json>] [--top N] [--json]
                                               extract the critical path and
                                               bottleneck tables from a trace
  sst list-components
  sst list-miniapps
  sst list-experiments

Tracing writes JSONL records plus a Chrome trace_event sibling
(<path>.chrome.json — load it in chrome://tracing or https://ui.perfetto.dev),
and every telemetry-enabled run writes a <path>.manifest.json run manifest.
--profile also writes a <path>.profile.json dump; feed it back in with
--partition-profile to weight the partitioner by measured event counts.
--checkpoint-every writes sealed <label>-t<ps>.snap.json snapshots (default
dir `checkpoints/`) whose canonical state hashes land in the manifest;
`sst experiment pdes --checkpoint-every ...` checkpoints the scaling study
(all its engines must agree on every hash).
--no-specialize turns off build-time graph specialization (component
fusion, constant-latency chain flattening, queue auto-selection); results
are bit-identical either way — the flag exists for A/B timing and triage.
--metrics-addr serves live Prometheus metrics at /metrics and a JSON run
status at /status while the engines run (pdes/topo experiments and
`sst run`); --watchdog-secs tunes how long a rank's GVT may sit still
before a structured stall warning (default 10s)."
    );
    // Usage errors (unknown flags, bad values) exit with code 2.
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match cli::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n");
            return usage();
        }
    };
    match cmd {
        Cmd::Experiment {
            id,
            quick,
            json,
            fidelity,
            ranks,
            partition,
            transport,
            sync,
            topo,
            topo_nodes,
            no_specialize,
            telemetry,
            checkpoint,
            metrics,
        } => {
            if no_specialize {
                sst_core::specialize::set_default(false);
            }
            cmd_experiment(
                &args,
                &id,
                quick,
                json,
                fidelity,
                EngineTuning {
                    ranks,
                    partition: partition.strategy,
                    profile: None,
                    transport,
                    sync,
                    topo,
                    topo_nodes,
                    checkpoint: None,
                    live: None,
                },
                &partition,
                &telemetry,
                &checkpoint,
                &metrics,
            )
        }
        Cmd::Run {
            config,
            until_ms,
            ranks,
            partition,
            transport,
            sync,
            no_specialize,
            telemetry,
            checkpoint,
            metrics,
        } => {
            if no_specialize {
                sst_core::specialize::set_default(false);
            }
            cmd_run(
                &args,
                &config,
                until_ms,
                ranks,
                transport,
                sync,
                &partition,
                &telemetry,
                &checkpoint,
                &metrics,
            )
        }
        Cmd::Restore {
            snapshot,
            until_ms,
            ranks,
            telemetry,
            checkpoint,
        } => cmd_restore(&args, &snapshot, until_ms, ranks, &telemetry, &checkpoint),
        Cmd::Sweep {
            spec,
            workers,
            cache_dir,
            no_cache,
            fork_at_ns,
            out_dir,
            json,
        } => cmd_sweep(
            &spec,
            workers,
            cache_dir.as_deref(),
            no_cache,
            fork_at_ns,
            out_dir.as_deref(),
            json,
        ),
        Cmd::ValidateTrace { trace, chrome } => cmd_validate_trace(&trace, chrome.as_deref()),
        Cmd::Analyze {
            trace,
            profile_dump,
            report,
            top,
            json,
        } => match analyze::run(
            &trace,
            profile_dump.as_deref(),
            report.as_deref(),
            top,
            json,
        ) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        Cmd::ListComponents => {
            for (name, desc) in full_registry().list() {
                println!("{name:<20} {desc}");
            }
            ExitCode::SUCCESS
        }
        Cmd::ListMiniapps => {
            for m in sst_workloads::all_miniapps() {
                println!("{:<10} {:?}  {}", m.name, m.status, m.description);
            }
            ExitCode::SUCCESS
        }
        Cmd::ListExperiments => {
            for id in experiments::ALL {
                println!("{id}");
            }
            ExitCode::SUCCESS
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn cmd_experiment(
    args: &[String],
    id: &str,
    quick: bool,
    json: bool,
    fidelity: Fidelity,
    mut tuning: EngineTuning,
    partition: &PartitionCliOpts,
    tel: &TelemetryCliOpts,
    checkpoint: &CheckpointCliOpts,
    metrics: &MetricsCliOpts,
) -> ExitCode {
    if (partition.any() || checkpoint.any()) && id != "pdes" {
        eprintln!(
            "--partition/--partition-profile/--checkpoint-every only apply to \
             the `pdes` scaling study; got `{id}`"
        );
        return ExitCode::FAILURE;
    }
    if metrics.any() && id != "pdes" && id != "topo" {
        eprintln!(
            "--metrics-addr/--watchdog-secs only apply to the engine-backed \
             `pdes` and `topo` studies; got `{id}`"
        );
        return ExitCode::FAILURE;
    }
    let engine_flags =
        tuning.ranks.is_some() || tuning.transport.is_some() || tuning.sync.is_some();
    if engine_flags && id != "pdes" && id != "topo" {
        eprintln!(
            "--ranks/--transport/--sync only apply to the engine-backed \
             `pdes` and `topo` studies (the figure experiments run serial \
             engines); got `{id}`"
        );
        return ExitCode::FAILURE;
    }
    if (tuning.topo.is_some() || tuning.topo_nodes.is_some()) && id != "topo" {
        eprintln!("--topo/--topo-nodes only apply to the `topo` study; got `{id}`");
        return ExitCode::FAILURE;
    }
    let plan = match checkpoint_plan(checkpoint) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    tuning.checkpoint = plan.clone();
    tuning.profile = match &partition.profile {
        Some(path) => match load_partition_profile(path) {
            Ok(p) => Some(p),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let spec = match TelemetrySpec::new(tel.to_options()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot open telemetry output: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Lives until function exit: dropping the server stops its threads.
    let metrics_srv = match start_metrics(metrics, args, fidelity, quick) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    tuning.live = metrics_srv.as_ref().map(|(m, _)| m.clone());
    let ids: Vec<&str> = if id == "all" {
        if fidelity == Fidelity::Des {
            // `all` under DES runs only the converted experiments.
            experiments::SUPPORTS_DES.to_vec()
        } else {
            experiments::ALL.to_vec()
        }
    } else {
        vec![id]
    };
    for id in ids {
        eprintln!(
            "[sst] running {id} ({fidelity}{})...",
            if quick { ", quick" } else { "" }
        );
        match experiments::run_with_tuning(id, quick, fidelity, &spec, &tuning) {
            Some(tables) => {
                for t in tables {
                    if json {
                        println!("{}", t.to_json());
                    } else {
                        println!("{t}");
                    }
                }
            }
            None if experiments::ALL.contains(&id) => {
                eprintln!(
                    "experiment `{id}` does not support --fidelity {fidelity}; \
                     converted experiments: {}",
                    experiments::SUPPORTS_DES.join(", ")
                );
                return ExitCode::FAILURE;
            }
            None => {
                eprintln!("unknown experiment `{id}`; try `sst list-experiments`");
                return ExitCode::FAILURE;
            }
        }
    }
    let (checkpoints, final_hash) = plan_records(&plan);
    if let Some(h) = &final_hash {
        eprintln!(
            "[sst] final state hash {h} ({} checkpoint file(s))",
            checkpoints.len()
        );
    }
    finish_telemetry(
        &spec,
        tel,
        partition,
        args,
        fidelity,
        quick,
        checkpoints,
        final_hash,
        None,
    )
}

#[allow(clippy::too_many_arguments)]
fn cmd_run(
    args: &[String],
    config: &str,
    until_ms: Option<u64>,
    ranks: u32,
    transport: Option<TransportKind>,
    sync: Option<SyncMode>,
    partition: &PartitionCliOpts,
    tel: &TelemetryCliOpts,
    checkpoint: &CheckpointCliOpts,
    metrics: &MetricsCliOpts,
) -> ExitCode {
    if (transport.is_some() || sync.is_some()) && ranks <= 1 {
        eprintln!("--transport/--sync tune the parallel engine; pass --ranks > 1");
        return ExitCode::FAILURE;
    }
    let text = match std::fs::read_to_string(config) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {config}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = match SystemConfig::from_json(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bad config: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut builder = match cfg.build(&full_registry()) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot build system: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(s) = partition.strategy {
        builder.partition_strategy(s);
    }
    if let Some(path) = &partition.profile {
        match load_partition_profile(path) {
            Ok(p) => {
                let matched = builder.apply_profile_weights(&p);
                eprintln!(
                    "[sst] partition profile {}: weighted {matched} component(s)",
                    path.display()
                );
            }
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let spec = match TelemetrySpec::new(tel.to_options()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot open telemetry output: {e}");
            return ExitCode::FAILURE;
        }
    };
    let limit = match until_ms {
        Some(ms) => RunLimit::Until(SimTime::ms(ms)),
        None => RunLimit::Exhaust,
    };
    let metrics_srv = match start_metrics(metrics, args, Fidelity::Des, false) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let live = metrics_srv.as_ref().map(|(m, _)| m.clone());
    let plan = match checkpoint_plan(checkpoint) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    // The rebuild recipe travels inside every snapshot, so `sst restore`
    // needs no access to the original config file.
    let origin = ConfigOrigin {
        kind: CONFIG_ORIGIN_KIND.to_string(),
        config: cfg.to_value(),
        until_ms,
        ranks,
    }
    .to_value();
    let report = if ranks > 1 {
        let eng = ParallelEngine::with_config(
            builder,
            ParallelConfig {
                ranks,
                transport: transport.unwrap_or_default(),
                sync: sync.unwrap_or_default(),
                telemetry: spec.labeled("run"),
                live,
                ..ParallelConfig::default()
            },
        );
        match &plan {
            Some(pl) => eng.run_with_checkpoints(limit, Some(pl.every), Some(&origin), &mut |s| {
                pl.store("run", &s)
            }),
            None => eng.run(limit),
        }
    } else {
        // The auto queue starts on the heap backend and migrates to the
        // indexed ladder if the run's queue depth warrants it; the chosen
        // backend lands in the run manifest.
        let mut eng = AutoEngine::with_telemetry(builder, spec.labeled("run"));
        if let Some(m) = &live {
            eng.attach_live_metrics(m, "run");
        }
        match &plan {
            Some(pl) => eng.run_with_checkpoints(limit, Some(pl.every), Some(&origin), &mut |s| {
                pl.store("run", &s)
            }),
            None => eng.run(limit),
        }
    };
    println!(
        "simulated {} ({} events, {} clock ticks, {} ranks, {:.1}k events/s)",
        report.end_time,
        report.events,
        report.clock_ticks,
        report.ranks,
        report.events_per_sec() / 1e3
    );
    println!("{}", report.stats);
    if let (Some(pl), Some(h)) = (&plan, &report.final_state_hash) {
        pl.note_final("run", h);
    }
    if let Some(h) = &report.final_state_hash {
        println!("final state hash {h}");
    }
    let (checkpoints, final_hash) = plan_records(&plan);
    finish_telemetry(
        &spec,
        tel,
        partition,
        args,
        Fidelity::Des,
        false,
        checkpoints,
        final_hash,
        report.queue_backend,
    )
}

/// Stand up the live metrics registry plus its HTTP endpoint when
/// `--metrics-addr` was given. The returned server owns the endpoint's
/// threads; keep it alive for the duration of the run. The manifest hash
/// published on `/status` is computed exactly as [`finish_telemetry`]
/// computes `config_hash`, so a scraper can correlate the live run with the
/// manifest written at exit.
fn start_metrics(
    metrics: &MetricsCliOpts,
    args: &[String],
    fidelity: Fidelity,
    quick: bool,
) -> Result<Option<(Arc<LiveMetrics>, MetricsServer)>, String> {
    let Some(addr) = &metrics.addr else {
        return Ok(None);
    };
    let m = Arc::new(LiveMetrics::new());
    m.set_manifest_hash(&manifest_config_hash(&args.join(" "), fidelity, quick));
    let watchdog = match metrics.watchdog_secs {
        Some(s) => WatchdogCfg {
            stall_after: std::time::Duration::from_secs_f64(s),
        },
        None => WatchdogCfg::default(),
    };
    let srv = live::serve(m.clone(), addr, watchdog)
        .map_err(|e| format!("cannot serve metrics on {addr}: {e}"))?;
    eprintln!(
        "[sst] live metrics: http://{}/metrics (run status: /status)",
        srv.addr
    );
    Ok(Some((m, srv)))
}

/// `origin.kind` tag of `sst run` snapshots.
const CONFIG_ORIGIN_KIND: &str = "config";

/// Rebuild recipe stamped into `sst run` snapshots: the parsed config
/// document itself plus the run shape.
#[derive(Serialize, Deserialize)]
struct ConfigOrigin {
    kind: String,
    config: Value,
    #[serde(default)]
    until_ms: Option<u64>,
    ranks: u32,
}

/// Lower the checkpoint flags into a [`CheckpointPlan`], creating the
/// snapshot directory.
fn checkpoint_plan(c: &CheckpointCliOpts) -> Result<Option<CheckpointPlan>, String> {
    let Some(every) = c.every() else {
        return Ok(None);
    };
    let dir = c
        .dir
        .clone()
        .unwrap_or_else(|| PathBuf::from("checkpoints"));
    std::fs::create_dir_all(&dir)
        .map_err(|e| format!("cannot create checkpoint dir {}: {e}", dir.display()))?;
    Ok(Some(CheckpointPlan::new(every, dir)))
}

/// Manifest rows + agreed final hash out of an optional plan.
fn plan_records(plan: &Option<CheckpointPlan>) -> (Vec<CheckpointEntry>, Option<String>) {
    plan.as_ref().map(|p| p.take_records()).unwrap_or_default()
}

/// Resume a run from a snapshot written by `cmd_run` or the pdes study,
/// dispatching on the snapshot's embedded origin recipe.
fn cmd_restore(
    args: &[String],
    snapshot: &Path,
    until_ms: Option<u64>,
    ranks: Option<u32>,
    tel: &TelemetryCliOpts,
    checkpoint: &CheckpointCliOpts,
) -> ExitCode {
    let text = match std::fs::read_to_string(snapshot) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", snapshot.display());
            return ExitCode::FAILURE;
        }
    };
    let snap = match Snapshot::from_json(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{}: not a snapshot: {e}", snapshot.display());
            return ExitCode::FAILURE;
        }
    };
    let Some(origin) = snap.origin.clone() else {
        eprintln!(
            "{}: snapshot carries no origin recipe — it was captured \
             programmatically; rebuild the system and use the engine restore \
             API instead",
            snapshot.display()
        );
        return ExitCode::FAILURE;
    };
    let kind = origin.get("kind").and_then(Value::as_str).unwrap_or("");
    let (builder, limit, run_ranks) = match kind {
        CONFIG_ORIGIN_KIND => {
            let o = match ConfigOrigin::from_value(&origin) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("{}: malformed config origin: {e}", snapshot.display());
                    return ExitCode::FAILURE;
                }
            };
            let cfg = match SystemConfig::from_value(&o.config) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("{}: malformed embedded config: {e}", snapshot.display());
                    return ExitCode::FAILURE;
                }
            };
            let builder = match cfg.build(&full_registry()) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("cannot rebuild system: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let limit = match until_ms.or(o.until_ms) {
                Some(ms) => RunLimit::Until(SimTime::ms(ms)),
                None => RunLimit::Exhaust,
            };
            (builder, limit, ranks.unwrap_or(o.ranks))
        }
        pdes::ORIGIN_KIND => {
            let o = match pdes::PdesOrigin::from_value(&origin) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("{}: malformed pdes origin: {e}", snapshot.display());
                    return ExitCode::FAILURE;
                }
            };
            let p = pdes::params_from_origin(&o);
            let limit = match until_ms {
                Some(ms) => RunLimit::Until(SimTime::ms(ms)),
                None => RunLimit::Exhaust,
            };
            (pdes::build(&p), limit, ranks.unwrap_or(1))
        }
        other => {
            eprintln!("{}: unknown origin kind `{other}`", snapshot.display());
            return ExitCode::FAILURE;
        }
    };
    let spec = match TelemetrySpec::new(tel.to_options()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot open telemetry output: {e}");
            return ExitCode::FAILURE;
        }
    };
    let plan = match checkpoint_plan(checkpoint) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    // Always run the hash-carrying variant: a restored run exists to be
    // compared against its uninterrupted twin.
    let every = plan.as_ref().map(|p| p.every);
    let mut sink = |s: Snapshot| {
        if let Some(pl) = &plan {
            pl.store("restore", &s);
        }
    };
    let report = if run_ranks > 1 {
        ParallelEngine::with_telemetry(builder, run_ranks, spec.labeled("restore"))
            .restore(&snap)
            .run_with_checkpoints(limit, every, Some(&origin), &mut sink)
    } else {
        Engine::restore(builder, spec.labeled("restore"), &snap).run_with_checkpoints(
            limit,
            every,
            Some(&origin),
            &mut sink,
        )
    };
    println!(
        "resumed {} at {} (state hash {})",
        snapshot.display(),
        SimTime::ps(snap.time_ps),
        snap.state_hash
    );
    println!(
        "simulated {} ({} events, {} clock ticks, {} ranks, {:.1}k events/s)",
        report.end_time,
        report.events,
        report.clock_ticks,
        report.ranks,
        report.events_per_sec() / 1e3
    );
    println!("{}", report.stats);
    if let (Some(pl), Some(h)) = (&plan, &report.final_state_hash) {
        pl.note_final("restore", h);
    }
    if let Some(h) = &report.final_state_hash {
        println!("final state hash {h}");
    }
    let (checkpoints, plan_hash) = plan_records(&plan);
    let final_hash = plan_hash.or_else(|| report.final_state_hash.clone());
    finish_telemetry(
        &spec,
        tel,
        &PartitionCliOpts::default(),
        args,
        Fidelity::Des,
        false,
        checkpoints,
        final_hash,
        report.queue_backend,
    )
}

/// `sst sweep <spec>`: expand the spec, run every point over the
/// work-stealing pool (cache hits served from disk, shared prefixes forked
/// when `--fork-at`/`fork_at_ns` is set), write per-point manifests plus a
/// sweep summary, and print the result table.
fn cmd_sweep(
    spec_path: &Path,
    workers: Option<usize>,
    cache_dir: Option<&Path>,
    no_cache: bool,
    fork_at_ns: Option<u64>,
    out_dir: Option<&Path>,
    json: bool,
) -> ExitCode {
    let text = match std::fs::read_to_string(spec_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", spec_path.display());
            return ExitCode::FAILURE;
        }
    };
    let spec = match sweep::SweepSpec::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{}: {e}", spec_path.display());
            return ExitCode::from(2);
        }
    };
    let workers = workers.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    let cache = if no_cache {
        ResultCache::disabled()
    } else {
        let dir = cache_dir.unwrap_or(Path::new("sweep_cache"));
        match ResultCache::at(dir) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("cannot open cache dir {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    };
    let outcome = sweep::run_sweep(
        &spec,
        &sweep::SweepOptions {
            workers,
            cache,
            fork_at_ns,
        },
    );
    let summary = sweep::SweepSummary::new(&outcome);
    let out = out_dir.unwrap_or(Path::new("sweep_out"));
    if let Err(e) = std::fs::create_dir_all(out) {
        eprintln!("cannot create {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    for pm in &summary.results {
        let path = out.join(format!("point-{:03}-{}.json", pm.index, pm.config_hash));
        if let Err(e) = std::fs::write(&path, pm.to_value().to_json_string_pretty()) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    let summary_path = out.join("sweep_summary.json");
    if let Err(e) = std::fs::write(&summary_path, summary.to_value().to_json_string_pretty()) {
        eprintln!("cannot write {}: {e}", summary_path.display());
        return ExitCode::FAILURE;
    }
    if json {
        println!("{}", summary.to_value().to_json_string_pretty());
    } else {
        let mut t = Table::cols(
            "sweep results (source: 0=cold 1=cache 2=fork)",
            &["events", "end_us", "wall_ms", "source"],
        );
        for (i, r) in outcome.results.iter().enumerate() {
            t.push(
                format!("point-{i} {}", r.config_hash),
                vec![
                    r.report.events as f64,
                    r.report.end_time.as_ps() as f64 / 1e6,
                    r.wall_seconds * 1e3,
                    match r.source {
                        sweep::ResultSource::Cold => 0.0,
                        sweep::ResultSource::Cache => 1.0,
                        sweep::ResultSource::Fork => 2.0,
                    },
                ],
            );
        }
        t.note(format!(
            "{} points in {:.1} ms ({:.1} configs/s) on {} workers ({} steals)",
            summary.points,
            summary.wall_seconds * 1e3,
            summary.configs_per_sec,
            summary.workers,
            summary.steals,
        ));
        t.note(format!(
            "cache: {} hits, {} misses, {} stores; {} prefix run(s) shared",
            summary.cache.hits, summary.cache.misses, summary.cache.stores, summary.prefix_runs,
        ));
        print!("{t}");
    }
    eprintln!(
        "[sst] sweep: {} point manifest(s) + summary in {}",
        summary.points,
        out.display()
    );
    ExitCode::SUCCESS
}

/// Read a `<base>.profile.json` dump written by an earlier `--profile` run
/// and merge its engine profiles into one weight source.
fn load_partition_profile(path: &Path) -> Result<EngineProfile, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read partition profile {}: {e}", path.display()))?;
    let dump: ProfileDump = serde_json::from_str(&text)
        .map_err(|e| format!("{}: not a profile dump: {e}", path.display()))?;
    if dump.schema != PROFILE_SCHEMA {
        return Err(format!(
            "{}: schema `{}` is not `{PROFILE_SCHEMA}` — pass the .profile.json \
             written by a --profile run",
            path.display(),
            dump.schema
        ));
    }
    Ok(dump.merged())
}

/// Flush telemetry output, print collected profiles, and write the stats
/// series plus the run manifest next to the trace (or under `sst_run.*`
/// when no trace path was given).
#[allow(clippy::too_many_arguments)]
fn finish_telemetry(
    spec: &TelemetrySpec,
    tel: &TelemetryCliOpts,
    partition: &PartitionCliOpts,
    args: &[String],
    fidelity: Fidelity,
    quick: bool,
    checkpoints: Vec<CheckpointEntry>,
    final_state_hash: Option<String>,
    queue_backend: Option<String>,
) -> ExitCode {
    let summary = match spec.finish() {
        Ok(Some(s)) => s,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("telemetry flush failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for (label, profile) in &summary.profiles {
        eprintln!("[sst] profile {label}:");
        eprintln!("{profile}");
    }
    let base: PathBuf = tel
        .trace
        .clone()
        .unwrap_or_else(|| PathBuf::from("sst_run"));
    let stats_path = (!summary.series.is_empty()).then(|| with_ext(&base, "stats.json"));
    if let Some(p) = &stats_path {
        if let Err(e) = std::fs::write(p, series_json(&summary)) {
            eprintln!("cannot write {}: {e}", p.display());
            return ExitCode::FAILURE;
        }
    }
    let profile_path = (!summary.profiles.is_empty()).then(|| with_ext(&base, "profile.json"));
    if let Some(p) = &profile_path {
        let dump = ProfileDump::new(&summary.profiles);
        let json = serde_json::to_string_pretty(&dump).expect("profile dump serializes");
        if let Err(e) = std::fs::write(p, json) {
            eprintln!("cannot write {}: {e}", p.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "[sst] profile dump {} — feed it back with --partition-profile",
            p.display()
        );
    }
    let command = args.join(" ");
    // Per-rank adaptive-sync counters as greppable one-liners: the full
    // numbers live in the profile dump, but `grep sync: *.manifest.json`
    // answers "did adaptive sync do anything" without parsing it.
    let mut notes = Vec::new();
    for (label, profile) in &summary.profiles {
        for r in &profile.ranks {
            notes.push(format!(
                "sync: {label} rank {}: barriers_skipped={} epochs_widened={} stall_rounds={}",
                r.rank, r.barriers_skipped, r.epochs_widened, r.stall_rounds
            ));
        }
    }
    let config_hash = manifest_config_hash(&command, fidelity, quick);
    let manifest = RunManifest {
        schema: MANIFEST_SCHEMA.to_string(),
        command,
        config_hash,
        fidelity: fidelity.to_string(),
        quick,
        seeds: summary.seeds.clone(),
        wall_seconds: summary.wall_seconds,
        engine_runs: summary.runs,
        events: summary.events,
        clock_ticks: summary.clock_ticks,
        trace_records: summary.trace_records,
        trace_path: tel.trace.as_ref().map(|p| p.display().to_string()),
        chrome_trace_path: tel
            .trace
            .as_ref()
            .map(|p| chrome_trace_path(p).display().to_string()),
        stats_series_path: stats_path.as_ref().map(|p| p.display().to_string()),
        partition: partition.strategy.map(|s| s.to_string()),
        partition_profile: partition.profile.as_ref().map(|p| p.display().to_string()),
        profile_path: profile_path.as_ref().map(|p| p.display().to_string()),
        checkpoints,
        final_state_hash,
        specialize: Some(sst_core::specialize::default_enabled()),
        queue_backend,
        notes,
    };
    let manifest_path = with_ext(&base, "manifest.json");
    let json = manifest.to_value().to_json_string_pretty();
    if let Err(e) = std::fs::write(&manifest_path, json) {
        eprintln!("cannot write {}: {e}", manifest_path.display());
        return ExitCode::FAILURE;
    }
    eprintln!(
        "[sst] telemetry: {} engine run(s), {} events, {} trace record(s); manifest {}",
        summary.runs,
        summary.events,
        summary.trace_records,
        manifest_path.display()
    );
    ExitCode::SUCCESS
}

/// `foo.trace.jsonl` + `"stats.json"` -> `foo.trace.stats.json`.
fn with_ext(base: &Path, ext: &str) -> PathBuf {
    let mut p = base.to_path_buf();
    p.set_extension(ext);
    p
}

/// The sampled stats series of all runs as one JSON document:
/// `{"series": [{"label": ..., "interval_ps": ..., "points": [...]}]}`.
fn series_json(summary: &TelemetrySummary) -> String {
    let mut arr = Vec::new();
    for (label, series) in &summary.series {
        let mut v = series.to_value();
        if let Value::Object(m) = &mut v {
            m.insert("label".to_string(), Value::String(label.clone()));
        }
        arr.push(v);
    }
    let mut top = serde::Map::new();
    top.insert(
        "schema".to_string(),
        Value::String(SERIES_SCHEMA.to_string()),
    );
    top.insert("series".to_string(), Value::Array(arr));
    Value::Object(top).to_json_string_pretty()
}

/// Check a JSONL trace (and its Chrome sibling, given or derived) parses.
fn cmd_validate_trace(trace: &Path, chrome: Option<&Path>) -> ExitCode {
    let text = match std::fs::read_to_string(trace) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", trace.display());
            return ExitCode::FAILURE;
        }
    };
    let mut records = 0u64;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v: Value = match serde_json::from_str(line) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("{}:{}: invalid JSON: {e}", trace.display(), i + 1);
                return ExitCode::FAILURE;
            }
        };
        let well_formed = v.get("t").and_then(Value::as_u64).is_some()
            && v.get("k").and_then(Value::as_str).is_some();
        if !well_formed {
            eprintln!(
                "{}:{}: record lacks `t` (sim-time ps) or `k` (kind)",
                trace.display(),
                i + 1
            );
            return ExitCode::FAILURE;
        }
        records += 1;
    }
    println!("{}: {records} trace record(s) OK", trace.display());

    let derived = chrome_trace_path(trace);
    let chrome = chrome.or_else(|| derived.exists().then_some(derived.as_path()));
    if let Some(cp) = chrome {
        let text = match std::fs::read_to_string(cp) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {}: {e}", cp.display());
                return ExitCode::FAILURE;
            }
        };
        let v: Value = match serde_json::from_str(&text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("{}: invalid JSON: {e}", cp.display());
                return ExitCode::FAILURE;
            }
        };
        let Some(events) = v.get("traceEvents").and_then(Value::as_array) else {
            eprintln!("{}: no `traceEvents` array", cp.display());
            return ExitCode::FAILURE;
        };
        println!("{}: {} chrome event(s) OK", cp.display(), events.len());
    }

    // Telemetry runs write a stats series and a profile dump next to the
    // trace; when present they are part of the run's output contract, so
    // validate their schema tags too. A version mismatch exits 2 (usage
    // class: the reader and the writer disagree on the format).
    let stats = with_ext(trace, "stats.json");
    if stats.exists() {
        let text = match std::fs::read_to_string(&stats) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {}: {e}", stats.display());
                return ExitCode::FAILURE;
            }
        };
        let v: Value = match serde_json::from_str(&text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("{}: invalid JSON: {e}", stats.display());
                return ExitCode::FAILURE;
            }
        };
        let schema = v.get("schema").and_then(Value::as_str).unwrap_or("");
        if schema != SERIES_SCHEMA {
            eprintln!(
                "{}: schema `{schema}` is not `{SERIES_SCHEMA}`",
                stats.display()
            );
            return ExitCode::from(2);
        }
        let n = v
            .get("series")
            .and_then(Value::as_array)
            .map(Vec::len)
            .unwrap_or(0);
        println!("{}: {n} stats series OK", stats.display());
    }
    let profile = with_ext(trace, "profile.json");
    if profile.exists() {
        let text = match std::fs::read_to_string(&profile) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {}: {e}", profile.display());
                return ExitCode::FAILURE;
            }
        };
        let dump: ProfileDump = match serde_json::from_str(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("{}: not a profile dump: {e}", profile.display());
                return ExitCode::FAILURE;
            }
        };
        if dump.schema != PROFILE_SCHEMA {
            eprintln!(
                "{}: schema `{}` is not `{PROFILE_SCHEMA}`",
                profile.display(),
                dump.schema
            );
            return ExitCode::from(2);
        }
        println!(
            "{}: {} engine profile(s) OK",
            profile.display(),
            dump.profiles.len()
        );
    }
    ExitCode::SUCCESS
}
