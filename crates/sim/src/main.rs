//! The `sst` command-line driver.

use sst_core::prelude::*;
use sst_sim::{experiments, full_registry};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:
  sst experiment <id>|all [--quick] [--json] [--fidelity analytic|des]
                                               regenerate a figure/table
                                               (--fidelity des re-routes the
                                               converted experiments through
                                               the discrete-event backend)
  sst run <config.json> [--until-ms N] [--ranks N]
  sst list-components
  sst list-miniapps
  sst list-experiments"
    );
    ExitCode::FAILURE
}

/// Extract `--fidelity <v>` / `--fidelity=<v>` from `args`, removing the
/// consumed value so it is not mistaken for a positional argument.
fn take_fidelity(args: &mut Vec<String>) -> Result<Fidelity, String> {
    let mut fidelity = Fidelity::default();
    let mut i = 0;
    while i < args.len() {
        if let Some(v) = args[i].strip_prefix("--fidelity=") {
            fidelity = v.parse().map_err(|e| format!("{e}"))?;
            args.remove(i);
        } else if args[i] == "--fidelity" {
            let Some(v) = args.get(i + 1) else {
                return Err("--fidelity needs a value (analytic|des)".into());
            };
            fidelity = v.parse().map_err(|e| format!("{e}"))?;
            args.drain(i..i + 2);
        } else {
            i += 1;
        }
    }
    Ok(fidelity)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let fidelity = match take_fidelity(&mut args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    };
    let flags: Vec<&str> = args
        .iter()
        .map(|s| s.as_str())
        .filter(|s| s.starts_with("--"))
        .collect();
    let pos: Vec<&str> = args
        .iter()
        .map(|s| s.as_str())
        .filter(|s| !s.starts_with("--"))
        .collect();
    let quick = flags.contains(&"--quick");
    let json = flags.contains(&"--json");

    match pos.first().copied() {
        Some("experiment") => {
            let Some(&id) = pos.get(1) else {
                return usage();
            };
            let ids: Vec<&str> = if id == "all" {
                if fidelity == Fidelity::Des {
                    // `all` under DES runs only the converted experiments.
                    experiments::SUPPORTS_DES.to_vec()
                } else {
                    experiments::ALL.to_vec()
                }
            } else {
                vec![id]
            };
            for id in ids {
                eprintln!(
                    "[sst] running {id} ({fidelity}{})...",
                    if quick { ", quick" } else { "" }
                );
                match experiments::run_by_name(id, quick, fidelity) {
                    Some(tables) => {
                        for t in tables {
                            if json {
                                println!("{}", t.to_json());
                            } else {
                                println!("{t}");
                            }
                        }
                    }
                    None if experiments::ALL.contains(&id) => {
                        eprintln!(
                            "experiment `{id}` does not support --fidelity {fidelity}; \
                             converted experiments: {}",
                            experiments::SUPPORTS_DES.join(", ")
                        );
                        return ExitCode::FAILURE;
                    }
                    None => {
                        eprintln!("unknown experiment `{id}`; try `sst list-experiments`");
                        return ExitCode::FAILURE;
                    }
                }
            }
            ExitCode::SUCCESS
        }
        Some("run") => {
            let Some(&path) = pos.get(1) else {
                return usage();
            };
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let cfg = match SystemConfig::from_json(&text) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("bad config: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let builder = match cfg.build(&full_registry()) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("cannot build system: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let until = args
                .iter()
                .position(|a| a == "--until-ms")
                .and_then(|i| args.get(i + 1))
                .and_then(|v| v.parse::<u64>().ok());
            let limit = match until {
                Some(ms) => RunLimit::Until(SimTime::ms(ms)),
                None => RunLimit::Exhaust,
            };
            let ranks = args
                .iter()
                .position(|a| a == "--ranks")
                .and_then(|i| args.get(i + 1))
                .and_then(|v| v.parse::<u32>().ok())
                .unwrap_or(1);
            let report = if ranks > 1 {
                ParallelEngine::new(builder, ranks).run(limit)
            } else {
                Engine::new(builder).run(limit)
            };
            println!(
                "simulated {} ({} events, {} clock ticks, {} ranks, {:.1}k events/s)",
                report.end_time,
                report.events,
                report.clock_ticks,
                report.ranks,
                report.events_per_sec() / 1e3
            );
            println!("{}", report.stats);
            ExitCode::SUCCESS
        }
        Some("list-components") => {
            for (name, desc) in full_registry().list() {
                println!("{name:<20} {desc}");
            }
            ExitCode::SUCCESS
        }
        Some("list-miniapps") => {
            for m in sst_workloads::all_miniapps() {
                println!("{:<10} {:?}  {}", m.name, m.status, m.description);
            }
            ExitCode::SUCCESS
        }
        Some("list-experiments") => {
            for id in experiments::ALL {
                println!("{id}");
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
