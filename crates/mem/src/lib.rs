//! # sst-mem — memory-hierarchy models
//!
//! The memory substrate of the SST reproduction (the memHierarchy/DRAMSim2
//! analog):
//!
//! * [`cache`] — set-associative LRU cache state machine with dirty bits.
//! * [`mesi`] — MESI snooping-bus coherence directory.
//! * [`dram`] — channel/rank/bank DRAM timing + energy model with DDR2,
//!   DDR3, and GDDR5 technology presets.
//! * [`hierarchy`] — an immediate-mode multi-core node hierarchy
//!   (L1/L2/L3/DRAM) used by the fast design-space studies.
//! * [`components`] — discrete-event wrappers speaking a split-transaction
//!   protocol over sst-core links, for full-system simulations.
//! * [`model`] — the fidelity-selectable [`MemoryModel`](model::MemoryModel)
//!   trait unifying the analytic facade and the DES component chain.

pub mod cache;
pub mod components;
pub mod dram;
pub mod hierarchy;
pub mod mesi;
pub mod model;

pub use cache::{Access, Cache, CacheConfig, CacheStats, Outcome};
pub use components::{BusComponent, CacheComponent, MemReq, MemResp, MemoryComponent};
pub use dram::{DramConfig, DramStats, DramSystem, RowOutcome};
pub use hierarchy::{AccessResult, HierarchyStats, Level, MemHierarchy, MemHierarchyConfig};
pub use mesi::{BusAction, CoherenceStats, Mesi, SnoopBus};
pub use model::{
    hierarchy_stats_from_snapshot, install_hierarchy, memory_model, AnalyticMemory, DesMemory,
    MemoryModel, TraceOp, TraceResult,
};
