//! Discrete-event component wrappers for the memory models.
//!
//! These speak a simple split-transaction protocol ([`MemReq`] / [`MemResp`])
//! over sst-core links, so full-system simulations can assemble
//! `cpu → cache → cache → memory` chains from the same underlying
//! state machines used by the immediate-mode facade.

use crate::cache::{Access, Cache, CacheConfig, CacheState};
use crate::dram::{DramConfig, DramState, DramSystem};
use serde::{Deserialize, Serialize, Value};
use sst_core::config::ConfigError;
use sst_core::prelude::*;
use std::collections::HashMap;

/// A memory request traveling toward memory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemReq {
    /// Requester-chosen id, echoed in the response.
    pub id: u64,
    pub addr: u64,
    pub write: bool,
}

/// A completed request traveling back toward the CPU.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemResp {
    pub id: u64,
    pub addr: u64,
}

/// Register the memory-protocol payload codecs so in-flight [`MemReq`]s and
/// [`MemResp`]s survive engine checkpoints. Every component that sends them
/// calls this from `setup()`; registration is idempotent.
fn register_mem_payloads() {
    register_payload::<MemReq>("mem.req");
    register_payload::<MemResp>("mem.resp");
}

/// A single cache level as a DES component.
///
/// Ports: `"cpu"` (requests in / responses out) and `"mem"` (misses out /
/// fills in). Hits respond after the configured latency; misses forward a
/// line-granular request downstream and register in an MSHR so that
/// concurrent misses to one line coalesce into a single downstream fetch.
pub struct CacheComponent {
    cache: Cache,
    latency: SimTime,
    /// line addr -> waiting original requests.
    mshrs: HashMap<u64, Vec<MemReq>>,
    next_downstream_id: u64,
    hits: Option<StatId>,
    misses: Option<StatId>,
    coalesced: Option<StatId>,
}

impl CacheComponent {
    pub const CPU: PortId = PortId(0);
    pub const MEM: PortId = PortId(1);

    pub fn new(config: CacheConfig, latency: SimTime) -> CacheComponent {
        CacheComponent {
            cache: Cache::new(config),
            latency,
            mshrs: HashMap::new(),
            next_downstream_id: 0,
            hits: None,
            misses: None,
            coalesced: None,
        }
    }

    /// Outstanding MSHR entries (diagnostics).
    pub fn outstanding(&self) -> usize {
        self.mshrs.len()
    }

    /// Cumulative stats of the wrapped cache state machine.
    pub fn stats(&self) -> &crate::cache::CacheStats {
        &self.cache.stats
    }
}

/// Checkpoint form of [`CacheComponent`]: MSHRs flattened to a vector
/// sorted by line address so identical states serialize identically.
#[derive(Serialize, Deserialize)]
struct CacheComponentState {
    cache: CacheState,
    mshrs: Vec<(u64, Vec<MemReq>)>,
    next_downstream_id: u64,
}

impl Component for CacheComponent {
    fn setup(&mut self, ctx: &mut SimCtx<'_>) {
        register_mem_payloads();
        self.hits = Some(ctx.stat_counter("hits"));
        self.misses = Some(ctx.stat_counter("misses"));
        self.coalesced = Some(ctx.stat_counter("coalesced_misses"));
    }

    fn on_event(&mut self, port: PortId, payload: PayloadSlot, ctx: &mut SimCtx<'_>) {
        match port {
            Self::CPU => {
                let req = downcast::<MemReq>(payload);
                let kind = if req.write {
                    Access::Write
                } else {
                    Access::Read
                };
                let line = self.cache.line_addr(req.addr);
                let outcome = self.cache.access(req.addr, kind);
                if outcome.is_hit() {
                    ctx.add_stat(self.hits.unwrap(), 1);
                    ctx.send_delayed(
                        Self::CPU,
                        MemResp {
                            id: req.id,
                            addr: req.addr,
                        },
                        self.latency,
                    );
                } else {
                    ctx.add_stat(self.misses.unwrap(), 1);
                    ctx.trace_mark("miss", line);
                    // The state machine already filled the line and reported
                    // any dirty victim; send that victim downstream as a
                    // fire-and-forget write (its response, if any, matches
                    // no MSHR and is dropped).
                    if let crate::cache::Outcome::Miss {
                        writeback: Some(victim),
                    } = outcome
                    {
                        let id = self.next_downstream_id;
                        self.next_downstream_id += 1;
                        ctx.send_delayed(
                            Self::MEM,
                            MemReq {
                                id,
                                addr: victim,
                                write: true,
                            },
                            self.latency,
                        );
                    }
                    let entry = self.mshrs.entry(line).or_default();
                    let first = entry.is_empty();
                    entry.push(req);
                    if first {
                        let id = self.next_downstream_id;
                        self.next_downstream_id += 1;
                        ctx.send_delayed(
                            Self::MEM,
                            MemReq {
                                id,
                                addr: line,
                                write: false,
                            },
                            self.latency,
                        );
                    } else {
                        ctx.add_stat(self.coalesced.unwrap(), 1);
                    }
                }
            }
            Self::MEM => {
                let resp = downcast::<MemResp>(payload);
                let line = self.cache.line_addr(resp.addr);
                if let Some(waiters) = self.mshrs.remove(&line) {
                    for w in waiters {
                        ctx.send(
                            Self::CPU,
                            MemResp {
                                id: w.id,
                                addr: w.addr,
                            },
                        );
                    }
                }
            }
            other => panic!("cache got event on unexpected port {other:?}"),
        }
    }

    /// Publish the wrapped state machine's per-class stats so hierarchy-level
    /// results can be rebuilt from a [`StatsSnapshot`](sst_core::StatsSnapshot)
    /// (see `crate::model::hierarchy_stats_from_snapshot`).
    fn finish(&mut self, ctx: &mut SimCtx<'_>) {
        let s = self.cache.stats;
        for (name, v) in [
            ("read_hits", s.read_hits),
            ("read_misses", s.read_misses),
            ("write_hits", s.write_hits),
            ("write_misses", s.write_misses),
            ("writebacks", s.writebacks),
            ("invalidations", s.invalidations),
        ] {
            let id = ctx.stat_counter(name);
            ctx.add_stat(id, v);
        }
    }

    fn ports(&self) -> &'static [&'static str] {
        &["cpu", "mem"]
    }

    fn save_state(&self) -> Value {
        // Walk the MSHR map in line-address order: HashMap iteration order
        // would leak allocator state into the snapshot bytes.
        let mut mshrs: Vec<(u64, Vec<MemReq>)> = self
            .mshrs
            .iter()
            .map(|(line, waiters)| (*line, waiters.clone()))
            .collect();
        mshrs.sort_by_key(|(line, _)| *line);
        CacheComponentState {
            cache: self.cache.save_state(),
            mshrs,
            next_downstream_id: self.next_downstream_id,
        }
        .to_value()
    }

    fn load_state(&mut self, state: &Value) {
        let s = CacheComponentState::from_value(state).expect("malformed mem.cache state");
        self.cache.load_state(&s.cache);
        self.mshrs = s.mshrs.into_iter().collect();
        self.next_downstream_id = s.next_downstream_id;
    }
}

/// A DRAM memory controller as a DES component.
///
/// Port: `"bus"`. Each request is serviced through the [`DramSystem`] timing
/// model; the response is delivered when the burst completes.
pub struct MemoryComponent {
    dram: DramSystem,
    reads: Option<StatId>,
    writes: Option<StatId>,
    latency_stat: Option<StatId>,
}

impl MemoryComponent {
    pub const BUS: PortId = PortId(0);

    pub fn new(config: DramConfig) -> MemoryComponent {
        MemoryComponent {
            dram: DramSystem::new(config),
            reads: None,
            writes: None,
            latency_stat: None,
        }
    }
}

impl Component for MemoryComponent {
    fn setup(&mut self, ctx: &mut SimCtx<'_>) {
        register_mem_payloads();
        self.reads = Some(ctx.stat_counter("reads"));
        self.writes = Some(ctx.stat_counter("writes"));
        self.latency_stat = Some(ctx.stat_accumulator("latency_ns"));
    }

    fn on_event(&mut self, port: PortId, payload: PayloadSlot, ctx: &mut SimCtx<'_>) {
        assert_eq!(port, Self::BUS);
        let req = downcast::<MemReq>(payload);
        let now = ctx.now();
        let (done, _) = self.dram.service(req.addr, req.write, now);
        ctx.add_stat(
            if req.write {
                self.writes.unwrap()
            } else {
                self.reads.unwrap()
            },
            1,
        );
        ctx.record_stat(self.latency_stat.unwrap(), (done - now).as_ns_f64());
        ctx.send_delayed(
            Self::BUS,
            MemResp {
                id: req.id,
                addr: req.addr,
            },
            done - now,
        );
    }

    /// Publish the DRAM timing model's stats (row-buffer outcomes, activates,
    /// bytes moved) for snapshot-level extraction.
    fn finish(&mut self, ctx: &mut SimCtx<'_>) {
        let s = self.dram.stats;
        for (name, v) in [
            ("row_hits", s.row_hits),
            ("row_empty", s.row_empty),
            ("row_conflicts", s.row_conflicts),
            ("activates", s.activates),
            ("bytes", s.bytes),
        ] {
            let id = ctx.stat_counter(name);
            ctx.add_stat(id, v);
        }
    }

    fn ports(&self) -> &'static [&'static str] {
        &["bus"]
    }

    fn save_state(&self) -> Value {
        self.dram.save_state().to_value()
    }

    fn load_state(&mut self, state: &Value) {
        let s = DramState::from_value(state).expect("malformed mem.dram state");
        self.dram.load_state(&s);
    }
}

/// A fan-in bus: up to [`BusComponent::MAX_UP`] upstream requesters share one
/// downstream port. Needed because sst-core links are strictly point-to-point
/// (double-linking a port panics), so shared cache levels and the DRAM
/// controller cannot accept multiple upstream links directly.
///
/// Requests are forwarded downstream under a bus-chosen id; responses are
/// routed back to the originating upstream port with the original id
/// restored. The bus adds no delay of its own — the attached links carry the
/// latency.
pub struct BusComponent {
    /// bus id -> (upstream port index, original request id).
    pending: HashMap<u64, (usize, u64)>,
    next_id: u64,
    forwarded: Option<StatId>,
}

impl BusComponent {
    pub const MAX_UP: usize = 16;
    pub const DOWN: PortId = PortId(Self::MAX_UP as u16);

    pub fn new() -> BusComponent {
        BusComponent {
            pending: HashMap::new(),
            next_id: 0,
            forwarded: None,
        }
    }

    /// Port for upstream requester `i`.
    pub fn up(i: usize) -> PortId {
        assert!(
            i < Self::MAX_UP,
            "bus supports at most {} upstreams",
            Self::MAX_UP
        );
        PortId(i as u16)
    }
}

impl Default for BusComponent {
    fn default() -> Self {
        Self::new()
    }
}

/// Checkpoint form of [`BusComponent`]: the pending table flattened in
/// bus-id order (canonical, allocator-independent).
#[derive(Serialize, Deserialize)]
struct BusComponentState {
    pending: Vec<(u64, u64, u64)>,
    next_id: u64,
}

impl Component for BusComponent {
    fn setup(&mut self, ctx: &mut SimCtx<'_>) {
        register_mem_payloads();
        self.forwarded = Some(ctx.stat_counter("forwarded"));
    }

    fn on_event(&mut self, port: PortId, payload: PayloadSlot, ctx: &mut SimCtx<'_>) {
        if port == Self::DOWN {
            let resp = downcast::<MemResp>(payload);
            // Writeback responses whose requester forgot about them match no
            // pending entry and are dropped, like cache fills with no MSHR.
            if let Some((up, orig)) = self.pending.remove(&resp.id) {
                ctx.send(
                    PortId(up as u16),
                    MemResp {
                        id: orig,
                        addr: resp.addr,
                    },
                );
            }
        } else {
            let req = downcast::<MemReq>(payload);
            let id = self.next_id;
            self.next_id += 1;
            self.pending.insert(id, (port.0 as usize, req.id));
            ctx.add_stat(self.forwarded.unwrap(), 1);
            ctx.send(
                Self::DOWN,
                MemReq {
                    id,
                    addr: req.addr,
                    write: req.write,
                },
            );
        }
    }

    fn ports(&self) -> &'static [&'static str] {
        &[
            "up0", "up1", "up2", "up3", "up4", "up5", "up6", "up7", "up8", "up9", "up10", "up11",
            "up12", "up13", "up14", "up15", "down",
        ]
    }

    fn save_state(&self) -> Value {
        let mut pending: Vec<(u64, u64, u64)> = self
            .pending
            .iter()
            .map(|(bus_id, (up, orig))| (*bus_id, *up as u64, *orig))
            .collect();
        pending.sort_by_key(|(bus_id, ..)| *bus_id);
        BusComponentState {
            pending,
            next_id: self.next_id,
        }
        .to_value()
    }

    fn load_state(&mut self, state: &Value) {
        let s = BusComponentState::from_value(state).expect("malformed mem.bus state");
        self.pending = s
            .pending
            .into_iter()
            .map(|(bus_id, up, orig)| (bus_id, (up as usize, orig)))
            .collect();
        self.next_id = s.next_id;
    }
}

/// Register the memory components in a [`ComponentRegistry`] for JSON
/// config-driven simulations.
pub fn register(registry: &mut ComponentRegistry) {
    registry.register(
        "mem.cache",
        "set-associative cache level (ports: cpu, mem)",
        |p| {
            let cfg = CacheConfig {
                size_bytes: p.u64_or("size_bytes", 32 << 10),
                assoc: p.u64_or("assoc", 8) as u32,
                line_bytes: p.u64_or("line_bytes", 64),
                latency_cycles: p.u64_or("latency_cycles", 4) as u32,
                write_back: p.bool_or("write_back", true),
            };
            let latency = SimTime::ns_f64(p.f64_or("latency_ns", 1.0));
            Ok(Box::new(CacheComponent::new(cfg, latency)))
        },
    );
    registry.register(
        "mem.dram",
        "DRAM controller + channels (port: bus); preset = ddr2_800|ddr3_1066|ddr3_1333|ddr3_1600|gddr5",
        |p| {
            let channels = p.u64_or("channels", 2) as u32;
            let cfg = match p.str_or("preset", "ddr3_1333") {
                "ddr2_800" => DramConfig::ddr2_800(channels),
                "ddr3_1066" => DramConfig::ddr3_1066(channels),
                "ddr3_1333" => DramConfig::ddr3_1333(channels),
                "ddr3_1600" => DramConfig::ddr3_1600(channels),
                "gddr5" => DramConfig::gddr5(channels),
                other => {
                    return Err(ConfigError::BadFormat(format!(
                        "unknown DRAM preset `{other}`"
                    )))
                }
            };
            Ok(Box::new(MemoryComponent::new(cfg)))
        },
    );
    registry.register(
        "mem.bus",
        "fan-in bus: up to 16 requesters share one downstream (ports: up0..up15, down)",
        |_p| Ok(Box::new(BusComponent::new())),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a fixed address trace through the cache and checks responses.
    struct Driver {
        trace: Vec<u64>,
        next: usize,
        inflight: u64,
        responses: Option<StatId>,
    }
    impl Driver {
        const MEM: PortId = PortId(0);
    }
    impl Component for Driver {
        fn setup(&mut self, ctx: &mut SimCtx<'_>) {
            self.responses = Some(ctx.stat_counter("responses"));
            // Issue the first request.
            let addr = self.trace[0];
            self.next = 1;
            self.inflight = 100;
            ctx.send(
                Self::MEM,
                MemReq {
                    id: 100,
                    addr,
                    write: false,
                },
            );
        }
        fn on_event(&mut self, _port: PortId, payload: PayloadSlot, ctx: &mut SimCtx<'_>) {
            let resp = downcast::<MemResp>(payload);
            assert_eq!(resp.id, self.inflight);
            ctx.add_stat(self.responses.unwrap(), 1);
            if self.next < self.trace.len() {
                let addr = self.trace[self.next];
                self.next += 1;
                self.inflight += 1;
                ctx.send(
                    Self::MEM,
                    MemReq {
                        id: self.inflight,
                        addr,
                        write: false,
                    },
                );
            }
        }
        fn ports(&self) -> &'static [&'static str] {
            &["mem"]
        }
    }

    fn chain(trace: Vec<u64>) -> SimReport {
        let mut b = SystemBuilder::new();
        let n = trace.len() as u64;
        let drv = b.add(
            "driver",
            Driver {
                trace,
                next: 0,
                inflight: 0,
                responses: None,
            },
        );
        let l1 = b.add(
            "l1",
            CacheComponent::new(CacheConfig::l1d_32k(), SimTime::ns(1)),
        );
        let mem = b.add("mem", MemoryComponent::new(DramConfig::ddr3_1333(1)));
        b.link(
            (drv, Driver::MEM),
            (l1, CacheComponent::CPU),
            SimTime::ns(1),
        );
        b.link(
            (l1, CacheComponent::MEM),
            (mem, MemoryComponent::BUS),
            SimTime::ns(5),
        );
        let report = Engine::new(b).run(RunLimit::Exhaust);
        assert_eq!(report.stats.counter("driver", "responses"), n);
        report
    }

    #[test]
    fn hits_and_misses_flow_through_chain() {
        // Same line twice then a new line: 2 misses, 1 hit.
        let report = chain(vec![0x100, 0x108, 0x4000]);
        assert_eq!(report.stats.counter("l1", "hits"), 1);
        assert_eq!(report.stats.counter("l1", "misses"), 2);
        assert_eq!(report.stats.counter("mem", "reads"), 2);
    }

    #[test]
    fn hit_latency_lower_than_miss_latency() {
        let miss_only = chain(vec![0x0, 0x4000, 0x8000, 0xC000]);
        let hit_heavy = chain(vec![0x0, 0x8, 0x10, 0x18]);
        assert!(hit_heavy.end_time < miss_only.end_time);
    }

    #[test]
    fn bus_fans_in_two_requesters() {
        let mut b = SystemBuilder::new();
        let d0 = b.add(
            "drv0",
            Driver {
                trace: vec![0x0, 0x4000],
                next: 0,
                inflight: 0,
                responses: None,
            },
        );
        let d1 = b.add(
            "drv1",
            Driver {
                trace: vec![0x8000, 0xC000],
                next: 0,
                inflight: 0,
                responses: None,
            },
        );
        let bus = b.add("bus", BusComponent::new());
        let mem = b.add("dram", MemoryComponent::new(DramConfig::ddr3_1333(1)));
        b.link(
            (d0, Driver::MEM),
            (bus, BusComponent::up(0)),
            SimTime::ns(1),
        );
        b.link(
            (d1, Driver::MEM),
            (bus, BusComponent::up(1)),
            SimTime::ns(1),
        );
        b.link(
            (bus, BusComponent::DOWN),
            (mem, MemoryComponent::BUS),
            SimTime::ns(2),
        );
        let report = Engine::new(b).run(RunLimit::Exhaust);
        assert_eq!(report.stats.counter("drv0", "responses"), 2);
        assert_eq!(report.stats.counter("drv1", "responses"), 2);
        assert_eq!(report.stats.counter("bus", "forwarded"), 4);
        assert_eq!(report.stats.counter("dram", "reads"), 4);
    }

    #[test]
    fn finish_publishes_model_stats() {
        let report = chain(vec![0x100, 0x108, 0x4000]);
        // Event-level counters and the state machine's own stats must agree.
        assert_eq!(
            report.stats.counter("l1", "read_hits") + report.stats.counter("l1", "read_misses"),
            3
        );
        assert_eq!(report.stats.counter("l1", "read_misses"), 2);
        assert!(report.stats.counter("mem", "activates") > 0);
        assert!(report.stats.counter("mem", "bytes") > 0);
    }

    #[test]
    fn registry_builds_from_config() {
        let mut reg = ComponentRegistry::new();
        register(&mut reg);
        assert!(reg.contains("mem.cache"));
        assert!(reg.contains("mem.dram"));
        assert!(reg.contains("mem.bus"));
        let cache = reg
            .create("mem.cache", &Params::new().set("size_bytes", 65536u64))
            .unwrap();
        assert_eq!(cache.ports(), &["cpu", "mem"]);
        let bad = reg.create("mem.dram", &Params::new().set("preset", "ddr9"));
        assert!(bad.is_err());
    }
}
