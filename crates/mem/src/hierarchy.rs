//! Node-level memory hierarchy (immediate-mode facade).
//!
//! Wires per-core L1s, private-or-shared L2s, an optional shared L3, and the
//! [`DramSystem`] into a single `access()` call that returns the completion
//! time of a load/store issued by a given core at a given time. Shared
//! levels are genuinely shared structures, so multi-core capacity and
//! bandwidth contention emerge naturally — this is the model behind the
//! cores-per-node and memory-speed experiments (Figs. 2 and 3).

use crate::cache::{Access, Cache, CacheConfig, CacheStats, Outcome};
use crate::dram::{DramConfig, DramStats, DramSystem};
use serde::{Deserialize, Serialize};
use sst_core::time::{Frequency, SimTime};

/// Which level serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Level {
    L1,
    L2,
    L3,
    Mem,
}

/// Completed access description.
#[derive(Debug, Clone, Copy)]
pub struct AccessResult {
    /// When the data is available to the core.
    pub complete: SimTime,
    /// Deepest level reached.
    pub level: Level,
}

/// Hierarchy shape.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemHierarchyConfig {
    pub l1: CacheConfig,
    pub l2: CacheConfig,
    /// One L2 per core (false) or a single shared L2 (true).
    pub l2_shared: bool,
    pub l3: Option<CacheConfig>,
    pub dram: DramConfig,
}

impl MemHierarchyConfig {
    /// A contemporary two-socket-node-like default: 32K L1 + 256K private L2
    /// + 8M shared L3 + dual-channel DDR3-1333.
    pub fn typical(dram: DramConfig) -> Self {
        MemHierarchyConfig {
            l1: CacheConfig::l1d_32k(),
            l2: CacheConfig::l2_256k(),
            l2_shared: false,
            l3: Some(CacheConfig::l3_8m()),
            dram,
        }
    }
}

/// Per-level aggregated statistics snapshot.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct HierarchyStats {
    pub l1: CacheStats,
    pub l2: CacheStats,
    pub l3: CacheStats,
    pub dram: DramStats,
}

/// The assembled hierarchy for one node.
pub struct MemHierarchy {
    cfg: MemHierarchyConfig,
    l1s: Vec<Cache>,
    l2s: Vec<Cache>, // len = cores (private) or 1 (shared)
    l3: Option<Cache>,
    pub dram: DramSystem,
    core_period: SimTime,
    cores: usize,
    /// Stats baseline for `take_stats` (per-phase measurement).
    baseline: HierarchyStats,
    /// Next-line prefetch on L1 demand misses: hides latency on streams,
    /// wastes bandwidth on random traffic (off by default; the ablation
    /// study flips it).
    pub prefetch_next_line: bool,
    /// Prefetches issued (diagnostics for the ablation).
    pub prefetches: u64,
}

impl MemHierarchy {
    pub fn new(cfg: MemHierarchyConfig, cores: usize, core_freq: Frequency) -> MemHierarchy {
        let l2_count = if cfg.l2_shared { 1 } else { cores };
        MemHierarchy {
            l1s: (0..cores).map(|_| Cache::new(cfg.l1)).collect(),
            l2s: (0..l2_count).map(|_| Cache::new(cfg.l2)).collect(),
            l3: cfg.l3.map(Cache::new),
            dram: DramSystem::new(cfg.dram.clone()),
            core_period: core_freq.period(),
            cores,
            baseline: HierarchyStats::default(),
            prefetch_next_line: false,
            prefetches: 0,
            cfg,
        }
    }

    pub fn cores(&self) -> usize {
        self.cores
    }

    pub fn config(&self) -> &MemHierarchyConfig {
        &self.cfg
    }

    #[inline]
    fn cycles(&self, n: u32) -> SimTime {
        self.core_period * n as u64
    }

    /// Perform a load/store from `core` at `now`; returns completion time
    /// and the deepest level touched.
    ///
    /// Dirty victims cascade: an evicted dirty L1 line is written (and
    /// allocated) into L2, whose own dirty victim descends to L3, and so on
    /// to DRAM. Write-backs do not delay the demand access directly, but
    /// DRAM-level write-backs occupy the channel bus, so sustained write
    /// traffic costs real bandwidth.
    pub fn access(&mut self, core: usize, addr: u64, kind: Access, now: SimTime) -> AccessResult {
        let result = self.access_inner(core, addr, kind, now);
        // Next-line prefetch: on a demand L1 miss, pull the following line
        // through the hierarchy in the background (the core does not wait,
        // but the caches fill and the DRAM bus is consumed).
        if self.prefetch_next_line && result.level != Level::L1 {
            let next = (addr & !63) + 64;
            if !self.l1s[core].probe(next) {
                self.prefetches += 1;
                let _ = self.access_inner(core, next, Access::Read, now);
            }
        }
        result
    }

    fn access_inner(&mut self, core: usize, addr: u64, kind: Access, now: SimTime) -> AccessResult {
        debug_assert!(core < self.cores);
        let l1_lat = self.cycles(self.cfg.l1.latency_cycles);
        let l2_lat = self.cycles(self.cfg.l2.latency_cycles);
        let l3_lat = self.cfg.l3.map(|c| self.cycles(c.latency_cycles));

        // L1 demand.
        let out1 = self.l1s[core].access(addr, kind);
        if out1.is_hit() {
            return AccessResult {
                complete: now + l1_lat,
                level: Level::L1,
            };
        }
        let l1_victim = match out1 {
            Outcome::Miss { writeback } => writeback,
            Outcome::Hit => None,
        };
        let t_l2 = now + l1_lat;
        let l2_idx = if self.cfg.l2_shared { 0 } else { core };

        // L2 demand, then the L1 victim write-back (demand first so the
        // freshly filled line is not the immediate LRU victim).
        let out2 = self.l2s[l2_idx].access(addr, Access::Read);
        let mut l3_writes: Vec<u64> = Vec::new();
        let mut dram_writes: Vec<u64> = Vec::new();
        if let Some(v) = l1_victim {
            if let Outcome::Miss {
                writeback: Some(v2),
            } = self.l2s[l2_idx].access(v, Access::Write)
            {
                l3_writes.push(v2);
            }
        }

        // Helper: push write-backs into L3 (collecting its dirty victims)
        // or straight to the DRAM write list when there is no L3.
        let sink_below_l2 = |l3: &mut Option<Cache>,
                             lines: &mut Vec<u64>,
                             dram_writes: &mut Vec<u64>| {
            for line in lines.drain(..) {
                match l3 {
                    Some(l3) => {
                        if let Outcome::Miss { writeback: Some(v) } = l3.access(line, Access::Write)
                        {
                            dram_writes.push(v);
                        }
                    }
                    None => dram_writes.push(line),
                }
            }
        };

        if out2.is_hit() {
            sink_below_l2(&mut self.l3, &mut l3_writes, &mut dram_writes);
            for w in dram_writes {
                self.dram.service(w, true, t_l2);
            }
            return AccessResult {
                complete: t_l2 + l2_lat,
                level: Level::L2,
            };
        }
        if let Outcome::Miss { writeback: Some(v) } = out2 {
            l3_writes.push(v);
        }
        let t_l3 = t_l2 + l2_lat;

        // L3 demand (if present), then pending write-backs.
        let t_mem = if self.l3.is_some() {
            let out3 = self.l3.as_mut().unwrap().access(addr, Access::Read);
            if let Outcome::Miss { writeback: Some(v) } = out3 {
                dram_writes.push(v);
            }
            sink_below_l2(&mut self.l3, &mut l3_writes, &mut dram_writes);
            if out3.is_hit() {
                for w in dram_writes {
                    self.dram.service(w, true, t_l3);
                }
                return AccessResult {
                    complete: t_l3 + l3_lat.unwrap(),
                    level: Level::L3,
                };
            }
            t_l3 + l3_lat.unwrap()
        } else {
            dram_writes.append(&mut l3_writes);
            t_l3
        };

        // Demand read first (FR-FCFS-like: reads beat buffered writes),
        // then drain the write-backs onto the bus.
        let (complete, _) = self.dram.service(addr, kind == Access::Write, t_mem);
        for w in dram_writes {
            self.dram.service(w, true, t_mem);
        }
        AccessResult {
            complete,
            level: Level::Mem,
        }
    }

    /// Raw cumulative stats (since construction).
    pub fn raw_stats(&self) -> HierarchyStats {
        let mut s = HierarchyStats {
            dram: self.dram.stats,
            ..Default::default()
        };
        for c in &self.l1s {
            merge(&mut s.l1, &c.stats);
        }
        for c in &self.l2s {
            merge(&mut s.l2, &c.stats);
        }
        if let Some(l3) = &self.l3 {
            merge(&mut s.l3, &l3.stats);
        }
        s
    }

    /// Stats accumulated since the previous `take_stats` call (per-phase
    /// measurement, as the cache-behavior experiment requires).
    pub fn take_stats(&mut self) -> HierarchyStats {
        let now = self.raw_stats();
        let delta = HierarchyStats {
            l1: diff(&now.l1, &self.baseline.l1),
            l2: diff(&now.l2, &self.baseline.l2),
            l3: diff(&now.l3, &self.baseline.l3),
            dram: diff_dram(&now.dram, &self.baseline.dram),
        };
        self.baseline = now;
        delta
    }
}

fn merge(into: &mut CacheStats, from: &CacheStats) {
    into.read_hits += from.read_hits;
    into.read_misses += from.read_misses;
    into.write_hits += from.write_hits;
    into.write_misses += from.write_misses;
    into.writebacks += from.writebacks;
    into.invalidations += from.invalidations;
}

fn diff(a: &CacheStats, b: &CacheStats) -> CacheStats {
    CacheStats {
        read_hits: a.read_hits - b.read_hits,
        read_misses: a.read_misses - b.read_misses,
        write_hits: a.write_hits - b.write_hits,
        write_misses: a.write_misses - b.write_misses,
        writebacks: a.writebacks - b.writebacks,
        invalidations: a.invalidations - b.invalidations,
    }
}

fn diff_dram(a: &DramStats, b: &DramStats) -> DramStats {
    DramStats {
        reads: a.reads - b.reads,
        writes: a.writes - b.writes,
        row_hits: a.row_hits - b.row_hits,
        row_empty: a.row_empty - b.row_empty,
        row_conflicts: a.row_conflicts - b.row_conflicts,
        activates: a.activates - b.activates,
        bytes: a.bytes - b.bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MemHierarchy {
        let cfg = MemHierarchyConfig {
            l1: CacheConfig {
                size_bytes: 1 << 10,
                assoc: 2,
                line_bytes: 64,
                latency_cycles: 4,
                write_back: true,
            },
            l2: CacheConfig {
                size_bytes: 8 << 10,
                assoc: 4,
                line_bytes: 64,
                latency_cycles: 12,
                write_back: true,
            },
            l2_shared: false,
            l3: Some(CacheConfig {
                size_bytes: 64 << 10,
                assoc: 8,
                line_bytes: 64,
                latency_cycles: 30,
                write_back: true,
            }),
            dram: DramConfig::ddr3_1333(2),
        };
        MemHierarchy::new(cfg, 4, Frequency::ghz(2.0))
    }

    #[test]
    fn first_touch_goes_to_memory_then_l1() {
        let mut m = small();
        let r1 = m.access(0, 0x1000, Access::Read, SimTime::ZERO);
        assert_eq!(r1.level, Level::Mem);
        let r2 = m.access(0, 0x1000, Access::Read, r1.complete);
        assert_eq!(r2.level, Level::L1);
        // L1 hit is 4 cycles at 2 GHz = 2 ns.
        assert_eq!(r2.complete - r1.complete, SimTime::ns(2));
    }

    #[test]
    fn l1_eviction_falls_to_l2() {
        let mut m = small();
        // L1: 1 KiB / 64B / 2 ways = 8 sets; set stride 512B.
        // Fill set 0 of core 0's L1 with 3 lines -> first evicted to L2.
        let mut t = SimTime::ZERO;
        for i in 0..3u64 {
            t = m.access(0, i * 512, Access::Read, t).complete;
        }
        let r = m.access(0, 0, Access::Read, t);
        assert_eq!(r.level, Level::L2, "evicted from L1, still in L2");
    }

    #[test]
    fn private_l1_per_core() {
        let mut m = small();
        let t = m.access(0, 0x4000, Access::Read, SimTime::ZERO).complete;
        // Another core misses its own L1 but hits a shared deeper level.
        let r = m.access(1, 0x4000, Access::Read, t);
        assert_ne!(r.level, Level::L1);
        assert_ne!(r.level, Level::Mem);
    }

    #[test]
    fn levels_hit_in_depth_order() {
        let mut m = small();
        let t0 = m.access(0, 0x8000, Access::Read, SimTime::ZERO).complete;
        let l1 = m.access(0, 0x8000, Access::Read, t0);
        assert_eq!(l1.level, Level::L1);
        let l1_cost = l1.complete - t0;
        // Evict from L1 only (fill set with conflicting lines).
        let mut t = l1.complete;
        for i in 1..3u64 {
            t = m.access(0, 0x8000 + i * 512, Access::Read, t).complete;
        }
        let l2 = m.access(0, 0x8000, Access::Read, t);
        assert_eq!(l2.level, Level::L2);
        assert!(l2.complete - t > l1_cost);
    }

    #[test]
    fn contention_slows_parallel_streams() {
        // 4 cores streaming disjoint regions vs 1 core streaming: per-access
        // average completion gap should grow with contention.
        let finish_stream = |m: &mut MemHierarchy, cores: usize| -> SimTime {
            let mut done = SimTime::ZERO;
            let mut t = SimTime::ZERO;
            for step in 0..2000u64 {
                for c in 0..cores {
                    let addr = (c as u64) * (1 << 24) + step * 64;
                    let r = m.access(c, addr, Access::Read, t);
                    done = done.max(r.complete);
                }
                // march time forward ~ every core issues once per 10 ns
                t += SimTime::ns(10);
            }
            done
        };
        let mut m1 = small();
        let t1 = finish_stream(&mut m1, 1);
        let mut m4 = small();
        let t4 = finish_stream(&mut m4, 4);
        assert!(
            t4 > t1,
            "4-core contention ({t4}) must be slower than single core ({t1})"
        );
    }

    #[test]
    fn take_stats_is_differential() {
        let mut m = small();
        m.access(0, 0, Access::Read, SimTime::ZERO);
        let s1 = m.take_stats();
        assert_eq!(s1.l1.accesses(), 1);
        m.access(0, 0, Access::Read, SimTime::us(1));
        m.access(0, 0, Access::Read, SimTime::us(2));
        let s2 = m.take_stats();
        assert_eq!(s2.l1.accesses(), 2);
        assert_eq!(s2.l1.hits(), 2);
        assert_eq!(s2.dram.accesses(), 0);
    }

    #[test]
    fn prefetcher_hides_stream_latency() {
        let mut with_pf = small();
        with_pf.prefetch_next_line = true;
        let mut without = small();
        let stream = |m: &mut MemHierarchy| {
            let mut t = SimTime::ZERO;
            let mut l1_hits = 0;
            for i in 0..2000u64 {
                let r = m.access(0, i * 64, Access::Read, t);
                if r.level == Level::L1 {
                    l1_hits += 1;
                }
                t = r.complete;
            }
            (t, l1_hits)
        };
        let (t_pf, hits_pf) = stream(&mut with_pf);
        let (t_no, hits_no) = stream(&mut without);
        assert!(with_pf.prefetches > 0);
        assert!(
            hits_pf > hits_no,
            "prefetching must convert stream misses to L1 hits: {hits_pf} vs {hits_no}"
        );
        assert!(t_pf < t_no, "stream should finish sooner with prefetch");
    }

    #[test]
    fn prefetcher_wastes_bandwidth_on_random_traffic() {
        let mut with_pf = small();
        with_pf.prefetch_next_line = true;
        let mut without = small();
        let chase = |m: &mut MemHierarchy| {
            let mut t = SimTime::ZERO;
            let mut x = 0x9E3779B9u64;
            for _ in 0..1500u64 {
                x ^= x << 13;
                x ^= x >> 7;
                let r = m.access(0, (x % (1 << 28)) & !63, Access::Read, t);
                t = r.complete;
            }
            (t, m.take_stats().dram.bytes)
        };
        let (_, bytes_pf) = chase(&mut with_pf);
        let (_, bytes_no) = chase(&mut without);
        assert!(
            bytes_pf > bytes_no * 3 / 2,
            "useless prefetches must inflate DRAM traffic: {bytes_pf} vs {bytes_no}"
        );
    }

    #[test]
    fn shared_l2_mode() {
        let cfg = MemHierarchyConfig {
            l2_shared: true,
            l3: None,
            ..small().cfg
        };
        let mut m = MemHierarchy::new(cfg, 2, Frequency::ghz(2.0));
        let t = m.access(0, 0xA000, Access::Read, SimTime::ZERO).complete;
        let r = m.access(1, 0xA000, Access::Read, t);
        assert_eq!(r.level, Level::L2, "shared L2 serves the other core");
    }
}
