//! DRAM timing and power model (the DRAMSim2 analog).
//!
//! Models channels × ranks × banks with an open-page row-buffer policy.
//! Each access classifies as a row **hit** (CAS only), row **empty**
//! (activate + CAS), or row **conflict** (precharge + activate + CAS), and
//! then serializes its data burst on the channel bus — which is what caps
//! sustained bandwidth and creates the multi-core contention measured in the
//! cores-per-node experiments.
//!
//! Presets carry the technology comparison of the paper's design-space
//! study: DDR2-800 (cheap, low power, slow), DDR3-1066/1333/1600
//! (mainstream), and GDDR5 (expensive, power-hungry, very high bandwidth).

use serde::{Deserialize, Serialize};
use sst_core::time::SimTime;

/// DRAM technology + organization parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DramConfig {
    pub name: String,
    pub channels: u32,
    pub ranks_per_channel: u32,
    pub banks_per_rank: u32,
    /// Data rate in mega-transfers per second (e.g. 1333 for DDR3-1333).
    pub data_rate_mts: f64,
    /// Bus width per channel in bytes.
    pub bus_bytes: u32,
    /// Transfers per burst (BL). `bus_bytes * burst_length` should equal the
    /// cache line size so one burst moves one line.
    pub burst_length: u32,
    /// CAS latency (ns).
    pub tcl_ns: f64,
    /// RAS-to-CAS delay (ns).
    pub trcd_ns: f64,
    /// Row precharge time (ns).
    pub trp_ns: f64,
    /// Minimum row-active time (ns).
    pub tras_ns: f64,
    /// Row (page) size in bytes.
    pub row_bytes: u64,
    // --- technology model (energy / cost) ---
    /// Energy per row activation+precharge pair (nJ).
    pub e_act_nj: f64,
    /// Energy per burst read (nJ).
    pub e_rd_nj: f64,
    /// Energy per burst write (nJ).
    pub e_wr_nj: f64,
    /// Background (standby + refresh) power per rank (mW).
    pub p_bg_mw_per_rank: f64,
    /// Market price per GB (USD) — the DRAM-spot-price input of the cost
    /// study.
    pub cost_per_gb_usd: f64,
    /// Installed capacity (GB), for the cost roll-up.
    pub capacity_gb: f64,
    /// Permutation-based bank interleaving (hash the row id into the bank
    /// index). On by default, as in real controllers; the ablation study
    /// switches it off to show power-of-two-stride bank aliasing.
    pub bank_hash: bool,
}

impl DramConfig {
    /// Peak bandwidth over all channels (bytes/sec).
    pub fn peak_bw_bytes_per_sec(&self) -> f64 {
        self.channels as f64 * self.bus_bytes as f64 * self.data_rate_mts * 1e6
    }

    /// Duration of one data burst on the channel bus.
    pub fn burst_time(&self) -> SimTime {
        SimTime::ns_f64(self.burst_length as f64 * 1e3 / self.data_rate_mts)
    }

    /// Bytes moved per burst.
    pub fn burst_bytes(&self) -> u64 {
        self.bus_bytes as u64 * self.burst_length as u64
    }

    /// DDR2-800: 6.4 GB/s/channel; "cheap, low power, but antiquated
    /// performance".
    pub fn ddr2_800(channels: u32) -> Self {
        DramConfig {
            name: format!("DDR2-800 x{channels}"),
            channels,
            ranks_per_channel: 2,
            banks_per_rank: 8,
            data_rate_mts: 800.0,
            bus_bytes: 8,
            burst_length: 8,
            tcl_ns: 12.5,
            trcd_ns: 12.5,
            trp_ns: 12.5,
            tras_ns: 45.0,
            row_bytes: 8 << 10,
            e_act_nj: 18.0,
            e_rd_nj: 7.0,
            e_wr_nj: 7.5,
            p_bg_mw_per_rank: 140.0,
            cost_per_gb_usd: 2.5,
            capacity_gb: 8.0,
            bank_hash: true,
        }
    }

    /// DDR3 at an arbitrary data rate (the memory-speed experiment dials
    /// the same DIMMs to 800/1066/1333 MT/s): fixed ~13.5 ns core timings,
    /// scaled bandwidth.
    pub fn ddr3_speed(mts: f64, channels: u32) -> Self {
        assert!(mts > 0.0);
        DramConfig {
            name: format!("DDR3-{} x{channels}", mts as u64),
            data_rate_mts: mts,
            ..Self::ddr3_1333(channels)
        }
    }

    /// DDR3-1066.
    pub fn ddr3_1066(channels: u32) -> Self {
        DramConfig {
            name: format!("DDR3-1066 x{channels}"),
            data_rate_mts: 1066.0,
            tcl_ns: 13.1,
            trcd_ns: 13.1,
            trp_ns: 13.1,
            tras_ns: 37.5,
            e_act_nj: 12.0,
            e_rd_nj: 4.5,
            e_wr_nj: 5.0,
            p_bg_mw_per_rank: 120.0,
            cost_per_gb_usd: 7.0,
            ..Self::ddr3_1333(channels)
        }
    }

    /// DDR3-1333: 10.7 GB/s/channel; "higher performance, reasonable power".
    pub fn ddr3_1333(channels: u32) -> Self {
        DramConfig {
            name: format!("DDR3-1333 x{channels}"),
            channels,
            ranks_per_channel: 2,
            banks_per_rank: 8,
            data_rate_mts: 1333.0,
            bus_bytes: 8,
            burst_length: 8,
            tcl_ns: 13.5,
            trcd_ns: 13.5,
            trp_ns: 13.5,
            tras_ns: 36.0,
            row_bytes: 8 << 10,
            e_act_nj: 11.0,
            e_rd_nj: 4.2,
            e_wr_nj: 4.6,
            p_bg_mw_per_rank: 118.0,
            cost_per_gb_usd: 7.0,
            capacity_gb: 8.0,
            bank_hash: true,
        }
    }

    /// DDR3-1600: 12.8 GB/s/channel.
    pub fn ddr3_1600(channels: u32) -> Self {
        DramConfig {
            name: format!("DDR3-1600 x{channels}"),
            data_rate_mts: 1600.0,
            tcl_ns: 13.75,
            trcd_ns: 13.75,
            trp_ns: 13.75,
            tras_ns: 35.0,
            e_act_nj: 10.5,
            e_rd_nj: 4.0,
            e_wr_nj: 4.4,
            ..Self::ddr3_1333(channels)
        }
    }

    /// Energy (Joules) implied by an activity snapshot over `elapsed`:
    /// IDD-style per-operation energies plus background power per rank.
    pub fn energy_joules(&self, stats: &DramStats, elapsed: SimTime) -> f64 {
        let dyn_nj = stats.activates as f64 * self.e_act_nj
            + stats.reads as f64 * self.e_rd_nj
            + stats.writes as f64 * self.e_wr_nj;
        let ranks = (self.channels * self.ranks_per_channel) as f64;
        let bg_w = ranks * self.p_bg_mw_per_rank * 1e-3;
        dyn_nj * 1e-9 + bg_w * elapsed.as_secs_f64()
    }

    /// GDDR5 @ 3600 MT/s, 32-bit channels: "expensive, high power, very
    /// high bandwidth" — 14.4 GB/s per (narrow) channel, so typically used
    /// with many channels.
    pub fn gddr5(channels: u32) -> Self {
        DramConfig {
            name: format!("GDDR5-3600 x{channels}"),
            channels,
            ranks_per_channel: 1,
            // Many banks across the stacked devices of a channel: graphics
            // parts rely on deep bank-level parallelism to keep their
            // narrow, fast channels busy.
            banks_per_rank: 32,
            data_rate_mts: 3600.0,
            bus_bytes: 4,
            burst_length: 16,
            tcl_ns: 12.0,
            trcd_ns: 12.0,
            trp_ns: 12.0,
            tras_ns: 28.0,
            row_bytes: 4 << 10,
            e_act_nj: 9.0,
            e_rd_nj: 6.5,
            e_wr_nj: 7.0,
            p_bg_mw_per_rank: 650.0,
            cost_per_gb_usd: 12.0,
            capacity_gb: 6.0,
            bank_hash: true,
        }
    }
}

/// How the open-row policy classified an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOutcome {
    Hit,
    Empty,
    Conflict,
}

#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct Bank {
    open_row: Option<u64>,
    /// Earliest time the bank can accept a new column/row command (ps).
    ready_at: u64,
    /// Time of the last activate, to honor tRAS before precharge (ps).
    activated_at: u64,
}

/// Aggregate DRAM statistics.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct DramStats {
    pub reads: u64,
    pub writes: u64,
    pub row_hits: u64,
    pub row_empty: u64,
    pub row_conflicts: u64,
    pub activates: u64,
    pub bytes: u64,
}

impl DramStats {
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }
    pub fn row_hit_rate(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            self.row_hits as f64 / a as f64
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Channel {
    banks: Vec<Bank>,
    bus_free_at: u64,
}

/// The DRAM subsystem's mutable state (open rows, bank/bus horizons,
/// counters) for engine checkpoints. Timings and geometry are rebuilt from
/// the config at restore time and must match.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DramState {
    channels: Vec<Channel>,
    stats: DramStats,
}

/// The DRAM subsystem: all channels of one node's memory.
///
/// Immediate-mode interface: [`DramSystem::service`] must be called with
/// non-decreasing `now` values (the node simulators iterate in cycle order),
/// and returns the completion time of the access after all queuing.
#[derive(Debug, Clone)]
pub struct DramSystem {
    cfg: DramConfig,
    channels: Vec<Channel>,
    // Pre-converted timing (ps).
    tcl: u64,
    trcd: u64,
    trp: u64,
    tras: u64,
    burst: u64,
    pub stats: DramStats,
}

impl DramSystem {
    pub fn new(cfg: DramConfig) -> DramSystem {
        let banks = (cfg.banks_per_rank * cfg.ranks_per_channel) as usize;
        let channels = (0..cfg.channels)
            .map(|_| Channel {
                banks: vec![Bank::default(); banks],
                bus_free_at: 0,
            })
            .collect();
        DramSystem {
            tcl: SimTime::ns_f64(cfg.tcl_ns).as_ps(),
            trcd: SimTime::ns_f64(cfg.trcd_ns).as_ps(),
            trp: SimTime::ns_f64(cfg.trp_ns).as_ps(),
            tras: SimTime::ns_f64(cfg.tras_ns).as_ps(),
            burst: cfg.burst_time().as_ps(),
            channels,
            cfg,
            stats: DramStats::default(),
        }
    }

    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Map an address to (channel, bank, row). Lines interleave across
    /// channels; the channel bits are then *removed* so each channel sees a
    /// dense local address space (otherwise a sequential stream would visit
    /// only `1/channels` of every row and thrash the row buffers), and rows
    /// interleave across banks.
    fn map(&self, addr: u64) -> (usize, usize, u64) {
        let line = addr / 64;
        let channels = self.cfg.channels as u64;
        let ch = (line % channels) as usize;
        let local = (line / channels) * 64 + (addr % 64);
        let row_global = local / self.cfg.row_bytes;
        let nbanks = (self.cfg.banks_per_rank * self.cfg.ranks_per_channel) as u64;
        // Permutation-based bank interleaving (XOR/hash folding of the row
        // id): spreads power-of-two-strided regions — e.g. per-core arenas
        // gigabytes apart — across banks instead of aliasing them onto one.
        let bank = if self.cfg.bank_hash {
            ((row_global.wrapping_mul(0x9E3779B97F4A7C15) >> 32) % nbanks) as usize
        } else {
            (row_global % nbanks) as usize
        };
        (ch, bank, row_global)
    }

    /// Service one line-sized access issued at `now`; returns its completion
    /// time and row classification.
    pub fn service(&mut self, addr: u64, write: bool, now: SimTime) -> (SimTime, RowOutcome) {
        let (ch, bank_idx, row) = self.map(addr);
        let tcl = self.tcl;
        let trcd = self.trcd;
        let trp = self.trp;
        let tras = self.tras;
        let burst = self.burst;
        let channel = &mut self.channels[ch];
        let bank = &mut channel.banks[bank_idx];

        let start = now.as_ps().max(bank.ready_at);
        // `cas_start` is when the column command issues; data follows tCL
        // later. Column commands to an open row pipeline at burst cadence
        // (tCCD), so sustained row-hit streams are paced by the data bus and
        // reach peak bandwidth; only row cycles serialize within a bank.
        let (outcome, cas_start, activated_at) = match bank.open_row {
            Some(r) if r == row => (RowOutcome::Hit, start, bank.activated_at),
            Some(_) => {
                // Precharge cannot begin before tRAS from the last activate.
                let pre_start = start.max(bank.activated_at + tras);
                let act = pre_start + trp;
                (RowOutcome::Conflict, act + trcd, act)
            }
            None => (RowOutcome::Empty, start + trcd, start),
        };

        // Serialize on the channel data bus.
        let data_start = (cas_start + tcl).max(channel.bus_free_at);
        let done = data_start + burst;
        channel.bus_free_at = done;
        bank.open_row = Some(row);
        bank.activated_at = activated_at;
        bank.ready_at = cas_start + burst;

        match outcome {
            RowOutcome::Hit => self.stats.row_hits += 1,
            RowOutcome::Empty => {
                self.stats.row_empty += 1;
                self.stats.activates += 1;
            }
            RowOutcome::Conflict => {
                self.stats.row_conflicts += 1;
                self.stats.activates += 1;
            }
        }
        if write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        self.stats.bytes += self.cfg.burst_bytes();

        (SimTime::ps(done), outcome)
    }

    /// Capture the mutable state for a checkpoint.
    pub fn save_state(&self) -> DramState {
        DramState {
            channels: self.channels.clone(),
            stats: self.stats,
        }
    }

    /// Restore state captured by [`DramSystem::save_state`]; panics if the
    /// snapshot's organization differs from this system's config.
    pub fn load_state(&mut self, state: &DramState) {
        assert_eq!(
            state.channels.len(),
            self.channels.len(),
            "DRAM snapshot channel count mismatch"
        );
        for (live, saved) in self.channels.iter().zip(&state.channels) {
            assert_eq!(
                saved.banks.len(),
                live.banks.len(),
                "DRAM snapshot bank count mismatch"
            );
        }
        self.channels = state.channels.clone();
        self.stats = state.stats;
    }

    /// Unloaded row-hit latency (CAS + burst).
    pub fn idle_hit_latency(&self) -> SimTime {
        SimTime::ps(self.tcl + self.burst)
    }

    /// Unloaded row-empty latency (RCD + CAS + burst).
    pub fn idle_miss_latency(&self) -> SimTime {
        SimTime::ps(self.trcd + self.tcl + self.burst)
    }

    /// Dynamic + background energy consumed over `elapsed` (Joules).
    pub fn energy_joules(&self, elapsed: SimTime) -> f64 {
        self.cfg.energy_joules(&self.stats, elapsed)
    }

    /// Average power over `elapsed` (Watts).
    pub fn avg_power_watts(&self, elapsed: SimTime) -> f64 {
        if elapsed == SimTime::ZERO {
            return 0.0;
        }
        self.energy_joules(elapsed) / elapsed.as_secs_f64()
    }

    /// Memory subsystem capital cost (USD).
    pub fn cost_usd(&self) -> f64 {
        self.cfg.cost_per_gb_usd * self.cfg.capacity_gb
    }

    /// Latest time any channel's data bus is busy (diagnostics; the natural
    /// "end of traffic" mark for throughput math).
    pub fn last_busy(&self) -> SimTime {
        SimTime::ps(
            self.channels
                .iter()
                .map(|c| c.bus_free_at)
                .max()
                .unwrap_or(0),
        )
    }

    /// Achieved bandwidth over `elapsed` (bytes/sec).
    pub fn achieved_bw(&self, elapsed: SimTime) -> f64 {
        if elapsed == SimTime::ZERO {
            return 0.0;
        }
        self.stats.bytes as f64 / elapsed.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_channel() -> DramSystem {
        DramSystem::new(DramConfig::ddr3_1333(1))
    }

    #[test]
    fn presets_sane() {
        let d2 = DramConfig::ddr2_800(2);
        let d3 = DramConfig::ddr3_1333(2);
        let g5 = DramConfig::gddr5(8);
        assert!(d2.peak_bw_bytes_per_sec() < d3.peak_bw_bytes_per_sec());
        assert!(d3.peak_bw_bytes_per_sec() < g5.peak_bw_bytes_per_sec());
        // One burst moves one 64B line.
        assert_eq!(d2.burst_bytes(), 64);
        assert_eq!(d3.burst_bytes(), 64);
        assert_eq!(g5.burst_bytes(), 64);
        // Cost ordering: DDR2 cheapest, GDDR5 most expensive.
        assert!(d2.cost_per_gb_usd < d3.cost_per_gb_usd);
        assert!(d3.cost_per_gb_usd < g5.cost_per_gb_usd);
    }

    #[test]
    fn first_access_is_row_empty() {
        let mut d = one_channel();
        let (done, outcome) = d.service(0, false, SimTime::ZERO);
        assert_eq!(outcome, RowOutcome::Empty);
        assert_eq!(done, d.idle_miss_latency());
    }

    #[test]
    fn same_row_hits() {
        let mut d = one_channel();
        let (t1, _) = d.service(0, false, SimTime::ZERO);
        let (t2, outcome) = d.service(64, false, t1);
        assert_eq!(outcome, RowOutcome::Hit);
        assert_eq!(t2.as_ps() - t1.as_ps(), d.tcl + d.burst);
    }

    #[test]
    fn different_row_same_bank_conflicts() {
        let d_cfg = DramConfig::ddr3_1333(1);
        let row_bytes = d_cfg.row_bytes;
        let mut d = DramSystem::new(d_cfg);
        // Find another row that the bank hash places in bank 0's company:
        // scan until a row maps to the same (channel, bank) as row 0.
        let (c0, b0, r0) = d.map(0);
        let mut addr2 = 0;
        for r in 1..10_000u64 {
            let a = r * row_bytes;
            let (c, b, row) = d.map(a);
            if c == c0 && b == b0 && row != r0 {
                addr2 = a;
                break;
            }
        }
        assert!(addr2 != 0, "no same-bank row found");
        let (t1, _) = d.service(0, false, SimTime::ZERO);
        let (_, outcome) = d.service(addr2, false, t1);
        assert_eq!(outcome, RowOutcome::Conflict);
        assert_eq!(d.stats.row_conflicts, 1);
        assert_eq!(d.stats.activates, 2);
    }

    #[test]
    fn different_banks_overlap() {
        // Two row-empty accesses to different banks issued back-to-back:
        // the second's activate overlaps the first's, so its completion is
        // gated by the shared data bus, not by 2x the full latency.
        let mut d = one_channel();
        let (t1, o1) = d.service(0, false, SimTime::ZERO);
        let (t2, o2) = d.service(d.cfg.row_bytes, false, SimTime::ZERO);
        assert_eq!(o1, RowOutcome::Empty);
        assert_eq!(o2, RowOutcome::Empty);
        assert_eq!(t2.as_ps(), t1.as_ps() + d.burst);
    }

    #[test]
    fn streaming_approaches_peak_bandwidth() {
        let mut d = one_channel();
        let n = 10_000u64;
        let mut t = SimTime::ZERO;
        for i in 0..n {
            let (done, _) = d.service(i * 64, false, t);
            // Issue next as soon as possible (back-pressure free stream).
            t = t.max(done.saturating_sub(d.idle_miss_latency()));
        }
        let elapsed = SimTime::ps(d.channels[0].bus_free_at);
        let bw = d.achieved_bw(elapsed);
        let peak = d.cfg.peak_bw_bytes_per_sec();
        assert!(
            bw > 0.85 * peak,
            "streaming bw {:.2} GB/s vs peak {:.2} GB/s",
            bw / 1e9,
            peak / 1e9
        );
        assert!(bw <= peak * 1.001);
        // Mostly row hits.
        assert!(d.stats.row_hit_rate() > 0.95);
    }

    #[test]
    fn random_traffic_much_slower_than_streaming() {
        let cfg = DramConfig::ddr3_1333(1);
        let mut seq = DramSystem::new(cfg.clone());
        let mut rnd = DramSystem::new(cfg);
        let n = 4_000u64;
        let mut t = SimTime::ZERO;
        for i in 0..n {
            let (done, _) = seq.service(i * 64, false, t);
            t = done;
        }
        let seq_end = t;
        let mut t = SimTime::ZERO;
        let mut x = 0x12345678u64;
        for _ in 0..n {
            // xorshift addresses spread over 1 GB.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let (done, _) = rnd.service((x % (1 << 30)) & !63, false, t);
            t = done;
        }
        let rnd_end = t;
        assert!(
            rnd_end.as_ps() > seq_end.as_ps() * 3 / 2,
            "random {rnd_end} should be much slower than sequential {seq_end}"
        );
    }

    #[test]
    fn channels_spread_lines() {
        let mut d = DramSystem::new(DramConfig::ddr3_1333(4));
        // Adjacent lines land on different channels, so 4 simultaneous
        // accesses complete at (nearly) the same time.
        let times: Vec<u64> = (0..4u64)
            .map(|i| d.service(i * 64, false, SimTime::ZERO).0.as_ps())
            .collect();
        assert!(times.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn energy_accumulates() {
        let mut d = one_channel();
        let e0 = d.energy_joules(SimTime::ms(1));
        for i in 0..100u64 {
            d.service(i * 64, false, SimTime::ZERO);
        }
        let e1 = d.energy_joules(SimTime::ms(1));
        assert!(e1 > e0);
        assert!(d.avg_power_watts(SimTime::ms(1)) > 0.0);
        assert_eq!(d.cost_usd(), 56.0); // 8 GB * $7
    }

    #[test]
    fn gddr5_outruns_ddr3_on_streams() {
        let mut d3 = DramSystem::new(DramConfig::ddr3_1333(2));
        let mut g5 = DramSystem::new(DramConfig::gddr5(8));
        let run = |d: &mut DramSystem| -> SimTime {
            let mut t = SimTime::ZERO;
            for i in 0..20_000u64 {
                let (done, _) = d.service(i * 64, false, t);
                t = t.max(done.saturating_sub(d.idle_miss_latency()));
            }
            d.last_busy()
        };
        let t3 = run(&mut d3);
        let t5 = run(&mut g5);
        assert!(
            t5.as_ps() * 3 < t3.as_ps(),
            "GDDR5 ({t5}) should be >3x faster than 2ch DDR3 ({t3}) on streams"
        );
    }
}
