//! MESI snooping-bus coherence across per-core private caches.
//!
//! A functional coherence directory for one bus: it tracks, per line, which
//! cores hold the line and in what MESI state, and computes the bus actions
//! each processor access implies (invalidations, dirty interventions,
//! memory fetches). The node simulator uses it when workloads share data;
//! it is also exercised standalone by property tests that assert the MESI
//! invariant — at most one core in Modified/Exclusive, never mixed with
//! Shared holders.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Classic MESI line states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mesi {
    Modified,
    Exclusive,
    Shared,
    Invalid,
}

/// What the bus had to do to satisfy an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusAction {
    /// Data had to come from memory (no cache-to-cache transfer possible).
    pub memory_fetch: bool,
    /// A dirty copy in another cache was flushed (intervention).
    pub dirty_intervention: bool,
    /// Number of other caches invalidated.
    pub invalidations: u32,
    /// The requester's resulting state.
    pub new_state: Mesi,
}

/// Coherence statistics.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct CoherenceStats {
    pub read_hits: u64,
    pub read_shared_fills: u64,
    pub read_exclusive_fills: u64,
    pub write_hits: u64,
    pub write_upgrades: u64,
    pub write_fills: u64,
    pub invalidations_sent: u64,
    pub dirty_interventions: u64,
    pub memory_fetches: u64,
}

/// The per-line directory for an `n`-core snooping bus.
#[derive(Debug, Clone)]
pub struct SnoopBus {
    cores: usize,
    /// line address -> per-core states (only lines with any non-Invalid
    /// holder are present).
    lines: HashMap<u64, Vec<Mesi>>,
    pub stats: CoherenceStats,
}

impl SnoopBus {
    pub fn new(cores: usize) -> SnoopBus {
        assert!(cores >= 1);
        SnoopBus {
            cores,
            lines: HashMap::new(),
            stats: CoherenceStats::default(),
        }
    }

    pub fn cores(&self) -> usize {
        self.cores
    }

    /// Current state of `line` in `core`'s cache.
    pub fn state(&self, core: usize, line: u64) -> Mesi {
        self.lines.get(&line).map_or(Mesi::Invalid, |v| v[core])
    }

    /// Core `core` reads `line`.
    pub fn read(&mut self, core: usize, line: u64) -> BusAction {
        let cores = self.cores;
        let states = self
            .lines
            .entry(line)
            .or_insert_with(|| vec![Mesi::Invalid; cores]);
        match states[core] {
            Mesi::Modified | Mesi::Exclusive | Mesi::Shared => {
                self.stats.read_hits += 1;
                let st = states[core];
                BusAction {
                    memory_fetch: false,
                    dirty_intervention: false,
                    invalidations: 0,
                    new_state: st,
                }
            }
            Mesi::Invalid => {
                // Snoop other caches.
                let mut dirty = false;
                let mut any_other = false;
                for (i, s) in states.iter_mut().enumerate() {
                    if i == core {
                        continue;
                    }
                    match *s {
                        Mesi::Modified => {
                            dirty = true;
                            any_other = true;
                            *s = Mesi::Shared;
                        }
                        Mesi::Exclusive => {
                            any_other = true;
                            *s = Mesi::Shared;
                        }
                        Mesi::Shared => any_other = true,
                        Mesi::Invalid => {}
                    }
                }
                let new_state = if any_other {
                    Mesi::Shared
                } else {
                    Mesi::Exclusive
                };
                states[core] = new_state;
                if dirty {
                    self.stats.dirty_interventions += 1;
                }
                let memory_fetch = !any_other || dirty;
                // (Dirty intervention writes back to memory in illinois-style
                // MESI; we count it as a memory event either way.)
                if memory_fetch {
                    self.stats.memory_fetches += 1;
                }
                if any_other {
                    self.stats.read_shared_fills += 1;
                } else {
                    self.stats.read_exclusive_fills += 1;
                }
                BusAction {
                    memory_fetch,
                    dirty_intervention: dirty,
                    invalidations: 0,
                    new_state,
                }
            }
        }
    }

    /// Core `core` writes `line`.
    pub fn write(&mut self, core: usize, line: u64) -> BusAction {
        let cores = self.cores;
        let states = self
            .lines
            .entry(line)
            .or_insert_with(|| vec![Mesi::Invalid; cores]);
        match states[core] {
            Mesi::Modified => {
                self.stats.write_hits += 1;
                BusAction {
                    memory_fetch: false,
                    dirty_intervention: false,
                    invalidations: 0,
                    new_state: Mesi::Modified,
                }
            }
            Mesi::Exclusive => {
                // Silent upgrade.
                states[core] = Mesi::Modified;
                self.stats.write_hits += 1;
                BusAction {
                    memory_fetch: false,
                    dirty_intervention: false,
                    invalidations: 0,
                    new_state: Mesi::Modified,
                }
            }
            Mesi::Shared => {
                // Upgrade: invalidate other sharers, no data transfer.
                let mut inv = 0;
                for (i, s) in states.iter_mut().enumerate() {
                    if i != core && *s != Mesi::Invalid {
                        *s = Mesi::Invalid;
                        inv += 1;
                    }
                }
                states[core] = Mesi::Modified;
                self.stats.write_upgrades += 1;
                self.stats.invalidations_sent += inv as u64;
                BusAction {
                    memory_fetch: false,
                    dirty_intervention: false,
                    invalidations: inv,
                    new_state: Mesi::Modified,
                }
            }
            Mesi::Invalid => {
                // Read-for-ownership.
                let mut inv = 0;
                let mut dirty = false;
                let mut had_copy = false;
                for (i, s) in states.iter_mut().enumerate() {
                    if i == core {
                        continue;
                    }
                    match *s {
                        Mesi::Invalid => {}
                        Mesi::Modified => {
                            dirty = true;
                            had_copy = true;
                            *s = Mesi::Invalid;
                            inv += 1;
                        }
                        _ => {
                            had_copy = true;
                            *s = Mesi::Invalid;
                            inv += 1;
                        }
                    }
                }
                states[core] = Mesi::Modified;
                self.stats.write_fills += 1;
                self.stats.invalidations_sent += inv as u64;
                if dirty {
                    self.stats.dirty_interventions += 1;
                }
                let memory_fetch = !had_copy || dirty;
                if memory_fetch {
                    self.stats.memory_fetches += 1;
                }
                BusAction {
                    memory_fetch,
                    dirty_intervention: dirty,
                    invalidations: inv,
                    new_state: Mesi::Modified,
                }
            }
        }
    }

    /// Core `core` evicts `line` (capacity/conflict). Returns true if the
    /// line was dirty (needs write-back).
    pub fn evict(&mut self, core: usize, line: u64) -> bool {
        if let Some(states) = self.lines.get_mut(&line) {
            let was = states[core];
            states[core] = Mesi::Invalid;
            if states.iter().all(|s| *s == Mesi::Invalid) {
                self.lines.remove(&line);
            }
            was == Mesi::Modified
        } else {
            false
        }
    }

    /// MESI invariant check: at most one M-or-E holder, and M/E never
    /// coexists with S. Used by property tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (line, states) in &self.lines {
            let m_or_e = states
                .iter()
                .filter(|s| matches!(s, Mesi::Modified | Mesi::Exclusive))
                .count();
            let shared = states.iter().filter(|s| **s == Mesi::Shared).count();
            if m_or_e > 1 {
                return Err(format!("line {line:#x}: {m_or_e} M/E holders"));
            }
            if m_or_e == 1 && shared > 0 {
                return Err(format!("line {line:#x}: M/E coexists with {shared} S"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_read_is_exclusive() {
        let mut bus = SnoopBus::new(4);
        let a = bus.read(0, 0x40);
        assert!(a.memory_fetch);
        assert_eq!(a.new_state, Mesi::Exclusive);
        assert_eq!(bus.state(0, 0x40), Mesi::Exclusive);
    }

    #[test]
    fn second_reader_shares() {
        let mut bus = SnoopBus::new(4);
        bus.read(0, 0x40);
        let a = bus.read(1, 0x40);
        assert!(!a.memory_fetch, "cache-to-cache supply");
        assert_eq!(a.new_state, Mesi::Shared);
        assert_eq!(bus.state(0, 0x40), Mesi::Shared);
        assert_eq!(bus.state(1, 0x40), Mesi::Shared);
    }

    #[test]
    fn exclusive_write_is_silent() {
        let mut bus = SnoopBus::new(2);
        bus.read(0, 0x40);
        let a = bus.write(0, 0x40);
        assert_eq!(a.invalidations, 0);
        assert!(!a.memory_fetch);
        assert_eq!(bus.state(0, 0x40), Mesi::Modified);
    }

    #[test]
    fn shared_write_invalidates_others() {
        let mut bus = SnoopBus::new(4);
        bus.read(0, 0x40);
        bus.read(1, 0x40);
        bus.read(2, 0x40);
        let a = bus.write(1, 0x40);
        assert_eq!(a.invalidations, 2);
        assert_eq!(bus.state(0, 0x40), Mesi::Invalid);
        assert_eq!(bus.state(1, 0x40), Mesi::Modified);
        assert_eq!(bus.state(2, 0x40), Mesi::Invalid);
        bus.check_invariants().unwrap();
    }

    #[test]
    fn read_of_modified_triggers_intervention() {
        let mut bus = SnoopBus::new(2);
        bus.read(0, 0x40);
        bus.write(0, 0x40);
        let a = bus.read(1, 0x40);
        assert!(a.dirty_intervention);
        assert_eq!(bus.state(0, 0x40), Mesi::Shared);
        assert_eq!(bus.state(1, 0x40), Mesi::Shared);
    }

    #[test]
    fn write_to_modified_elsewhere_invalidates_and_intervenes() {
        let mut bus = SnoopBus::new(2);
        bus.write(0, 0x40);
        let a = bus.write(1, 0x40);
        assert!(a.dirty_intervention);
        assert_eq!(a.invalidations, 1);
        assert_eq!(bus.state(0, 0x40), Mesi::Invalid);
        assert_eq!(bus.state(1, 0x40), Mesi::Modified);
    }

    #[test]
    fn evict_reports_dirtiness() {
        let mut bus = SnoopBus::new(2);
        bus.read(0, 0x40);
        assert!(!bus.evict(0, 0x40));
        bus.write(1, 0x80);
        assert!(bus.evict(1, 0x80));
        assert!(!bus.evict(1, 0x80), "second evict is a no-op");
    }

    #[test]
    fn ping_pong_counts_upgrades() {
        let mut bus = SnoopBus::new(2);
        for _ in 0..10 {
            bus.write(0, 0x40);
            bus.write(1, 0x40);
        }
        assert!(bus.stats.invalidations_sent >= 19);
        bus.check_invariants().unwrap();
    }

    #[test]
    fn invariants_hold_under_random_traffic() {
        let mut bus = SnoopBus::new(8);
        let mut x = 0xDEADBEEFu64;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let core = (x % 8) as usize;
            let line = (x >> 8) % 64 * 64;
            match (x >> 20) % 3 {
                0 => {
                    bus.read(core, line);
                }
                1 => {
                    bus.write(core, line);
                }
                _ => {
                    bus.evict(core, line);
                }
            }
        }
        bus.check_invariants().unwrap();
    }
}
