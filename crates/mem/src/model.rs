//! Fidelity-selectable memory model.
//!
//! [`MemoryModel`] is the per-subsystem trait of the multi-fidelity layer:
//! drive a memory-access trace through the node hierarchy and report the
//! finish time plus per-level statistics. Two implementations exist:
//!
//! * [`AnalyticMemory`] — the immediate-mode [`MemHierarchy`] facade; each
//!   access is a closed-form walk down the levels.
//! * [`DesMemory`] — the same cache/DRAM state machines wrapped as
//!   discrete-event components ([`CacheComponent`] / [`MemoryComponent`]),
//!   wired by links and driven through an [`Engine`]; results are extracted
//!   from the run's [`StatsSnapshot`].
//!
//! [`install_hierarchy`] is the shared wiring helper: given upstream request
//! ports (one per core), it assembles `L1 → L2 → (L3) → DRAM` with private
//! and shared levels per the [`MemHierarchyConfig`], inserting a
//! [`BusComponent`] wherever multiple upstreams converge on a shared level.
//!
//! Fidelity contract: the two paths share the cache and DRAM state machines
//! but order write-backs slightly differently (the DES cache emits the victim
//! before the demand fetch; the analytic walk does the opposite) and the DES
//! path pays explicit link hops, so hit/miss totals below L1 and absolute
//! times diverge by a few percent. L1 behavior on a single-core trace is
//! identical. Cross-fidelity tests in this module and in
//! `tests/tests/fidelity_equivalence.rs` pin the tolerance bands.

use crate::cache::Access;
use crate::components::{BusComponent, CacheComponent, MemReq, MemResp, MemoryComponent};
use crate::hierarchy::{HierarchyStats, MemHierarchy, MemHierarchyConfig};
use sst_core::prelude::*;
use sst_core::stats::{StatKind, StatsSnapshot};

/// One memory operation in a trace.
#[derive(Debug, Clone, Copy)]
pub struct TraceOp {
    pub core: usize,
    pub addr: u64,
    pub write: bool,
}

/// Result of driving a trace through a memory model.
#[derive(Debug, Clone)]
pub struct TraceResult {
    /// Completion time of the last access (each core issues dependently).
    pub finish: SimTime,
    /// Per-level stats accumulated by this trace.
    pub stats: HierarchyStats,
}

/// A node memory hierarchy at some fidelity: drive a trace, get timing+stats.
pub trait MemoryModel {
    fn fidelity(&self) -> Fidelity;
    /// Run `trace`; ops of one core issue dependently (the next op starts
    /// when the previous completes), distinct cores proceed concurrently.
    fn run_trace(&mut self, trace: &[TraceOp]) -> TraceResult;
}

/// Pick a memory-model implementation for `fidelity`.
pub fn memory_model(
    cfg: &MemHierarchyConfig,
    cores: usize,
    core_freq: Frequency,
    fidelity: Fidelity,
) -> Box<dyn MemoryModel> {
    match fidelity {
        Fidelity::Analytic => Box::new(AnalyticMemory::new(cfg.clone(), cores, core_freq)),
        Fidelity::Des => Box::new(DesMemory::new(cfg.clone(), cores, core_freq)),
    }
}

/// Analytic fidelity: the immediate-mode hierarchy walk.
pub struct AnalyticMemory {
    hier: MemHierarchy,
    cursors: Vec<SimTime>,
}

impl AnalyticMemory {
    pub fn new(cfg: MemHierarchyConfig, cores: usize, core_freq: Frequency) -> AnalyticMemory {
        AnalyticMemory {
            hier: MemHierarchy::new(cfg, cores, core_freq),
            cursors: vec![SimTime::ZERO; cores],
        }
    }
}

impl MemoryModel for AnalyticMemory {
    fn fidelity(&self) -> Fidelity {
        Fidelity::Analytic
    }

    fn run_trace(&mut self, trace: &[TraceOp]) -> TraceResult {
        for op in trace {
            let kind = if op.write {
                Access::Write
            } else {
                Access::Read
            };
            let r = self
                .hier
                .access(op.core, op.addr, kind, self.cursors[op.core]);
            self.cursors[op.core] = r.complete;
        }
        TraceResult {
            finish: self.cursors.iter().copied().max().unwrap_or(SimTime::ZERO),
            stats: self.hier.take_stats(),
        }
    }
}

/// DES fidelity: per-core trace drivers feed component chains through an
/// engine. Each `run_trace` call builds and runs a fresh system (caches start
/// cold); time restarts at zero per call.
pub struct DesMemory {
    cfg: MemHierarchyConfig,
    cores: usize,
    core_freq: Frequency,
}

impl DesMemory {
    pub fn new(cfg: MemHierarchyConfig, cores: usize, core_freq: Frequency) -> DesMemory {
        DesMemory {
            cfg,
            cores,
            core_freq,
        }
    }
}

impl MemoryModel for DesMemory {
    fn fidelity(&self) -> Fidelity {
        Fidelity::Des
    }

    fn run_trace(&mut self, trace: &[TraceOp]) -> TraceResult {
        let mut per_core: Vec<Vec<(u64, bool)>> = vec![Vec::new(); self.cores];
        for op in trace {
            per_core[op.core].push((op.addr, op.write));
        }
        let mut b = SystemBuilder::new();
        let mut ups = Vec::new();
        for (i, ops) in per_core.into_iter().enumerate() {
            let drv = b.add(format!("drv{i}"), TraceDriver::new(ops));
            ups.push((drv, TraceDriver::MEM));
        }
        install_hierarchy(&mut b, &self.cfg, self.core_freq, &ups);
        let report = Engine::new(b).run(RunLimit::Exhaust);
        TraceResult {
            finish: report.end_time,
            stats: hierarchy_stats_from_snapshot(&report.stats),
        }
    }
}

/// Wire `L1 → L2 → (L3) → DRAM` component chains for `upstreams.len()` cores
/// into `b`, honoring private/shared levels from `cfg`. Every hop is one
/// core-cycle link; a cache level's service latency is its configured
/// `latency_cycles` minus the two link hops (so a DES round trip costs the
/// same cycles the analytic walk charges). Components are named `l1.{i}`,
/// `l2.{i}`, `l3`, `dram`, with `bus.*` fan-ins — the names
/// [`hierarchy_stats_from_snapshot`] groups by.
pub fn install_hierarchy(
    b: &mut SystemBuilder,
    cfg: &MemHierarchyConfig,
    core_freq: Frequency,
    upstreams: &[(ComponentId, PortId)],
) {
    let period = core_freq.period();
    let svc = |cycles: u32| period * cycles.saturating_sub(2).max(1) as u64;

    // Private L1 per upstream.
    let mut ends: Vec<(ComponentId, PortId)> = Vec::new();
    for (i, up) in upstreams.iter().enumerate() {
        let l1 = b.add(
            format!("l1.{i}"),
            CacheComponent::new(cfg.l1, svc(cfg.l1.latency_cycles)),
        );
        b.link(*up, (l1, CacheComponent::CPU), period);
        ends.push((l1, CacheComponent::MEM));
    }

    // L2: one per core, or one shared behind a bus.
    if cfg.l2_shared {
        let l2 = b.add(
            "l2.0".to_string(),
            CacheComponent::new(cfg.l2, svc(cfg.l2.latency_cycles)),
        );
        fan_in(b, &ends, (l2, CacheComponent::CPU), period, "bus.l2");
        ends = vec![(l2, CacheComponent::MEM)];
    } else {
        ends = ends
            .iter()
            .enumerate()
            .map(|(i, end)| {
                let l2 = b.add(
                    format!("l2.{i}"),
                    CacheComponent::new(cfg.l2, svc(cfg.l2.latency_cycles)),
                );
                b.link(*end, (l2, CacheComponent::CPU), period);
                (l2, CacheComponent::MEM)
            })
            .collect();
    }

    // Optional shared L3.
    if let Some(l3cfg) = cfg.l3 {
        let l3 = b.add(
            "l3".to_string(),
            CacheComponent::new(l3cfg, svc(l3cfg.latency_cycles)),
        );
        fan_in(b, &ends, (l3, CacheComponent::CPU), period, "bus.l3");
        ends = vec![(l3, CacheComponent::MEM)];
    }

    // DRAM controller.
    let dram = b.add("dram".to_string(), MemoryComponent::new(cfg.dram.clone()));
    fan_in(b, &ends, (dram, MemoryComponent::BUS), period, "bus.mem");
}

/// Link `ends` to the single `target` port, inserting a named
/// [`BusComponent`] when there is more than one upstream.
fn fan_in(
    b: &mut SystemBuilder,
    ends: &[(ComponentId, PortId)],
    target: (ComponentId, PortId),
    latency: SimTime,
    bus_name: &str,
) {
    match ends {
        [only] => {
            b.link(*only, target, latency);
        }
        many => {
            let bus = b.add(bus_name.to_string(), BusComponent::new());
            for (i, end) in many.iter().enumerate() {
                b.link(*end, (bus, BusComponent::up(i)), latency);
            }
            b.link((bus, BusComponent::DOWN), target, latency);
        }
    }
}

/// Rebuild [`HierarchyStats`] from the finish-time counters the DES
/// components publish, grouping owners `l1.*` / `l2.*` / `l3*` / `dram`.
pub fn hierarchy_stats_from_snapshot(snap: &StatsSnapshot) -> HierarchyStats {
    let mut h = HierarchyStats::default();
    for s in &snap.stats {
        let StatKind::Counter { count } = s.kind else {
            continue;
        };
        if s.owner == "dram" {
            match s.name.as_str() {
                "reads" => h.dram.reads += count,
                "writes" => h.dram.writes += count,
                "row_hits" => h.dram.row_hits += count,
                "row_empty" => h.dram.row_empty += count,
                "row_conflicts" => h.dram.row_conflicts += count,
                "activates" => h.dram.activates += count,
                "bytes" => h.dram.bytes += count,
                _ => {}
            }
            continue;
        }
        let level = if s.owner.starts_with("l1") {
            &mut h.l1
        } else if s.owner.starts_with("l2") {
            &mut h.l2
        } else if s.owner.starts_with("l3") {
            &mut h.l3
        } else {
            continue;
        };
        match s.name.as_str() {
            "read_hits" => level.read_hits += count,
            "read_misses" => level.read_misses += count,
            "write_hits" => level.write_hits += count,
            "write_misses" => level.write_misses += count,
            "writebacks" => level.writebacks += count,
            "invalidations" => level.invalidations += count,
            _ => {}
        }
    }
    h
}

/// Replays a per-core op list dependently: the next request issues when the
/// previous response arrives.
struct TraceDriver {
    ops: Vec<(u64, bool)>,
    next: usize,
    issued: Option<StatId>,
}

impl TraceDriver {
    const MEM: PortId = PortId(0);

    fn new(ops: Vec<(u64, bool)>) -> TraceDriver {
        TraceDriver {
            ops,
            next: 0,
            issued: None,
        }
    }

    fn issue(&mut self, ctx: &mut SimCtx<'_>) {
        if self.next < self.ops.len() {
            let (addr, write) = self.ops[self.next];
            let id = self.next as u64;
            self.next += 1;
            ctx.add_stat(self.issued.unwrap(), 1);
            ctx.send(Self::MEM, MemReq { id, addr, write });
        }
    }
}

impl Component for TraceDriver {
    fn setup(&mut self, ctx: &mut SimCtx<'_>) {
        register_payload::<MemReq>("mem.req");
        register_payload::<MemResp>("mem.resp");
        self.issued = Some(ctx.stat_counter("issued"));
        self.issue(ctx);
    }

    fn on_event(&mut self, _port: PortId, payload: PayloadSlot, ctx: &mut SimCtx<'_>) {
        let _resp = downcast::<MemResp>(payload);
        self.issue(ctx);
    }

    fn ports(&self) -> &'static [&'static str] {
        &["mem"]
    }

    fn save_state(&self) -> serde::Value {
        serde::Serialize::to_value(&(self.next as u64))
    }

    fn load_state(&mut self, state: &serde::Value) {
        self.next = state.as_u64().expect("malformed trace-driver state") as usize;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::dram::DramConfig;

    fn small_cfg(l3: bool) -> MemHierarchyConfig {
        MemHierarchyConfig {
            l1: CacheConfig {
                size_bytes: 1 << 10,
                assoc: 2,
                line_bytes: 64,
                latency_cycles: 4,
                write_back: true,
            },
            l2: CacheConfig {
                size_bytes: 8 << 10,
                assoc: 4,
                line_bytes: 64,
                latency_cycles: 12,
                write_back: true,
            },
            l2_shared: false,
            l3: l3.then_some(CacheConfig {
                size_bytes: 64 << 10,
                assoc: 8,
                line_bytes: 64,
                latency_cycles: 30,
                write_back: true,
            }),
            dram: DramConfig::ddr3_1333(2),
        }
    }

    fn stream_trace(cores: usize, n: u64) -> Vec<TraceOp> {
        let mut t = Vec::new();
        for step in 0..n {
            for c in 0..cores {
                t.push(TraceOp {
                    core: c,
                    addr: (c as u64) << 24 | (step * 48) & !7,
                    write: step % 5 == 0,
                });
            }
        }
        t
    }

    fn rel(a: f64, b: f64) -> f64 {
        if a == 0.0 && b == 0.0 {
            0.0
        } else {
            (a - b).abs() / a.abs().max(b.abs())
        }
    }

    #[test]
    fn fidelities_agree_on_single_core_stream() {
        let trace = stream_trace(1, 4000);
        let freq = Frequency::ghz(2.0);
        let mut ana = memory_model(&small_cfg(true), 1, freq, Fidelity::Analytic);
        let mut des = memory_model(&small_cfg(true), 1, freq, Fidelity::Des);
        assert_eq!(ana.fidelity(), Fidelity::Analytic);
        assert_eq!(des.fidelity(), Fidelity::Des);
        let ra = ana.run_trace(&trace);
        let rd = des.run_trace(&trace);
        // Same state machine, same access order: L1 behavior is identical.
        assert_eq!(ra.stats.l1.hits(), rd.stats.l1.hits());
        assert_eq!(ra.stats.l1.misses(), rd.stats.l1.misses());
        // Below L1, write-back ordering differs; totals stay close.
        assert!(
            rel(ra.stats.l2.misses() as f64, rd.stats.l2.misses() as f64) < 0.2,
            "L2 misses diverge: analytic={} des={}",
            ra.stats.l2.misses(),
            rd.stats.l2.misses()
        );
        assert!(
            rel(
                ra.stats.dram.accesses() as f64,
                rd.stats.dram.accesses() as f64
            ) < 0.3,
            "DRAM accesses diverge: analytic={:?} des={:?}",
            ra.stats.dram,
            rd.stats.dram
        );
        assert!(
            rel(ra.finish.as_ns_f64(), rd.finish.as_ns_f64()) < 0.5,
            "finish times diverge: analytic={} des={}",
            ra.finish,
            rd.finish
        );
    }

    #[test]
    fn des_multicore_uses_bus_and_is_deterministic() {
        let trace = stream_trace(4, 400);
        let freq = Frequency::ghz(2.0);
        let mut d1 = DesMemory::new(small_cfg(true), 4, freq);
        let mut d2 = DesMemory::new(small_cfg(true), 4, freq);
        let r1 = d1.run_trace(&trace);
        let r2 = d2.run_trace(&trace);
        assert_eq!(r1.finish, r2.finish, "DES reruns must be bit-identical");
        assert_eq!(r1.stats.l1.accesses(), r2.stats.l1.accesses());
        assert_eq!(r1.stats.dram.bytes, r2.stats.dram.bytes);
        assert_eq!(r1.stats.l1.accesses(), trace.len() as u64);
    }

    #[test]
    fn des_no_l3_shared_l2_shape() {
        let mut cfg = small_cfg(false);
        cfg.l2_shared = true;
        let trace = stream_trace(2, 200);
        let mut des = DesMemory::new(cfg, 2, Frequency::ghz(2.0));
        let r = des.run_trace(&trace);
        assert_eq!(r.stats.l1.accesses(), trace.len() as u64);
        assert_eq!(r.stats.l3.accesses(), 0, "no L3 in this shape");
        assert!(r.stats.dram.accesses() > 0);
    }
}
