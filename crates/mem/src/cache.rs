//! Set-associative cache model.
//!
//! A pure state machine: no timing, no events — just tags, LRU replacement,
//! and dirty bits. Timing is layered on top by
//! [`hierarchy`](crate::hierarchy) (immediate mode) and
//! [`components`](crate::components) (discrete-event mode), both of which
//! share this implementation — the SST "one model, multiple fidelities"
//! idiom.

use serde::{Deserialize, Serialize};

/// Static cache geometry and policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Ways per set.
    pub assoc: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Access latency in CPU cycles (used by the timing layers).
    pub latency_cycles: u32,
    /// Write-back (true) or write-through (false).
    pub write_back: bool,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.line_bytes * self.assoc as u64)
    }

    /// Validate geometry invariants; panics on nonsense configs.
    pub fn validate(&self) {
        assert!(self.line_bytes.is_power_of_two(), "line size must be 2^k");
        assert!(self.assoc >= 1);
        assert!(
            self.size_bytes
                .is_multiple_of(self.line_bytes * self.assoc as u64),
            "capacity must be sets * assoc * line"
        );
        assert!(self.sets() >= 1);
    }

    /// A typical 32 KiB, 8-way, 64 B L1 data cache (4-cycle).
    pub fn l1d_32k() -> Self {
        CacheConfig {
            size_bytes: 32 << 10,
            assoc: 8,
            line_bytes: 64,
            latency_cycles: 4,
            write_back: true,
        }
    }

    /// A typical 256 KiB, 8-way, 64 B private L2 (12-cycle).
    pub fn l2_256k() -> Self {
        CacheConfig {
            size_bytes: 256 << 10,
            assoc: 8,
            line_bytes: 64,
            latency_cycles: 12,
            write_back: true,
        }
    }

    /// A shared 8 MiB, 16-way, 64 B L3 (36-cycle).
    pub fn l3_8m() -> Self {
        CacheConfig {
            size_bytes: 8 << 20,
            assoc: 16,
            line_bytes: 64,
            latency_cycles: 36,
            write_back: true,
        }
    }
}

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Access {
    Read,
    Write,
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    Hit,
    /// Line was not present; it has been filled. If the victim was dirty,
    /// its *line address* is returned so the caller can write it back.
    Miss {
        writeback: Option<u64>,
    },
}

impl Outcome {
    pub fn is_hit(&self) -> bool {
        matches!(self, Outcome::Hit)
    }
}

#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU stamp; larger = more recently used.
    stamp: u64,
}

/// The cache's mutable state (tags, LRU stamps, counters), detached from its
/// immutable geometry, for engine checkpoints. Geometry is rebuilt from the
/// config at restore time and must match.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheState {
    lines: Vec<Line>,
    next_stamp: u64,
    stats: CacheStats,
}

/// Hit/miss/traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    pub read_hits: u64,
    pub read_misses: u64,
    pub write_hits: u64,
    pub write_misses: u64,
    pub writebacks: u64,
    pub invalidations: u64,
}

impl CacheStats {
    pub fn hits(&self) -> u64 {
        self.read_hits + self.write_hits
    }
    pub fn misses(&self) -> u64 {
        self.read_misses + self.write_misses
    }
    pub fn accesses(&self) -> u64 {
        self.hits() + self.misses()
    }
    /// Hit rate in [0, 1]; 0 if no accesses.
    pub fn hit_rate(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            self.hits() as f64 / a as f64
        }
    }
}

/// A set-associative, LRU, write-allocate cache.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    lines: Vec<Line>,
    sets: u64,
    line_shift: u32,
    set_mask: u64,
    next_stamp: u64,
    pub stats: CacheStats,
}

impl Cache {
    pub fn new(config: CacheConfig) -> Cache {
        config.validate();
        let sets = config.sets();
        Cache {
            config,
            lines: vec![Line::default(); (sets * config.assoc as u64) as usize],
            sets,
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: sets - 1,
            next_stamp: 1,
            stats: CacheStats::default(),
        }
    }

    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The line-aligned address containing `addr`.
    #[inline]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr >> self.line_shift << self.line_shift
    }

    #[inline]
    fn index(&self, addr: u64) -> (u64, u64) {
        let line = addr >> self.line_shift;
        let set = if self.sets.is_power_of_two() {
            line & self.set_mask
        } else {
            line % self.sets
        };
        let tag = line;
        (set, tag)
    }

    /// Access `addr`; fills on miss (write-allocate), returning any dirty
    /// victim line address for write-back.
    pub fn access(&mut self, addr: u64, kind: Access) -> Outcome {
        let (set, tag) = self.index(addr);
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        let write_back = self.config.write_back;
        let line_shift = self.line_shift;
        let a = (set * self.config.assoc as u64) as usize;
        let ways = &mut self.lines[a..a + self.config.assoc as usize];

        // Probe.
        for l in ways.iter_mut() {
            if l.valid && l.tag == tag {
                l.stamp = stamp;
                if kind == Access::Write && write_back {
                    l.dirty = true;
                }
                match kind {
                    Access::Read => self.stats.read_hits += 1,
                    Access::Write => self.stats.write_hits += 1,
                }
                return Outcome::Hit;
            }
        }

        // Miss: pick victim — invalid way first, else true LRU.
        let victim = ways
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| if l.valid { l.stamp } else { 0 })
            .map(|(i, _)| i)
            .expect("assoc >= 1");
        let v = &mut ways[victim];
        let writeback = if v.valid && v.dirty {
            Some(v.tag << line_shift)
        } else {
            None
        };
        *v = Line {
            tag,
            valid: true,
            dirty: kind == Access::Write && write_back,
            stamp,
        };
        match kind {
            Access::Read => self.stats.read_misses += 1,
            Access::Write => self.stats.write_misses += 1,
        }
        if writeback.is_some() {
            self.stats.writebacks += 1;
        }
        Outcome::Miss { writeback }
    }

    /// Non-mutating presence check (no LRU update, no stats).
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.index(addr);
        let a = (set * self.config.assoc as u64) as usize;
        self.lines[a..a + self.config.assoc as usize]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Invalidate the line containing `addr` (coherence). Returns the dirty
    /// line address if a write-back is needed.
    pub fn invalidate(&mut self, addr: u64) -> Option<u64> {
        let (set, tag) = self.index(addr);
        let line_shift = self.line_shift;
        let a = (set * self.config.assoc as u64) as usize;
        let ways = &mut self.lines[a..a + self.config.assoc as usize];
        for l in ways.iter_mut() {
            if l.valid && l.tag == tag {
                l.valid = false;
                self.stats.invalidations += 1;
                if l.dirty {
                    l.dirty = false;
                    return Some(tag << line_shift);
                }
                return None;
            }
        }
        None
    }

    /// Capture the mutable state for a checkpoint.
    pub fn save_state(&self) -> CacheState {
        CacheState {
            lines: self.lines.clone(),
            next_stamp: self.next_stamp,
            stats: self.stats,
        }
    }

    /// Restore state captured by [`Cache::save_state`]. The receiving cache
    /// must have the same geometry (panics otherwise — a restore into a
    /// differently-configured system is a wiring bug).
    pub fn load_state(&mut self, state: &CacheState) {
        assert_eq!(
            state.lines.len(),
            self.lines.len(),
            "cache snapshot geometry mismatch: {} lines saved, {} configured",
            state.lines.len(),
            self.lines.len()
        );
        self.lines = state.lines.clone();
        self.next_stamp = state.next_stamp;
        self.stats = state.stats;
    }

    /// Number of currently valid lines (diagnostics / invariants).
    pub fn valid_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    /// Total lines the cache can hold.
    pub fn capacity_lines(&self) -> usize {
        self.lines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B = 512B.
        Cache::new(CacheConfig {
            size_bytes: 512,
            assoc: 2,
            line_bytes: 64,
            latency_cycles: 1,
            write_back: true,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x1000, Access::Read).is_hit());
        assert!(c.access(0x1000, Access::Read).is_hit());
        assert!(c.access(0x103F, Access::Read).is_hit()); // same line
        assert!(!c.access(0x1040, Access::Read).is_hit()); // next line
        assert_eq!(c.stats.read_hits, 2);
        assert_eq!(c.stats.read_misses, 2);
    }

    #[test]
    fn lru_replacement() {
        let mut c = tiny();
        // Three lines mapping to the same set (set stride = 4 sets * 64B = 256B).
        let (a, b, d) = (0x0000u64, 0x0100, 0x0200);
        c.access(a, Access::Read);
        c.access(b, Access::Read);
        c.access(a, Access::Read); // a most recent; b is LRU
        c.access(d, Access::Read); // evicts b
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn dirty_eviction_yields_writeback() {
        let mut c = tiny();
        let (a, b, d) = (0x0000u64, 0x0100, 0x0200);
        c.access(a, Access::Write);
        c.access(b, Access::Read);
        // Evict a (LRU after touching b? a is LRU since b is newer).
        c.access(b, Access::Read);
        match c.access(d, Access::Read) {
            Outcome::Miss {
                writeback: Some(wb),
            } => assert_eq!(wb, a),
            other => panic!("expected dirty eviction, got {other:?}"),
        }
        assert_eq!(c.stats.writebacks, 1);
    }

    #[test]
    fn write_through_never_dirty() {
        let mut c = Cache::new(CacheConfig {
            write_back: false,
            ..*tiny().config()
        });
        let (a, b, d) = (0x0000u64, 0x0100, 0x0200);
        c.access(a, Access::Write);
        c.access(b, Access::Read);
        c.access(b, Access::Read);
        match c.access(d, Access::Read) {
            Outcome::Miss { writeback: None } => {}
            other => panic!("write-through must not write back, got {other:?}"),
        }
    }

    #[test]
    fn invalidate_removes_and_reports_dirty() {
        let mut c = tiny();
        c.access(0x40, Access::Write);
        assert_eq!(c.invalidate(0x40), Some(0x40));
        assert!(!c.probe(0x40));
        assert_eq!(c.invalidate(0x40), None); // already gone
        c.access(0x80, Access::Read);
        assert_eq!(c.invalidate(0x80), None); // clean
        assert_eq!(c.stats.invalidations, 2);
    }

    #[test]
    fn hit_rate_math() {
        let mut c = tiny();
        c.access(0x0, Access::Read); // miss
        c.access(0x0, Access::Read); // hit
        c.access(0x0, Access::Write); // hit
        c.access(0x1000, Access::Write); // miss
        assert_eq!(c.stats.accesses(), 4);
        assert_eq!(c.stats.hits(), 2);
        assert!((c.stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_bounded() {
        let mut c = tiny();
        for i in 0..1000u64 {
            c.access(i * 64, Access::Read);
        }
        assert_eq!(c.valid_lines(), c.capacity_lines());
    }

    #[test]
    fn full_associativity_within_set() {
        // 1 set, 4 ways.
        let mut c = Cache::new(CacheConfig {
            size_bytes: 256,
            assoc: 4,
            line_bytes: 64,
            latency_cycles: 1,
            write_back: true,
        });
        for i in 0..4u64 {
            c.access(i * 64, Access::Read);
        }
        for i in 0..4u64 {
            assert!(c.access(i * 64, Access::Read).is_hit());
        }
        c.access(4 * 64, Access::Read); // evicts line 0 (LRU)
        assert!(!c.probe(0));
        assert!(c.probe(64));
    }

    #[test]
    fn presets_validate() {
        for cfg in [
            CacheConfig::l1d_32k(),
            CacheConfig::l2_256k(),
            CacheConfig::l3_8m(),
        ] {
            cfg.validate();
            let _ = Cache::new(cfg);
        }
        assert_eq!(CacheConfig::l1d_32k().sets(), 64);
    }
}
