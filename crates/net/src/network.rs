//! Contention-aware network timing model.
//!
//! A virtual-cut-through approximation on top of a [`Topology`]: a message
//! serializes through its source NIC at the configured **injection
//! bandwidth** (the knob of the bandwidth-degradation study), then its head
//! traverses the route paying a per-hop latency while each directed link is
//! occupied for the message's serialization time — which is where contention
//! and hot links slow things down.

use crate::topology::{LinkId, Topology};
use serde::{Deserialize, Serialize};
use sst_core::time::SimTime;
use std::collections::HashMap;

/// Network machine parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetConfig {
    /// NIC injection bandwidth, bytes/sec (XE5 study: 3.2 GB/s full rate).
    pub injection_bw: f64,
    /// Link bandwidth, bytes/sec.
    pub link_bw: f64,
    /// Per-hop (router + wire) latency.
    pub hop_latency: SimTime,
    /// NIC/PCIe crossing latency.
    pub nic_latency: SimTime,
    /// Software send/receive overhead per message (the MPI stack).
    pub sw_overhead: SimTime,
}

impl NetConfig {
    /// Cray-XT5-like defaults: 3.2 GB/s injection, 9.6 GB/s links,
    /// ~100 ns hops, ~1 µs MPI overhead.
    pub fn xt5() -> NetConfig {
        NetConfig {
            injection_bw: 3.2e9,
            link_bw: 9.6e9,
            hop_latency: SimTime::ns(100),
            nic_latency: SimTime::ns(500),
            sw_overhead: SimTime::ns(800),
        }
    }

    /// QDR-InfiniBand-fat-tree-like defaults.
    pub fn qdr_fat_tree() -> NetConfig {
        NetConfig {
            injection_bw: 3.2e9,
            link_bw: 4.0e9,
            hop_latency: SimTime::ns(120),
            nic_latency: SimTime::ns(600),
            sw_overhead: SimTime::ns(900),
        }
    }

    /// Scale the injection bandwidth by `factor` (e.g. 0.5, 0.25, 0.125 for
    /// the degradation experiment), leaving everything else unchanged.
    pub fn with_injection_scale(mut self, factor: f64) -> NetConfig {
        assert!(factor > 0.0);
        self.injection_bw *= factor;
        self
    }

    fn ser_nic(&self, bytes: u64) -> SimTime {
        SimTime::ps((bytes as f64 / self.injection_bw * 1e12) as u64)
    }

    fn ser_link(&self, bytes: u64) -> SimTime {
        SimTime::ps((bytes as f64 / self.link_bw * 1e12) as u64)
    }
}

/// Aggregate network statistics.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct NetStats {
    pub messages: u64,
    pub bytes: u64,
    pub hops: u64,
    /// Sum of end-to-end message latencies (ps), for averaging.
    pub latency_ps_sum: u128,
}

impl NetStats {
    pub fn avg_latency(&self) -> SimTime {
        if self.messages == 0 {
            SimTime::ZERO
        } else {
            SimTime::ps((self.latency_ps_sum / self.messages as u128) as u64)
        }
    }
    pub fn avg_hops(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.hops as f64 / self.messages as f64
        }
    }
}

/// The network state: per-NIC and per-link busy horizons.
pub struct Network {
    topo: Box<dyn Topology>,
    pub cfg: NetConfig,
    nic_free: Vec<u64>,
    link_free: HashMap<LinkId, u64>,
    pub stats: NetStats,
}

/// Checkpoint form of [`Network`]: busy horizons and counters, with the
/// per-link map flattened in link-id order so identical states serialize
/// identically. Topology and config are rebuilt with the system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkState {
    nic_free: Vec<u64>,
    link_free: Vec<(LinkId, u64)>,
    stats: NetStats,
}

impl Network {
    pub fn new(topo: Box<dyn Topology>, cfg: NetConfig) -> Network {
        let n = topo.nodes() as usize;
        Network {
            topo,
            cfg,
            nic_free: vec![0; n],
            link_free: HashMap::new(),
            stats: NetStats::default(),
        }
    }

    pub fn nodes(&self) -> u32 {
        self.topo.nodes()
    }

    pub fn topology(&self) -> &dyn Topology {
        self.topo.as_ref()
    }

    /// Send `bytes` from `src` to `dst` starting at `now`; returns the time
    /// the last byte is available at the destination.
    ///
    /// Zero-byte messages still pay overhead and latency (they model
    /// synchronization traffic).
    pub fn send(&mut self, src: u32, dst: u32, bytes: u64, now: SimTime) -> SimTime {
        if src == dst {
            // Intra-node: just the software overheads.
            let done = now + self.cfg.sw_overhead;
            self.stats.messages += 1;
            self.stats.bytes += bytes;
            self.stats.latency_ps_sum += (done - now).as_ps() as u128;
            return done;
        }
        let route = self.topo.route(src, dst);
        let ser_nic = self.cfg.ser_nic(bytes);
        let ser_link = self.cfg.ser_link(bytes);

        // Source software overhead, then NIC injection (serialized per-node).
        let ready = (now + self.cfg.sw_overhead).as_ps();
        let inj_start = ready.max(self.nic_free[src as usize]);
        let inj_done = inj_start + ser_nic.as_ps();
        self.nic_free[src as usize] = inj_done;

        // Head moves hop by hop; each link is occupied for the message's
        // serialization time (virtual cut-through: serialization overlaps
        // the head's progress, so it is paid once at the end).
        let mut head = inj_start + self.cfg.nic_latency.as_ps();
        for l in &route {
            let free = self.link_free.entry(*l).or_insert(0);
            let depart = head.max(*free);
            *free = depart + ser_link.as_ps();
            head = depart + self.cfg.hop_latency.as_ps();
        }
        let tail = head
            + ser_link
                .as_ps()
                .max(ser_nic.as_ps().saturating_sub(self.cfg.nic_latency.as_ps()));
        let done = SimTime::ps(tail) + self.cfg.sw_overhead; // receive overhead

        self.stats.messages += 1;
        self.stats.bytes += bytes;
        self.stats.hops += route.len() as u64;
        self.stats.latency_ps_sum += (done - now).as_ps() as u128;
        done
    }

    /// Capture the mutable state for a checkpoint.
    pub fn save_state(&self) -> NetworkState {
        // Canonical order: HashMap iteration would leak allocator state
        // into the snapshot bytes.
        let mut link_free: Vec<(LinkId, u64)> =
            self.link_free.iter().map(|(l, t)| (*l, *t)).collect();
        link_free.sort_by_key(|(l, _)| l.0);
        NetworkState {
            nic_free: self.nic_free.clone(),
            link_free,
            stats: self.stats,
        }
    }

    /// Restore state captured by [`Network::save_state`]; panics if the
    /// snapshot came from a different-sized topology.
    pub fn load_state(&mut self, state: &NetworkState) {
        assert_eq!(
            state.nic_free.len(),
            self.nic_free.len(),
            "network snapshot node count mismatch"
        );
        self.nic_free = state.nic_free.clone();
        self.link_free = state.link_free.iter().copied().collect();
        self.stats = state.stats;
    }

    /// Unloaded small-message latency between two nodes (diagnostics).
    pub fn base_latency(&self, src: u32, dst: u32) -> SimTime {
        let hops = self.topo.route(src, dst).len() as u64;
        self.cfg.sw_overhead * 2 + self.cfg.nic_latency + self.cfg.hop_latency * hops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{FatTree, Torus3D};

    fn net() -> Network {
        Network::new(Box::new(Torus3D::new(4, 4, 4)), NetConfig::xt5())
    }

    #[test]
    fn zero_byte_message_pays_latency_only() {
        let mut n = net();
        let t = n.send(0, 1, 0, SimTime::ZERO);
        assert_eq!(t, n.base_latency(0, 1));
    }

    #[test]
    fn latency_grows_with_hops() {
        let mut n = net();
        let near = n.send(0, 1, 0, SimTime::ZERO);
        let far = n.send(0, 42, 0, SimTime::ZERO);
        assert!(far > near);
    }

    #[test]
    fn big_messages_pay_serialization() {
        let mut n = net();
        let small = n.send(0, 1, 8, SimTime::ZERO) - SimTime::ZERO;
        let mut n2 = net();
        let big = n2.send(0, 1, 3_200_000, SimTime::ZERO) - SimTime::ZERO;
        // 3.2 MB at 3.2 GB/s = 1 ms of injection serialization.
        assert!(big > small + SimTime::us(990));
    }

    #[test]
    fn injection_bandwidth_scales_message_time() {
        let bytes = 1_000_000u64;
        let mut full = Network::new(Box::new(Torus3D::new(4, 4, 4)), NetConfig::xt5());
        let mut eighth = Network::new(
            Box::new(Torus3D::new(4, 4, 4)),
            NetConfig::xt5().with_injection_scale(0.125),
        );
        let t_full = full.send(0, 1, bytes, SimTime::ZERO);
        let t_eighth = eighth.send(0, 1, bytes, SimTime::ZERO);
        let r = t_eighth.as_ps() as f64 / t_full.as_ps() as f64;
        assert!(
            r > 4.0,
            "1/8 injection should be much slower on big msgs: {r}"
        );
    }

    #[test]
    fn injection_bandwidth_irrelevant_for_tiny_messages() {
        let mut full = Network::new(Box::new(Torus3D::new(4, 4, 4)), NetConfig::xt5());
        let mut eighth = Network::new(
            Box::new(Torus3D::new(4, 4, 4)),
            NetConfig::xt5().with_injection_scale(0.125),
        );
        let t_full = full.send(0, 1, 64, SimTime::ZERO);
        let t_eighth = eighth.send(0, 1, 64, SimTime::ZERO);
        let r = t_eighth.as_ps() as f64 / t_full.as_ps() as f64;
        assert!(r < 1.05, "latency-bound messages should not care: {r}");
    }

    #[test]
    fn nic_serializes_back_to_back_sends() {
        let mut n = net();
        let bytes = 320_000; // 100 us injection at 3.2 GB/s
        let t1 = n.send(0, 1, bytes, SimTime::ZERO);
        let t2 = n.send(0, 2, bytes, SimTime::ZERO);
        assert!(t2 > t1, "second send queues behind the first at the NIC");
        assert!(t2 >= t1 + SimTime::us(99));
    }

    #[test]
    fn shared_link_contention() {
        // Many nodes sending to node 0's neighborhood stress its links.
        let mut n = Network::new(Box::new(FatTree::new(4, 8, 1)), NetConfig::qdr_fat_tree());
        let bytes = 400_000;
        let solo = n.send(8, 0, bytes, SimTime::ZERO);
        // Pile five more flows onto the same destination leaf.
        let mut last = SimTime::ZERO;
        for s in 9..14 {
            last = n.send(s, 0, bytes, SimTime::ZERO);
        }
        assert!(last > solo, "overlapping flows must queue on the down-link");
    }

    #[test]
    fn stats_accumulate() {
        let mut n = net();
        n.send(0, 1, 100, SimTime::ZERO);
        n.send(1, 2, 200, SimTime::ZERO);
        n.send(3, 3, 50, SimTime::ZERO);
        assert_eq!(n.stats.messages, 3);
        assert_eq!(n.stats.bytes, 350);
        assert!(n.stats.avg_latency() > SimTime::ZERO);
        assert!(n.stats.avg_hops() > 0.0);
    }

    #[test]
    fn intra_node_is_cheap() {
        let mut n = net();
        let local = n.send(5, 5, 1 << 20, SimTime::ZERO);
        let remote = n.send(5, 6, 1 << 20, SimTime::ZERO);
        assert!(local < remote);
    }
}
