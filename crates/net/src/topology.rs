//! Network topologies.
//!
//! A [`Topology`] maps node pairs to deterministic routes — sequences of
//! directed [`LinkId`]s whose occupancy the network model tracks for
//! contention. Two families from the machines in the study are provided:
//! the 3-D torus (Cray XE6 "Gemini", Red Sky) and the two-level fat tree
//! (InfiniBand clusters).
//!
//! The second half of the module holds the **lazy component-graph
//! generators** ([`LazyTorus`], [`LazyDragonfly`], [`LazyFatTree`]): full
//! discrete-event systems of [`TrafficNode`]s, streamed into the parallel
//! engine through [`LazySystem`] so million-component machines build
//! without an eager boxed-component vector.

use serde::{Deserialize, Serialize};

/// A directed physical link, dense-numbered per topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub u32);

/// A routed path (excluding the NICs at the ends).
pub type Route = Vec<LinkId>;

/// A network shape with deterministic routing.
pub trait Topology: Send + Sync {
    /// Number of terminal nodes.
    fn nodes(&self) -> u32;
    /// Total directed links (dense `LinkId` space).
    fn links(&self) -> u32;
    /// The route from `src` to `dst`. Empty iff `src == dst`.
    fn route(&self, src: u32, dst: u32) -> Route;
    /// Maximum hop count between any pair.
    fn diameter(&self) -> u32;
    fn description(&self) -> String;
}

/// A 3-D torus with dimension-order (X, then Y, then Z) routing and
/// shortest-direction wrap, like the XE6's Gemini network.
#[derive(Debug, Clone)]
pub struct Torus3D {
    dims: [u32; 3],
}

impl Torus3D {
    pub fn new(x: u32, y: u32, z: u32) -> Torus3D {
        assert!(x >= 1 && y >= 1 && z >= 1);
        Torus3D { dims: [x, y, z] }
    }

    /// The most-cubic torus holding at least `n` nodes.
    pub fn fitting(n: u32) -> Torus3D {
        let side = (n as f64).cbrt().ceil() as u32;
        let mut dims = [side.max(1); 3];
        // Shrink dimensions while capacity still suffices.
        for d in (0..3).rev() {
            while dims[d] > 1 && (dims[0] * dims[1] * dims[2]) / dims[d] * (dims[d] - 1) >= n {
                dims[d] -= 1;
            }
        }
        Torus3D {
            dims: [dims[0], dims[1], dims[2]],
        }
    }

    /// The three dimension sizes.
    pub fn dims(&self) -> [u32; 3] {
        self.dims
    }

    #[inline]
    fn coords(&self, node: u32) -> [u32; 3] {
        let [x, y, _] = self.dims;
        [node % x, (node / x) % y, node / (x * y)]
    }

    /// Directed link leaving `node` in `dim` toward +1 (`up = true`) or -1.
    #[inline]
    fn link(&self, node: u32, dim: usize, up: bool) -> LinkId {
        LinkId(node * 6 + dim as u32 * 2 + up as u32)
    }

    /// Step from `c` along `dim` in the shorter wrap direction toward `t`;
    /// returns (next coordinate, went_up).
    fn step(&self, c: u32, t: u32, dim: usize) -> (u32, bool) {
        let n = self.dims[dim];
        let fwd = (t + n - c) % n; // distance going +1
        let up = fwd <= n - fwd && fwd != 0;
        if up {
            ((c + 1) % n, true)
        } else {
            ((c + n - 1) % n, false)
        }
    }
}

impl Topology for Torus3D {
    fn nodes(&self) -> u32 {
        self.dims.iter().product()
    }

    fn links(&self) -> u32 {
        self.nodes() * 6
    }

    fn route(&self, src: u32, dst: u32) -> Route {
        assert!(src < self.nodes() && dst < self.nodes());
        let mut route = Vec::new();
        let mut cur = self.coords(src);
        let target = self.coords(dst);
        let [x, y, _] = self.dims;
        for dim in 0..3 {
            while cur[dim] != target[dim] {
                let node = cur[0] + cur[1] * x + cur[2] * x * y;
                let (next, up) = self.step(cur[dim], target[dim], dim);
                route.push(self.link(node, dim, up));
                cur[dim] = next;
            }
        }
        route
    }

    fn diameter(&self) -> u32 {
        self.dims.iter().map(|d| d / 2).sum()
    }

    fn description(&self) -> String {
        format!(
            "3-D torus {}x{}x{}",
            self.dims[0], self.dims[1], self.dims[2]
        )
    }
}

/// A two-level fat tree (leaf + spine), like the QDR InfiniBand clusters:
/// `leaves` leaf switches × `nodes_per_leaf` nodes, fully connected to
/// `spines` spine switches. Spine selection hashes (src, dst) — static
/// (deterministic) load spreading.
#[derive(Debug, Clone)]
pub struct FatTree {
    leaves: u32,
    nodes_per_leaf: u32,
    spines: u32,
}

impl FatTree {
    pub fn new(leaves: u32, nodes_per_leaf: u32, spines: u32) -> FatTree {
        assert!(leaves >= 1 && nodes_per_leaf >= 1 && spines >= 1);
        FatTree {
            leaves,
            nodes_per_leaf,
            spines,
        }
    }

    /// A full-bisection two-level tree for at least `n` nodes with 36-port
    /// switches (18 down / 18 up), the usual QDR building block.
    pub fn fitting(n: u32) -> FatTree {
        let per = 18u32;
        let leaves = n.div_ceil(per).max(1);
        FatTree::new(leaves, per, leaves.max(1))
    }

    #[inline]
    fn leaf_of(&self, node: u32) -> u32 {
        node / self.nodes_per_leaf
    }

    // Dense link numbering:
    //   node->leaf   : [0, N)
    //   leaf->node   : [N, 2N)
    //   leaf->spine  : [2N, 2N + L*S)
    //   spine->leaf  : [2N + L*S, 2N + 2*L*S)
    fn node_up(&self, node: u32) -> LinkId {
        LinkId(node)
    }
    fn node_down(&self, node: u32) -> LinkId {
        LinkId(self.nodes() + node)
    }
    fn leaf_up(&self, leaf: u32, spine: u32) -> LinkId {
        LinkId(2 * self.nodes() + leaf * self.spines + spine)
    }
    fn leaf_down(&self, spine: u32, leaf: u32) -> LinkId {
        LinkId(2 * self.nodes() + self.leaves * self.spines + leaf * self.spines + spine)
    }
}

impl Topology for FatTree {
    fn nodes(&self) -> u32 {
        self.leaves * self.nodes_per_leaf
    }

    fn links(&self) -> u32 {
        2 * self.nodes() + 2 * self.leaves * self.spines
    }

    fn route(&self, src: u32, dst: u32) -> Route {
        assert!(src < self.nodes() && dst < self.nodes());
        if src == dst {
            return Vec::new();
        }
        let (ls, ld) = (self.leaf_of(src), self.leaf_of(dst));
        if ls == ld {
            return vec![self.node_up(src), self.node_down(dst)];
        }
        // Static spine selection by pair hash.
        let h = (src as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((dst as u64).wrapping_mul(0xC2B2AE3D27D4EB4F));
        let spine = ((h >> 32) % self.spines as u64) as u32;
        vec![
            self.node_up(src),
            self.leaf_up(ls, spine),
            self.leaf_down(spine, ld),
            self.node_down(dst),
        ]
    }

    fn diameter(&self) -> u32 {
        4
    }

    fn description(&self) -> String {
        format!(
            "fat tree {} leaves x {} nodes, {} spines",
            self.leaves, self.nodes_per_leaf, self.spines
        )
    }
}

// ---------------------------------------------------------------------------
// Lazy component-graph generators
//
// The [`Topology`] trait above describes *routes* for the timing model; the
// generators below describe *component graphs* for full discrete-event
// simulation. They implement [`LazySystem`], so the parallel engine streams
// components straight into per-rank slot tables — a 10^6-node torus never
// exists as one eager `Vec<Box<dyn Component>>`, and peak memory scales
// with the largest rank, not the whole machine.
//
// Every node is a [`TrafficNode`]: it seeds a configurable number of tokens
// at time zero and forwards each arriving token out a random live port
// until its TTL expires. The per-component RNG is seeded by component id,
// so serial, shared-memory-parallel, and TCP-parallel runs of the same
// shape are bit-identical.

use rand::Rng;
use sst_core::prelude::*;

/// A token bouncing through a generated topology.
#[derive(Debug, Serialize, Deserialize)]
struct LazyTok {
    ttl: u32,
}

/// The workload node used by every lazy generator: round-robins
/// `initial_tokens` over its live ports at setup, then forwards each
/// arriving token out a uniformly random live port with the TTL
/// decremented. Stateless between events, so the default (null) checkpoint
/// body is correct.
pub struct TrafficNode {
    /// The ports this node is actually wired on (varies per node: torus
    /// nodes in degenerate dims, dragonfly routers without a global link,
    /// fat-tree terminals).
    live_ports: Vec<PortId>,
    initial_tokens: u32,
    ttl: u32,
    forwarded: Option<StatId>,
}

impl TrafficNode {
    pub fn new(live_ports: Vec<PortId>, initial_tokens: u32, ttl: u32) -> TrafficNode {
        TrafficNode {
            live_ports,
            initial_tokens,
            ttl,
            forwarded: None,
        }
    }
}

impl Component for TrafficNode {
    fn setup(&mut self, ctx: &mut SimCtx<'_>) {
        register_payload::<LazyTok>("net.token");
        self.forwarded = Some(ctx.stat_counter("forwarded"));
        if self.live_ports.is_empty() {
            return;
        }
        for i in 0..self.initial_tokens {
            let port = self.live_ports[i as usize % self.live_ports.len()];
            ctx.send(port, LazyTok { ttl: self.ttl });
        }
    }

    fn on_event(&mut self, _port: PortId, payload: PayloadSlot, ctx: &mut SimCtx<'_>) {
        let tok = downcast::<LazyTok>(payload);
        ctx.add_stat(self.forwarded.unwrap(), 1);
        if tok.ttl > 0 {
            let out = self.live_ports[ctx.rng().gen::<u32>() as usize % self.live_ports.len()];
            ctx.send(out, LazyTok { ttl: tok.ttl - 1 });
        }
    }

    fn fuse_key(&self) -> Option<FuseKey> {
        Some(FuseKey::of::<Self>())
    }
    fn fuse_into(self: Box<Self>, group: &mut dyn FusedGroup) -> u32 {
        sst_core::specialize::absorb(group, *self)
    }
}

/// Traffic knobs shared by every lazy generator.
#[derive(Debug, Clone, Copy)]
pub struct LazyTraffic {
    pub tokens_per_node: u32,
    pub ttl: u32,
    /// Uniform link latency — it is also the parallel lookahead.
    pub latency: SimTime,
}

impl Default for LazyTraffic {
    fn default() -> Self {
        LazyTraffic {
            tokens_per_node: 2,
            ttl: 40,
            latency: SimTime::ns(20),
        }
    }
}

/// Lazy 3-D torus of [`TrafficNode`]s. Node `i` sits at
/// `(i % x, (i / x) % y, i / (x*y))`; port `2*dim` points +1 in `dim`,
/// `2*dim + 1` points -1. Size-1 dimensions are unwired; size-2 dimensions
/// get two parallel links per pair (each node's +port to the neighbor's
/// -port), keeping every port distinct.
///
/// The default block [`LazySystem::rank_of`] slices the row-major id space
/// into contiguous z-slabs — exactly the hand partition the eager pdes
/// experiment uses, so cross-rank links are the z-direction ones.
#[derive(Debug, Clone)]
pub struct LazyTorus {
    dims: [u32; 3],
    pub traffic: LazyTraffic,
}

impl LazyTorus {
    pub fn new(x: u32, y: u32, z: u32, traffic: LazyTraffic) -> LazyTorus {
        assert!(x >= 1 && y >= 1 && z >= 1);
        LazyTorus {
            dims: [x, y, z],
            traffic,
        }
    }

    /// The most-cubic torus holding at least `n` nodes.
    pub fn fitting(n: u32, traffic: LazyTraffic) -> LazyTorus {
        let d = Torus3D::fitting(n).dims();
        LazyTorus::new(d[0], d[1], d[2], traffic)
    }

    pub fn dims(&self) -> [u32; 3] {
        self.dims
    }

    #[inline]
    fn coords(&self, node: u32) -> [u32; 3] {
        let [x, y, _] = self.dims;
        [node % x, (node / x) % y, node / (x * y)]
    }

    #[inline]
    fn node_at(&self, c: [u32; 3]) -> u32 {
        c[0] + c[1] * self.dims[0] + c[2] * self.dims[0] * self.dims[1]
    }

    fn live_ports(&self) -> Vec<PortId> {
        let mut ports = Vec::new();
        for dim in 0..3 {
            if self.dims[dim] > 1 {
                ports.push(PortId(2 * dim as u16));
                ports.push(PortId(2 * dim as u16 + 1));
            }
        }
        ports
    }
}

impl LazySystem for LazyTorus {
    fn component_count(&self) -> u32 {
        self.dims.iter().product()
    }

    fn component_name(&self, i: u32) -> String {
        format!("n{i}")
    }

    fn create(&self, _i: u32) -> Box<dyn Component> {
        Box::new(TrafficNode::new(
            self.live_ports(),
            self.traffic.tokens_per_node,
            self.traffic.ttl,
        ))
    }

    fn for_each_link(&self, f: &mut dyn FnMut(LazyLink)) {
        let n = self.component_count();
        for node in 0..n {
            let c = self.coords(node);
            for dim in 0..3 {
                if self.dims[dim] <= 1 {
                    continue;
                }
                let mut p = c;
                p[dim] = (c[dim] + 1) % self.dims[dim];
                f(LazyLink {
                    a: (ComponentId(node), PortId(2 * dim as u16)),
                    b: (ComponentId(self.node_at(p)), PortId(2 * dim as u16 + 1)),
                    latency: self.traffic.latency,
                });
            }
        }
    }
}

/// Lazy dragonfly of [`TrafficNode`] routers: `groups` groups of
/// `routers_per_group` routers. Within a group the routers are fully
/// connected (local port = peer's in-group index); router `r` of group `i`
/// carries the global link to every group `j != i` with `j % a == r`
/// (global port = `a + j`), the standard balanced arrangement.
#[derive(Debug, Clone)]
pub struct LazyDragonfly {
    groups: u32,
    routers_per_group: u32,
    pub traffic: LazyTraffic,
}

impl LazyDragonfly {
    pub fn new(groups: u32, routers_per_group: u32, traffic: LazyTraffic) -> LazyDragonfly {
        assert!(groups >= 1 && routers_per_group >= 1);
        LazyDragonfly {
            groups,
            routers_per_group,
            traffic,
        }
    }

    /// A dragonfly with `a = g` holding at least `n` routers (the balanced
    /// square arrangement).
    pub fn fitting(n: u32, traffic: LazyTraffic) -> LazyDragonfly {
        let side = (n as f64).sqrt().ceil().max(1.0) as u32;
        LazyDragonfly::new(side, side, traffic)
    }

    pub fn shape(&self) -> (u32, u32) {
        (self.groups, self.routers_per_group)
    }

    fn live_ports(&self, i: u32) -> Vec<PortId> {
        let a = self.routers_per_group;
        let (group, local) = (i / a, i % a);
        let mut ports = Vec::new();
        for peer in 0..a {
            if peer != local {
                ports.push(PortId(peer as u16));
            }
        }
        for j in 0..self.groups {
            if j != group && j % a == local {
                ports.push(PortId((a + j) as u16));
            }
        }
        ports
    }
}

impl LazySystem for LazyDragonfly {
    fn component_count(&self) -> u32 {
        self.groups * self.routers_per_group
    }

    fn component_name(&self, i: u32) -> String {
        let a = self.routers_per_group;
        format!("g{}r{}", i / a, i % a)
    }

    fn create(&self, i: u32) -> Box<dyn Component> {
        Box::new(TrafficNode::new(
            self.live_ports(i),
            self.traffic.tokens_per_node,
            self.traffic.ttl,
        ))
    }

    fn for_each_link(&self, f: &mut dyn FnMut(LazyLink)) {
        let a = self.routers_per_group;
        // Local all-to-all within each group.
        for g in 0..self.groups {
            for i in 0..a {
                for j in (i + 1)..a {
                    f(LazyLink {
                        a: (ComponentId(g * a + i), PortId(j as u16)),
                        b: (ComponentId(g * a + j), PortId(i as u16)),
                        latency: self.traffic.latency,
                    });
                }
            }
        }
        // One global link per group pair, attached to the responsible
        // router on each side.
        for i in 0..self.groups {
            for j in (i + 1)..self.groups {
                f(LazyLink {
                    a: (ComponentId(i * a + j % a), PortId((a + j) as u16)),
                    b: (ComponentId(j * a + i % a), PortId((a + i) as u16)),
                    latency: self.traffic.latency,
                });
            }
        }
    }

    /// Groups are contiguous in the id space, so the default block split
    /// already keeps them together; made explicit for documentation.
    fn rank_of(&self, i: u32, n_ranks: u32) -> u32 {
        let n = self.component_count();
        let per = n.div_ceil(n_ranks).max(1);
        (i / per).min(n_ranks - 1)
    }
}

/// Lazy two-level fat tree of [`TrafficNode`]s: `leaves * nodes_per_leaf`
/// terminals (ids first), then the leaf switches, then the spines.
/// Terminal port 0 goes up to its leaf; a leaf's ports are `m` down-ports
/// followed by `s` up-ports; a spine has one port per leaf.
#[derive(Debug, Clone)]
pub struct LazyFatTree {
    leaves: u32,
    nodes_per_leaf: u32,
    spines: u32,
    pub traffic: LazyTraffic,
}

impl LazyFatTree {
    pub fn new(leaves: u32, nodes_per_leaf: u32, spines: u32, traffic: LazyTraffic) -> LazyFatTree {
        assert!(leaves >= 1 && nodes_per_leaf >= 1 && spines >= 1);
        // Port ids are u16: a leaf needs m + s ports, a spine needs L.
        assert!(nodes_per_leaf + spines <= u16::MAX as u32 && leaves <= u16::MAX as u32);
        LazyFatTree {
            leaves,
            nodes_per_leaf,
            spines,
            traffic,
        }
    }

    /// A full-bisection two-level tree for at least `n` terminals with
    /// 36-port switches (18 down / 18 up).
    pub fn fitting(n: u32, traffic: LazyTraffic) -> LazyFatTree {
        let per = 18u32;
        let leaves = n.div_ceil(per).max(1);
        LazyFatTree::new(leaves, per, leaves, traffic)
    }

    pub fn shape(&self) -> (u32, u32, u32) {
        (self.leaves, self.nodes_per_leaf, self.spines)
    }

    fn terminals(&self) -> u32 {
        self.leaves * self.nodes_per_leaf
    }

    fn leaf_id(&self, l: u32) -> u32 {
        self.terminals() + l
    }

    fn spine_id(&self, s: u32) -> u32 {
        self.terminals() + self.leaves + s
    }
}

impl LazySystem for LazyFatTree {
    fn component_count(&self) -> u32 {
        self.terminals() + self.leaves + self.spines
    }

    fn component_name(&self, i: u32) -> String {
        let t = self.terminals();
        if i < t {
            format!("t{i}")
        } else if i < t + self.leaves {
            format!("leaf{}", i - t)
        } else {
            format!("spine{}", i - t - self.leaves)
        }
    }

    fn create(&self, i: u32) -> Box<dyn Component> {
        let t = self.terminals();
        let (ports, tokens) = if i < t {
            // Terminals inject the traffic; switches only forward.
            (vec![PortId(0)], self.traffic.tokens_per_node)
        } else if i < t + self.leaves {
            let m = self.nodes_per_leaf as u16;
            let s = self.spines as u16;
            ((0..m + s).map(PortId).collect(), 0)
        } else {
            ((0..self.leaves as u16).map(PortId).collect(), 0)
        };
        Box::new(TrafficNode::new(ports, tokens, self.traffic.ttl))
    }

    fn for_each_link(&self, f: &mut dyn FnMut(LazyLink)) {
        let m = self.nodes_per_leaf;
        for term in 0..self.terminals() {
            let leaf = term / m;
            f(LazyLink {
                a: (ComponentId(term), PortId(0)),
                b: (ComponentId(self.leaf_id(leaf)), PortId((term % m) as u16)),
                latency: self.traffic.latency,
            });
        }
        for l in 0..self.leaves {
            for sp in 0..self.spines {
                f(LazyLink {
                    a: (ComponentId(self.leaf_id(l)), PortId((m + sp) as u16)),
                    b: (ComponentId(self.spine_id(sp)), PortId(l as u16)),
                    latency: self.traffic.latency,
                });
            }
        }
    }

    /// Keep each leaf and its terminals on one rank (the terminal↔leaf
    /// links are the bulk of the graph); spread leaves and spines evenly.
    fn rank_of(&self, i: u32, n_ranks: u32) -> u32 {
        let t = self.terminals();
        let (nr, l, of) = (n_ranks as u64, self.leaves as u64, self.spines as u64);
        if i < t {
            ((i / self.nodes_per_leaf) as u64 * nr / l) as u32
        } else if i < t + self.leaves {
            ((i - t) as u64 * nr / l) as u32
        } else {
            ((i - t - self.leaves) as u64 * nr / of) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torus_route_reaches_destination() {
        let t = Torus3D::new(4, 4, 4);
        for src in [0u32, 5, 21, 63] {
            for dst in [0u32, 13, 42, 63] {
                let r = t.route(src, dst);
                if src == dst {
                    assert!(r.is_empty());
                } else {
                    assert!(!r.is_empty());
                    assert!(r.len() as u32 <= t.diameter());
                }
            }
        }
    }

    #[test]
    fn torus_wraps_shortest_direction() {
        let t = Torus3D::new(8, 1, 1);
        // 0 -> 6: going down (wrap) is 2 hops vs 6 hops up.
        assert_eq!(t.route(0, 6).len(), 2);
        assert_eq!(t.route(0, 3).len(), 3);
        assert_eq!(t.route(0, 4).len(), 4);
    }

    #[test]
    fn torus_adjacent_is_one_hop() {
        let t = Torus3D::new(4, 4, 4);
        assert_eq!(t.route(0, 1).len(), 1);
        assert_eq!(t.route(0, 4).len(), 1); // +y
        assert_eq!(t.route(0, 16).len(), 1); // +z
    }

    #[test]
    fn torus_diameter_bound_holds_exhaustively() {
        let t = Torus3D::new(3, 4, 2);
        let n = t.nodes();
        for s in 0..n {
            for d in 0..n {
                assert!(t.route(s, d).len() as u32 <= t.diameter());
            }
        }
    }

    #[test]
    fn torus_fitting_capacity() {
        for n in [1u32, 8, 27, 100, 1000] {
            let t = Torus3D::fitting(n);
            assert!(t.nodes() >= n, "fitting({n}) gave {}", t.nodes());
        }
    }

    #[test]
    fn torus_link_ids_in_range() {
        let t = Torus3D::new(4, 4, 4);
        for s in 0..t.nodes() {
            for d in 0..t.nodes() {
                for l in t.route(s, d) {
                    assert!(l.0 < t.links());
                }
            }
        }
    }

    #[test]
    fn fat_tree_same_leaf_two_hops() {
        let f = FatTree::new(4, 18, 4);
        let r = f.route(0, 1);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn fat_tree_cross_leaf_four_hops() {
        let f = FatTree::new(4, 18, 4);
        let r = f.route(0, 19);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn fat_tree_self_route_empty() {
        let f = FatTree::new(4, 18, 4);
        assert!(f.route(7, 7).is_empty());
    }

    #[test]
    fn fat_tree_link_ids_in_range() {
        let f = FatTree::new(3, 4, 2);
        for s in 0..f.nodes() {
            for d in 0..f.nodes() {
                for l in f.route(s, d) {
                    assert!(l.0 < f.links(), "link {l:?} out of range");
                }
            }
        }
    }

    #[test]
    fn fat_tree_fitting_capacity() {
        for n in [1u32, 18, 19, 100, 1024] {
            let f = FatTree::fitting(n);
            assert!(f.nodes() >= n);
        }
    }

    #[test]
    fn fat_tree_spreads_spines() {
        let f = FatTree::new(8, 18, 8);
        let mut used = std::collections::HashSet::new();
        for dst in 18..(18 * 8) {
            if let Some(l) = f.route(0, dst).get(1) {
                used.insert(*l);
            }
        }
        assert!(
            used.len() >= 4,
            "spine selection should spread: {}",
            used.len()
        );
    }

    // -- lazy generators --------------------------------------------------

    fn quick_traffic() -> LazyTraffic {
        LazyTraffic {
            tokens_per_node: 2,
            ttl: 24,
            latency: SimTime::ns(10),
        }
    }

    /// Serial-materialized vs lazy-parallel, across transports: every run
    /// of the same generated system must be bit-identical.
    fn assert_lazy_matches_serial(sys: &dyn LazySystem) {
        let serial = Engine::new(SystemBuilder::materialize(sys)).run(RunLimit::Exhaust);
        assert!(serial.events > 0, "workload must be non-trivial");
        for ranks in [1u32, 2, 4] {
            for transport in [TransportKind::SharedMem, TransportKind::TcpLoopback] {
                let cfg = ParallelConfig {
                    ranks,
                    transport,
                    ..ParallelConfig::default()
                };
                let report = ParallelEngine::lazy(sys, cfg).run(RunLimit::Exhaust);
                assert_eq!(
                    (serial.events, serial.end_time, serial.clock_ticks),
                    (report.events, report.end_time, report.clock_ticks),
                    "{ranks} ranks over {transport} diverged from serial"
                );
            }
        }
    }

    #[test]
    fn lazy_torus_matches_serial_on_all_transports() {
        assert_lazy_matches_serial(&LazyTorus::new(4, 3, 2, quick_traffic()));
    }

    #[test]
    fn lazy_dragonfly_matches_serial_on_all_transports() {
        assert_lazy_matches_serial(&LazyDragonfly::new(5, 4, quick_traffic()));
    }

    #[test]
    fn lazy_fat_tree_matches_serial_on_all_transports() {
        assert_lazy_matches_serial(&LazyFatTree::new(4, 3, 2, quick_traffic()));
    }

    #[test]
    fn degenerate_torus_dims_stay_consistent() {
        // A 6x1x1 torus is a ring: size-1 dims must not emit links.
        let sys = LazyTorus::new(6, 1, 1, quick_traffic());
        let mut links = 0;
        sys.for_each_link(&mut |l| {
            assert_ne!(l.a.0, l.b.0);
            links += 1;
        });
        assert_eq!(links, 6);
        assert_lazy_matches_serial(&sys);
    }

    #[test]
    fn dragonfly_links_are_exact() {
        let (g, a) = (6u32, 3u32);
        let sys = LazyDragonfly::new(g, a, quick_traffic());
        let mut links = 0;
        let mut seen = std::collections::HashSet::new();
        sys.for_each_link(&mut |l| {
            assert!(seen.insert((l.a.0, l.a.1)), "port reused: {:?}", l.a);
            assert!(seen.insert((l.b.0, l.b.1)), "port reused: {:?}", l.b);
            links += 1;
        });
        // g groups of a-choose-2 local links + one global per group pair.
        assert_eq!(links, g * a * (a - 1) / 2 + g * (g - 1) / 2);
    }

    /// The acceptance-criterion smoke: a >=10^5-component torus streams
    /// through the lazy path and partitions over 16 ranks without ever
    /// materializing an eager component vector.
    #[test]
    fn lazy_torus_scales_to_1e5_components() {
        let sys = LazyTorus::fitting(100_000, quick_traffic());
        let n: u32 = sys.dims().iter().product();
        assert!(n >= 100_000, "fitting() returned only {n} nodes");
        let engine = ParallelEngine::lazy(
            &sys,
            ParallelConfig {
                ranks: 16,
                ..ParallelConfig::default()
            },
        );
        let s = engine.partition_summary();
        assert_eq!(s.components, n as u64);
        assert_eq!(s.rank_components.len(), 16);
        assert!(s.rank_components.iter().all(|&c| c > 0));
        assert_eq!(s.min_lookahead_ps, Some(SimTime::ns(10).as_ps()));
    }

    #[test]
    fn fat_tree_rank_of_keeps_terminals_with_their_leaf() {
        let sys = LazyFatTree::new(8, 4, 4, quick_traffic());
        let n = sys.component_count();
        for ranks in [2u32, 4] {
            for i in 0..n {
                assert!(sys.rank_of(i, ranks) < ranks);
            }
            for term in 0..sys.terminals() {
                let leaf = sys.leaf_id(term / sys.nodes_per_leaf);
                assert_eq!(sys.rank_of(term, ranks), sys.rank_of(leaf, ranks));
            }
        }
    }
}
