//! Network topologies.
//!
//! A [`Topology`] maps node pairs to deterministic routes — sequences of
//! directed [`LinkId`]s whose occupancy the network model tracks for
//! contention. Two families from the machines in the study are provided:
//! the 3-D torus (Cray XE6 "Gemini", Red Sky) and the two-level fat tree
//! (InfiniBand clusters).

use serde::{Deserialize, Serialize};

/// A directed physical link, dense-numbered per topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub u32);

/// A routed path (excluding the NICs at the ends).
pub type Route = Vec<LinkId>;

/// A network shape with deterministic routing.
pub trait Topology: Send + Sync {
    /// Number of terminal nodes.
    fn nodes(&self) -> u32;
    /// Total directed links (dense `LinkId` space).
    fn links(&self) -> u32;
    /// The route from `src` to `dst`. Empty iff `src == dst`.
    fn route(&self, src: u32, dst: u32) -> Route;
    /// Maximum hop count between any pair.
    fn diameter(&self) -> u32;
    fn description(&self) -> String;
}

/// A 3-D torus with dimension-order (X, then Y, then Z) routing and
/// shortest-direction wrap, like the XE6's Gemini network.
#[derive(Debug, Clone)]
pub struct Torus3D {
    dims: [u32; 3],
}

impl Torus3D {
    pub fn new(x: u32, y: u32, z: u32) -> Torus3D {
        assert!(x >= 1 && y >= 1 && z >= 1);
        Torus3D { dims: [x, y, z] }
    }

    /// The most-cubic torus holding at least `n` nodes.
    pub fn fitting(n: u32) -> Torus3D {
        let side = (n as f64).cbrt().ceil() as u32;
        let mut dims = [side.max(1); 3];
        // Shrink dimensions while capacity still suffices.
        for d in (0..3).rev() {
            while dims[d] > 1 && (dims[0] * dims[1] * dims[2]) / dims[d] * (dims[d] - 1) >= n {
                dims[d] -= 1;
            }
        }
        Torus3D {
            dims: [dims[0], dims[1], dims[2]],
        }
    }

    #[inline]
    fn coords(&self, node: u32) -> [u32; 3] {
        let [x, y, _] = self.dims;
        [node % x, (node / x) % y, node / (x * y)]
    }

    /// Directed link leaving `node` in `dim` toward +1 (`up = true`) or -1.
    #[inline]
    fn link(&self, node: u32, dim: usize, up: bool) -> LinkId {
        LinkId(node * 6 + dim as u32 * 2 + up as u32)
    }

    /// Step from `c` along `dim` in the shorter wrap direction toward `t`;
    /// returns (next coordinate, went_up).
    fn step(&self, c: u32, t: u32, dim: usize) -> (u32, bool) {
        let n = self.dims[dim];
        let fwd = (t + n - c) % n; // distance going +1
        let up = fwd <= n - fwd && fwd != 0;
        if up {
            ((c + 1) % n, true)
        } else {
            ((c + n - 1) % n, false)
        }
    }
}

impl Topology for Torus3D {
    fn nodes(&self) -> u32 {
        self.dims.iter().product()
    }

    fn links(&self) -> u32 {
        self.nodes() * 6
    }

    fn route(&self, src: u32, dst: u32) -> Route {
        assert!(src < self.nodes() && dst < self.nodes());
        let mut route = Vec::new();
        let mut cur = self.coords(src);
        let target = self.coords(dst);
        let [x, y, _] = self.dims;
        for dim in 0..3 {
            while cur[dim] != target[dim] {
                let node = cur[0] + cur[1] * x + cur[2] * x * y;
                let (next, up) = self.step(cur[dim], target[dim], dim);
                route.push(self.link(node, dim, up));
                cur[dim] = next;
            }
        }
        route
    }

    fn diameter(&self) -> u32 {
        self.dims.iter().map(|d| d / 2).sum()
    }

    fn description(&self) -> String {
        format!(
            "3-D torus {}x{}x{}",
            self.dims[0], self.dims[1], self.dims[2]
        )
    }
}

/// A two-level fat tree (leaf + spine), like the QDR InfiniBand clusters:
/// `leaves` leaf switches × `nodes_per_leaf` nodes, fully connected to
/// `spines` spine switches. Spine selection hashes (src, dst) — static
/// (deterministic) load spreading.
#[derive(Debug, Clone)]
pub struct FatTree {
    leaves: u32,
    nodes_per_leaf: u32,
    spines: u32,
}

impl FatTree {
    pub fn new(leaves: u32, nodes_per_leaf: u32, spines: u32) -> FatTree {
        assert!(leaves >= 1 && nodes_per_leaf >= 1 && spines >= 1);
        FatTree {
            leaves,
            nodes_per_leaf,
            spines,
        }
    }

    /// A full-bisection two-level tree for at least `n` nodes with 36-port
    /// switches (18 down / 18 up), the usual QDR building block.
    pub fn fitting(n: u32) -> FatTree {
        let per = 18u32;
        let leaves = n.div_ceil(per).max(1);
        FatTree::new(leaves, per, leaves.max(1))
    }

    #[inline]
    fn leaf_of(&self, node: u32) -> u32 {
        node / self.nodes_per_leaf
    }

    // Dense link numbering:
    //   node->leaf   : [0, N)
    //   leaf->node   : [N, 2N)
    //   leaf->spine  : [2N, 2N + L*S)
    //   spine->leaf  : [2N + L*S, 2N + 2*L*S)
    fn node_up(&self, node: u32) -> LinkId {
        LinkId(node)
    }
    fn node_down(&self, node: u32) -> LinkId {
        LinkId(self.nodes() + node)
    }
    fn leaf_up(&self, leaf: u32, spine: u32) -> LinkId {
        LinkId(2 * self.nodes() + leaf * self.spines + spine)
    }
    fn leaf_down(&self, spine: u32, leaf: u32) -> LinkId {
        LinkId(2 * self.nodes() + self.leaves * self.spines + leaf * self.spines + spine)
    }
}

impl Topology for FatTree {
    fn nodes(&self) -> u32 {
        self.leaves * self.nodes_per_leaf
    }

    fn links(&self) -> u32 {
        2 * self.nodes() + 2 * self.leaves * self.spines
    }

    fn route(&self, src: u32, dst: u32) -> Route {
        assert!(src < self.nodes() && dst < self.nodes());
        if src == dst {
            return Vec::new();
        }
        let (ls, ld) = (self.leaf_of(src), self.leaf_of(dst));
        if ls == ld {
            return vec![self.node_up(src), self.node_down(dst)];
        }
        // Static spine selection by pair hash.
        let h = (src as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((dst as u64).wrapping_mul(0xC2B2AE3D27D4EB4F));
        let spine = ((h >> 32) % self.spines as u64) as u32;
        vec![
            self.node_up(src),
            self.leaf_up(ls, spine),
            self.leaf_down(spine, ld),
            self.node_down(dst),
        ]
    }

    fn diameter(&self) -> u32 {
        4
    }

    fn description(&self) -> String {
        format!(
            "fat tree {} leaves x {} nodes, {} spines",
            self.leaves, self.nodes_per_leaf, self.spines
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torus_route_reaches_destination() {
        let t = Torus3D::new(4, 4, 4);
        for src in [0u32, 5, 21, 63] {
            for dst in [0u32, 13, 42, 63] {
                let r = t.route(src, dst);
                if src == dst {
                    assert!(r.is_empty());
                } else {
                    assert!(!r.is_empty());
                    assert!(r.len() as u32 <= t.diameter());
                }
            }
        }
    }

    #[test]
    fn torus_wraps_shortest_direction() {
        let t = Torus3D::new(8, 1, 1);
        // 0 -> 6: going down (wrap) is 2 hops vs 6 hops up.
        assert_eq!(t.route(0, 6).len(), 2);
        assert_eq!(t.route(0, 3).len(), 3);
        assert_eq!(t.route(0, 4).len(), 4);
    }

    #[test]
    fn torus_adjacent_is_one_hop() {
        let t = Torus3D::new(4, 4, 4);
        assert_eq!(t.route(0, 1).len(), 1);
        assert_eq!(t.route(0, 4).len(), 1); // +y
        assert_eq!(t.route(0, 16).len(), 1); // +z
    }

    #[test]
    fn torus_diameter_bound_holds_exhaustively() {
        let t = Torus3D::new(3, 4, 2);
        let n = t.nodes();
        for s in 0..n {
            for d in 0..n {
                assert!(t.route(s, d).len() as u32 <= t.diameter());
            }
        }
    }

    #[test]
    fn torus_fitting_capacity() {
        for n in [1u32, 8, 27, 100, 1000] {
            let t = Torus3D::fitting(n);
            assert!(t.nodes() >= n, "fitting({n}) gave {}", t.nodes());
        }
    }

    #[test]
    fn torus_link_ids_in_range() {
        let t = Torus3D::new(4, 4, 4);
        for s in 0..t.nodes() {
            for d in 0..t.nodes() {
                for l in t.route(s, d) {
                    assert!(l.0 < t.links());
                }
            }
        }
    }

    #[test]
    fn fat_tree_same_leaf_two_hops() {
        let f = FatTree::new(4, 18, 4);
        let r = f.route(0, 1);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn fat_tree_cross_leaf_four_hops() {
        let f = FatTree::new(4, 18, 4);
        let r = f.route(0, 19);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn fat_tree_self_route_empty() {
        let f = FatTree::new(4, 18, 4);
        assert!(f.route(7, 7).is_empty());
    }

    #[test]
    fn fat_tree_link_ids_in_range() {
        let f = FatTree::new(3, 4, 2);
        for s in 0..f.nodes() {
            for d in 0..f.nodes() {
                for l in f.route(s, d) {
                    assert!(l.0 < f.links(), "link {l:?} out of range");
                }
            }
        }
    }

    #[test]
    fn fat_tree_fitting_capacity() {
        for n in [1u32, 18, 19, 100, 1024] {
            let f = FatTree::fitting(n);
            assert!(f.nodes() >= n);
        }
    }

    #[test]
    fn fat_tree_spreads_spines() {
        let f = FatTree::new(8, 18, 8);
        let mut used = std::collections::HashSet::new();
        for dst in 18..(18 * 8) {
            if let Some(l) = f.route(0, dst).get(1) {
                used.insert(*l);
            }
        }
        assert!(
            used.len() >= 4,
            "spine selection should spread: {}",
            used.len()
        );
    }
}
