//! Fidelity-selectable fabric model.
//!
//! [`FabricModel`] is the network-side trait of the multi-fidelity layer:
//! run a set of scripted packet flows, get delivery counts and transit
//! statistics. Two implementations:
//!
//! * [`AnalyticFabric`] — replays the flows' injections in global time order
//!   directly against the [`Network`] timing model.
//! * [`DesFabric`] — wires [`TrafficGen`] endpoints to a
//!   [`FabricComponent`] and drives them through an [`Engine`], extracting
//!   results from the [`StatsSnapshot`].
//!
//! Both paths share the same contention-aware timing model, and endpoint
//! links shift every arrival by the same constant, so per-packet transit
//! times agree almost exactly — the differential test below pins them
//! within 2%.

use crate::components::{FabricComponent, TrafficGen};
use crate::network::{NetConfig, Network};
use crate::topology::Torus3D;
use sst_core::prelude::*;

/// One scripted flow: `count` packets of `bytes` from `src` to `dst`, one
/// injected every `gap` starting at `gap`.
#[derive(Debug, Clone, Copy)]
pub struct Flow {
    pub src: u32,
    pub dst: u32,
    pub bytes: u64,
    pub count: u64,
    pub gap: SimTime,
}

/// Result of driving flows through a fabric model.
#[derive(Debug, Clone)]
pub struct FabricRunResult {
    /// Packets that crossed the fabric.
    pub delivered: u64,
    /// Mean fabric transit time (injection to last byte out), ns.
    pub mean_transit_ns: f64,
    /// Completion time of the last delivery.
    pub end: SimTime,
}

/// A switch fabric at some fidelity.
pub trait FabricModel {
    fn fidelity(&self) -> Fidelity;
    /// Run the flows to completion. Each `src` node may source at most one
    /// flow (an endpoint owns its fabric port).
    fn run_flows(&mut self, flows: &[Flow]) -> FabricRunResult;
}

/// Pick a fabric-model implementation for `fidelity`, on a 3-D torus of the
/// given dimensions.
pub fn fabric_model(
    dims: (u32, u32, u32),
    cfg: NetConfig,
    fidelity: Fidelity,
) -> Box<dyn FabricModel> {
    match fidelity {
        Fidelity::Analytic => Box::new(AnalyticFabric::torus(dims, cfg)),
        Fidelity::Des => Box::new(DesFabric::torus(dims, cfg)),
    }
}

/// Analytic fidelity: time-ordered replay against the timing model.
pub struct AnalyticFabric {
    net: Network,
}

impl AnalyticFabric {
    pub fn torus(dims: (u32, u32, u32), cfg: NetConfig) -> AnalyticFabric {
        AnalyticFabric {
            net: Network::new(Box::new(Torus3D::new(dims.0, dims.1, dims.2)), cfg),
        }
    }
}

impl FabricModel for AnalyticFabric {
    fn fidelity(&self) -> Fidelity {
        Fidelity::Analytic
    }

    fn run_flows(&mut self, flows: &[Flow]) -> FabricRunResult {
        // Gather every injection, then process in global time order so link
        // occupancy sees the same interleaving the event queue would.
        let mut injections: Vec<(SimTime, usize)> = Vec::new();
        for (fi, f) in flows.iter().enumerate() {
            for k in 0..f.count {
                injections.push((f.gap * (k + 1), fi));
            }
        }
        injections.sort_by_key(|&(t, fi)| (t, fi));

        let mut delivered = 0u64;
        let mut transit_sum = 0.0;
        let mut end = SimTime::ZERO;
        for (t, fi) in injections {
            let f = &flows[fi];
            let done = self.net.send(f.src, f.dst, f.bytes, t);
            delivered += 1;
            transit_sum += (done - t).as_ns_f64();
            end = end.max(done);
        }
        FabricRunResult {
            delivered,
            mean_transit_ns: if delivered > 0 {
                transit_sum / delivered as f64
            } else {
                0.0
            },
            end,
        }
    }
}

/// DES fidelity: traffic generators and the fabric component on an engine.
/// Each `run_flows` call builds and runs a fresh system.
pub struct DesFabric {
    dims: (u32, u32, u32),
    cfg: NetConfig,
    /// Endpoint link latency (constant for every endpoint, so fabric-level
    /// contention is time-shifted, not reshaped).
    pub link_latency: SimTime,
}

impl DesFabric {
    pub fn torus(dims: (u32, u32, u32), cfg: NetConfig) -> DesFabric {
        DesFabric {
            dims,
            cfg,
            link_latency: SimTime::ns(5),
        }
    }
}

impl FabricModel for DesFabric {
    fn fidelity(&self) -> Fidelity {
        Fidelity::Des
    }

    fn run_flows(&mut self, flows: &[Flow]) -> FabricRunResult {
        let nodes = self.dims.0 * self.dims.1 * self.dims.2;
        let mut b = SystemBuilder::new();
        let fabric = b.add(
            "fabric",
            FabricComponent::new(Network::new(
                Box::new(Torus3D::new(self.dims.0, self.dims.1, self.dims.2)),
                self.cfg.clone(),
            )),
        );
        let mut sources = std::collections::BTreeSet::new();
        for (i, f) in flows.iter().enumerate() {
            assert!(f.src < nodes && f.dst < nodes, "flow endpoints off-torus");
            assert!(
                sources.insert(f.src),
                "node {} sources more than one flow",
                f.src
            );
            let tg = b.add(
                format!("tg{i}"),
                TrafficGen::new(f.src, f.dst, f.bytes, f.count, f.gap),
            );
            b.link(
                (tg, TrafficGen::NET),
                (fabric, FabricComponent::port(f.src)),
                self.link_latency,
            );
        }
        // Pure destinations still need a connected port to receive.
        let dests: std::collections::BTreeSet<u32> = flows.iter().map(|f| f.dst).collect();
        for (i, d) in dests.difference(&sources).enumerate() {
            let sink = b.add(
                format!("sink{i}"),
                TrafficGen::new(*d, (*d + 1) % nodes, 0, 0, SimTime::us(1)),
            );
            b.link(
                (sink, TrafficGen::NET),
                (fabric, FabricComponent::port(*d)),
                self.link_latency,
            );
        }
        let report = Engine::new(b).run(RunLimit::Exhaust);
        FabricRunResult {
            delivered: report.stats.counter("fabric", "delivered"),
            mean_transit_ns: report.stats.mean("fabric", "transit_ns").unwrap_or(0.0),
            end: report.end_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flows() -> Vec<Flow> {
        vec![
            Flow {
                src: 0,
                dst: 7,
                bytes: 4096,
                count: 40,
                gap: SimTime::us(1),
            },
            Flow {
                src: 3,
                dst: 4,
                bytes: 64 << 10,
                count: 20,
                gap: SimTime::us(2),
            },
            Flow {
                src: 5,
                dst: 0,
                bytes: 512,
                count: 60,
                gap: SimTime::ns(700),
            },
        ]
    }

    #[test]
    fn fidelities_agree_on_transit_and_counts() {
        let mut ana = fabric_model((2, 2, 2), NetConfig::xt5(), Fidelity::Analytic);
        let mut des = fabric_model((2, 2, 2), NetConfig::xt5(), Fidelity::Des);
        assert_eq!(ana.fidelity(), Fidelity::Analytic);
        assert_eq!(des.fidelity(), Fidelity::Des);
        let ra = ana.run_flows(&flows());
        let rd = des.run_flows(&flows());
        assert_eq!(ra.delivered, 120);
        assert_eq!(ra.delivered, rd.delivered);
        let rel = (ra.mean_transit_ns - rd.mean_transit_ns).abs()
            / ra.mean_transit_ns.max(rd.mean_transit_ns);
        assert!(
            rel < 0.02,
            "transit means diverge: analytic={} des={}",
            ra.mean_transit_ns,
            rd.mean_transit_ns
        );
        // DES end time additionally pays the endpoint links.
        assert!(rd.end >= ra.end);
        assert!(
            (rd.end.as_ns_f64() - ra.end.as_ns_f64()) < 1000.0,
            "end times far apart: {} vs {}",
            ra.end,
            rd.end
        );
    }

    #[test]
    fn des_fabric_is_deterministic() {
        let run = || {
            let mut des = fabric_model((2, 2, 2), NetConfig::xt5(), Fidelity::Des);
            let r = des.run_flows(&flows());
            (r.delivered, r.end, r.mean_transit_ns.to_bits())
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "sources more than one flow")]
    fn des_rejects_duplicate_sources() {
        let mut des = DesFabric::torus((2, 2, 2), NetConfig::xt5());
        let f = Flow {
            src: 1,
            dst: 2,
            bytes: 64,
            count: 1,
            gap: SimTime::us(1),
        };
        des.run_flows(&[f, f]);
    }
}
