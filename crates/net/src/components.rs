//! Discrete-event network components.
//!
//! For full-system DES simulations the network appears as components on
//! sst-core links, mirroring SST's Merlin/NIC split at an abstract level:
//!
//! * [`FabricComponent`] — the switch fabric: owns a [`Network`] timing
//!   model (topology, per-link occupancy, injection throttling) and delays
//!   each packet by the model's computed transit time.
//! * [`TrafficGen`] — a scripted endpoint: injects a configured pattern of
//!   packets and records end-to-end latencies. Useful both as a workload
//!   stand-in and as a network stress tool (the `sst run` path).

use crate::network::{NetConfig, Network, NetworkState};
use crate::topology::Torus3D;
use serde::{Deserialize, Serialize, Value};
use sst_core::config::ConfigError;
use sst_core::prelude::*;

/// A packet crossing the fabric.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Packet {
    pub src: u32,
    pub dst: u32,
    pub bytes: u64,
    /// Injection timestamp (set by the sender) for latency accounting.
    pub sent_at: SimTime,
}

/// The switch fabric as one component: endpoints connect to numbered ports;
/// port index = endpoint (node) id. A packet arriving on port `src` is
/// delivered out of port `dst` after the [`Network`] model's transit time.
pub struct FabricComponent {
    net: Network,
    delivered: Option<StatId>,
    transit_ns: Option<StatId>,
}

impl FabricComponent {
    pub fn new(net: Network) -> FabricComponent {
        FabricComponent {
            net,
            delivered: None,
            transit_ns: None,
        }
    }

    /// Port id for endpoint `node`.
    pub fn port(node: u32) -> PortId {
        PortId(node as u16)
    }
}

impl Component for FabricComponent {
    fn setup(&mut self, ctx: &mut SimCtx<'_>) {
        register_net_payloads();
        self.delivered = Some(ctx.stat_counter("delivered"));
        self.transit_ns = Some(ctx.stat_accumulator("transit_ns"));
    }

    fn on_event(&mut self, port: PortId, payload: PayloadSlot, ctx: &mut SimCtx<'_>) {
        let pkt = downcast::<Packet>(payload);
        debug_assert_eq!(port.0 as u32, pkt.src, "packet arrived on wrong port");
        let now = ctx.now();
        let done = self.net.send(pkt.src, pkt.dst, pkt.bytes, now);
        ctx.add_stat(self.delivered.unwrap(), 1);
        ctx.record_stat(self.transit_ns.unwrap(), (done - now).as_ns_f64());
        let out = Self::port(pkt.dst);
        if ctx.port_connected(out) {
            ctx.send_delayed(out, pkt, done - now);
        }
    }

    fn ports(&self) -> &'static [&'static str] {
        // Named ports are for config-file wiring of small systems; larger
        // systems wire fabric ports programmatically by index.
        &["p0", "p1", "p2", "p3", "p4", "p5", "p6", "p7"]
    }

    fn save_state(&self) -> Value {
        self.net.save_state().to_value()
    }

    fn load_state(&mut self, state: &Value) {
        let s = NetworkState::from_value(state).expect("malformed net.fabric state");
        self.net.load_state(&s);
    }
}

/// A scripted traffic endpoint: sends `count` packets of `bytes` to `dst`
/// every `gap`, and counts packets it receives.
pub struct TrafficGen {
    pub me: u32,
    pub dst: u32,
    pub bytes: u64,
    pub count: u64,
    pub gap: SimTime,
    sent: u64,
    sent_stat: Option<StatId>,
    recv_stat: Option<StatId>,
    rtt: Option<StatId>,
}

#[derive(Debug, Serialize, Deserialize)]
struct Fire;

/// Register the network payload codecs for engine checkpoints; called from
/// every sender's `setup()` (idempotent).
fn register_net_payloads() {
    register_payload::<Packet>("net.packet");
    register_payload::<Fire>("net.fire");
}

impl TrafficGen {
    pub const NET: PortId = PortId(0);

    pub fn new(me: u32, dst: u32, bytes: u64, count: u64, gap: SimTime) -> TrafficGen {
        TrafficGen {
            me,
            dst,
            bytes,
            count,
            gap,
            sent: 0,
            sent_stat: None,
            recv_stat: None,
            rtt: None,
        }
    }

    fn fire(&mut self, ctx: &mut SimCtx<'_>) {
        if self.sent >= self.count {
            return;
        }
        self.sent += 1;
        ctx.add_stat(self.sent_stat.unwrap(), 1);
        ctx.trace_mark("pkt_send", self.sent);
        let pkt = Packet {
            src: self.me,
            dst: self.dst,
            bytes: self.bytes,
            sent_at: ctx.now(),
        };
        ctx.send(Self::NET, pkt);
        if self.sent < self.count {
            ctx.schedule_self(self.gap, Fire);
        }
    }
}

/// Checkpoint form of [`TrafficGen`]: just the send cursor — the script
/// itself (dst/bytes/count/gap) is rebuilt with the system.
#[derive(Serialize, Deserialize)]
struct TrafficGenState {
    sent: u64,
}

impl Component for TrafficGen {
    fn setup(&mut self, ctx: &mut SimCtx<'_>) {
        register_net_payloads();
        self.sent_stat = Some(ctx.stat_counter("sent"));
        self.recv_stat = Some(ctx.stat_counter("received"));
        self.rtt = Some(ctx.stat_accumulator("latency_ns"));
        if self.count > 0 {
            ctx.schedule_self(self.gap, Fire);
        }
    }

    fn on_event(&mut self, port: PortId, payload: PayloadSlot, ctx: &mut SimCtx<'_>) {
        match port {
            SELF_PORT => {
                let _ = downcast::<Fire>(payload);
                self.fire(ctx);
            }
            Self::NET => {
                let pkt = downcast::<Packet>(payload);
                ctx.add_stat(self.recv_stat.unwrap(), 1);
                ctx.record_stat(self.rtt.unwrap(), (ctx.now() - pkt.sent_at).as_ns_f64());
            }
            other => panic!("traffic gen got event on unexpected port {other:?}"),
        }
    }

    fn ports(&self) -> &'static [&'static str] {
        &["net"]
    }

    fn save_state(&self) -> Value {
        TrafficGenState { sent: self.sent }.to_value()
    }

    fn load_state(&mut self, state: &Value) {
        let s = TrafficGenState::from_value(state).expect("malformed net.traffic state");
        self.sent = s.sent;
    }

    fn fuse_key(&self) -> Option<FuseKey> {
        Some(FuseKey::of::<Self>())
    }
    fn fuse_into(self: Box<Self>, group: &mut dyn FusedGroup) -> u32 {
        sst_core::specialize::absorb(group, *self)
    }
}

/// Register the network components for JSON-config simulations (a small
/// 8-endpoint torus fabric; bigger fabrics are wired programmatically).
pub fn register(registry: &mut ComponentRegistry) {
    registry.register(
        "net.fabric",
        "switch fabric over a 2x2x2 torus (ports p0..p7); params: injection_gbps",
        |p| {
            let mut cfg = NetConfig::xt5();
            cfg.injection_bw = p.f64_or("injection_gbps", 3.2) * 1e9;
            Ok(Box::new(FabricComponent::new(Network::new(
                Box::new(Torus3D::new(2, 2, 2)),
                cfg,
            ))))
        },
    );
    registry.register(
        "net.traffic",
        "scripted packet source/sink (port: net); params: me, dst, bytes, count, gap_ns",
        |p| {
            let count = p.u64_or("count", 100);
            if p.u64_or("me", 0) == p.u64_or("dst", 1) {
                return Err(ConfigError::BadFormat("me == dst".into()));
            }
            Ok(Box::new(TrafficGen::new(
                p.u64_or("me", 0) as u32,
                p.u64_or("dst", 1) as u32,
                p.u64_or("bytes", 4096),
                count,
                SimTime::ns_f64(p.f64_or("gap_ns", 1000.0)),
            )))
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetConfig;

    fn system(flows: &[(u32, u32, u64, u64)]) -> SimReport {
        let mut b = SystemBuilder::new();
        let fabric = b.add(
            "fabric",
            FabricComponent::new(Network::new(
                Box::new(Torus3D::new(2, 2, 2)),
                NetConfig::xt5(),
            )),
        );
        let mut nodes_used = std::collections::BTreeSet::new();
        for (src, dst, ..) in flows {
            nodes_used.insert(*src);
            nodes_used.insert(*dst);
        }
        for (i, &(src, dst, bytes, count)) in flows.iter().enumerate() {
            let tg = b.add(
                format!("tg{i}"),
                TrafficGen::new(src, dst, bytes, count, SimTime::us(1)),
            );
            b.link(
                (tg, TrafficGen::NET),
                (fabric, FabricComponent::port(src)),
                SimTime::ns(5),
            );
        }
        // Destination-only endpoints need their own port connections: give
        // each pure destination a zero-count sink.
        let mut sink_idx = 100;
        for n in nodes_used {
            if !flows.iter().any(|f| f.0 == n) {
                let tg = b.add(
                    format!("sink{sink_idx}"),
                    TrafficGen::new(n, (n + 1) % 8, 0, 0, SimTime::us(1)),
                );
                b.link(
                    (tg, TrafficGen::NET),
                    (fabric, FabricComponent::port(n)),
                    SimTime::ns(5),
                );
                sink_idx += 1;
            }
        }
        Engine::new(b).run(RunLimit::Exhaust)
    }

    #[test]
    fn packets_flow_end_to_end() {
        let report = system(&[(0, 7, 4096, 50)]);
        assert_eq!(report.stats.counter("fabric", "delivered"), 50);
        assert_eq!(report.stats.counter("tg0", "sent"), 50);
        // Delivered to the sink on node 7.
        assert_eq!(report.stats.sum_counters("received"), 50);
        assert!(report.stats.mean("fabric", "transit_ns").unwrap() > 0.0);
    }

    #[test]
    fn bidirectional_flows_measure_latency() {
        let report = system(&[(0, 3, 2048, 20), (3, 0, 2048, 20)]);
        assert_eq!(report.stats.counter("tg0", "received"), 20);
        assert_eq!(report.stats.counter("tg1", "received"), 20);
        let lat = report.stats.mean("tg0", "latency_ns").unwrap();
        assert!(
            lat > 100.0,
            "end-to-end latency should include the fabric: {lat}"
        );
    }

    #[test]
    fn big_packets_take_longer() {
        let small = system(&[(0, 7, 64, 20)]);
        let big = system(&[(0, 7, 1 << 20, 20)]);
        let l_small = small.stats.mean("fabric", "transit_ns").unwrap();
        let l_big = big.stats.mean("fabric", "transit_ns").unwrap();
        assert!(l_big > 10.0 * l_small, "{l_big} vs {l_small}");
    }

    #[test]
    fn registry_components_build() {
        let mut r = ComponentRegistry::new();
        register(&mut r);
        assert!(r.contains("net.fabric"));
        assert!(r.contains("net.traffic"));
        assert!(r
            .create(
                "net.traffic",
                &Params::new().set("me", 1u64).set("dst", 1u64)
            )
            .is_err());
    }
}
