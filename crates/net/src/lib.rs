//! # sst-net — interconnect models
//!
//! The network substrate of the SST reproduction:
//!
//! * [`topology`] — 3-D torus and two-level fat tree with deterministic
//!   routing over dense directed-link ids.
//! * [`network`] — a contention-aware virtual-cut-through timing model with
//!   per-NIC **injection-bandwidth** throttling (the knob of the
//!   bandwidth-degradation study) and per-link occupancy.
//! * [`mpi`] — an MPI-like motif executor: per-rank scripts of
//!   compute/send/recv/collective steps, with recursive-doubling
//!   collectives built from real (counted, contended) messages.

pub mod components;
pub mod model;
pub mod mpi;
pub mod network;
pub mod topology;

pub use components::{FabricComponent, Packet, TrafficGen};
pub use model::{fabric_model, AnalyticFabric, DesFabric, FabricModel, FabricRunResult, Flow};
pub use mpi::{halo_exchange_3d, CommOp, MpiRun, MpiSim};
pub use network::{NetConfig, NetStats, Network};
pub use topology::{
    FatTree, LazyDragonfly, LazyFatTree, LazyTorus, LazyTraffic, LinkId, Route, Topology, Torus3D,
    TrafficNode,
};
