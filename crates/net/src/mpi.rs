//! MPI-like motif executor (the skeleton-app layer).
//!
//! Runs one communication *script* per rank against the [`Network`] timing
//! model: compute blocks advance a rank's clock, point-to-point sends and
//! receives match through mailboxes, and collectives (barrier, allreduce)
//! execute as real recursive-doubling message rounds — so their cost grows
//! with both rank count and network load, and their messages are *counted*
//! (the ML-preconditioner study hinges on message counts).

use crate::network::Network;
use serde::{Deserialize, Serialize};
use sst_core::time::SimTime;
use std::collections::{HashMap, VecDeque};

/// One step of a rank's program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommOp {
    /// Local computation for the given duration.
    Compute(SimTime),
    /// Non-blocking-ish send (sender is occupied only for the software
    /// overhead; transmission proceeds in the background).
    Send { to: u32, bytes: u64 },
    /// Blocking receive of the next message from `from`.
    Recv { from: u32 },
    /// Global barrier (recursive doubling, 8-byte tokens).
    Barrier,
    /// Global allreduce of `bytes` per rank (recursive doubling).
    Allreduce { bytes: u64 },
}

/// Result of executing a set of rank scripts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MpiRun {
    /// Time at which the last rank finished.
    pub end_time: SimTime,
    pub per_rank: Vec<SimTime>,
    /// Total messages that crossed the network (including collective
    /// internals).
    pub messages: u64,
    pub bytes: u64,
}

/// Executes rank scripts to completion.
pub struct MpiSim<'n> {
    net: &'n mut Network,
    ranks_per_node: u32,
}

impl<'n> MpiSim<'n> {
    /// `ranks_per_node` maps rank `r` to node `r / ranks_per_node` (block
    /// placement, the default on the studied machines).
    pub fn new(net: &'n mut Network, ranks_per_node: u32) -> MpiSim<'n> {
        assert!(ranks_per_node >= 1);
        MpiSim {
            net,
            ranks_per_node,
        }
    }

    #[inline]
    fn node(&self, rank: u32) -> u32 {
        (rank / self.ranks_per_node) % self.net.nodes()
    }

    /// Run all scripts; panics (with a state dump) on a communication
    /// deadlock — a bug in the workload's script generator.
    pub fn run(mut self, scripts: Vec<Vec<CommOp>>) -> MpiRun {
        let p = scripts.len();
        assert!(p >= 1);
        let msgs0 = self.net.stats.messages;
        let bytes0 = self.net.stats.bytes;

        let mut t = vec![SimTime::ZERO; p];
        let mut pc = vec![0usize; p];
        let mut mailbox: HashMap<(u32, u32), VecDeque<SimTime>> = HashMap::new();

        loop {
            let mut progressed = false;
            let mut all_done = true;
            // Count ranks parked at a collective, to trigger it.
            let mut at_collective: Option<CommOp> = None;
            let mut collective_count = 0usize;

            for r in 0..p {
                // Drain as much of rank r's program as possible.
                while let Some(op) = scripts[r].get(pc[r]).copied() {
                    match op {
                        CommOp::Compute(d) => {
                            t[r] += d;
                            pc[r] += 1;
                            progressed = true;
                        }
                        CommOp::Send { to, bytes } => {
                            assert!((to as usize) < p, "send to unknown rank {to}");
                            let arrival =
                                self.net
                                    .send(self.node(r as u32), self.node(to), bytes, t[r]);
                            mailbox
                                .entry((r as u32, to))
                                .or_default()
                                .push_back(arrival);
                            t[r] += self.net.cfg.sw_overhead;
                            pc[r] += 1;
                            progressed = true;
                        }
                        CommOp::Recv { from } => {
                            let q = mailbox.entry((from, r as u32)).or_default();
                            if let Some(arrival) = q.pop_front() {
                                t[r] = t[r].max(arrival);
                                pc[r] += 1;
                                progressed = true;
                            } else {
                                break; // blocked on sender
                            }
                        }
                        CommOp::Barrier | CommOp::Allreduce { .. } => {
                            break; // handled collectively below
                        }
                    }
                }
                match scripts[r].get(pc[r]).copied() {
                    None => {}
                    Some(op @ (CommOp::Barrier | CommOp::Allreduce { .. })) => {
                        all_done = false;
                        match &at_collective {
                            None => {
                                at_collective = Some(op);
                                collective_count = 1;
                            }
                            Some(prev) => {
                                assert_eq!(*prev, op, "ranks disagree on the pending collective");
                                collective_count += 1;
                            }
                        }
                    }
                    Some(_) => all_done = false,
                }
            }

            if all_done {
                break;
            }

            if collective_count == p {
                let bytes = match at_collective.unwrap() {
                    CommOp::Allreduce { bytes } => bytes,
                    _ => 8,
                };
                self.collective(&mut t, bytes);
                for c in pc.iter_mut() {
                    *c += 1;
                }
                progressed = true;
            }

            if !progressed {
                let stuck: Vec<(usize, Option<CommOp>)> = (0..p)
                    .filter(|r| pc[*r] < scripts[*r].len())
                    .map(|r| (r, scripts[r].get(pc[r]).copied()))
                    .take(8)
                    .collect();
                panic!("MPI script deadlock; first stuck ranks: {stuck:?}");
            }
        }

        MpiRun {
            end_time: t.iter().copied().max().unwrap_or(SimTime::ZERO),
            per_rank: t,
            messages: self.net.stats.messages - msgs0,
            bytes: self.net.stats.bytes - bytes0,
        }
    }

    /// Recursive-doubling allreduce over all ranks: handles non-powers of
    /// two with a fold-in pre-round and fold-out post-round.
    fn collective(&mut self, t: &mut [SimTime], bytes: u64) {
        let p = t.len() as u32;
        if p == 1 {
            return;
        }
        let m = 31 - p.leading_zeros(); // floor(log2 p)
        let core = 1u32 << m; // largest power of two <= p

        // Fold in the remainder.
        for r in core..p {
            let peer = r - core;
            let arr = self
                .net
                .send(self.node(r), self.node(peer), bytes, t[r as usize]);
            t[peer as usize] = t[peer as usize].max(arr);
            t[r as usize] += self.net.cfg.sw_overhead;
        }
        // Pairwise exchange rounds among the power-of-two core.
        for k in 0..m {
            let bit = 1u32 << k;
            for r in 0..core {
                let peer = r ^ bit;
                if r < peer {
                    let a = self
                        .net
                        .send(self.node(r), self.node(peer), bytes, t[r as usize]);
                    let b = self
                        .net
                        .send(self.node(peer), self.node(r), bytes, t[peer as usize]);
                    let done = a.max(b);
                    t[r as usize] = done;
                    t[peer as usize] = done;
                }
            }
        }
        // Fold back out.
        for r in core..p {
            let peer = r - core;
            let arr = self
                .net
                .send(self.node(peer), self.node(r), bytes, t[peer as usize]);
            t[r as usize] = t[r as usize].max(arr);
        }
    }
}

/// Build the classic 3-D halo-exchange step for `rank` of a `dims` process
/// grid: one Send+Recv pair per face neighbor (6 in the interior).
pub fn halo_exchange_3d(rank: u32, dims: [u32; 3], face_bytes: u64) -> Vec<CommOp> {
    let [dx, dy, _dz] = dims;
    let coords = [rank % dx, (rank / dx) % dy, rank / (dx * dy)];
    let mut ops = Vec::new();
    let idx = |c: [u32; 3]| c[0] + c[1] * dx + c[2] * dx * dy;
    let mut neighbors = Vec::new();
    for d in 0..3 {
        let n = dims[d];
        if n <= 1 {
            continue;
        }
        for dir in [1i64, -1] {
            let mut c = coords;
            c[d] = ((c[d] as i64 + dir).rem_euclid(n as i64)) as u32;
            neighbors.push(idx(c));
        }
    }
    // Post all sends first, then receive from each neighbor — the standard
    // non-blocking halo pattern (and deadlock-free under eager sends).
    for n in &neighbors {
        ops.push(CommOp::Send {
            to: *n,
            bytes: face_bytes,
        });
    }
    for n in &neighbors {
        ops.push(CommOp::Recv { from: *n });
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetConfig;
    use crate::topology::Torus3D;

    fn net_for(ranks: u32) -> Network {
        Network::new(Box::new(Torus3D::fitting(ranks)), NetConfig::xt5())
    }

    #[test]
    fn compute_only_scripts() {
        let mut net = net_for(4);
        let scripts = vec![vec![CommOp::Compute(SimTime::us(5))]; 4];
        let run = MpiSim::new(&mut net, 1).run(scripts);
        assert_eq!(run.end_time, SimTime::us(5));
        assert_eq!(run.messages, 0);
    }

    #[test]
    fn send_recv_pair() {
        let mut net = net_for(2);
        let scripts = vec![
            vec![CommOp::Send { to: 1, bytes: 1000 }],
            vec![CommOp::Recv { from: 0 }],
        ];
        let run = MpiSim::new(&mut net, 1).run(scripts);
        assert_eq!(run.messages, 1);
        assert!(run.per_rank[1] > SimTime::ZERO);
        assert!(run.per_rank[1] >= run.per_rank[0]);
    }

    #[test]
    fn recv_waits_for_late_sender() {
        let mut net = net_for(2);
        let scripts = vec![
            vec![
                CommOp::Compute(SimTime::ms(1)),
                CommOp::Send { to: 1, bytes: 8 },
            ],
            vec![CommOp::Recv { from: 0 }],
        ];
        let run = MpiSim::new(&mut net, 1).run(scripts);
        assert!(run.per_rank[1] > SimTime::ms(1));
    }

    #[test]
    fn messages_match_in_order() {
        let mut net = net_for(2);
        let scripts = vec![
            vec![
                CommOp::Send { to: 1, bytes: 1 },
                CommOp::Compute(SimTime::ms(2)),
                CommOp::Send { to: 1, bytes: 2 },
            ],
            vec![
                CommOp::Recv { from: 0 },
                CommOp::Recv { from: 0 },
                CommOp::Compute(SimTime::us(1)),
            ],
        ];
        let run = MpiSim::new(&mut net, 1).run(scripts);
        // Second recv cannot complete before the second send happens (~2 ms).
        assert!(run.per_rank[1] > SimTime::ms(2));
    }

    #[test]
    fn barrier_synchronizes_all() {
        let mut net = net_for(8);
        let mut scripts: Vec<Vec<CommOp>> = (0..8)
            .map(|r| vec![CommOp::Compute(SimTime::us(r as u64 * 10)), CommOp::Barrier])
            .collect();
        scripts[0].push(CommOp::Compute(SimTime::us(1)));
        let run = MpiSim::new(&mut net, 1).run(scripts);
        // Everyone leaves the barrier no earlier than the slowest arrival.
        for r in 0..8 {
            assert!(
                run.per_rank[r] >= SimTime::us(70),
                "rank {r}: {}",
                run.per_rank[r]
            );
        }
        assert!(run.messages > 0);
    }

    #[test]
    fn allreduce_message_count_scales_logarithmically() {
        let count = |p: u32| {
            let mut net = net_for(p);
            let scripts = vec![vec![CommOp::Allreduce { bytes: 8 }]; p as usize];
            MpiSim::new(&mut net, 1).run(scripts).messages
        };
        // Power of two: p * log2(p) messages.
        assert_eq!(count(8), 8 * 3);
        assert_eq!(count(16), 16 * 4);
        // Non-power-of-two adds fold-in/out.
        assert_eq!(count(6), 4 * 2 + 2 * 2);
    }

    #[test]
    fn non_power_of_two_allreduce_terminates() {
        for p in [3u32, 5, 7, 12, 100] {
            let mut net = net_for(p);
            let scripts = vec![vec![CommOp::Allreduce { bytes: 64 }]; p as usize];
            let run = MpiSim::new(&mut net, 1).run(scripts);
            assert!(run.end_time > SimTime::ZERO, "p={p}");
        }
    }

    #[test]
    fn halo_exchange_is_deadlock_free_and_symmetric() {
        let dims = [4u32, 4, 4];
        let p = 64;
        let mut net = net_for(p);
        let scripts: Vec<Vec<CommOp>> = (0..p)
            .map(|r| halo_exchange_3d(r, dims, 64 << 10))
            .collect();
        let run = MpiSim::new(&mut net, 1).run(scripts);
        // 6 neighbors * 64 ranks sends.
        assert_eq!(run.messages, 6 * 64);
        let min = run.per_rank.iter().min().unwrap();
        let max = run.per_rank.iter().max().unwrap();
        assert!(max.as_ps() < min.as_ps() * 3, "halo should be balanced");
    }

    #[test]
    fn halo_in_degenerate_dims() {
        // 1-deep dimensions produce fewer neighbors, not self-messages.
        let ops = halo_exchange_3d(0, [4, 1, 1], 100);
        let sends = ops
            .iter()
            .filter(|o| matches!(o, CommOp::Send { .. }))
            .count();
        assert_eq!(sends, 2);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn mismatched_recv_deadlocks() {
        let mut net = net_for(2);
        let scripts = vec![
            vec![CommOp::Recv { from: 1 }],
            vec![CommOp::Recv { from: 0 }],
        ];
        MpiSim::new(&mut net, 1).run(scripts);
    }

    #[test]
    fn ranks_per_node_maps_onto_fewer_nodes() {
        let mut net = net_for(4);
        // 8 ranks on 4 nodes: pairs share a node -> rank 0 -> 1 is local.
        let scripts = vec![
            vec![CommOp::Send { to: 1, bytes: 8 }],
            vec![CommOp::Recv { from: 0 }],
            vec![],
            vec![],
            vec![],
            vec![],
            vec![],
            vec![],
        ];
        let run = MpiSim::new(&mut net, 2).run(scripts);
        // Local message: only software overhead.
        assert_eq!(run.per_rank[1], net.cfg.sw_overhead);
    }
}
