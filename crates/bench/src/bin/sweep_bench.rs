//! Fleet-level sweep throughput: the work-stealing scheduler, the
//! content-addressed result cache, and fork-at-checkpoint prefix sharing,
//! measured end to end through `sst_sim::sweep::run_sweep` — without the
//! criterion harness, so it runs under the default feature set.
//!
//! Three sections:
//!
//! 1. **Worker scaling** — one cache-less sweep (>= 32 points at full
//!    scale) at 1/2/4/8 workers. Results are asserted bit-identical to the
//!    1-worker run before any row lands on disk, so every speedup number is
//!    backed by a determinism check.
//! 2. **Result cache** — the same sweep cold (empty cache directory) and
//!    warm (rerun against the populated directory). The warm run must hit
//!    on every point and, at full scale, finish >= 10x faster.
//! 3. **Fork-at-checkpoint** — a sweep whose points share a long common
//!    prefix, from scratch vs forked at the divergence instant. Reports are
//!    asserted identical point-by-point; the fork run simulates the prefix
//!    once instead of once per point.
//!
//! Results land in `BENCH_sweep.json` at the repo root (or the path given
//! as the first argument). Pass `--quick` for a seconds-scale smoke run
//! (CI) that still exercises every section and every assert.

use serde::Serialize;
use sst_sim::sweep::{run_sweep, ResultSource, SweepOptions, SweepSpec};
use std::path::Path;

/// Canonical JSON of every point report, for bit-identity assertions.
fn fingerprints(out: &sst_sim::sweep::SweepOutcome) -> Vec<String> {
    out.results
        .iter()
        .map(|r| r.report.to_value().to_json_string())
        .collect()
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sst_sweep_bench_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench scratch dir");
    dir
}

#[derive(Serialize)]
struct WorkerRow {
    workers: usize,
    /// Cache state for this row; worker scaling always runs cache-less.
    cache: String,
    points: usize,
    steals: u64,
    wall_seconds: f64,
    configs_per_sec: f64,
    speedup_vs_1_worker: f64,
}

#[derive(Serialize)]
struct CacheRow {
    /// `cold` (empty directory) or `warm` (rerun against the populated one).
    cache: String,
    workers: usize,
    points: usize,
    hits: u64,
    misses: u64,
    hit_rate: f64,
    wall_seconds: f64,
    configs_per_sec: f64,
    speedup_vs_cold: f64,
}

#[derive(Serialize)]
struct ForkRow {
    mode: String,
    workers: usize,
    cache: String,
    points: usize,
    /// Distinct prefix simulations executed (0 in from-scratch mode).
    prefix_runs: usize,
    wall_seconds: f64,
    configs_per_sec: f64,
    speedup_vs_scratch: f64,
}

#[derive(Serialize)]
struct WorkerSection {
    host_cpus: u64,
    rows: Vec<WorkerRow>,
}

#[derive(Serialize)]
struct CacheSection {
    host_cpus: u64,
    rows: Vec<CacheRow>,
}

#[derive(Serialize)]
struct ForkSection {
    host_cpus: u64,
    rows: Vec<ForkRow>,
}

#[derive(Serialize)]
struct Report {
    bench: String,
    worker_scaling: WorkerSection,
    result_cache: CacheSection,
    fork_at_checkpoint: ForkSection,
    notes: Vec<String>,
}

fn main() {
    let mut out_path = "BENCH_sweep.json".to_string();
    let mut quick = false;
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            out_path = arg;
        }
    }
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);

    // The benchmark sweep: a 4-axis grid, >= 32 points at full scale. Every
    // point is an independent pdes torus, heavy enough (~ms each) that
    // scheduling overhead is honest noise rather than the signal.
    let (side, ttl, until_a, until_b) = if quick {
        (4u32, 12u32, 1500u64, 2000u64)
    } else {
        (8, 200, 40_000, 48_000)
    };
    let spec_text = format!(
        r#"{{
  "schema": "sst-sweep-spec-v1",
  "base": {{ "side": {side}, "ttl": {ttl}, "until_ns": {until_a} }},
  "grid": {{
    "tokens_per_node": [2, 3, 4, 5],
    "ttl": [{ttl}, {}],
    "seed": [1, 2],
    "until_ns": [{until_a}, {until_b}]
  }}
}}"#,
        ttl + 10
    );
    let spec = SweepSpec::parse(&spec_text).expect("bench spec parses");
    let points = spec.points.len();
    assert!(points >= 32, "bench sweep must cover >= 32 points");

    // --- 1. worker scaling --------------------------------------------------
    let mut worker_rows = Vec::new();
    let mut base_fp: Vec<String> = Vec::new();
    let mut base_wall = 0.0f64;
    for workers in [1usize, 2, 4, 8] {
        let out = run_sweep(
            &spec,
            &SweepOptions {
                workers,
                ..Default::default()
            },
        );
        let fp = fingerprints(&out);
        if workers == 1 {
            base_fp = fp;
            base_wall = out.wall_seconds;
        } else {
            assert_eq!(
                fp, base_fp,
                "sweep results changed between 1 and {workers} workers"
            );
        }
        let r = WorkerRow {
            workers,
            cache: "disabled".to_string(),
            points,
            steals: out.sched.steals,
            wall_seconds: out.wall_seconds,
            configs_per_sec: out.configs_per_sec(),
            speedup_vs_1_worker: base_wall / out.wall_seconds.max(1e-9),
        };
        eprintln!(
            "[workers={}      ] {:>3} points   {:>8.1} configs/s   {:.2}x vs 1 worker   {} steals",
            r.workers, r.points, r.configs_per_sec, r.speedup_vs_1_worker, r.steals
        );
        worker_rows.push(r);
    }

    // --- 2. result cache: cold vs warm --------------------------------------
    let cache_dir = scratch_dir("cache");
    let cache_workers = 4usize;
    let open_cache = || sst_core::sweep::ResultCache::at(&cache_dir).expect("open bench cache dir");
    let cold = run_sweep(
        &spec,
        &SweepOptions {
            workers: cache_workers,
            cache: open_cache(),
            fork_at_ns: None,
        },
    );
    assert_eq!(
        cold.cache.hits, 0,
        "cold run must start from an empty cache"
    );
    assert_eq!(cold.cache.stores as usize, points);
    assert_eq!(fingerprints(&cold), base_fp, "cached run diverged");
    let warm = run_sweep(
        &spec,
        &SweepOptions {
            workers: cache_workers,
            cache: open_cache(),
            fork_at_ns: None,
        },
    );
    assert_eq!(
        warm.cache.hits as usize, points,
        "warm rerun must hit on every point"
    );
    assert_eq!(warm.cache.misses, 0);
    assert!(
        warm.results.iter().all(|r| r.source == ResultSource::Cache),
        "warm rerun must serve every point from the cache"
    );
    assert_eq!(
        fingerprints(&warm),
        base_fp,
        "cache hit returned different bytes than the cold run"
    );
    let warm_speedup = cold.wall_seconds / warm.wall_seconds.max(1e-9);
    assert!(
        warm.configs_per_sec() >= cold.configs_per_sec(),
        "warm rerun slower than cold: {:.1} vs {:.1} configs/s",
        warm.configs_per_sec(),
        cold.configs_per_sec()
    );
    if !quick {
        assert!(
            warm_speedup >= 10.0,
            "warm cache rerun must be >= 10x faster than cold, got {warm_speedup:.1}x"
        );
    }
    let mut cache_rows = Vec::new();
    for (tag, out, speedup) in [("cold", &cold, 1.0), ("warm", &warm, warm_speedup)] {
        let r = CacheRow {
            cache: tag.to_string(),
            workers: cache_workers,
            points,
            hits: out.cache.hits,
            misses: out.cache.misses,
            hit_rate: out.cache.hits as f64 / points as f64,
            wall_seconds: out.wall_seconds,
            configs_per_sec: out.configs_per_sec(),
            speedup_vs_cold: speedup,
        };
        eprintln!(
            "[cache {tag:<5}    ] {:>3} points   {:>8.1} configs/s   hit rate {:.0}%   {:.1}x vs cold",
            r.points,
            r.configs_per_sec,
            100.0 * r.hit_rate,
            r.speedup_vs_cold
        );
        cache_rows.push(r);
    }
    let _ = std::fs::remove_dir_all(&cache_dir);

    // --- 3. fork-at-checkpoint vs from-scratch ------------------------------
    // Points share one long prefix (everything up to the injection instant)
    // and diverge only in the injected burst and the run limit — the
    // fork-friendliest shape, and the one a checkpoint-sharing DSE actually
    // has. Fork legality: the injector fires strictly after the fork.
    let (fside, fttl, fork_ns, inject_ns, funtil) = if quick {
        (4u32, 12u32, 1200u64, 1400u64, 2000u64)
    } else {
        (8, 200, 30_000, 32_000, 40_000)
    };
    let fork_spec_text = format!(
        r#"{{
  "schema": "sst-sweep-spec-v1",
  "base": {{ "side": {fside}, "ttl": {fttl}, "until_ns": {funtil},
            "inject_at_ns": {inject_ns}, "inject_ttl": 10 }},
  "grid": {{ "inject_tokens": [1, 2, 3, 4], "until_ns": [{funtil}, {}] }}
}}"#,
        funtil + 500
    );
    let fork_spec = SweepSpec::parse(&fork_spec_text).expect("fork spec parses");
    let fork_points = fork_spec.points.len();
    let fork_workers = 4usize;
    let scratch = run_sweep(
        &fork_spec,
        &SweepOptions {
            workers: fork_workers,
            ..Default::default()
        },
    );
    let forked = run_sweep(
        &fork_spec,
        &SweepOptions {
            workers: fork_workers,
            cache: sst_core::sweep::ResultCache::disabled(),
            fork_at_ns: Some(fork_ns),
        },
    );
    assert!(
        forked
            .results
            .iter()
            .all(|r| r.source == ResultSource::Fork),
        "every point must resume from the shared prefix"
    );
    assert_eq!(
        forked.prefix_runs, 1,
        "the shared prefix must be simulated exactly once"
    );
    assert_eq!(
        fingerprints(&forked),
        fingerprints(&scratch),
        "forked results diverged from from-scratch"
    );
    let fork_speedup = scratch.wall_seconds / forked.wall_seconds.max(1e-9);
    if !quick {
        assert!(
            fork_speedup > 1.0,
            "fork-at-checkpoint must beat from-scratch, got {fork_speedup:.2}x"
        );
    }
    let mut fork_rows = Vec::new();
    for (mode, out, speedup) in [("scratch", &scratch, 1.0), ("fork", &forked, fork_speedup)] {
        let r = ForkRow {
            mode: mode.to_string(),
            workers: fork_workers,
            cache: "disabled".to_string(),
            points: fork_points,
            prefix_runs: out.prefix_runs,
            wall_seconds: out.wall_seconds,
            configs_per_sec: out.configs_per_sec(),
            speedup_vs_scratch: speedup,
        };
        eprintln!(
            "[{mode:<7}        ] {:>3} points   {:>8.1} configs/s   {} prefix run(s)   {:.2}x vs scratch",
            r.points, r.configs_per_sec, r.prefix_runs, r.speedup_vs_scratch
        );
        fork_rows.push(r);
    }

    let report = Report {
        bench: "sweep".to_string(),
        worker_scaling: WorkerSection {
            host_cpus,
            rows: worker_rows,
        },
        result_cache: CacheSection {
            host_cpus,
            rows: cache_rows,
        },
        fork_at_checkpoint: ForkSection {
            host_cpus,
            rows: fork_rows,
        },
        notes: vec![
            format!(
                "worker_scaling: one cache-less {points}-point pdes sweep at \
                 1/2/4/8 workers on the work-stealing pool; results are \
                 asserted bit-identical to the 1-worker run before any row is \
                 recorded. On a host with fewer CPUs than workers the extra \
                 workers time-slice and speedup flattens."
            ),
            "result_cache: the same sweep against an empty cache directory \
             (cold) and again against the populated one (warm). The warm \
             rerun must hit on every point, return byte-identical reports, \
             and at full scale finish >= 10x faster (asserted)."
                .to_string(),
            "fork_at_checkpoint: points share the simulation prefix up to \
             the fork instant; fork mode simulates it once, patches each \
             branch's divergent injector parameters into the sealed \
             snapshot, and resumes. Reports are asserted identical to \
             from-scratch point by point."
                .to_string(),
            format!(
                "host has {host_cpus} CPU(s); every row records its worker count and cache state."
            ),
        ],
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize bench report");
    let out_path = Path::new(&out_path);
    std::fs::write(out_path, json + "\n").expect("write bench report");
    eprintln!("wrote {}", out_path.display());
}
