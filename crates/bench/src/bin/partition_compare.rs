//! Head-to-head comparison of the rank-partitioning strategies on three
//! topologies where the cut placement actually matters:
//!
//! * **mixed-latency ring** — 64 nodes, a slow 50 ns link every 7th hop and
//!   5 ns links elsewhere. The natural cuts are the slow links; contiguous
//!   block splitting lands on fast links and inherits their tiny lookahead.
//! * **asymmetric torus** — the pdes token-traffic torus with 2 ns vertical
//!   links and 20 ns horizontal links. Block partitioning cuts row bands
//!   (the 2 ns links), `latency-cut` rotates the cut onto the 20 ns
//!   columns, buying 10x the conservative lookahead.
//! * **hierarchical clusters** — rings of 9 nodes joined by a 40 ns
//!   gateway ring. Block boundaries land mid-cluster across 1 ns links.
//!
//! For every (topology, strategy, rank count) the report records the static
//! partition quality (cut links, weighted cut, minimum cross-cut lookahead,
//! load imbalance), the measured sync behavior of a profiled run (sync
//! rounds, pure null-message batches, stall time), and best-of timed
//! events/sec — plus an identity check that every strategy reproduces the
//! serial `SimReport` bit-for-bit.
//!
//! A final section closes the measure→repartition→rerun loop on the
//! hierarchical topology: per-component event counts from a profiled run
//! are fed back as partition weights, and the resulting load imbalance
//! (evaluated under the measured weights) must not regress.
//!
//! Results land in `BENCH_partition.json` at the repo root (or the path
//! given as the first argument). Pass `--quick` for a seconds-scale smoke
//! run (CI) that still exercises every topology and the deterministic
//! asserts; the wall-clock-sensitive asserts only run at full scale.

use rand::Rng as _;
use serde::Serialize;
use sst_core::prelude::*;
use sst_core::telemetry::EngineProfile;
use sst_core::PartitionSummary;
use sst_sim::experiments::pdes;
use std::time::Instant;

/// A token-forwarding node, like the pdes `Traffic` component but with a
/// configurable port count so one component serves every topology here.
struct Hop {
    ports: u16,
    tokens: u32,
    ttl: u32,
    forwarded: Option<StatId>,
}

#[derive(Debug)]
struct Tok {
    ttl: u32,
}

impl Component for Hop {
    fn setup(&mut self, ctx: &mut SimCtx<'_>) {
        self.forwarded = Some(ctx.stat_counter("forwarded"));
        for i in 0..self.tokens {
            let port = PortId((i % self.ports as u32) as u16);
            ctx.send(port, Tok { ttl: self.ttl });
        }
    }

    fn on_event(&mut self, _port: PortId, payload: PayloadSlot, ctx: &mut SimCtx<'_>) {
        let tok = downcast::<Tok>(payload);
        ctx.add_stat(self.forwarded.unwrap(), 1);
        if tok.ttl > 0 {
            let out = PortId(ctx.rng().gen::<u16>() % self.ports);
            ctx.send(out, Tok { ttl: tok.ttl - 1 });
        }
    }
}

/// 64-node ring: every 7th link is 50 ns, the rest 5 ns.
fn mixed_ring(n: u32, tokens: u32, ttl: u32) -> SystemBuilder {
    let mut b = SystemBuilder::new();
    let ids: Vec<ComponentId> = (0..n)
        .map(|i| {
            b.add(
                format!("ring{i}"),
                Hop {
                    ports: 2,
                    tokens,
                    ttl,
                    forwarded: None,
                },
            )
        })
        .collect();
    for i in 0..n {
        let lat = if i % 7 == 6 {
            SimTime::ns(50)
        } else {
            SimTime::ns(5)
        };
        b.link(
            (ids[i as usize], PortId(0)),
            (ids[((i + 1) % n) as usize], PortId(1)),
            lat,
        );
    }
    b
}

const HIER_CLUSTERS: u32 = 6;
const HIER_PER: u32 = 9;

/// Six 9-node clusters (1 ns internal rings) joined by a 40 ns gateway
/// ring. Member 0 of each cluster is the gateway; it carries twice the
/// token load, so measured weights differ visibly from uniform.
fn hier(tokens: u32, ttl: u32) -> SystemBuilder {
    let mut b = SystemBuilder::new();
    let mut ids = Vec::new();
    for c in 0..HIER_CLUSTERS {
        for m in 0..HIER_PER {
            let gateway = m == 0;
            ids.push(b.add(
                format!("c{c}n{m}"),
                Hop {
                    ports: if gateway { 4 } else { 2 },
                    tokens: if gateway { tokens * 2 } else { tokens },
                    ttl,
                    forwarded: None,
                },
            ));
        }
    }
    let id = |c: u32, m: u32| ids[(c * HIER_PER + m) as usize];
    for c in 0..HIER_CLUSTERS {
        for m in 0..HIER_PER {
            b.link(
                (id(c, m), PortId(0)),
                (id(c, (m + 1) % HIER_PER), PortId(1)),
                SimTime::ns(1),
            );
        }
    }
    for c in 0..HIER_CLUSTERS {
        b.link(
            (id(c, 0), PortId(2)),
            (id((c + 1) % HIER_CLUSTERS, 0), PortId(3)),
            SimTime::ns(40),
        );
    }
    b
}

/// Serialize a report with the fields that legitimately differ between
/// serial and parallel runs (timing, rank count, sync bookkeeping,
/// telemetry) zeroed out; what remains must match byte-for-byte.
fn normalized(mut r: SimReport) -> String {
    r.wall_seconds = 0.0;
    r.ranks = 0;
    r.epochs = 0;
    r.profile = None;
    r.series = None;
    serde_json::to_string(&r).expect("report serializes")
}

fn profile_spec() -> TelemetrySpec {
    TelemetrySpec::new(TelemetryOptions {
        profile: true,
        ..Default::default()
    })
    .expect("profile-only telemetry needs no files")
}

#[derive(Serialize)]
struct SerialRow {
    topology: String,
    events: u64,
    events_per_sec: f64,
}

#[derive(Serialize)]
struct StrategyRow {
    topology: String,
    strategy: String,
    ranks: u32,
    cut_links: u64,
    total_links: u64,
    weighted_cut: u64,
    total_edge_weight: u64,
    min_lookahead_ns: Option<f64>,
    load_imbalance: f64,
    sync_rounds: u64,
    null_batches: u64,
    cross_rank_events: u64,
    stall_ms: f64,
    events: u64,
    events_per_sec: f64,
    speedup_vs_block: f64,
    identical_to_serial: bool,
}

#[derive(Serialize)]
struct ProfileFeedback {
    topology: String,
    ranks: u32,
    /// Imbalance of the uniform-weight latency-cut partition, evaluated
    /// under the *measured* per-component event counts.
    imbalance_uniform: f64,
    /// Imbalance of the profile-weighted latency-cut partition under the
    /// same measured counts.
    imbalance_profiled: f64,
    profiled_components: u64,
}

#[derive(Serialize)]
struct Report {
    bench: String,
    host_cpus: u64,
    serial: Vec<SerialRow>,
    rows: Vec<StrategyRow>,
    profile_feedback: ProfileFeedback,
    notes: Vec<String>,
}

struct Topo {
    name: &'static str,
    build: Box<dyn Fn() -> SystemBuilder>,
}

fn main() {
    let mut out_path = "BENCH_partition.json".to_string();
    let mut quick = false;
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            out_path = arg;
        }
    }
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);
    let reps = if quick { 1u32 } else { 3 };

    let torus_params = pdes::Params {
        side: if quick { 8 } else { 16 },
        tokens_per_node: if quick { 4 } else { 6 },
        ttl: if quick { 40 } else { 120 },
        rank_counts: vec![],
        telemetry: TelemetrySpec::disabled(),
        partition: Default::default(),
        transport: Default::default(),
        sync: Default::default(),
        profile: None,
        checkpoint: None,
        live: None,
        inject: None,
    };
    let (ring_tokens, ring_ttl) = if quick { (4, 60) } else { (8, 400) };
    let (hier_tokens, hier_ttl) = if quick { (4, 60) } else { (8, 400) };
    let topologies = vec![
        Topo {
            name: "ring64-mixed-latency",
            build: Box::new(move || mixed_ring(64, ring_tokens, ring_ttl)),
        },
        Topo {
            name: "torus-asymmetric",
            build: Box::new(move || pdes::build_with_latency(&torus_params, SimTime::ns(2))),
        },
        Topo {
            name: "hier-6x9",
            build: Box::new(move || hier(hier_tokens, hier_ttl)),
        },
    ];

    let mut serial_rows = Vec::new();
    let mut rows: Vec<StrategyRow> = Vec::new();
    for topo in &topologies {
        // Serial baseline: the identity reference plus a timed rate.
        let serial_report = Engine::new((topo.build)()).run(RunLimit::Exhaust);
        let serial_norm = normalized(serial_report.clone());
        let mut serial_rate = 0.0f64;
        for _ in 0..reps {
            let engine = Engine::new((topo.build)());
            let start = Instant::now();
            let r = engine.run(RunLimit::Exhaust);
            serial_rate = serial_rate.max(r.events as f64 / start.elapsed().as_secs_f64());
        }
        eprintln!(
            "[{:<22}] serial {:>9} events   {:>12.0} ev/s",
            topo.name, serial_report.events, serial_rate
        );
        serial_rows.push(SerialRow {
            topology: topo.name.to_string(),
            events: serial_report.events,
            events_per_sec: serial_rate,
        });

        for ranks in [2u32, 4] {
            let mut block_rate = 0.0f64;
            for &strategy in PartitionStrategy::ALL {
                // Static partition quality + identity check (one run).
                let engine = ParallelEngine::with_partition(
                    (topo.build)(),
                    ranks,
                    strategy,
                    None,
                    TelemetrySpec::disabled(),
                );
                let summary: PartitionSummary = engine.partition_summary().clone();
                let report = engine.run(RunLimit::Exhaust);
                let identical = normalized(report.clone()) == serial_norm;

                // Sync behavior from one profiled run.
                let profiled = ParallelEngine::with_partition(
                    (topo.build)(),
                    ranks,
                    strategy,
                    None,
                    profile_spec(),
                )
                .run(RunLimit::Exhaust);
                let prof = profiled.profile.expect("profiling was on");
                let sync_rounds: u64 = prof.ranks.iter().map(|r| r.sync_rounds).sum();
                let null_batches: u64 = prof.ranks.iter().map(|r| r.null_batches_sent).sum();
                let cross_events: u64 = prof.ranks.iter().map(|r| r.events_sent).sum();
                let stall_ms: f64 = prof.ranks.iter().map(|r| r.stall_ns).sum::<u64>() as f64 / 1e6;

                // Timed rate, best of `reps` fresh runs.
                let mut rate = 0.0f64;
                for _ in 0..reps {
                    let engine = ParallelEngine::with_partition(
                        (topo.build)(),
                        ranks,
                        strategy,
                        None,
                        TelemetrySpec::disabled(),
                    );
                    let start = Instant::now();
                    let r = engine.run(RunLimit::Exhaust);
                    rate = rate.max(r.events as f64 / start.elapsed().as_secs_f64());
                }
                if strategy == PartitionStrategy::Block {
                    block_rate = rate;
                }

                let row = StrategyRow {
                    topology: topo.name.to_string(),
                    strategy: strategy.to_string(),
                    ranks,
                    cut_links: summary.cut_links,
                    total_links: summary.total_links,
                    weighted_cut: summary.weighted_cut,
                    total_edge_weight: summary.total_edge_weight,
                    min_lookahead_ns: summary.min_lookahead_ps.map(|ps| ps as f64 / 1e3),
                    load_imbalance: summary.load_imbalance(),
                    sync_rounds,
                    null_batches,
                    cross_rank_events: cross_events,
                    stall_ms,
                    events: report.events,
                    events_per_sec: rate,
                    speedup_vs_block: rate / block_rate.max(1e-9),
                    identical_to_serial: identical,
                };
                eprintln!(
                    "[{:<22}] {:>11} @{} ranks  cut {:>3}/{:<3} w={:<8} la={:>8} ns  \
                     nulls {:>6}  {:>12.0} ev/s  {:.2}x block  identical={}",
                    topo.name,
                    row.strategy,
                    ranks,
                    row.cut_links,
                    row.total_links,
                    row.weighted_cut,
                    row.min_lookahead_ns.unwrap_or(f64::NAN),
                    row.null_batches,
                    row.events_per_sec,
                    row.speedup_vs_block,
                    row.identical_to_serial,
                );
                assert!(
                    row.identical_to_serial,
                    "{} with {} at {ranks} ranks diverged from the serial report",
                    topo.name, row.strategy
                );
                rows.push(row);
            }
        }
    }

    // Deterministic partition-quality asserts (run in --quick/CI too):
    // latency-cut must never cut more weighted edge than block on the torus.
    for ranks in [2u32, 4] {
        let find = |strategy: &str| {
            rows.iter()
                .find(|r| {
                    r.topology == "torus-asymmetric" && r.strategy == strategy && r.ranks == ranks
                })
                .unwrap()
        };
        let block = find("block");
        let lc = find("latency-cut");
        assert!(
            lc.weighted_cut <= block.weighted_cut,
            "latency-cut cut more weighted edge than block on the torus at {ranks} ranks \
             ({} > {})",
            lc.weighted_cut,
            block.weighted_cut,
        );
        if !quick {
            // Wall-clock-sensitive acceptance: fewer pure null messages at 2
            // and 4 ranks, and >= 1.2x block throughput at 4 ranks.
            assert!(
                lc.null_batches < block.null_batches,
                "latency-cut sent {} null batches vs block's {} at {ranks} ranks",
                lc.null_batches,
                block.null_batches,
            );
            if ranks == 4 {
                assert!(
                    lc.events_per_sec >= 1.2 * block.events_per_sec,
                    "latency-cut at 4 ranks was {:.0} ev/s vs block's {:.0} (need 1.2x)",
                    lc.events_per_sec,
                    block.events_per_sec,
                );
            }
        }
    }

    // --- profile feedback: measure -> repartition -> compare balance -------
    // Gateways forward ~2x the events of plain members; feeding the measured
    // counts back must not worsen (and usually improves) the load balance of
    // the latency-cut partition *as evaluated under those counts*.
    let feedback_ranks = 4u32;
    let profiled = ParallelEngine::with_partition(
        hier(hier_tokens, hier_ttl),
        feedback_ranks,
        PartitionStrategy::LatencyCut,
        None,
        profile_spec(),
    )
    .run(RunLimit::Exhaust);
    let profile: EngineProfile = profiled.profile.expect("profiling was on");
    let measured: Vec<u64> = (0..HIER_CLUSTERS)
        .flat_map(|c| (0..HIER_PER).map(move |m| format!("c{c}n{m}")))
        .map(|name| {
            profile
                .components
                .iter()
                .find(|p| p.name == name)
                .map(|p| p.events.max(1))
                .unwrap_or(1)
        })
        .collect();
    let imbalance = |assignments: &[u32]| -> f64 {
        let mut loads = vec![0u64; feedback_ranks as usize];
        for (i, &r) in assignments.iter().enumerate() {
            loads[r as usize] += measured[i];
        }
        let total: u64 = loads.iter().sum();
        *loads.iter().max().unwrap() as f64 * feedback_ranks as f64 / total as f64
    };
    let mut uniform_b = hier(hier_tokens, hier_ttl);
    uniform_b.partition_strategy(PartitionStrategy::LatencyCut);
    let uniform = uniform_b.partition_summary(feedback_ranks);
    let mut profiled_b = hier(hier_tokens, hier_ttl);
    profiled_b.partition_strategy(PartitionStrategy::LatencyCut);
    let matched = profiled_b.apply_profile_weights(&profile) as u64;
    let reweighted = profiled_b.partition_summary(feedback_ranks);
    let feedback = ProfileFeedback {
        topology: "hier-6x9".to_string(),
        ranks: feedback_ranks,
        imbalance_uniform: imbalance(&uniform.assignments),
        imbalance_profiled: imbalance(&reweighted.assignments),
        profiled_components: matched,
    };
    eprintln!(
        "[profile feedback      ] hier @4 ranks: imbalance {:.3} (uniform weights) -> {:.3} \
         (measured weights, {} components)",
        feedback.imbalance_uniform, feedback.imbalance_profiled, feedback.profiled_components
    );
    assert!(
        feedback.imbalance_profiled <= feedback.imbalance_uniform * 1.05 + 1e-9,
        "profile-weighted partition worsened measured load balance: {:.4} -> {:.4}",
        feedback.imbalance_uniform,
        feedback.imbalance_profiled,
    );

    let report = Report {
        bench: "partition_compare".to_string(),
        host_cpus,
        serial: serial_rows,
        rows,
        profile_feedback: feedback,
        notes: vec![
            "weighted_cut sums 1/latency edge costs over cross-rank links; \
             min_lookahead_ns is the smallest cross-rank link latency — the \
             conservative sync horizon, so bigger is better."
                .to_string(),
            "sync/null/stall columns come from one profiled run; ev/s is the \
             best of timed unprofiled runs (construction excluded)."
                .to_string(),
            format!(
                "host has {host_cpus} CPU(s); on one CPU the ranks time-slice \
                 a single core, so throughput gains come from fewer \
                 conservative sync rounds (bigger lookahead), not concurrency."
            ),
            "identical_to_serial compares the full SimReport (events, end \
             time, every statistic) byte-for-byte after normalizing timing \
             and rank-count fields; the binary asserts it for every row."
                .to_string(),
            "profile_feedback evaluates both latency-cut partitions under \
             the measured per-component event counts of the hierarchical \
             topology; feeding the measurement back must not worsen balance."
                .to_string(),
        ],
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize bench report");
    std::fs::write(&out_path, json + "\n").expect("write bench report");
    eprintln!("wrote {out_path}");
}
