//! Head-to-head comparison of the reference `BinaryHeapQueue` and the
//! two-level `IndexedQueue`, plus parallel rank scaling — without the
//! criterion harness, so it runs under the default feature set.
//!
//! Three measurements:
//!
//! 1. **Hold model** — the classic queue benchmark: prefill N events, then
//!    repeatedly pop the minimum and push a replacement a random delta
//!    ahead. Queue depth stays constant at N, which is exactly the regime
//!    where the heap pays `O(log N)` per operation and the indexed queue's
//!    calendar ring pays `O(1)`.
//! 2. **Whole engine** — the token-ring workload through `EngineOn` over
//!    each queue, measuring end-to-end events/sec (payload allocation and
//!    component dispatch included, so the ratio is smaller than the raw
//!    queue ratio).
//! 3. **Parallel rank scaling** — the pdes torus workload at 1/2/4 ranks,
//!    checking that event counts stay identical across rank counts and
//!    recording honest wall-clock numbers for the host.
//!
//! Results land in `BENCH_queue_compare.json` at the repo root (or the
//! path given as the first argument).

use serde::Serialize;
use sst_bench::ring;
use sst_core::event::{ComponentId, EventClass, EventKind, PortId, ScheduledEvent, TieBreak};
use sst_core::queue::{BinaryHeapQueue, IndexedQueue, SimQueue};
use sst_core::{EngineOn, ParallelEngine, RunLimit, SimTime};
use sst_sim::experiments::pdes;
use std::time::Instant;

/// xorshift64*: fixed-seed, dependency-free randomness for the workload.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

fn ev(t: u64, seq: u64) -> ScheduledEvent {
    ScheduledEvent {
        time: SimTime::ps(t),
        class: EventClass::Message,
        tie: TieBreak {
            src: ComponentId((seq % 64) as u32),
            seq,
        },
        target: ComponentId(0),
        kind: EventKind::Message {
            port: PortId(0),
            payload: Box::new(()),
        },
    }
}

/// Hold model: steady-state depth `held`, `ops` pop+push cycles. Deltas are
/// mostly near-future (inside the indexed queue's ring window) with an
/// occasional far spike, mirroring a DES where a few events sit beyond the
/// current activity horizon. Returns (events/sec, checksum).
fn hold_model<Q: SimQueue>(held: usize, ops: u64) -> (f64, u64) {
    let mut q = Q::default();
    let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
    for i in 0..held {
        q.push(ev(rng.next() % 1_000_000, i as u64));
    }
    let mut checksum = 0u64;
    let start = Instant::now();
    for i in 0..ops {
        let e = q.pop().expect("hold model never drains");
        let t = e.time.as_ps();
        checksum ^= t;
        let dt = if i % 97 == 0 {
            // Far spike: several ring windows ahead.
            5_000_000 + rng.next() % 1_000_000
        } else {
            1 + rng.next() % 80_000
        };
        q.push(ev(t + dt, held as u64 + i));
    }
    let secs = start.elapsed().as_secs_f64();
    (ops as f64 / secs, checksum)
}

/// Best-of-`reps` events/sec for a full engine run over queue `Q`.
fn engine_rate<Q>(reps: u32, build: impl Fn() -> sst_core::SystemBuilder) -> f64
where
    Q: SimQueue + sst_core::EventSink,
{
    let mut best = 0.0f64;
    for _ in 0..reps {
        let start = Instant::now();
        let report = EngineOn::<Q>::new(build()).run(RunLimit::Exhaust);
        let rate = report.events as f64 / start.elapsed().as_secs_f64();
        best = best.max(rate);
    }
    best
}

#[derive(Serialize)]
struct HoldResult {
    depth: u64,
    ops: u64,
    heap_events_per_sec: f64,
    indexed_events_per_sec: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct EngineResult {
    workload: String,
    heap_events_per_sec: f64,
    indexed_events_per_sec: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct RankResult {
    ranks: u32,
    events: u64,
    wall_seconds: f64,
    events_per_sec: f64,
    speedup_vs_1_rank: f64,
}

#[derive(Serialize)]
struct Report {
    bench: String,
    host_cpus: u64,
    hold_model: Vec<HoldResult>,
    whole_engine: Vec<EngineResult>,
    parallel_rank_scaling: Vec<RankResult>,
    notes: Vec<String>,
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_queue_compare.json".to_string());
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);

    // --- 1. hold model at several depths -----------------------------------
    let ops = 400_000u64;
    let mut hold = Vec::new();
    for &depth in &[256usize, 1024, 4096, 16384] {
        // Best of 3 to shrug off scheduler noise; checksums must agree.
        let mut heap_best = 0.0f64;
        let mut idx_best = 0.0f64;
        let mut sums = (0, 0);
        for _ in 0..3 {
            let (hr, hs) = hold_model::<BinaryHeapQueue>(depth, ops);
            let (ir, is) = hold_model::<IndexedQueue>(depth, ops);
            heap_best = heap_best.max(hr);
            idx_best = idx_best.max(ir);
            sums = (hs, is);
        }
        assert_eq!(sums.0, sums.1, "queues popped different event sequences");
        let r = HoldResult {
            depth: depth as u64,
            ops,
            heap_events_per_sec: heap_best,
            indexed_events_per_sec: idx_best,
            speedup: idx_best / heap_best,
        };
        eprintln!(
            "[hold depth={:>6}] heap {:>12.0} ev/s   indexed {:>12.0} ev/s   {:.2}x",
            r.depth, r.heap_events_per_sec, r.indexed_events_per_sec, r.speedup
        );
        hold.push(r);
    }

    // --- 2. whole-engine workloads -----------------------------------------
    // Ring keeps exactly one event in flight (queue depth ~1: a lower bound
    // on what the queue can matter); the pdes torus keeps ~850 tokens in
    // flight (a realistic deep-queue DES).
    let params = pdes::Params {
        side: 12,
        tokens_per_node: 6,
        ttl: 80,
        rank_counts: vec![],
        telemetry: sst_core::telemetry::TelemetrySpec::disabled(),
    };
    let mut whole_engine = Vec::new();
    for (workload, heap_rate, idx_rate) in [
        (
            "ring(64 nodes, 200k hops), queue depth ~1",
            engine_rate::<BinaryHeapQueue>(3, || ring(64, 200_000)),
            engine_rate::<IndexedQueue>(3, || ring(64, 200_000)),
        ),
        (
            "pdes torus 12x12, 6 tokens/node, ttl 80, queue depth ~850",
            engine_rate::<BinaryHeapQueue>(3, || pdes::build(&params)),
            engine_rate::<IndexedQueue>(3, || pdes::build(&params)),
        ),
    ] {
        let r = EngineResult {
            workload: workload.to_string(),
            heap_events_per_sec: heap_rate,
            indexed_events_per_sec: idx_rate,
            speedup: idx_rate / heap_rate,
        };
        eprintln!(
            "[engine         ] heap {:>12.0} ev/s   indexed {:>12.0} ev/s   {:.2}x  ({workload})",
            heap_rate, idx_rate, r.speedup
        );
        whole_engine.push(r);
    }

    // --- 3. parallel rank scaling ------------------------------------------
    let mut scaling = Vec::new();
    let mut base_rate = 0.0f64;
    let mut base_events = 0u64;
    for ranks in [1u32, 2, 4] {
        let mut best_rate = 0.0f64;
        let mut best_wall = f64::INFINITY;
        let mut events = 0u64;
        for _ in 0..3 {
            let start = Instant::now();
            let report = ParallelEngine::new(pdes::build(&params), ranks).run(RunLimit::Exhaust);
            let wall = start.elapsed().as_secs_f64();
            events = report.events;
            best_wall = best_wall.min(wall);
            best_rate = best_rate.max(report.events as f64 / wall);
        }
        if ranks == 1 {
            base_rate = best_rate;
            base_events = events;
        } else {
            assert_eq!(
                events, base_events,
                "parallel run delivered a different event count at {ranks} ranks"
            );
        }
        let r = RankResult {
            ranks,
            events,
            wall_seconds: best_wall,
            events_per_sec: best_rate,
            speedup_vs_1_rank: best_rate / base_rate,
        };
        eprintln!(
            "[pdes ranks={}   ] {:>9} events   {:>12.0} ev/s   {:.2}x vs 1 rank",
            r.ranks, r.events, r.events_per_sec, r.speedup_vs_1_rank
        );
        scaling.push(r);
    }

    let report = Report {
        bench: "queue_compare".to_string(),
        host_cpus,
        hold_model: hold,
        whole_engine,
        parallel_rank_scaling: scaling,
        notes: vec![
            "hold model: constant queue depth, pop-min + push-random-future; \
             the regime where heap cost is O(log N) per op and the calendar \
             ring is O(1)."
                .to_string(),
            "whole-engine rates include payload boxing and component \
             dispatch, which dominate; the queue-only gain shows in the \
             hold-model rows."
                .to_string(),
            format!(
                "host has {host_cpus} CPU(s); with a single CPU the parallel \
                 ranks time-slice one core, so rank scaling shows protocol \
                 overhead rather than speedup. Event counts are asserted \
                 identical across rank counts."
            ),
            "rates are best-of-3 runs.".to_string(),
        ],
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize bench report");
    std::fs::write(&out_path, json + "\n").expect("write bench report");
    eprintln!("wrote {out_path}");
}
