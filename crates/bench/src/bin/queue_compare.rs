//! Head-to-head comparison of the reference `BinaryHeapQueue` and the
//! two-level `IndexedQueue`, plus parallel rank scaling — without the
//! criterion harness, so it runs under the default feature set.
//!
//! Three measurements:
//!
//! 1. **Hold model** — the classic queue benchmark: prefill N events, then
//!    repeatedly pop the minimum and push a replacement a random delta
//!    ahead. Queue depth stays constant at N, which is exactly the regime
//!    where the heap pays `O(log N)` per operation and the indexed queue's
//!    calendar ring pays `O(1)`.
//! 2. **Whole engine** — the token-ring workload through `EngineOn` over
//!    each queue, measuring end-to-end events/sec (payload allocation and
//!    component dispatch included, so the ratio is smaller than the raw
//!    queue ratio).
//! 3. **Parallel rank scaling** — the pdes torus workload at 1/2/4 ranks,
//!    checking that event counts stay identical across rank counts and
//!    recording honest wall-clock numbers for the host.
//! 4. **Hot path allocations** — allocations per delivered event through the
//!    default engine, measured with a counting global allocator. The inline
//!    `PayloadSlot` + pooled-buffer hot path must stay at or below
//!    [`HOTPATH_ALLOC_CEILING`]; the binary *asserts* this, so the CI smoke
//!    run fails if payload boxing creeps back in.
//!
//! Results land in `BENCH_queue_compare.json` at the repo root (or the
//! path given as the first argument). Pass `--quick` for a seconds-scale
//! smoke run (CI) that still exercises every section and every assert.

use serde::Serialize;
use sst_bench::{alloc_track, chain, ring};
use sst_core::event::{
    ComponentId, EventClass, EventKind, PayloadSlot, PortId, ScheduledEvent, TieBreak,
};
use sst_core::queue::{AutoQueue, BinaryHeapQueue, IndexedQueue, SimQueue};
use sst_core::{
    EngineOn, LazySystem, ParallelConfig, ParallelEngine, RunLimit, SimReport, SimTime, SyncMode,
    TransportKind,
};
use sst_net::{LazyTorus, LazyTraffic};
use sst_sim::experiments::pdes;
use std::time::Instant;

#[global_allocator]
static ALLOC: alloc_track::CountingAlloc = alloc_track::CountingAlloc;

/// Committed ceiling for hot-path allocations per delivered event. The
/// inline-payload rework brought ring/pdes from ~3.0/3.9 allocs per event
/// down to (amortized) pool refills only; 1.0 leaves headroom for workload
/// setup while still catching any per-event box sneaking back.
const HOTPATH_ALLOC_CEILING: f64 = 1.0;

/// Pre-rework baselines (measured at the PR-3 tree with this same harness),
/// recorded in the JSON so the before/after is visible without digging
/// through git history.
const RING_ALLOCS_PER_EVENT_BEFORE: f64 = 3.0001;
const PDES_ALLOCS_PER_EVENT_BEFORE: f64 = 3.8953;

/// xorshift64*: fixed-seed, dependency-free randomness for the workload.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

fn ev(t: u64, seq: u64) -> ScheduledEvent {
    ScheduledEvent {
        time: SimTime::ps(t),
        class: EventClass::Message,
        tie: TieBreak {
            src: ComponentId((seq % 64) as u32),
            seq,
        },
        target: ComponentId(0),
        kind: EventKind::Message {
            port: PortId(0),
            payload: PayloadSlot::new(()),
        },
    }
}

/// Hold model: steady-state depth `held`, `ops` pop+push cycles. Deltas are
/// mostly near-future (inside the indexed queue's ring window) with an
/// occasional far spike, mirroring a DES where a few events sit beyond the
/// current activity horizon. Returns (events/sec, checksum).
fn hold_model<Q: SimQueue>(held: usize, ops: u64) -> (f64, u64) {
    let mut q = Q::default();
    let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
    for i in 0..held {
        q.push(ev(rng.next() % 1_000_000, i as u64));
    }
    let mut checksum = 0u64;
    let start = Instant::now();
    for i in 0..ops {
        let e = q.pop().expect("hold model never drains");
        let t = e.time.as_ps();
        checksum ^= t;
        let dt = if i % 97 == 0 {
            // Far spike: several ring windows ahead.
            5_000_000 + rng.next() % 1_000_000
        } else {
            1 + rng.next() % 80_000
        };
        q.push(ev(t + dt, held as u64 + i));
    }
    let secs = start.elapsed().as_secs_f64();
    (ops as f64 / secs, checksum)
}

/// The builder with the specialization knob pinned — the comparison rows
/// must not drift with the process-global default.
fn specialized(on: bool, build: &impl Fn() -> sst_core::SystemBuilder) -> sst_core::SystemBuilder {
    let mut b = build();
    b.specialize(on);
    b
}

/// Best-of-`reps` events/sec for a full engine run over queue `Q`, with
/// graph specialization pinned off (these rows isolate the queue backend).
/// Graph construction (and the specialization pass, when on) happens outside
/// the timed region for every flavor: the rows compare steady-state
/// simulation rate, which is what amortizes over a real workload.
fn engine_rate<Q>(reps: u32, build: impl Fn() -> sst_core::SystemBuilder) -> f64
where
    Q: SimQueue + sst_core::EventSink,
{
    let mut best = 0.0f64;
    for _ in 0..reps {
        let engine = EngineOn::<Q>::new(specialized(false, &build));
        let start = Instant::now();
        let report = engine.run(RunLimit::Exhaust);
        let rate = report.events as f64 / start.elapsed().as_secs_f64();
        best = best.max(rate);
    }
    best
}

/// Best-of-`reps` events/sec for a *specialized* run on the auto-selecting
/// queue — the production configuration. Returns the rate, the backend the
/// auto queue settled on, and one report for the bit-identity check.
fn specialized_rate(
    reps: u32,
    build: &impl Fn() -> sst_core::SystemBuilder,
) -> (f64, String, SimReport) {
    let mut best = 0.0f64;
    let mut last = None;
    for _ in 0..reps {
        let engine = EngineOn::<AutoQueue>::new(specialized(true, build));
        let start = Instant::now();
        let report = engine.run(RunLimit::Exhaust);
        best = best.max(report.events as f64 / start.elapsed().as_secs_f64());
        last = Some(report);
    }
    let report = last.expect("reps >= 1");
    let backend = report.queue_backend.clone().unwrap_or_default();
    (best, backend, report)
}

fn stats_json(r: &SimReport) -> String {
    serde_json::to_string(&r.stats).expect("stats serialize")
}

/// Peak pending-queue depth of one (untimed) profiled run of the workload —
/// recorded next to each whole-engine row so the speedup column can be read
/// against the queue regime that produced it.
fn queue_depth_hwm(build: impl Fn() -> sst_core::SystemBuilder) -> u64 {
    let spec = sst_core::TelemetrySpec::new(sst_core::TelemetryOptions {
        profile: true,
        ..Default::default()
    })
    .expect("profile-only telemetry needs no files");
    let report = EngineOn::<IndexedQueue>::with_telemetry(specialized(false, &build), spec)
        .run(RunLimit::Exhaust);
    report.profile.expect("profiling was on").queue_depth_hwm
}

#[derive(Serialize)]
struct HoldResult {
    depth: u64,
    ops: u64,
    heap_events_per_sec: f64,
    indexed_events_per_sec: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct EngineResult {
    workload: String,
    /// Peak pending-queue depth during the run (from one profiled run of
    /// the same workload) — the regime selector: indexed pays off at deep
    /// queues, the heap at depth ~1.
    queue_depth_hwm: u64,
    /// Whether graph specialization was on for these rates. Always `false`
    /// here: these rows isolate the queue backend; the specialized numbers
    /// live in the `specialize` section.
    specialize: bool,
    heap_events_per_sec: f64,
    indexed_events_per_sec: f64,
    speedup: f64,
}

/// One row of the `specialize` section: the production configuration
/// (fusion + chain flattening + auto-selected queue) against the plain
/// build on either fixed backend.
#[derive(Serialize)]
struct SpecializeResult {
    workload: String,
    queue_depth_hwm: u64,
    /// Backend the auto queue settled on for the specialized run (`heap`,
    /// or `heap->indexed` after a depth-triggered migration).
    queue_backend: String,
    unspecialized_heap_events_per_sec: f64,
    /// Best unspecialized rate across the heap and indexed backends.
    unspecialized_best_events_per_sec: f64,
    specialized_events_per_sec: f64,
    speedup_vs_heap: f64,
    speedup_vs_best: f64,
    /// Specialized vs unspecialized runs agreed on events, end time, and
    /// every statistic (asserted — a `false` here never lands on disk).
    identical: bool,
}

#[derive(Serialize)]
struct RankResult {
    ranks: u32,
    events: u64,
    wall_seconds: f64,
    events_per_sec: f64,
    speedup_vs_1_rank: f64,
}

#[derive(Serialize)]
struct TransportScalingResult {
    topology: String,
    components: u64,
    ranks: u32,
    transport: String,
    sync: String,
    events: u64,
    wall_seconds: f64,
    events_per_sec: f64,
    /// Announcement rounds summed over ranks.
    sync_rounds: u64,
    /// Cross-rank batches sent (events and/or EOT news).
    batches: u64,
    /// Batches carrying no events — the protocol's pure overhead.
    null_batches: u64,
    /// Pure-null announcements adaptive sync suppressed.
    barriers_skipped: u64,
    /// EOT jumps >= the pairwise lookahead announced immediately.
    epochs_widened: u64,
    /// Times a rank blocked on its inbox with nothing safe to process.
    stall_rounds: u64,
}

#[derive(Serialize)]
struct HotpathResult {
    workload: String,
    events: u64,
    allocations: u64,
    allocs_per_event_before: f64,
    allocs_per_event: f64,
    ceiling: f64,
}

#[derive(Serialize)]
struct Report {
    bench: String,
    host_cpus: u64,
    hold_model: Vec<HoldResult>,
    whole_engine: Vec<EngineResult>,
    specialize: Vec<SpecializeResult>,
    parallel_rank_scaling: Vec<RankResult>,
    rank_scaling: Vec<TransportScalingResult>,
    hotpath: Vec<HotpathResult>,
    notes: Vec<String>,
}

/// One profiled lazy-torus run: events/sec plus the summed per-rank sync
/// counters (null batches, skipped barriers, widened epochs, stalls).
fn transport_scaling_run(
    sys: &LazyTorus,
    ranks: u32,
    transport: TransportKind,
    sync: SyncMode,
) -> TransportScalingResult {
    let spec = sst_core::TelemetrySpec::new(sst_core::TelemetryOptions {
        profile: true,
        ..Default::default()
    })
    .expect("profile-only telemetry needs no files");
    let cfg = ParallelConfig {
        ranks,
        transport,
        sync,
        telemetry: spec.labeled(format!("{ranks}r-{transport}-{sync}")),
        ..ParallelConfig::default()
    };
    let engine = ParallelEngine::lazy(sys, cfg);
    let start = Instant::now();
    let report = engine.run(RunLimit::Exhaust);
    let wall = start.elapsed().as_secs_f64();
    let profile = report.profile.as_ref().expect("profiling was on");
    let sum = |f: fn(&sst_core::telemetry::RankSyncProfile) -> u64| -> u64 {
        profile.ranks.iter().map(f).sum()
    };
    let d = sys.dims();
    let r = TransportScalingResult {
        topology: format!("lazy torus {}x{}x{}", d[0], d[1], d[2]),
        components: sys.component_count() as u64,
        ranks,
        transport: transport.to_string(),
        sync: sync.to_string(),
        events: report.events,
        wall_seconds: wall,
        events_per_sec: report.events as f64 / wall,
        sync_rounds: sum(|p| p.sync_rounds),
        batches: sum(|p| p.batches_sent),
        null_batches: sum(|p| p.null_batches_sent),
        barriers_skipped: sum(|p| p.barriers_skipped),
        epochs_widened: sum(|p| p.epochs_widened),
        stall_rounds: sum(|p| p.stall_rounds),
    };
    eprintln!(
        "[scaling {:>2} ranks] {:>9} events   {:>12.0} ev/s   {:>8} nulls   {:>8} skipped   {:>6} stalls  ({}/{})",
        r.ranks, r.events, r.events_per_sec, r.null_batches, r.barriers_skipped, r.stall_rounds,
        r.transport, r.sync
    );
    r
}

/// One measured engine run with the allocation counter bracketed around it
/// (system construction and report serialization excluded).
fn hotpath_run(
    workload: &str,
    before: f64,
    build: impl Fn() -> sst_core::SystemBuilder,
) -> HotpathResult {
    // Unspecialized, to stay comparable with the pre-rework `before`
    // columns; the specialized path allocates strictly less (no per-hop
    // queue traffic on folded chains).
    let engine = EngineOn::<IndexedQueue>::new(specialized(false, &build));
    let a0 = alloc_track::allocations();
    let report = engine.run(RunLimit::Exhaust);
    let allocations = alloc_track::allocations() - a0;
    let r = HotpathResult {
        workload: workload.to_string(),
        events: report.events,
        allocations,
        allocs_per_event_before: before,
        allocs_per_event: allocations as f64 / report.events as f64,
        ceiling: HOTPATH_ALLOC_CEILING,
    };
    eprintln!(
        "[hotpath        ] {:>9} events   {:>9} allocs   {:.4} allocs/event (was {:.4})  ({workload})",
        r.events, r.allocations, r.allocs_per_event, before
    );
    assert!(
        r.allocs_per_event <= HOTPATH_ALLOC_CEILING,
        "hot path regressed: {} allocs/event on `{workload}` exceeds the \
         committed ceiling of {HOTPATH_ALLOC_CEILING}",
        r.allocs_per_event
    );
    r
}

fn main() {
    let mut out_path = "BENCH_queue_compare.json".to_string();
    let mut quick = false;
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            out_path = arg;
        }
    }
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);

    // --- 1. hold model at several depths -----------------------------------
    let ops = if quick { 40_000u64 } else { 400_000u64 };
    let reps = if quick { 1u32 } else { 3 };
    let hold_depths: &[usize] = if quick {
        &[256, 4096]
    } else {
        &[256, 1024, 4096, 16384]
    };
    let mut hold = Vec::new();
    for &depth in hold_depths {
        // Best of `reps` to shrug off scheduler noise; checksums must agree.
        let mut heap_best = 0.0f64;
        let mut idx_best = 0.0f64;
        let mut sums = (0, 0);
        for _ in 0..reps {
            let (hr, hs) = hold_model::<BinaryHeapQueue>(depth, ops);
            let (ir, is) = hold_model::<IndexedQueue>(depth, ops);
            heap_best = heap_best.max(hr);
            idx_best = idx_best.max(ir);
            sums = (hs, is);
        }
        assert_eq!(sums.0, sums.1, "queues popped different event sequences");
        let r = HoldResult {
            depth: depth as u64,
            ops,
            heap_events_per_sec: heap_best,
            indexed_events_per_sec: idx_best,
            speedup: idx_best / heap_best,
        };
        eprintln!(
            "[hold depth={:>6}] heap {:>12.0} ev/s   indexed {:>12.0} ev/s   {:.2}x",
            r.depth, r.heap_events_per_sec, r.indexed_events_per_sec, r.speedup
        );
        hold.push(r);
    }

    // --- 2. whole-engine workloads -----------------------------------------
    // Ring keeps exactly one event in flight (queue depth ~1: a lower bound
    // on what the queue can matter); the pdes torus keeps ~850 tokens in
    // flight (a realistic deep-queue DES).
    let params = pdes::Params {
        side: 12,
        tokens_per_node: 6,
        ttl: if quick { 20 } else { 80 },
        rank_counts: vec![],
        telemetry: sst_core::telemetry::TelemetrySpec::disabled(),
        partition: Default::default(),
        transport: Default::default(),
        sync: Default::default(),
        profile: None,
        checkpoint: None,
        live: None,
        inject: None,
    };
    let ring_hops = if quick { 20_000 } else { 200_000 };
    let mut whole_engine = Vec::new();
    for (workload, hwm, heap_rate, idx_rate) in [
        (
            format!("ring(64 nodes, {ring_hops} hops)"),
            queue_depth_hwm(|| ring(64, ring_hops)),
            engine_rate::<BinaryHeapQueue>(reps, || ring(64, ring_hops)),
            engine_rate::<IndexedQueue>(reps, || ring(64, ring_hops)),
        ),
        (
            format!("pdes torus 12x12, 6 tokens/node, ttl {}", params.ttl),
            queue_depth_hwm(|| pdes::build(&params)),
            engine_rate::<BinaryHeapQueue>(reps, || pdes::build(&params)),
            engine_rate::<IndexedQueue>(reps, || pdes::build(&params)),
        ),
    ] {
        let r = EngineResult {
            workload,
            queue_depth_hwm: hwm,
            specialize: false,
            heap_events_per_sec: heap_rate,
            indexed_events_per_sec: idx_rate,
            speedup: idx_rate / heap_rate,
        };
        eprintln!(
            "[engine         ] heap {:>12.0} ev/s   indexed {:>12.0} ev/s   {:.2}x  depth hwm {}  ({})",
            heap_rate, idx_rate, r.speedup, r.queue_depth_hwm, r.workload
        );
        whole_engine.push(r);
    }

    // --- 2b. build-time specialization: the headline ------------------------
    // The production configuration — fused component arrays, flattened
    // constant-latency chains, auto-selected queue — against the plain
    // build on both fixed backends. Bit-identity is asserted, and the
    // specialized path may not fall below 0.85x the best unspecialized
    // rate on any workload (the full run's numbers are the README table).
    let chain_laps: u64 = if quick { 300 } else { 3_000 };
    let chain_reps: u32 = 64;
    let specialize_rows: Vec<(String, Box<dyn Fn() -> sst_core::SystemBuilder>)> = vec![
        (
            format!("ring(64 nodes, {ring_hops} hops)"),
            Box::new(move || ring(64, ring_hops)),
        ),
        (
            format!("chain({chain_reps} repeaters, {chain_laps} laps)"),
            Box::new(move || chain(chain_reps, chain_laps)),
        ),
        (
            format!("pdes torus 12x12, 6 tokens/node, ttl {}", params.ttl),
            {
                let params = params.clone();
                Box::new(move || pdes::build(&params))
            },
        ),
    ];
    let mut specialize = Vec::new();
    for (workload, build) in &specialize_rows {
        let hwm = queue_depth_hwm(build);
        let heap_rate = engine_rate::<BinaryHeapQueue>(reps, build);
        let idx_rate = engine_rate::<IndexedQueue>(reps, build);
        let (spec_rate, backend, spec_report) = specialized_rate(reps, build);
        let plain_report =
            EngineOn::<BinaryHeapQueue>::new(specialized(false, build)).run(RunLimit::Exhaust);
        let identical = spec_report.events == plain_report.events
            && spec_report.end_time == plain_report.end_time
            && stats_json(&spec_report) == stats_json(&plain_report);
        assert!(
            identical,
            "specialized run diverged from the plain build on `{workload}`: \
             {} vs {} events, end {} vs {}",
            spec_report.events, plain_report.events, spec_report.end_time, plain_report.end_time
        );
        assert!(spec_report.specialized && !plain_report.specialized);
        let best = heap_rate.max(idx_rate);
        let r = SpecializeResult {
            workload: workload.clone(),
            queue_depth_hwm: hwm,
            queue_backend: backend,
            unspecialized_heap_events_per_sec: heap_rate,
            unspecialized_best_events_per_sec: best,
            specialized_events_per_sec: spec_rate,
            speedup_vs_heap: spec_rate / heap_rate,
            speedup_vs_best: spec_rate / best,
            identical,
        };
        eprintln!(
            "[specialize     ] plain best {:>12.0} ev/s   specialized {:>12.0} ev/s   {:.2}x vs heap, {:.2}x vs best  auto={}  ({})",
            best, spec_rate, r.speedup_vs_heap, r.speedup_vs_best, r.queue_backend, r.workload
        );
        assert!(
            r.speedup_vs_best >= 0.85,
            "specialized path regressed on `{workload}`: {:.2}x vs the best \
             unspecialized backend (floor 0.85x)",
            r.speedup_vs_best
        );
        specialize.push(r);
    }

    // --- 3. parallel rank scaling ------------------------------------------
    let mut scaling = Vec::new();
    let mut base_rate = 0.0f64;
    let mut base_events = 0u64;
    for ranks in [1u32, 2, 4] {
        let mut best_rate = 0.0f64;
        let mut best_wall = f64::INFINITY;
        let mut events = 0u64;
        for _ in 0..reps {
            let start = Instant::now();
            let report = ParallelEngine::new(pdes::build(&params), ranks).run(RunLimit::Exhaust);
            let wall = start.elapsed().as_secs_f64();
            events = report.events;
            best_wall = best_wall.min(wall);
            best_rate = best_rate.max(report.events as f64 / wall);
        }
        if ranks == 1 {
            base_rate = best_rate;
            base_events = events;
        } else {
            assert_eq!(
                events, base_events,
                "parallel run delivered a different event count at {ranks} ranks"
            );
        }
        let r = RankResult {
            ranks,
            events,
            wall_seconds: best_wall,
            events_per_sec: best_rate,
            speedup_vs_1_rank: best_rate / base_rate,
        };
        eprintln!(
            "[pdes ranks={}   ] {:>9} events   {:>12.0} ev/s   {:.2}x vs 1 rank",
            r.ranks, r.events, r.events_per_sec, r.speedup_vs_1_rank
        );
        scaling.push(r);
    }

    // --- 3b. transport rank scaling on the lazy torus -----------------------
    // Fixed-epoch vs adaptive sync at wide rank counts, per transport
    // backend, on a topology built through the streaming `LazySystem` path
    // (full scale: ~10^5 components, no eager component vector).
    let (nodes, ttl, rank_set): (u32, u32, &[u32]) = if quick {
        (256, 12, &[2, 4])
    } else {
        (100_000, 20, &[16, 32, 64])
    };
    let traffic = LazyTraffic {
        tokens_per_node: 2,
        ttl,
        latency: SimTime::ns(20),
    };
    let torus = LazyTorus::fitting(nodes, traffic);
    let mut rank_scaling = Vec::new();
    for &ranks in rank_set {
        for &sync in SyncMode::ALL {
            rank_scaling.push(transport_scaling_run(
                &torus,
                ranks,
                TransportKind::SharedMem,
                sync,
            ));
        }
    }
    // TCP loopback at the narrowest rank count of the sweep: measures the
    // framing/serialization overhead against the shared-memory rows above.
    rank_scaling.push(transport_scaling_run(
        &torus,
        rank_set[0],
        TransportKind::TcpLoopback,
        SyncMode::Adaptive,
    ));
    for r in &rank_scaling {
        assert_eq!(
            r.events, rank_scaling[0].events,
            "transport/sync changed the event count at {} ranks ({}/{})",
            r.ranks, r.transport, r.sync
        );
    }
    for &ranks in rank_set {
        let pick = |sync: &str| {
            rank_scaling
                .iter()
                .find(|r| r.ranks == ranks && r.transport == "shm" && r.sync == sync)
                .expect("both sync modes ran")
        };
        let (fixed, adaptive) = (pick("fixed"), pick("adaptive"));
        // Adaptive must never lose to fixed on the traffic the policy
        // directly controls: null-message batches. The count has a little
        // scheduling jitter (whether a rank is mid-work when an announce
        // falls due depends on thread timing), so allow low-single-digit
        // slack; a real regression blows well past it. Stall rounds are
        // *reported* but not asserted — they measure wall-clock waiting,
        // which on an oversubscribed host is scheduler noise. On a
        // single-CPU host the null count itself is in the same boat (a
        // rank is "idle" exactly when the scheduler parks it, so announce
        // timing is pure thread-interleaving luck at N× oversubscription);
        // there the comparison is reported but not gated.
        if host_cpus > 1 {
            assert!(
                adaptive.null_batches as f64 <= fixed.null_batches as f64 * 1.02 + 4.0,
                "adaptive sync sent MORE null messages than fixed at {ranks} \
                 ranks: {} vs {}",
                adaptive.null_batches,
                fixed.null_batches
            );
        }
        eprintln!(
            "[adaptive vs fixed @ {ranks:>2} ranks] nulls {} -> {} ({:.1}% cut), stalls {} -> {}",
            fixed.null_batches,
            adaptive.null_batches,
            100.0 * (1.0 - adaptive.null_batches as f64 / fixed.null_batches.max(1) as f64),
            fixed.stall_rounds,
            adaptive.stall_rounds,
        );
    }

    // --- 4. hot path allocations per event ---------------------------------
    let hotpath = vec![
        hotpath_run(
            &format!("ring(64 nodes, {ring_hops} hops)"),
            RING_ALLOCS_PER_EVENT_BEFORE,
            || ring(64, ring_hops),
        ),
        hotpath_run(
            &format!("pdes torus 12x12, 6 tokens/node, ttl {}", params.ttl),
            PDES_ALLOCS_PER_EVENT_BEFORE,
            || pdes::build(&params),
        ),
    ];

    let report = Report {
        bench: "queue_compare".to_string(),
        host_cpus,
        hold_model: hold,
        whole_engine,
        specialize,
        parallel_rank_scaling: scaling,
        rank_scaling,
        hotpath,
        notes: vec![
            "hold model: constant queue depth, pop-min + push-random-future; \
             the regime where heap cost is O(log N) per op and the calendar \
             ring is O(1)."
                .to_string(),
            "whole-engine rates include payload handling and component \
             dispatch, which dominate; the queue-only gain shows in the \
             hold-model rows. whole_engine rows pin specialization OFF to \
             isolate the queue backend."
                .to_string(),
            "specialize rows run the production configuration (fused \
             component arrays with SoA member state, constant-latency chain \
             flattening, depth-triggered queue auto-selection) against the \
             plain build; bit-identity of events, end time, and every \
             statistic is asserted before the row is recorded."
                .to_string(),
            "queue_depth_hwm is the peak pending-queue depth from a profiled \
             run of the same workload: at depth ~1 (ring) the indexed queue's \
             bucket scan costs more than a trivial heap and speedup dips \
             below 1x; past a few hundred (torus) the O(1) calendar ring \
             wins. See DESIGN.md section 5 for the crossover."
                .to_string(),
            "hotpath rows count heap allocations per delivered event (run \
             phase only) via a counting global allocator; `before` columns \
             are the boxed-payload numbers from the PR-3 tree. The binary \
             asserts allocs/event <= ceiling."
                .to_string(),
            format!(
                "host has {host_cpus} CPU(s); with a single CPU the parallel \
                 ranks time-slice one core, so rank scaling shows protocol \
                 overhead rather than speedup. Event counts are asserted \
                 identical across rank counts."
            ),
            "rank_scaling rows run the lazy-built torus (LazySystem streaming \
             construction) under each transport backend and epoch-sync policy; \
             null_batches is the conservative protocol's pure overhead, and \
             the binary asserts adaptive sync never sends more nulls than \
             fixed-epoch at the same rank count (modulo a few messages of \
             scheduling jitter). Event counts are asserted \
             identical across every transport/sync combination."
                .to_string(),
            "rates are best-of-3 runs.".to_string(),
        ],
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize bench report");
    std::fs::write(&out_path, json + "\n").expect("write bench report");
    eprintln!("wrote {out_path}");
}
