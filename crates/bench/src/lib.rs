//! Shared builders for the sst-rs benchmark suite (see `benches/`).

use sst_core::prelude::*;

pub mod alloc_track {
    //! A counting global allocator for allocations-per-event measurements.
    //!
    //! Binaries that want the numbers opt in with
    //! `#[global_allocator] static A: CountingAlloc = CountingAlloc;` —
    //! the library itself never installs it, so criterion benches and tests
    //! keep the plain system allocator.

    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);

    /// Wraps [`System`], counting every `alloc`/`realloc` call.
    pub struct CountingAlloc;

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }

    /// Total allocations since process start (monotonic; diff two reads to
    /// bracket a region).
    pub fn allocations() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }
}

/// A minimal self-propelled component for event-throughput benchmarks:
/// bounces a token to the next node in a ring.
pub struct RingNode {
    pub hops_left: u64,
    pub start: bool,
}

#[derive(Debug)]
pub struct Tok(pub u64);

impl Component for RingNode {
    fn setup(&mut self, ctx: &mut SimCtx<'_>) {
        if self.start {
            ctx.send(PortId(1), Tok(self.hops_left));
        }
    }
    fn on_event(&mut self, _p: PortId, ev: PayloadSlot, ctx: &mut SimCtx<'_>) {
        let t = downcast::<Tok>(ev);
        if t.0 > 0 {
            ctx.send(PortId(1), Tok(t.0 - 1));
        }
    }
}

/// Build a ring of `n` nodes carrying one token for `hops` hops.
pub fn ring(n: u32, hops: u64) -> SystemBuilder {
    let mut b = SystemBuilder::new();
    let ids: Vec<_> = (0..n)
        .map(|i| {
            b.add(
                format!("n{i}"),
                RingNode {
                    hops_left: hops,
                    start: i == 0,
                },
            )
        })
        .collect();
    for i in 0..n as usize {
        b.link(
            (ids[i], PortId(1)),
            (ids[(i + 1) % n as usize], PortId(0)),
            SimTime::ns(10),
        );
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_runs() {
        let report = Engine::new(ring(8, 100)).run(RunLimit::Exhaust);
        assert_eq!(report.events, 101);
    }
}
