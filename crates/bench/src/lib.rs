//! Shared builders for the sst-rs benchmark suite (see `benches/`).

use sst_core::prelude::*;

/// A minimal self-propelled component for event-throughput benchmarks:
/// bounces a token to the next node in a ring.
pub struct RingNode {
    pub hops_left: u64,
    pub start: bool,
}

#[derive(Debug)]
pub struct Tok(pub u64);

impl Component for RingNode {
    fn setup(&mut self, ctx: &mut SimCtx<'_>) {
        if self.start {
            ctx.send(PortId(1), Box::new(Tok(self.hops_left)));
        }
    }
    fn on_event(&mut self, _p: PortId, ev: Box<dyn Payload>, ctx: &mut SimCtx<'_>) {
        let t = downcast::<Tok>(ev);
        if t.0 > 0 {
            ctx.send(PortId(1), Box::new(Tok(t.0 - 1)));
        }
    }
}

/// Build a ring of `n` nodes carrying one token for `hops` hops.
pub fn ring(n: u32, hops: u64) -> SystemBuilder {
    let mut b = SystemBuilder::new();
    let ids: Vec<_> = (0..n)
        .map(|i| {
            b.add(
                format!("n{i}"),
                RingNode {
                    hops_left: hops,
                    start: i == 0,
                },
            )
        })
        .collect();
    for i in 0..n as usize {
        b.link(
            (ids[i], PortId(1)),
            (ids[(i + 1) % n as usize], PortId(0)),
            SimTime::ns(10),
        );
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_runs() {
        let report = Engine::new(ring(8, 100)).run(RunLimit::Exhaust);
        assert_eq!(report.events, 101);
    }
}
