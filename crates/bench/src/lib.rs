//! Shared builders for the sst-rs benchmark suite (see `benches/`).

use sst_core::prelude::*;

pub mod alloc_track {
    //! A counting global allocator for allocations-per-event measurements.
    //!
    //! Binaries that want the numbers opt in with
    //! `#[global_allocator] static A: CountingAlloc = CountingAlloc;` —
    //! the library itself never installs it, so criterion benches and tests
    //! keep the plain system allocator.

    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);

    /// Wraps [`System`], counting every `alloc`/`realloc` call.
    pub struct CountingAlloc;

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }

    /// Total allocations since process start (monotonic; diff two reads to
    /// bracket a region).
    pub fn allocations() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }
}

/// A minimal self-propelled component for event-throughput benchmarks:
/// bounces a token to the next node in a ring.
pub struct RingNode {
    pub hops_left: u64,
    pub start: bool,
}

#[derive(Debug, serde::Serialize, serde::Deserialize)]
pub struct Tok(pub u64);

impl Component for RingNode {
    fn setup(&mut self, ctx: &mut SimCtx<'_>) {
        register_payload::<Tok>("bench.tok");
        if self.start {
            ctx.send(PortId(1), Tok(self.hops_left));
        }
    }
    fn on_event(&mut self, _p: PortId, ev: PayloadSlot, ctx: &mut SimCtx<'_>) {
        let t = downcast::<Tok>(ev);
        if t.0 > 0 {
            ctx.send(PortId(1), Tok(t.0 - 1));
        }
    }
    fn fuse_key(&self) -> Option<FuseKey> {
        Some(FuseKey::of::<Self>())
    }
    fn fuse_into(self: Box<Self>, group: &mut dyn FusedGroup) -> u32 {
        sst_core::specialize::absorb(group, *self)
    }
}

/// A pure constant-latency forwarder: counts the event and passes the
/// payload through unchanged. Opts into chain flattening, so a specialized
/// build folds a run of repeaters into a single queue push.
pub struct Repeater {
    forwarded: Option<StatId>,
}

impl Repeater {
    pub const IN: PortId = PortId(0);
    pub const OUT: PortId = PortId(1);

    pub fn new() -> Self {
        Repeater { forwarded: None }
    }
}

impl Default for Repeater {
    fn default() -> Self {
        Self::new()
    }
}

impl Component for Repeater {
    fn setup(&mut self, ctx: &mut SimCtx<'_>) {
        self.forwarded = Some(ctx.stat_counter("forwarded"));
    }
    fn on_event(&mut self, port: PortId, ev: PayloadSlot, ctx: &mut SimCtx<'_>) {
        // This handler is the chain_forward contract, spelled out: one
        // counter bump, one unchanged pass-through, nothing else. It runs on
        // generic paths (--no-specialize, telemetry); folded deliveries
        // replicate it inline.
        assert_eq!(port, Self::IN);
        ctx.add_stat(self.forwarded.unwrap(), 1);
        ctx.send_slot(Self::OUT, ev, SimTime::ZERO);
    }
    fn ports(&self) -> &'static [&'static str] {
        &["in", "out"]
    }
    fn chain_forward(&self) -> Option<ChainSpec> {
        Some(ChainSpec {
            in_port: Self::IN,
            out_port: Self::OUT,
            stat: Some("forwarded"),
        })
    }
}

/// Build a cycle of one [`RingNode`] head plus `n_repeaters` [`Repeater`]s:
/// the head launches a token that crosses every repeater, comes back, and
/// is relaunched `laps` times. The chain-flattening stress workload — an
/// unfused run pays one queue round-trip per repeater per lap.
pub fn chain(n_repeaters: u32, laps: u64) -> SystemBuilder {
    assert!(n_repeaters >= 1);
    let mut b = SystemBuilder::new();
    let head = b.add(
        "head",
        RingNode {
            hops_left: laps,
            start: true,
        },
    );
    let reps: Vec<_> = (0..n_repeaters)
        .map(|i| b.add(format!("r{i}"), Repeater::new()))
        .collect();
    b.link((head, PortId(1)), (reps[0], Repeater::IN), SimTime::ns(10));
    for w in reps.windows(2) {
        b.link((w[0], Repeater::OUT), (w[1], Repeater::IN), SimTime::ns(10));
    }
    b.link(
        (reps[n_repeaters as usize - 1], Repeater::OUT),
        (head, PortId(0)),
        SimTime::ns(10),
    );
    b
}

/// Build a ring of `n` nodes carrying one token for `hops` hops.
pub fn ring(n: u32, hops: u64) -> SystemBuilder {
    let mut b = SystemBuilder::new();
    let ids: Vec<_> = (0..n)
        .map(|i| {
            b.add(
                format!("n{i}"),
                RingNode {
                    hops_left: hops,
                    start: i == 0,
                },
            )
        })
        .collect();
    for i in 0..n as usize {
        b.link(
            (ids[i], PortId(1)),
            (ids[(i + 1) % n as usize], PortId(0)),
            SimTime::ns(10),
        );
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_runs() {
        let report = Engine::new(ring(8, 100)).run(RunLimit::Exhaust);
        assert_eq!(report.events, 101);
    }

    fn stats_json(r: &SimReport) -> String {
        serde_json::to_string(&r.stats).unwrap()
    }

    #[test]
    fn fused_ring_matches_unfused() {
        let mut f = ring(8, 100);
        f.specialize(true);
        let mut u = ring(8, 100);
        u.specialize(false);
        let fused = Engine::new(f).run(RunLimit::Exhaust);
        let plain = Engine::new(u).run(RunLimit::Exhaust);
        assert!(fused.specialized && !plain.specialized);
        assert_eq!(fused.events, plain.events);
        assert_eq!(fused.end_time, plain.end_time);
        assert_eq!(stats_json(&fused), stats_json(&plain));
    }

    #[test]
    fn chain_folds_and_matches_unfused() {
        let mut f = chain(6, 50);
        f.specialize(true);
        let mut u = chain(6, 50);
        u.specialize(false);
        let fused = Engine::new(f).run(RunLimit::Exhaust);
        let plain = Engine::new(u).run(RunLimit::Exhaust);
        // Token values laps..=0 each cross 6 repeaters + the head.
        assert_eq!(plain.events, 51 * 7);
        assert_eq!(fused.events, plain.events);
        assert_eq!(fused.end_time, plain.end_time);
        assert_eq!(fused.clock_ticks, plain.clock_ticks);
        assert_eq!(stats_json(&fused), stats_json(&plain));
        assert_eq!(fused.stats.counter("r0", "forwarded"), 51);
    }

    #[test]
    fn chain_until_limit_matches_unfused() {
        // Step bounds cut chains mid-fold; `now`, counts, and stats must
        // still agree with the unfused run at every intermediate bound.
        for ns in [5, 35, 70, 105, 200] {
            let mut f = chain(4, 20);
            f.specialize(true);
            let mut u = chain(4, 20);
            u.specialize(false);
            let limit = RunLimit::Until(SimTime::ns(ns));
            let fused = Engine::new(f).run(limit);
            let plain = Engine::new(u).run(limit);
            assert_eq!(fused.events, plain.events, "at {ns}ns");
            assert_eq!(fused.end_time, plain.end_time, "at {ns}ns");
            assert_eq!(stats_json(&fused), stats_json(&plain), "at {ns}ns");
        }
    }
}
