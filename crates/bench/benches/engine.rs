//! Engine benchmarks: raw discrete-event throughput, serial vs parallel
//! ranks, and the cost of the conservative synchronization protocol.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sst_bench::ring;
use sst_core::prelude::*;
use sst_sim::experiments::pdes;

fn serial_event_throughput(c: &mut Criterion) {
    let hops = 50_000u64;
    let mut g = c.benchmark_group("engine/serial");
    g.throughput(Throughput::Elements(hops));
    g.bench_function("ring_token", |b| {
        b.iter(|| {
            let report = Engine::new(ring(64, hops)).run(RunLimit::Exhaust);
            assert_eq!(report.events, hops + 1);
            report.events
        })
    });
    g.finish();
}

fn parallel_rank_scaling(c: &mut Criterion) {
    // Dense token traffic on a torus — the E11 workload at bench scale.
    let params = pdes::Params {
        side: 12,
        tokens_per_node: 6,
        ttl: 80,
        rank_counts: vec![],
        ..pdes::Params::default()
    };
    let mut g = c.benchmark_group("engine/parallel");
    g.sample_size(10);
    for ranks in [1u32, 2, 4] {
        g.bench_with_input(BenchmarkId::new("torus_traffic", ranks), &ranks, |b, &r| {
            b.iter(|| {
                let report = ParallelEngine::new(pdes::build(&params), r).run(RunLimit::Exhaust);
                report.events
            })
        });
    }
    g.finish();
}

fn event_queue_ops(c: &mut Criterion) {
    use sst_core::event::{ComponentId, EventClass, EventKind, PortId, ScheduledEvent, TieBreak};
    use sst_core::queue::EventQueue;
    c.bench_function("engine/queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.push(ScheduledEvent {
                    time: SimTime::ps(i.wrapping_mul(0x9E37) % 10_000),
                    class: EventClass::Message,
                    tie: TieBreak {
                        src: ComponentId((i % 64) as u32),
                        seq: i,
                    },
                    target: ComponentId(0),
                    kind: EventKind::Message {
                        port: PortId(0),
                        payload: sst_core::event::PayloadSlot::new(()),
                    },
                });
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            n
        })
    });
}

criterion_group!(
    benches,
    serial_event_throughput,
    parallel_rank_scaling,
    event_queue_ops
);
criterion_main!(benches);
