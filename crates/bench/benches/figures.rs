//! One benchmark per reproduced figure: each bench runs the experiment at
//! a reduced ("quick-") scale and reports its turnaround time, so
//! `cargo bench` regenerates every result and tracks harness performance.
//! (Full-scale tables come from `sst experiment <id>`.)

use criterion::{criterion_group, criterion_main, Criterion};
use sst_sim::experiments::{dse, fig02, fig03, fig04, fig05, fig08, fig09, pdes, validate};

fn bench_fig02(c: &mut Criterion) {
    let p = fig02::Params {
        core_counts: vec![1, 4],
        nx: 8,
        solver_iters: 2,
        ..fig02::Params::default()
    };
    c.benchmark_group("figures")
        .sample_size(10)
        .bench_function("fig02_cores_per_node", |b| {
            b.iter(|| fig02::run(&p).rows.len())
        });
}

fn bench_fig03(c: &mut Criterion) {
    let p = fig03::Params {
        speeds_mts: vec![800.0, 1333.0],
        channels: 2,
        cores: 2,
        nx: 8,
        solver_iters: 2,
        ..fig03::Params::default()
    };
    c.benchmark_group("figures")
        .sample_size(10)
        .bench_function("fig03_memory_speed", |b| {
            b.iter(|| fig03::run(&p).rows.len())
        });
}

fn bench_fig04(c: &mut Criterion) {
    let p = fig04::Params {
        nx: 16,
        solver_iters: 1,
        ..fig04::Params::default()
    };
    c.benchmark_group("figures")
        .sample_size(10)
        .bench_function("fig04_cache_behavior", |b| {
            b.iter(|| fig04::run(&p).rows.len())
        });
}

fn bench_fig05(c: &mut Criterion) {
    let p = fig05::Params {
        rank_counts: vec![8, 64],
        iters: 2,
        ..fig05::Params::quick()
    };
    c.benchmark_group("figures")
        .sample_size(10)
        .bench_function("fig05_weak_scaling", |b| {
            b.iter(|| fig05::run(&p).rows.len())
        });
}

fn bench_fig08(c: &mut Criterion) {
    let p = fig08::Params {
        nx_per_core: 8,
        cpu_cores: 2,
        solver_iters: 1,
        ..fig08::Params::default()
    };
    c.benchmark_group("figures")
        .sample_size(10)
        .bench_function("fig08_gpu_miniapp", |b| {
            b.iter(|| fig08::run(&p).rows.len())
        });
}

fn bench_fig09(c: &mut Criterion) {
    let p = fig09::Params {
        bw_factors: vec![1.0, 0.125],
        ranks: 27,
        xnobel_ranks: vec![27],
        steps: 1,
        ranks_per_node: 4,
        ..fig09::Params::default()
    };
    c.benchmark_group("figures")
        .sample_size(10)
        .bench_function("fig09_injection_bw", |b| {
            b.iter(|| fig09::run(&p).rows.len())
        });
}

fn bench_fig10_11_12(c: &mut Criterion) {
    // One sweep feeds all three figures.
    let p = dse::Params {
        widths: vec![1, 8],
        nx: 8,
        nx_lulesh: 12,
        hpccg_iters: 2,
        lulesh_steps: 1,
        ..dse::Params::default()
    };
    c.benchmark_group("figures")
        .sample_size(10)
        .bench_function("fig10_11_12_design_space", |b| {
            b.iter(|| {
                let pts = dse::sweep(&p);
                dse::fig10(&pts, &p).rows.len()
                    + dse::fig11(&pts, &p).rows.len()
                    + dse::fig12(&pts, &p).rows.len()
            })
        });
}

fn bench_pdes(c: &mut Criterion) {
    let p = pdes::Params {
        side: 8,
        tokens_per_node: 4,
        ttl: 40,
        rank_counts: vec![2],
        ..pdes::Params::default()
    };
    c.benchmark_group("figures")
        .sample_size(10)
        .bench_function("pdes_parallel_engine", |b| {
            b.iter(|| pdes::run(&p).rows.len())
        });
}

fn bench_validate(c: &mut Criterion) {
    c.benchmark_group("figures")
        .sample_size(10)
        .bench_function("validation_study_quick", |b| {
            b.iter(|| validate::run(&validate::Params { quick: true }).rows.len())
        });
}

criterion_group!(
    benches,
    bench_fig02,
    bench_fig03,
    bench_fig04,
    bench_fig05,
    bench_fig08,
    bench_fig09,
    bench_fig10_11_12,
    bench_pdes,
    bench_validate
);
criterion_main!(benches);
