//! Model microbenchmarks: how fast the substrate state machines run —
//! cache accesses, DRAM service, coherence ops, network sends, and
//! node-level simulated instructions per second.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sst_core::time::{Frequency, SimTime};
use sst_cpu::core::CoreConfig;
use sst_cpu::node::{Node, NodeConfig};
use sst_mem::cache::{Access, Cache, CacheConfig};
use sst_mem::dram::{DramConfig, DramSystem};
use sst_mem::hierarchy::MemHierarchyConfig;
use sst_mem::mesi::SnoopBus;
use sst_net::network::{NetConfig, Network};
use sst_net::topology::Torus3D;
use sst_workloads::Problem;

fn cache_access(c: &mut Criterion) {
    let n = 100_000u64;
    let mut g = c.benchmark_group("models/cache");
    g.throughput(Throughput::Elements(n));
    g.bench_function("streaming_access", |b| {
        b.iter(|| {
            let mut cache = Cache::new(CacheConfig::l1d_32k());
            let mut hits = 0u64;
            for i in 0..n {
                if cache.access((i * 8) % (1 << 20), Access::Read).is_hit() {
                    hits += 1;
                }
            }
            hits
        })
    });
    g.finish();
}

fn dram_service(c: &mut Criterion) {
    let n = 50_000u64;
    let mut g = c.benchmark_group("models/dram");
    g.throughput(Throughput::Elements(n));
    g.bench_function("mixed_service", |b| {
        b.iter(|| {
            let mut d = DramSystem::new(DramConfig::ddr3_1333(2));
            let mut t = SimTime::ZERO;
            let mut x = 0x1234_5678u64;
            for i in 0..n {
                x ^= x << 13;
                x ^= x >> 7;
                let addr = if i % 3 == 0 { x % (1 << 28) } else { i * 64 };
                let (done, _) = d.service(addr & !63, i % 4 == 0, t);
                t = t.max(done.saturating_sub(SimTime::ns(40)));
            }
            d.stats.accesses()
        })
    });
    g.finish();
}

fn mesi_ops(c: &mut Criterion) {
    let n = 100_000u64;
    let mut g = c.benchmark_group("models/mesi");
    g.throughput(Throughput::Elements(n));
    g.bench_function("random_ops", |b| {
        b.iter(|| {
            let mut bus = SnoopBus::new(8);
            let mut x = 0xDEADu64;
            for _ in 0..n {
                x ^= x << 13;
                x ^= x >> 7;
                let core = (x % 8) as usize;
                let line = (x >> 8) % 4096 * 64;
                if x & 0x10000 == 0 {
                    bus.read(core, line);
                } else {
                    bus.write(core, line);
                }
            }
            bus.stats.memory_fetches
        })
    });
    g.finish();
}

fn network_send(c: &mut Criterion) {
    let n = 20_000u64;
    let mut g = c.benchmark_group("models/network");
    g.throughput(Throughput::Elements(n));
    g.bench_function("torus_sends", |b| {
        b.iter(|| {
            let mut net = Network::new(Box::new(Torus3D::new(8, 8, 8)), NetConfig::xt5());
            let mut t = SimTime::ZERO;
            for i in 0..n {
                let src = (i * 7) as u32 % 512;
                let dst = (i * 13 + 5) as u32 % 512;
                net.send(src, dst, 4096, t);
                t += SimTime::ns(100);
            }
            net.stats.messages
        })
    });
    g.finish();
}

fn node_simulation_rate(c: &mut Criterion) {
    // Simulated instructions per wall-second of the node model — the number
    // that determines experiment turnaround.
    let mut g = c.benchmark_group("models/node");
    g.sample_size(10);
    let instrs = {
        let mut node = small_node();
        node.run_phase(
            "probe",
            vec![sst_workloads::hpccg::solver(0, Problem::new(10), 2)],
        )
        .instrs
    };
    g.throughput(Throughput::Elements(instrs));
    g.bench_function("hpccg_cg_iteration", |b| {
        b.iter(|| {
            let mut node = small_node();
            node.run_phase(
                "cg",
                vec![sst_workloads::hpccg::solver(0, Problem::new(10), 2)],
            )
            .instrs
        })
    });
    g.finish();
}

fn small_node() -> Node {
    Node::new(NodeConfig {
        core: CoreConfig::with_width(4, Frequency::ghz(2.0)),
        cores: 1,
        mem: MemHierarchyConfig::typical(DramConfig::ddr3_1333(2)),
        fidelity: Default::default(),
    })
}

criterion_group!(
    benches,
    cache_access,
    dram_service,
    mesi_ops,
    network_send,
    node_simulation_rate
);
criterion_main!(benches);
