//! Profiling harness: run the pdes torus workload repeatedly on one engine
//! flavor so a sampling profiler sees only the steady-state hot path.
//! `cargo run --release --example prof_torus -- [plain-heap|plain-indexed|spec] [reps]`

use sst_core::prelude::*;
use sst_core::HeapEngine;
use sst_sim::experiments::pdes;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flavor = args.get(1).map(String::as_str).unwrap_or("spec");
    let reps: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(20);
    let mut p = pdes::Params::quick();
    p.side = 12;
    p.tokens_per_node = 6;
    p.ttl = 80;
    let mut total = 0u64;
    let mut dt = std::time::Duration::ZERO;
    for _ in 0..reps {
        let mut b = pdes::build(&p);
        // Construct outside the timed region: the rows compare steady-state
        // simulation rate, not graph-build cost (identical across flavors).
        let report = match flavor {
            "plain-heap" => {
                b.specialize(false);
                let e = HeapEngine::with_telemetry(b, TelemetrySpec::disabled());
                let t0 = std::time::Instant::now();
                let r = e.run(RunLimit::Exhaust);
                dt += t0.elapsed();
                r
            }
            "plain-indexed" => {
                b.specialize(false);
                let e = Engine::with_telemetry(b, TelemetrySpec::disabled());
                let t0 = std::time::Instant::now();
                let r = e.run(RunLimit::Exhaust);
                dt += t0.elapsed();
                r
            }
            _ => {
                b.specialize(true);
                let e = AutoEngine::with_telemetry(b, TelemetrySpec::disabled());
                let t0 = std::time::Instant::now();
                let r = e.run(RunLimit::Exhaust);
                dt += t0.elapsed();
                r
            }
        };
        total += report.events + report.clock_ticks;
    }
    println!(
        "{flavor}: {total} events in {dt:?} = {:.0} ev/s",
        total as f64 / dt.as_secs_f64()
    );
}
