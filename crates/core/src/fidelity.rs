//! Simulation fidelity selection.
//!
//! SST's defining usability feature is *multi-fidelity* modelling: an abstract
//! (fast) and a detailed (slow) model of the same subsystem, swappable from
//! configuration. [`Fidelity`] is the knob. Subsystem crates expose a model
//! trait (`CoreModel`, `MemoryModel`, `FabricModel`) with one implementation
//! per variant; drivers pick an implementation with a factory keyed on this
//! enum, so the same experiment parameters can produce either an analytic
//! table or an engine-driven one.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Which model implementation a subsystem should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Fidelity {
    /// Closed-form / lockstep fast path: no event queue, no components.
    #[default]
    Analytic,
    /// Discrete-event path: components wired by links, driven by an
    /// [`Engine`](crate::engine::Engine) (or `ParallelEngine`), results
    /// extracted from the [`StatsSnapshot`](crate::stats::StatsSnapshot).
    Des,
}

impl Fidelity {
    /// Canonical lowercase name, as accepted by `--fidelity` and config files.
    pub fn as_str(self) -> &'static str {
        match self {
            Fidelity::Analytic => "analytic",
            Fidelity::Des => "des",
        }
    }

    /// All variants, in documentation order.
    pub const ALL: [Fidelity; 2] = [Fidelity::Analytic, Fidelity::Des];
}

impl fmt::Display for Fidelity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error for an unrecognized fidelity name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFidelityError(pub String);

impl fmt::Display for ParseFidelityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown fidelity `{}` (expected `analytic` or `des`)",
            self.0
        )
    }
}

impl std::error::Error for ParseFidelityError {}

impl FromStr for Fidelity {
    type Err = ParseFidelityError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "analytic" | "abstract" | "fast" => Ok(Fidelity::Analytic),
            "des" | "detailed" | "event" => Ok(Fidelity::Des),
            other => Err(ParseFidelityError(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_analytic() {
        assert_eq!(Fidelity::default(), Fidelity::Analytic);
    }

    #[test]
    fn parse_round_trip() {
        for f in Fidelity::ALL {
            assert_eq!(f.as_str().parse::<Fidelity>().unwrap(), f);
            assert_eq!(f.to_string(), f.as_str());
        }
        assert_eq!("DES".parse::<Fidelity>().unwrap(), Fidelity::Des);
        assert_eq!("detailed".parse::<Fidelity>().unwrap(), Fidelity::Des);
        assert!("cycle-accurate".parse::<Fidelity>().is_err());
        let e = "x".parse::<Fidelity>().unwrap_err();
        assert!(e.to_string().contains("unknown fidelity"));
    }
}
