//! Statistics framework.
//!
//! Components register named statistics at setup time and update them through
//! cheap integer handles during simulation. At the end of a run the engine
//! produces a [`StatsSnapshot`] — a flat, serializable table — which the
//! experiment harnesses consume. This mirrors SST's statistics subsystem
//! (accumulators / counters / histograms with CSV-style output).

use serde::{Deserialize, Error as SerdeError, Serialize, Value};
use std::collections::BTreeMap;
use std::fmt;

/// Handle to a registered statistic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StatId(pub u32);

#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum StatKind {
    /// Monotonic event count.
    Counter { count: u64 },
    /// Scalar sample accumulator: count/sum/min/max plus Welford M2 for
    /// variance.
    Accumulator {
        count: u64,
        sum: f64,
        min: f64,
        max: f64,
        mean: f64,
        m2: f64,
    },
    /// Power-of-two bucketed histogram of `u64` samples. Bucket `i` counts
    /// samples in `(2^(i-1), 2^i]`; bucket 0 counts zeros and ones.
    Histogram { buckets: Vec<u64>, count: u64 },
}

impl StatKind {
    fn counter() -> Self {
        StatKind::Counter { count: 0 }
    }
    fn accumulator() -> Self {
        StatKind::Accumulator {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            mean: 0.0,
            m2: 0.0,
        }
    }
    fn histogram() -> Self {
        StatKind::Histogram {
            buckets: vec![0; 64],
            count: 0,
        }
    }
}

/// One registered statistic: owning component name + stat name + state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Stat {
    pub owner: String,
    pub name: String,
    pub kind: StatKind,
}

/// Registry of all statistics in a simulation. Owned by the engine; mutated
/// through `StatId` handles.
#[derive(Debug, Default, Clone)]
pub struct StatsRegistry {
    stats: Vec<Stat>,
}

impl StatsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&mut self, owner: &str, name: &str, kind: StatKind) -> StatId {
        let id = StatId(self.stats.len() as u32);
        self.stats.push(Stat {
            owner: owner.to_string(),
            name: name.to_string(),
            kind,
        });
        id
    }

    pub fn counter(&mut self, owner: &str, name: &str) -> StatId {
        self.register(owner, name, StatKind::counter())
    }
    pub fn accumulator(&mut self, owner: &str, name: &str) -> StatId {
        self.register(owner, name, StatKind::accumulator())
    }
    pub fn histogram(&mut self, owner: &str, name: &str) -> StatId {
        self.register(owner, name, StatKind::histogram())
    }

    /// Look up an already registered stat by owner and name. Registration is
    /// append-only (re-registering duplicates), so post-setup passes that
    /// need a component's stat — e.g. chain-flattening resolving its per-hop
    /// counter — must find the one setup made rather than register anew.
    pub fn find(&self, owner: &str, name: &str) -> Option<StatId> {
        self.stats
            .iter()
            .position(|s| s.owner == owner && s.name == name)
            .map(|i| StatId(i as u32))
    }

    /// Increment a counter by `n`.
    #[inline]
    pub fn add(&mut self, id: StatId, n: u64) {
        match &mut self.stats[id.0 as usize].kind {
            StatKind::Counter { count } => *count += n,
            other => panic!("stat {id:?} is not a Counter: {other:?}"),
        }
    }

    /// Record a scalar sample into an accumulator.
    #[inline]
    pub fn record(&mut self, id: StatId, v: f64) {
        match &mut self.stats[id.0 as usize].kind {
            StatKind::Accumulator {
                count,
                sum,
                min,
                max,
                mean,
                m2,
            } => {
                *count += 1;
                *sum += v;
                if v < *min {
                    *min = v;
                }
                if v > *max {
                    *max = v;
                }
                // Welford's online update.
                let delta = v - *mean;
                *mean += delta / *count as f64;
                *m2 += delta * (v - *mean);
            }
            other => panic!("stat {id:?} is not an Accumulator: {other:?}"),
        }
    }

    /// Record a sample into a log2 histogram.
    #[inline]
    pub fn sample(&mut self, id: StatId, v: u64) {
        match &mut self.stats[id.0 as usize].kind {
            StatKind::Histogram { buckets, count } => {
                let b = if v <= 1 {
                    0
                } else {
                    64 - (v - 1).leading_zeros() as usize
                };
                buckets[b.min(63)] += 1;
                *count += 1;
            }
            other => panic!("stat {id:?} is not a Histogram: {other:?}"),
        }
    }

    /// Current value of a counter.
    pub fn counter_value(&self, id: StatId) -> u64 {
        match &self.stats[id.0 as usize].kind {
            StatKind::Counter { count } => *count,
            other => panic!("stat {id:?} is not a Counter: {other:?}"),
        }
    }

    pub fn len(&self) -> usize {
        self.stats.len()
    }
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }

    /// All registered stats, in registration order. Used by the telemetry
    /// sampler to walk live values without snapshot cost.
    pub fn stats(&self) -> &[Stat] {
        &self.stats
    }

    /// Freeze into a snapshot table.
    ///
    /// A never-sampled accumulator carries `min = +inf` / `max = -inf` as its
    /// live identity values; JSON has no encoding for non-finite floats (they
    /// serialize as `null`), so zero-count accumulators are normalized to
    /// all-zero fields in the snapshot.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut stats = self.stats.clone();
        for s in &mut stats {
            if let StatKind::Accumulator {
                count, min, max, ..
            } = &mut s.kind
            {
                if *count == 0 {
                    *min = 0.0;
                    *max = 0.0;
                }
            }
        }
        StatsSnapshot::from_stats(stats)
    }

    /// Clone the live stats for a checkpoint, in canonical `(owner, name)`
    /// order — *not* registration order, which follows component setup
    /// order and would make the serial engine's snapshot bytes disagree
    /// with a parallel rank-stitched capture of the same instant.
    ///
    /// Identical to the live values except that zero-count accumulators'
    /// `min`/`max` identity values (±inf) are normalized to 0 — JSON cannot
    /// carry non-finite floats — and [`StatsRegistry::restore_values`]
    /// reverses that normalization exactly (a zero-count accumulator's
    /// min/max are *always* the identities). Populated stats round-trip
    /// bit-exactly: floats serialize via Rust's shortest-round-trip
    /// rendering.
    pub fn checkpoint_stats(&self) -> Vec<Stat> {
        let mut stats = self.stats.clone();
        for s in &mut stats {
            if let StatKind::Accumulator {
                count, min, max, ..
            } = &mut s.kind
            {
                if *count == 0 {
                    *min = 0.0;
                    *max = 0.0;
                }
            }
        }
        stats.sort_by(|a, b| (&a.owner, &a.name).cmp(&(&b.owner, &b.name)));
        stats
    }

    /// Overwrite live values from a checkpoint, matching entries by
    /// `(owner, name)` so the saved order (canonical) and the live
    /// registration order (shape-dependent) need not agree. Saved entries
    /// with no live counterpart are skipped — a parallel rank's registry
    /// holds only its own components' stats — and the number of entries
    /// applied is returned so the caller can verify full coverage across
    /// ranks. Panics on a kind mismatch (the rebuilt system differs from
    /// the snapshotted one).
    pub fn restore_values(&mut self, saved: &[Stat]) -> usize {
        use std::collections::HashMap;
        let by_key: HashMap<(String, String), usize> = self
            .stats
            .iter()
            .enumerate()
            .map(|(i, s)| ((s.owner.clone(), s.name.clone()), i))
            .collect();
        let mut applied = 0;
        for s in saved {
            let Some(&i) = by_key.get(&(s.owner.clone(), s.name.clone())) else {
                continue;
            };
            let dst = &mut self.stats[i];
            let same_kind = matches!(
                (&dst.kind, &s.kind),
                (StatKind::Counter { .. }, StatKind::Counter { .. })
                    | (StatKind::Accumulator { .. }, StatKind::Accumulator { .. })
                    | (StatKind::Histogram { .. }, StatKind::Histogram { .. })
            );
            assert!(
                same_kind,
                "cannot restore stat `{}`.`{}`: kind mismatch ({:?} vs {:?})",
                s.owner, s.name, dst.kind, s.kind
            );
            dst.kind = s.kind.clone();
            if let StatKind::Accumulator {
                count, min, max, ..
            } = &mut dst.kind
            {
                if *count == 0 {
                    // Undo the checkpoint normalization back to the live
                    // identity values.
                    *min = f64::INFINITY;
                    *max = f64::NEG_INFINITY;
                }
            }
            applied += 1;
        }
        applied
    }

    /// Merge another registry's stats into this one (used by the parallel
    /// engine to combine per-rank registries). Entries with a new
    /// `(owner, name)` are appended in order; entries duplicating an
    /// existing key are *merged* into it — counters sum, accumulators
    /// combine exactly via the parallel Welford formula, histograms add
    /// bucketwise — so lookups after a merge see the combined statistic
    /// rather than an arbitrary copy.
    ///
    /// Panics if a duplicate key has a different stat kind: that is a
    /// registration bug, and silently keeping one side would corrupt
    /// results.
    pub fn absorb(&mut self, other: StatsRegistry) {
        use std::collections::HashMap;
        let mut by_key: HashMap<(String, String), usize> = self
            .stats
            .iter()
            .enumerate()
            .map(|(i, s)| ((s.owner.clone(), s.name.clone()), i))
            .collect();
        for stat in other.stats {
            match by_key.entry((stat.owner.clone(), stat.name.clone())) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    let dst = &mut self.stats[*e.get()];
                    merge_stat_kind(dst, stat.kind);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(self.stats.len());
                    self.stats.push(stat);
                }
            }
        }
    }
}

/// Merge `src` into `dst.kind`; both must be the same kind.
fn merge_stat_kind(dst: &mut Stat, src: StatKind) {
    match (&mut dst.kind, src) {
        (StatKind::Counter { count }, StatKind::Counter { count: c2 }) => *count += c2,
        (
            StatKind::Accumulator {
                count,
                sum,
                min,
                max,
                mean,
                m2,
            },
            StatKind::Accumulator {
                count: nb,
                sum: sum_b,
                min: min_b,
                max: max_b,
                mean: mean_b,
                m2: m2_b,
            },
        ) => {
            if nb == 0 {
                return;
            }
            let na = *count;
            if na == 0 {
                (*count, *sum, *min, *max, *mean, *m2) = (nb, sum_b, min_b, max_b, mean_b, m2_b);
                return;
            }
            // Chan et al. parallel Welford combination: exact pooled mean
            // and M2 from the two partitions' moments.
            let n = na + nb;
            let delta = mean_b - *mean;
            *mean += delta * nb as f64 / n as f64;
            *m2 += m2_b + delta * delta * (na as f64 * nb as f64) / n as f64;
            *count = n;
            *sum += sum_b;
            if min_b < *min {
                *min = min_b;
            }
            if max_b > *max {
                *max = max_b;
            }
        }
        (
            StatKind::Histogram { buckets, count },
            StatKind::Histogram {
                buckets: b2,
                count: c2,
            },
        ) => {
            for (a, b) in buckets.iter_mut().zip(b2) {
                *a += b;
            }
            *count += c2;
        }
        (dst_kind, src_kind) => panic!(
            "cannot merge stat `{}`.`{}`: kind mismatch ({dst_kind:?} vs {src_kind:?})",
            dst.owner, dst.name
        ),
    }
}

/// An immutable, serializable table of end-of-run statistics.
///
/// Lookups by `(owner, name)` go through an index built once at snapshot
/// time (binary search over stat indices sorted by key), so harness loops
/// over large merged registries stay `O(log n)` per call instead of a
/// linear scan.
#[derive(Debug, Clone, Default)]
pub struct StatsSnapshot {
    pub stats: Vec<Stat>,
    /// Indices into `stats`, sorted by `(owner, name)`. Rebuilt on
    /// deserialization; not part of the wire format.
    index: Vec<u32>,
}

impl StatsSnapshot {
    /// Build a snapshot over `stats`, constructing the lookup index.
    pub fn from_stats(stats: Vec<Stat>) -> StatsSnapshot {
        let mut index: Vec<u32> = (0..stats.len() as u32).collect();
        index.sort_by(|&a, &b| {
            let (sa, sb) = (&stats[a as usize], &stats[b as usize]);
            (sa.owner.as_str(), sa.name.as_str()).cmp(&(sb.owner.as_str(), sb.name.as_str()))
        });
        StatsSnapshot { stats, index }
    }

    /// Look up a stat by exact `(owner, name)`.
    pub fn get(&self, owner: &str, name: &str) -> Option<&Stat> {
        let pos = self
            .index
            .binary_search_by(|&i| {
                let s = &self.stats[i as usize];
                (s.owner.as_str(), s.name.as_str()).cmp(&(owner, name))
            })
            .ok()?;
        Some(&self.stats[self.index[pos] as usize])
    }

    /// Value of a counter by exact `(owner, name)`; 0 if absent.
    pub fn counter(&self, owner: &str, name: &str) -> u64 {
        match self.get(owner, name).map(|s| &s.kind) {
            Some(StatKind::Counter { count }) => *count,
            _ => 0,
        }
    }

    /// Mean of an accumulator by exact `(owner, name)`.
    pub fn mean(&self, owner: &str, name: &str) -> Option<f64> {
        match self.get(owner, name).map(|s| &s.kind) {
            Some(StatKind::Accumulator { count, mean, .. }) if *count > 0 => Some(*mean),
            _ => None,
        }
    }

    /// Sum every counter named `name` across all owners (e.g. total cache
    /// hits over all L1s).
    pub fn sum_counters(&self, name: &str) -> u64 {
        self.stats
            .iter()
            .filter(|s| s.name == name)
            .map(|s| match &s.kind {
                StatKind::Counter { count } => *count,
                _ => 0,
            })
            .sum()
    }

    /// Sum every counter whose name matches `pred` across all owners.
    pub fn sum_counters_by(&self, pred: impl Fn(&str) -> bool) -> u64 {
        self.stats
            .iter()
            .filter(|s| pred(&s.name))
            .map(|s| match &s.kind {
                StatKind::Counter { count } => *count,
                _ => 0,
            })
            .sum()
    }

    /// All stats grouped by owner, for display.
    pub fn by_owner(&self) -> BTreeMap<&str, Vec<&Stat>> {
        let mut m: BTreeMap<&str, Vec<&Stat>> = BTreeMap::new();
        for s in &self.stats {
            m.entry(s.owner.as_str()).or_default().push(s);
        }
        m
    }
}

// Manual serde impls: the index is derived state and must stay out of the
// wire format (`{"stats": [...]}`). Stats are emitted in canonical
// `(owner, name)` order rather than registration order: the parallel engine
// absorbs per-rank registries in rank order, so registration order depends
// on the partition — canonical order is what makes reports from different
// partitions byte-identical.
impl Serialize for StatsSnapshot {
    fn to_value(&self) -> Value {
        let sorted: Vec<Value> = self
            .index
            .iter()
            .map(|&i| self.stats[i as usize].to_value())
            .collect();
        let mut m = serde::Map::new();
        m.insert("stats".to_string(), Value::Array(sorted));
        Value::Object(m)
    }
}

impl Deserialize for StatsSnapshot {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        let stats = v
            .get("stats")
            .ok_or_else(|| SerdeError::msg("StatsSnapshot: missing field `stats`"))?;
        Ok(StatsSnapshot::from_stats(Vec::<Stat>::from_value(stats)?))
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (owner, stats) in self.by_owner() {
            writeln!(f, "[{owner}]")?;
            for s in stats {
                match &s.kind {
                    StatKind::Counter { count } => writeln!(f, "  {:<32} {}", s.name, count)?,
                    StatKind::Accumulator {
                        count,
                        sum,
                        min,
                        max,
                        mean,
                        ..
                    } => {
                        if *count == 0 {
                            writeln!(f, "  {:<32} (no samples)", s.name)?;
                        } else {
                            writeln!(
                                f,
                                "  {:<32} n={} sum={:.4} mean={:.4} min={:.4} max={:.4}",
                                s.name, count, sum, mean, min, max
                            )?;
                        }
                    }
                    StatKind::Histogram { buckets, count } => {
                        writeln!(f, "  {:<32} n={}", s.name, count)?;
                        for (i, b) in buckets.iter().enumerate() {
                            if *b > 0 {
                                let lo: u64 = if i == 0 { 0 } else { (1u64 << (i - 1)) + 1 };
                                let hi: u64 = 1u64 << i;
                                writeln!(f, "    [{lo}, {hi}]: {b}")?;
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Sample standard deviation of an accumulator stat.
pub fn stddev(kind: &StatKind) -> Option<f64> {
    match kind {
        StatKind::Accumulator { count, m2, .. } if *count > 1 => {
            Some((m2 / (*count as f64 - 1.0)).sqrt())
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut r = StatsRegistry::new();
        let c = r.counter("comp", "hits");
        r.add(c, 3);
        r.add(c, 4);
        assert_eq!(r.counter_value(c), 7);
        let snap = r.snapshot();
        assert_eq!(snap.counter("comp", "hits"), 7);
        assert_eq!(snap.counter("comp", "nonexistent"), 0);
    }

    #[test]
    fn accumulator_moments() {
        let mut r = StatsRegistry::new();
        let a = r.accumulator("comp", "latency");
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            r.record(a, v);
        }
        let snap = r.snapshot();
        let s = snap.get("comp", "latency").unwrap();
        if let StatKind::Accumulator {
            count,
            sum,
            min,
            max,
            mean,
            ..
        } = &s.kind
        {
            assert_eq!(*count, 8);
            assert_eq!(*sum, 40.0);
            assert_eq!(*min, 2.0);
            assert_eq!(*max, 9.0);
            assert!((mean - 5.0).abs() < 1e-12);
            // population stddev of this classic dataset is 2; sample ≈ 2.138
            let sd = stddev(&s.kind).unwrap();
            assert!((sd - 2.13809).abs() < 1e-4, "sd={sd}");
        } else {
            panic!("wrong kind");
        }
    }

    #[test]
    fn histogram_buckets() {
        let mut r = StatsRegistry::new();
        let h = r.histogram("comp", "sizes");
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1024] {
            r.sample(h, v);
        }
        let snap = r.snapshot();
        if let StatKind::Histogram { buckets, count } = &snap.get("comp", "sizes").unwrap().kind {
            assert_eq!(*count, 8);
            assert_eq!(buckets[0], 2); // 0, 1
            assert_eq!(buckets[1], 1); // 2
            assert_eq!(buckets[2], 2); // 3, 4
            assert_eq!(buckets[3], 2); // 7, 8
            assert_eq!(buckets[10], 1); // 1024
        } else {
            panic!("wrong kind");
        }
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // bucket(v) = 0 for v<=1 else 64 - leading_zeros(v-1):
        // v=2 -> b=1 ([1,2] upper-exclusive style: (1,2])
        // v=3,4 -> b=2; v=5..8 -> b=3; v=9..16 -> b=4
        let mut r = StatsRegistry::new();
        let h = r.histogram("c", "x");
        r.sample(h, 2);
        r.sample(h, 4);
        r.sample(h, 8);
        r.sample(h, 16);
        let snap = r.snapshot();
        if let StatKind::Histogram { buckets, .. } = &snap.get("c", "x").unwrap().kind {
            assert_eq!(buckets[1], 1);
            assert_eq!(buckets[2], 1);
            assert_eq!(buckets[3], 1);
            assert_eq!(buckets[4], 1);
        } else {
            panic!()
        }
    }

    #[test]
    fn sum_counters_across_owners() {
        let mut r = StatsRegistry::new();
        let a = r.counter("l1.0", "hits");
        let b = r.counter("l1.1", "hits");
        let c = r.counter("l1.0", "misses");
        r.add(a, 10);
        r.add(b, 20);
        r.add(c, 5);
        let snap = r.snapshot();
        assert_eq!(snap.sum_counters("hits"), 30);
        assert_eq!(snap.sum_counters_by(|n| n.ends_with("es")), 5);
    }

    #[test]
    fn serialized_snapshot_order_is_canonical() {
        // The same stats registered in opposite orders — as two different
        // rank partitions would — must serialize byte-identically.
        let mut r1 = StatsRegistry::new();
        let a = r1.counter("b", "n");
        let b = r1.counter("a", "n");
        r1.add(a, 2);
        r1.add(b, 3);
        let mut r2 = StatsRegistry::new();
        let c = r2.counter("a", "n");
        let d = r2.counter("b", "n");
        r2.add(c, 3);
        r2.add(d, 2);
        assert_eq!(
            serde_json::to_string(&r1.snapshot()).unwrap(),
            serde_json::to_string(&r2.snapshot()).unwrap()
        );
    }

    #[test]
    fn absorb_merges() {
        let mut r1 = StatsRegistry::new();
        let a = r1.counter("x", "n");
        r1.add(a, 1);
        let mut r2 = StatsRegistry::new();
        let b = r2.counter("y", "n");
        r2.add(b, 2);
        r1.absorb(r2);
        let snap = r1.snapshot();
        assert_eq!(snap.sum_counters("n"), 3);
    }

    #[test]
    fn absorb_merges_duplicate_counters() {
        let mut r1 = StatsRegistry::new();
        let a = r1.counter("node", "visits");
        r1.add(a, 10);
        let mut r2 = StatsRegistry::new();
        let b = r2.counter("node", "visits");
        r2.add(b, 32);
        r1.absorb(r2);
        assert_eq!(r1.len(), 1, "duplicates must merge, not concatenate");
        let snap = r1.snapshot();
        assert_eq!(snap.counter("node", "visits"), 42);
    }

    #[test]
    fn absorb_merges_accumulators_exactly() {
        // Parallel Welford: merging two partitions must equal accumulating
        // the concatenated stream directly.
        let xs = [2.0, 4.0, 4.0, 4.0];
        let ys = [5.0, 5.0, 7.0, 9.0];
        let mut r1 = StatsRegistry::new();
        let a = r1.accumulator("c", "lat");
        for &v in &xs {
            r1.record(a, v);
        }
        let mut r2 = StatsRegistry::new();
        let b = r2.accumulator("c", "lat");
        for &v in &ys {
            r2.record(b, v);
        }
        let mut direct = StatsRegistry::new();
        let d = direct.accumulator("c", "lat");
        for &v in xs.iter().chain(&ys) {
            direct.record(d, v);
        }
        r1.absorb(r2);
        let merged = r1.snapshot();
        let reference = direct.snapshot();
        let (m, r) = (
            merged.get("c", "lat").unwrap(),
            reference.get("c", "lat").unwrap(),
        );
        if let (
            StatKind::Accumulator {
                count: c1,
                sum: s1,
                min: lo1,
                max: hi1,
                mean: m1,
                m2: q1,
            },
            StatKind::Accumulator {
                count: c2,
                sum: s2,
                min: lo2,
                max: hi2,
                mean: m2v,
                m2: q2,
            },
        ) = (&m.kind, &r.kind)
        {
            assert_eq!(c1, c2);
            assert!((s1 - s2).abs() < 1e-9);
            assert_eq!(lo1, lo2);
            assert_eq!(hi1, hi2);
            assert!((m1 - m2v).abs() < 1e-9, "mean {m1} vs {m2v}");
            assert!((q1 - q2).abs() < 1e-9, "m2 {q1} vs {q2}");
        } else {
            panic!("wrong kinds");
        }
    }

    #[test]
    fn absorb_merges_empty_accumulator_sides() {
        let mut r1 = StatsRegistry::new();
        r1.accumulator("c", "x");
        let mut r2 = StatsRegistry::new();
        let b = r2.accumulator("c", "x");
        r2.record(b, 3.0);
        r1.absorb(r2);
        assert_eq!(r1.snapshot().mean("c", "x"), Some(3.0));

        // And the other way round: non-empty absorbs empty.
        let mut r3 = StatsRegistry::new();
        let c = r3.accumulator("c", "x");
        r3.record(c, 5.0);
        let mut r4 = StatsRegistry::new();
        r4.accumulator("c", "x");
        r3.absorb(r4);
        assert_eq!(r3.snapshot().mean("c", "x"), Some(5.0));
    }

    #[test]
    fn absorb_merges_histograms() {
        let mut r1 = StatsRegistry::new();
        let h1 = r1.histogram("c", "sz");
        r1.sample(h1, 4);
        let mut r2 = StatsRegistry::new();
        let h2 = r2.histogram("c", "sz");
        r2.sample(h2, 4);
        r2.sample(h2, 1024);
        r1.absorb(r2);
        let snap = r1.snapshot();
        if let StatKind::Histogram { buckets, count } = &snap.get("c", "sz").unwrap().kind {
            assert_eq!(*count, 3);
            assert_eq!(buckets[2], 2);
            assert_eq!(buckets[10], 1);
        } else {
            panic!("wrong kind");
        }
    }

    #[test]
    #[should_panic(expected = "kind mismatch")]
    fn absorb_rejects_kind_mismatch() {
        let mut r1 = StatsRegistry::new();
        r1.counter("c", "x");
        let mut r2 = StatsRegistry::new();
        r2.accumulator("c", "x");
        r1.absorb(r2);
    }

    #[test]
    fn snapshot_index_finds_every_entry() {
        let mut r = StatsRegistry::new();
        let mut ids = Vec::new();
        for i in 0..50 {
            let owner = format!("comp{}", 49 - i); // deliberately unsorted
            ids.push((owner.clone(), r.counter(&owner, "n")));
        }
        for (i, (_, id)) in ids.iter().enumerate() {
            r.add(*id, i as u64 + 1);
        }
        let snap = r.snapshot();
        for (i, (owner, _)) in ids.iter().enumerate() {
            assert_eq!(snap.counter(owner, "n"), i as u64 + 1, "owner={owner}");
        }
        assert!(snap.get("compX", "n").is_none());
        assert!(snap.get("comp0", "missing").is_none());
    }

    #[test]
    fn snapshot_index_survives_serde_round_trip() {
        let mut r = StatsRegistry::new();
        let a = r.counter("b_owner", "n");
        let b = r.counter("a_owner", "n");
        r.add(a, 1);
        r.add(b, 2);
        let snap = r.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        assert!(
            json.starts_with("{\"stats\":"),
            "wire format changed: {json}"
        );
        assert!(!json.contains("index"), "index leaked into wire: {json}");
        let back: StatsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.counter("b_owner", "n"), 1);
        assert_eq!(back.counter("a_owner", "n"), 2);
    }

    #[test]
    fn empty_accumulator_serializes_finite() {
        let mut r = StatsRegistry::new();
        r.accumulator("comp", "never_sampled");
        let snap = r.snapshot();
        let s = snap.get("comp", "never_sampled").unwrap();
        if let StatKind::Accumulator {
            count, min, max, ..
        } = &s.kind
        {
            assert_eq!(*count, 0);
            assert_eq!(*min, 0.0);
            assert_eq!(*max, 0.0);
        } else {
            panic!("wrong kind");
        }
        let json = serde_json::to_string(&snap).unwrap();
        assert!(
            !json.contains("null") && !json.contains("inf"),
            "non-finite leak in JSON: {json}"
        );
    }

    #[test]
    fn populated_accumulator_min_max_survive_snapshot() {
        let mut r = StatsRegistry::new();
        let a = r.accumulator("comp", "lat");
        r.record(a, -3.0);
        r.record(a, 5.0);
        let snap = r.snapshot();
        if let StatKind::Accumulator { min, max, .. } = &snap.get("comp", "lat").unwrap().kind {
            assert_eq!(*min, -3.0);
            assert_eq!(*max, 5.0);
        } else {
            panic!("wrong kind");
        }
    }

    #[test]
    fn checkpoint_stats_round_trip_restores_live_values() {
        let mut r = StatsRegistry::new();
        let c = r.counter("comp", "hits");
        let a = r.accumulator("comp", "lat");
        r.accumulator("comp", "untouched");
        let h = r.histogram("comp", "sz");
        r.add(c, 7);
        r.record(a, 2.5);
        r.record(a, -1.25);
        r.sample(h, 100);
        let saved = r.checkpoint_stats();
        // Fresh registry, registered in a different (canonical-breaking)
        // order, as a restore after setup would produce.
        let mut fresh = StatsRegistry::new();
        let h2 = fresh.histogram("comp", "sz");
        let untouched = fresh.accumulator("comp", "untouched");
        fresh.accumulator("comp", "lat");
        fresh.counter("comp", "hits");
        assert_eq!(fresh.restore_values(&saved), 4);
        assert_eq!(
            serde_json::to_string(&fresh.snapshot()).unwrap(),
            serde_json::to_string(&r.snapshot()).unwrap()
        );
        // The zero-count accumulator got its live ±inf identities back:
        // a new sample must set min and max, not compare against 0.
        fresh.record(untouched, 5.0);
        if let StatKind::Accumulator { min, max, .. } =
            &fresh.snapshot().get("comp", "untouched").unwrap().kind
        {
            assert_eq!((*min, *max), (5.0, 5.0));
        } else {
            panic!("wrong kind");
        }
        // And updates continue from the restored values.
        fresh.sample(h2, 1);
        if let StatKind::Histogram { count, .. } = &fresh.snapshot().get("comp", "sz").unwrap().kind
        {
            assert_eq!(*count, 2);
        } else {
            panic!("wrong kind");
        }
    }

    #[test]
    fn restore_values_skips_foreign_keys_and_counts_applied() {
        let mut full = StatsRegistry::new();
        let a = full.counter("a", "n");
        let b = full.counter("b", "n");
        full.add(a, 1);
        full.add(b, 2);
        let saved = full.checkpoint_stats();
        // A rank registry holding only component `b`.
        let mut rank = StatsRegistry::new();
        rank.counter("b", "n");
        assert_eq!(rank.restore_values(&saved), 1);
        assert_eq!(rank.snapshot().counter("b", "n"), 2);
    }

    #[test]
    fn snapshot_display_smoke() {
        let mut r = StatsRegistry::new();
        let c = r.counter("comp", "events");
        r.add(c, 42);
        let text = r.snapshot().to_string();
        assert!(text.contains("comp"));
        assert!(text.contains("events"));
        assert!(text.contains("42"));
    }
}
